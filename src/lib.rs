//! # NFS Tricks and Benchmarking Traps — a full-system reproduction
//!
//! This workspace reproduces *NFS Tricks and Benchmarking Traps* (Daniel
//! Ellard and Margo Seltzer, Proceedings of the FREENIX track, USENIX
//! Annual Technical Conference 2003) as a deterministic discrete-event
//! simulation in Rust. The paper's contributions — the **SlowDown**
//! sequentiality heuristic, **cursor-based** read-ahead for stride access
//! patterns, and the enlarged **nfsheur** table — live in
//! [`readahead_core`]; everything they need to be measured against lives
//! in the substrate crates re-exported below.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`simcore`] | simulated time, event queue, seeded RNG, statistics |
//! | [`diskmodel`] | ZCAV drives, seek/rotation mechanics, prefetch cache, TCQ |
//! | [`iosched`] | kernel disk schedulers: FCFS, Elevator, N-CSCAN, SSTF |
//! | [`ffs`] | FFS-like file system: layout, buffer cache, cluster read-ahead |
//! | [`netsim`] | gigabit link model, UDP and TCP transports |
//! | [`nfsproto`] | XDR + NFS v3 message subset |
//! | [`readahead_core`] | **the paper's contribution** |
//! | [`nfssim`] | NFS client (nfsiods) + server (nfsds) event loop |
//! | [`testbed`] | the paper's benchmarks and per-figure experiments |
//! | [`nfscluster`] | N-client clusters sharing one server, contention accounting |
//!
//! ## Quickstart
//!
//! ```
//! use nfs_tricks::prelude::*;
//!
//! // Mount ide1 over simulated NFS/UDP with the paper's cursor heuristic.
//! let config = WorldConfig {
//!     policy: ReadaheadPolicy::cursor(),
//!     heur: NfsHeurConfig::improved(),
//!     ..WorldConfig::default()
//! };
//! let mut bench = StrideBench::new(Rig::ide(1), config, 8, 42);
//! let mbs = bench.run(4); // 4-stride read of an 8 MB file
//! assert!(mbs > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use diskmodel;
pub use ffs;
pub use iosched;
pub use netsim;
pub use nfscluster;
pub use nfsproto;
pub use nfssim;
pub use readahead_core;
pub use simcore;
pub use testbed;

/// The names most programs need, in one import.
pub mod prelude {
    pub use diskmodel::{DriveModel, TcqConfig};
    pub use iosched::SchedulerKind;
    pub use netsim::{LinkProfile, TransportKind};
    pub use nfscluster::{ClusterBench, ClusterConfig};
    pub use nfsproto::StableHow;
    pub use nfssim::{NfsWorld, WorldConfig};
    pub use readahead_core::{NfsHeur, NfsHeurConfig, ReadaheadPolicy, SharedCursorPool};
    pub use simcore::{SimDuration, SimRng, SimTime};
    pub use testbed::{LocalBench, NfsBench, Rig, StrideBench};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let _ = WorldConfig::default();
        let _ = Rig::scsi(1);
        let _ = ReadaheadPolicy::cursor();
    }
}
