//! Cross-crate integration tests: conservation, determinism, and
//! robustness of the full simulated installation.

use nfs_tricks::prelude::*;

fn read_whole_file(world: &mut NfsWorld, fh: nfsproto::FileHandle, size: u64) -> SimTime {
    let mut now = SimTime::ZERO;
    let mut offset = 0;
    while offset < size {
        world.read(now, fh, offset, 8_192, 0);
        loop {
            let t = world.next_event().expect("progress");
            if let Some(d) = world.advance(t).first() {
                now = d.done_at;
                break;
            }
        }
        offset += 8_192;
    }
    now
}

#[test]
fn every_transport_policy_combination_completes() {
    for transport in [TransportKind::Udp, TransportKind::Tcp] {
        for policy in [
            ReadaheadPolicy::Default,
            ReadaheadPolicy::Always,
            ReadaheadPolicy::slowdown(),
            ReadaheadPolicy::cursor(),
        ] {
            let config = WorldConfig {
                transport,
                policy,
                ..WorldConfig::default()
            };
            let fs = Rig::scsi(1).build_fs(5);
            let mut world = NfsWorld::new(config, fs, 5);
            let size = 1024 * 1024;
            let fh = world.create_file(size);
            let end = read_whole_file(&mut world, fh, size);
            assert!(end > SimTime::ZERO);
            assert_eq!(
                world.client_stats().retransmits,
                0,
                "{transport:?}/{} on a clean LAN",
                policy.label()
            );
            // Conservation: 128 blocks fetched exactly once each.
            assert_eq!(
                world.client_stats().rpcs,
                128,
                "{transport:?}/{}",
                policy.label()
            );
        }
    }
}

#[test]
fn identical_seeds_are_bit_identical_across_the_whole_stack() {
    let run = |seed: u64| {
        let config = WorldConfig {
            busy_loops: 4, // Exercise all jitter paths.
            ..WorldConfig::default()
        };
        let mut b = NfsBench::new(Rig::ide(1), config, &[4], 8, seed);
        b.run(4).throughput_mbs
    };
    assert_eq!(run(9).to_bits(), run(9).to_bits());
    assert_ne!(run(9).to_bits(), run(10).to_bits());
}

#[test]
fn local_and_nfs_account_for_every_block() {
    // 8 MB over 2 files = 1024 process reads of 8 KB each; at the file
    // system every one is either a buffer-cache hit or a miss, and the
    // same holds over NFS. (The drive's own prefetch is invisible here.)
    let mut local = LocalBench::new(Rig::ide(1), &[2], 8, 3);
    local.run(2);
    let s = local.fs_mut().stats();
    assert_eq!(s.cache_hit_blocks + s.miss_blocks, 1_024, "{s:?}");
    let mut nfs = NfsBench::new(Rig::ide(1), WorldConfig::default(), &[2], 8, 3);
    nfs.run(2);
    let c = nfs.world().client_stats();
    assert_eq!(c.rpcs, 1_024, "each block fetched exactly once: {c:?}");
}

#[test]
fn stride_and_sequential_read_the_same_bytes() {
    let cfg = WorldConfig {
        policy: ReadaheadPolicy::cursor(),
        heur: NfsHeurConfig::improved(),
        ..WorldConfig::default()
    };
    let mut b = StrideBench::new(Rig::scsi(1), cfg, 8, 4);
    let t_stride = b.run(4);
    let t_seq = b.run(1);
    assert!(t_stride > 0.0 && t_seq > 0.0);
    assert!(
        t_seq > t_stride,
        "sequential {t_seq:.2} should still beat stride {t_stride:.2}"
    );
}

#[test]
fn lossy_link_still_completes_via_retransmission() {
    let config = WorldConfig {
        link: LinkProfile {
            frame_loss: 0.01,
            ..LinkProfile::gigabit_lan()
        },
        retransmit_timeout: SimDuration::from_millis(40),
        ..WorldConfig::default()
    };
    let fs = Rig::ide(1).build_fs(6);
    let mut world = NfsWorld::new(config, fs, 6);
    let size = 512 * 1024;
    let fh = world.create_file(size);
    read_whole_file(&mut world, fh, size);
    assert!(
        world.client_stats().retransmits > 0,
        "loss must trigger retries"
    );
}

#[test]
fn heuristic_layer_consistent_with_world_observations() {
    // The nfsheur hit/miss totals must equal the number of READ calls the
    // server processed (every READ consults the table exactly once).
    let fs = Rig::ide(1).build_fs(7);
    let mut world = NfsWorld::new(WorldConfig::default(), fs, 7);
    let size = 1024 * 1024;
    let fh = world.create_file(size);
    read_whole_file(&mut world, fh, size);
    let h = world.heur().stats();
    let s = world.server_stats();
    assert_eq!(h.hits + h.misses, s.reads);
}

#[test]
fn mixed_workload_across_policies_is_stable() {
    for policy in [ReadaheadPolicy::Default, ReadaheadPolicy::cursor()] {
        let cfg = WorldConfig {
            policy,
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        };
        let r = nfs_tricks::testbed::run_mixed(
            Rig::ide(1),
            cfg,
            2,
            4,
            100,
            nfs_tricks::testbed::MixRatios::default(),
            8,
        );
        assert!(r.ops_per_sec > 50.0, "{}: {r:?}", policy.label());
    }
}
