//! Workspace-level property tests: arbitrary request patterns against the
//! full stack never panic, never lose operations, and never violate the
//! heuristics' bounds. Driven by seeded `SimRng` loops (offline-friendly).

use nfs_tricks::prelude::*;
use simcore::SimRng;

/// Any interleaving of reads across several files completes every
/// operation exactly once.
#[test]
fn arbitrary_read_interleavings_complete() {
    let mut rng = SimRng::new(0x92_09_01);
    for case in 0..16u64 {
        let seed = rng.gen_range(0u64..1_000);
        let n = rng.gen_range(1usize..80);
        let ops: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.gen_range(0usize..4), rng.gen_range(0u64..128)))
            .collect();
        let fs = Rig::scsi(1).build_fs(seed);
        let mut world = NfsWorld::new(WorldConfig::default(), fs, seed);
        let size = 128 * 8_192u64;
        let fhs: Vec<_> = (0..4).map(|_| world.create_file(size)).collect();
        let mut now = SimTime::ZERO;
        let mut issued = 0u64;
        for (i, &(f, blk)) in ops.iter().enumerate() {
            world.read(now, fhs[f], blk * 8_192, 8_192, i as u64);
            issued += 1;
            // Interleave: sometimes let the world progress before issuing.
            if i % 3 == 0 {
                if let Some(t) = world.next_event() {
                    for d in world.advance(t) {
                        let _ = d;
                        issued -= 1;
                    }
                    now = now.max(t);
                }
            }
        }
        let mut guard = 0;
        while issued > 0 {
            guard += 1;
            assert!(guard < 5_000_000, "case {case}: event loop stuck");
            let t = world.next_event().expect("ops pending");
            now = now.max(t);
            for _ in world.advance(t) {
                issued -= 1;
            }
        }
        // Drain stragglers (in-flight read-ahead, retransmit timers, and
        // any server work queued behind them) before checking books.
        let mut guard = 0;
        while let Some(t) = world.next_event() {
            guard += 1;
            assert!(guard < 5_000_000, "case {case}: drain stuck");
            world.advance(t);
        }
        // Conservation at the protocol level: every accepted call is
        // either replied to or dropped as stale after acceptance.
        let s = world.server_stats();
        assert_eq!(
            s.replies + s.stale_drops,
            s.reads + s.other_calls,
            "case {case}"
        );
    }
}

/// Mixed read/write/getattr sequences hold the same invariants.
#[test]
fn arbitrary_mixed_sequences_complete() {
    let mut rng = SimRng::new(0x92_09_02);
    for case in 0..16u64 {
        let seed = rng.gen_range(0u64..1_000);
        let n = rng.gen_range(1usize..60);
        let fs = Rig::ide(1).build_fs(seed);
        let mut world = NfsWorld::new(WorldConfig::default(), fs, seed);
        let size = 64 * 8_192u64;
        let fh = world.create_file(size);
        let mut pending = 0u64;
        let now = SimTime::ZERO;
        for i in 0..n {
            let blk = rng.gen_range(0u64..64);
            match rng.gen_range(0u8..3) {
                0 => {
                    world.read(now, fh, blk * 8_192, 8_192, i as u64);
                }
                1 => {
                    world.write(now, fh, blk * 8_192, 8_192, i as u64);
                }
                _ => {
                    world.getattr(now, fh, i as u64);
                }
            }
            pending += 1;
        }
        let mut guard = 0;
        while pending > 0 {
            guard += 1;
            assert!(guard < 5_000_000, "case {case}: event loop stuck");
            let t = world.next_event().expect("ops pending");
            for _ in world.advance(t) {
                pending -= 1;
            }
        }
    }
}

/// The end-to-end throughput of a sequential read is bounded by the
/// physics: never faster than the wire, never slower than
/// one-block-per-full-disk-access.
#[test]
fn throughput_respects_physical_bounds() {
    let mut rng = SimRng::new(0x92_09_03);
    for case in 0..8u64 {
        let seed = rng.gen_range(0u64..200);
        let mut b = NfsBench::new(Rig::ide(1), WorldConfig::default(), &[1], 4, seed);
        let t = b.run(1).throughput_mbs;
        assert!(t < 49.0, "case {case}: faster than the wire: {t}");
        assert!(t > 0.2, "case {case}: slower than worst-case disk: {t}");
    }
}
