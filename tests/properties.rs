//! Workspace-level property tests: arbitrary request patterns against the
//! full stack never panic, never lose operations, and never violate the
//! heuristics' bounds.

use nfs_tricks::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of reads across several files completes every
    /// operation exactly once.
    #[test]
    fn arbitrary_read_interleavings_complete(
        ops in prop::collection::vec((0usize..4, 0u64..128), 1..80),
        seed in 0u64..1_000,
    ) {
        let fs = Rig::scsi(1).build_fs(seed);
        let mut world = NfsWorld::new(WorldConfig::default(), fs, seed);
        let size = 128 * 8_192u64;
        let fhs: Vec<_> = (0..4).map(|_| world.create_file(size)).collect();
        let mut now = SimTime::ZERO;
        let mut issued = 0u64;
        for (i, &(f, blk)) in ops.iter().enumerate() {
            world.read(now, fhs[f], blk * 8_192, 8_192, i as u64);
            issued += 1;
            // Interleave: sometimes let the world progress before issuing.
            if i % 3 == 0 {
                if let Some(t) = world.next_event() {
                    for d in world.advance(t) {
                        let _ = d;
                        issued -= 1;
                    }
                    now = now.max(t);
                }
            }
        }
        let mut guard = 0;
        while issued > 0 {
            guard += 1;
            prop_assert!(guard < 5_000_000, "event loop stuck");
            let t = world.next_event().expect("ops pending");
            now = now.max(t);
            for _ in world.advance(t) {
                issued -= 1;
            }
        }
        // Drain stragglers (in-flight read-ahead, retransmit timers, and
        // any server work queued behind them) before checking books.
        let mut guard = 0;
        while let Some(t) = world.next_event() {
            guard += 1;
            prop_assert!(guard < 5_000_000, "drain stuck");
            world.advance(t);
        }
        // Conservation at the protocol level: every accepted call is
        // either replied to or dropped as a duplicate.
        let s = world.server_stats();
        prop_assert_eq!(s.replies + s.duplicates_dropped, s.reads + s.other_calls);
    }

    /// Mixed read/write/getattr sequences hold the same invariants.
    #[test]
    fn arbitrary_mixed_sequences_complete(
        ops in prop::collection::vec((0u8..3, 0u64..64), 1..60),
        seed in 0u64..1_000,
    ) {
        let fs = Rig::ide(1).build_fs(seed);
        let mut world = NfsWorld::new(WorldConfig::default(), fs, seed);
        let size = 64 * 8_192u64;
        let fh = world.create_file(size);
        let mut pending = 0u64;
        let now = SimTime::ZERO;
        for (i, &(kind, blk)) in ops.iter().enumerate() {
            match kind {
                0 => { world.read(now, fh, blk * 8_192, 8_192, i as u64); }
                1 => { world.write(now, fh, blk * 8_192, 8_192, i as u64); }
                _ => { world.getattr(now, fh, i as u64); }
            }
            pending += 1;
        }
        let mut guard = 0;
        while pending > 0 {
            guard += 1;
            prop_assert!(guard < 5_000_000, "event loop stuck");
            let t = world.next_event().expect("ops pending");
            for _ in world.advance(t) {
                pending -= 1;
            }
        }
    }

    /// The end-to-end throughput of a sequential read is bounded by the
    /// physics: never faster than the wire, never slower than
    /// one-block-per-full-disk-access.
    #[test]
    fn throughput_respects_physical_bounds(seed in 0u64..200) {
        let mut b = NfsBench::new(
            Rig::ide(1),
            WorldConfig::default(),
            &[1],
            4,
            seed,
        );
        let t = b.run(1).throughput_mbs;
        prop_assert!(t < 49.0, "faster than the wire: {t}");
        prop_assert!(t > 0.2, "slower than worst-case disk: {t}");
    }
}
