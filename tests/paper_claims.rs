//! Integration tests asserting the paper's headline claims end-to-end,
//! at reduced (CI-friendly) workload sizes. Each test names the claim.

use nfs_tricks::prelude::*;

const SEED: u64 = 2003;

fn nfs_throughput(config: WorldConfig, rig: Rig, readers: usize, total_mb: u64) -> f64 {
    let mut b = NfsBench::new(rig, config, &[readers], total_mb, SEED);
    b.run(readers).throughput_mbs
}

/// §5.1 / Figure 1: outer partitions out-transfer inner ones ~3:2.
#[test]
fn claim_zcav_effect_dominates() {
    let mut o = LocalBench::new(Rig::ide(1), &[1], 16, SEED);
    let mut i = LocalBench::new(Rig::ide(4), &[1], 16, SEED);
    let outer = o.run(1).throughput_mbs;
    let inner = i.run(1).throughput_mbs;
    let ratio = outer / inner;
    assert!(
        (1.15..1.8).contains(&ratio),
        "ZCAV ratio outer/inner = {ratio:.2} (outer {outer:.1}, inner {inner:.1})"
    );
}

/// §5.2 / Figure 2: disabling tagged queues substantially improves
/// concurrent sequential reads on the SCSI drive.
#[test]
fn claim_tagged_queues_trap() {
    let mut tags = LocalBench::new(Rig::scsi(1), &[4], 32, SEED);
    let mut none = LocalBench::new(Rig::scsi(1).no_tags(), &[4], 32, SEED);
    let with_tags = tags.run(4).throughput_mbs;
    let without = none.run(4).throughput_mbs;
    assert!(
        without > with_tags * 1.4,
        "no-tags {without:.1} should beat tags {with_tags:.1} by a wide margin"
    );
    // Single reader: tags do not hurt (the paper's spike).
    let mut tags1 = LocalBench::new(Rig::scsi(1), &[1], 32, SEED);
    let mut none1 = LocalBench::new(Rig::scsi(1).no_tags(), &[1], 32, SEED);
    let t1 = tags1.run(1).throughput_mbs;
    let n1 = none1.run(1).throughput_mbs;
    assert!(
        (t1 / n1 - 1.0).abs() < 0.1,
        "single reader: {t1:.1} vs {n1:.1}"
    );
}

/// §5.3 / Figure 3: the elevator finishes readers nearly one at a time
/// (factor ~6 first-to-last); N-CSCAN is flat but less than half the
/// throughput.
#[test]
fn claim_elevator_unfair_ncscan_fair_but_slow() {
    let mut elev = LocalBench::new(Rig::ide(1), &[8], 64, SEED);
    let re = elev.run(8);
    let spread_e = re.completion_secs[7] / re.completion_secs[0];
    assert!(
        (4.0..8.0).contains(&spread_e),
        "elevator spread {spread_e:.1}"
    );

    let rig = Rig::ide(1).with_scheduler(SchedulerKind::NCscan);
    let mut ncs = LocalBench::new(rig, &[8], 64, SEED);
    let rn = ncs.run(8);
    let spread_n = rn.completion_secs[7] / rn.completion_secs[0];
    assert!(spread_n < 1.3, "N-CSCAN spread {spread_n:.2}");
    assert!(
        rn.throughput_mbs < re.throughput_mbs / 1.5,
        "fairness costs throughput: {:.1} vs {:.1}",
        rn.throughput_mbs,
        re.throughput_mbs
    );
    // "The slowest elevator reader beats the fastest N-CSCAN reader."
    assert!(re.completion_secs[7] < rn.completion_secs[0]);
}

/// §5.4 / Figures 4-5: UDP beats TCP for few readers; NFS is well below
/// the local file system either way.
#[test]
fn claim_udp_vs_tcp_and_nfs_overhead() {
    let udp = nfs_throughput(WorldConfig::default(), Rig::ide(1), 1, 16);
    let tcp = nfs_throughput(
        WorldConfig {
            transport: TransportKind::Tcp,
            ..WorldConfig::default()
        },
        Rig::ide(1),
        1,
        16,
    );
    assert!(udp > tcp * 1.3, "udp {udp:.1} vs tcp {tcp:.1}");
    let mut local = LocalBench::new(Rig::ide(1), &[1], 16, SEED);
    let loc = local.run(1).throughput_mbs;
    assert!(
        udp < loc * 0.75,
        "NFS {udp:.1} should sit well below local {loc:.1}"
    );
}

/// §6 / Figure 6: at high concurrency the default heuristic falls away
/// from hard-wired Always-Read-ahead.
#[test]
fn claim_default_heuristic_diverges_from_always() {
    let default = nfs_throughput(WorldConfig::default(), Rig::ide(1), 16, 32);
    let always = nfs_throughput(
        WorldConfig {
            policy: ReadaheadPolicy::Always,
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        },
        Rig::ide(1),
        16,
        32,
    );
    assert!(
        always > default * 1.3,
        "always {always:.1} vs default {default:.1} at 16 readers"
    );
}

/// §6.3 / Figure 7: enlarging nfsheur alone recovers most of the loss;
/// SlowDown with the new table tracks Always.
#[test]
fn claim_new_nfsheur_table_is_the_big_win() {
    let busy = |policy, heur| {
        nfs_throughput(
            WorldConfig {
                policy,
                heur,
                busy_loops: 4,
                ..WorldConfig::default()
            },
            Rig::ide(1),
            16,
            32,
        )
    };
    let old_table = busy(ReadaheadPolicy::Default, NfsHeurConfig::freebsd_default());
    let new_table = busy(ReadaheadPolicy::Default, NfsHeurConfig::improved());
    let slowdown = busy(ReadaheadPolicy::slowdown(), NfsHeurConfig::improved());
    let always = busy(ReadaheadPolicy::Always, NfsHeurConfig::improved());
    assert!(
        new_table > old_table * 1.4,
        "bigger table: {new_table:.1} vs {old_table:.1}"
    );
    assert!(
        slowdown > always * 0.85,
        "slowdown {slowdown:.1} tracks always {always:.1}"
    );
}

/// §7 / Figure 8 & Table 1: cursors pay off on every stride width, with
/// gains of the paper's order (50-140%).
#[test]
fn claim_cursor_readahead_wins_strides() {
    for s in [2u64, 4, 8] {
        let run = |policy| {
            let cfg = WorldConfig {
                policy,
                heur: NfsHeurConfig::improved(),
                ..WorldConfig::default()
            };
            let mut b = StrideBench::new(Rig::scsi(1), cfg, 16, SEED);
            b.run(s)
        };
        let default = run(ReadaheadPolicy::Default);
        let cursor = run(ReadaheadPolicy::cursor());
        let gain = cursor / default - 1.0;
        assert!(
            gain > 0.4,
            "s={s}: cursor {cursor:.2} vs default {default:.2} ({:.0}% gain)",
            gain * 100.0
        );
    }
}

/// §6.2: SlowDown never hurts plain sequential workloads.
#[test]
fn claim_slowdown_harmless_when_sequential() {
    let default = nfs_throughput(WorldConfig::default(), Rig::ide(1), 1, 16);
    let slowdown = nfs_throughput(
        WorldConfig {
            policy: ReadaheadPolicy::slowdown(),
            ..WorldConfig::default()
        },
        Rig::ide(1),
        1,
        16,
    );
    assert!(
        (slowdown / default - 1.0).abs() < 0.1,
        "single sequential reader: slowdown {slowdown:.1} vs default {default:.1}"
    );
}
