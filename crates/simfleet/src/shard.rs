//! Barrier-synchronized sharded execution of one logical world.
//!
//! [`run_indexed`](crate::run_indexed) parallelizes *independent* runs;
//! this module parallelizes a *single* run that is too large for one
//! event loop. The world is split into `n` sub-worlds ("groups"), each a
//! self-contained deterministic simulator. Time advances in fixed
//! **epochs**: within an epoch every group runs independently up to the
//! epoch's barrier time; anything one group wants to tell another is
//! emitted as a typed message and delivered *at the next barrier*.
//!
//! The determinism contract — the whole point of the design — is that the
//! output is bit-identical at any shard count:
//!
//! 1. A group's `step` depends only on its own state and its inbox.
//! 2. Outboxes are collected **per group index**, not per thread.
//! 3. After the barrier, messages are routed serially in (source group,
//!    emission order) — a total order independent of which thread ran
//!    which group, or how groups were packed into shards.
//!
//! So each group observes an identical message sequence whether the epoch
//! ran on 1 thread or 16, and induction over epochs gives bit-identical
//! final states. This is the same contract the `jobs=1 ≡ jobs=4` tests
//! pin for independent runs, extended to communicating worlds.
//!
//! The shard count comes from [`set_shards_override`], else the
//! `NFS_FLEET_SHARDS` environment variable, else the jobs resolution of
//! [`jobs`](crate::jobs) (shards cost nothing when idle, so defaulting to
//! the machine width is safe).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable naming the number of shard worker threads.
pub const SHARDS_ENV: &str = "NFS_FLEET_SHARDS";

/// `0` = no override; otherwise the override value (set by tests).
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the shard count for the current process, taking precedence
/// over `NFS_FLEET_SHARDS` and the default. `None` removes the override.
/// Intended for tests that compare `shards=1` against `shards=N`.
pub fn set_shards_override(shards: Option<usize>) {
    SHARDS_OVERRIDE.store(shards.unwrap_or(0), Ordering::SeqCst);
}

/// Resolves the shard count (always ≥ 1): the test override, else
/// `NFS_FLEET_SHARDS`, else the [`jobs`](crate::jobs) resolution.
pub fn shards() -> usize {
    let o = SHARDS_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var(SHARDS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    crate::jobs()
}

/// One shard-steppable group of a sharded world.
pub trait ShardWorld: Send {
    /// Cross-group event type (delivered at the *next* barrier).
    type Msg: Send;

    /// Advances this group through epoch `epoch` up to the barrier,
    /// consuming the messages delivered at this barrier (already in the
    /// deterministic (source group, emission order) total order) and
    /// returning `(destination group, message)` pairs to deliver at the
    /// next barrier.
    fn step(&mut self, epoch: u64, inbox: Vec<Self::Msg>) -> Vec<(usize, Self::Msg)>;

    /// Whether this group has no pending work. The run ends at the first
    /// barrier where every group is idle and no messages are in flight.
    fn idle(&self) -> bool;
}

/// What a sharded run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Epochs executed before quiescence (or the cap).
    pub epochs: u64,
    /// Cross-group messages routed across all barriers.
    pub messages: u64,
    /// Whether the run reached quiescence within `max_epochs`.
    pub completed: bool,
}

/// Runs `groups` to quiescence (or `max_epochs`) with barrier-synchronized
/// message exchange, on [`shards`]-many scoped threads. Groups are packed
/// into contiguous index ranges per shard; see the module docs for why the
/// result is bit-identical at any shard count.
///
/// # Panics
///
/// Panics if a message names a destination group out of range, or if any
/// group's `step` panics (propagated after the scope joins).
pub fn run_sharded<W: ShardWorld>(groups: &mut [W], max_epochs: u64) -> ShardRunStats {
    let n = groups.len();
    let mut inboxes: Vec<Vec<W::Msg>> = Vec::with_capacity(n);
    inboxes.resize_with(n, Vec::new);
    let mut stats = ShardRunStats {
        epochs: 0,
        messages: 0,
        completed: false,
    };
    for epoch in 0..max_epochs {
        if inboxes.iter().all(Vec::is_empty) && groups.iter().all(ShardWorld::idle) {
            stats.completed = true;
            return stats;
        }
        stats.epochs = epoch + 1;
        let width = shards().min(n.max(1));
        let mut outboxes: Vec<Vec<(usize, W::Msg)>> = Vec::with_capacity(n);
        outboxes.resize_with(n, Vec::new);
        if width <= 1 || n <= 1 {
            for (i, g) in groups.iter_mut().enumerate() {
                outboxes[i] = g.step(epoch, std::mem::take(&mut inboxes[i]));
            }
        } else {
            let chunk = n.div_ceil(width);
            std::thread::scope(|scope| {
                for ((gs, ins), outs) in groups
                    .chunks_mut(chunk)
                    .zip(inboxes.chunks_mut(chunk))
                    .zip(outboxes.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for ((g, inbox), out) in gs.iter_mut().zip(ins).zip(outs) {
                            *out = g.step(epoch, std::mem::take(inbox));
                        }
                    });
                }
            });
        }
        // Serial routing in (source group, emission order): the total
        // order every group's next inbox is built from, independent of
        // scheduling above.
        for ob in &mut outboxes {
            for (dst, msg) in ob.drain(..) {
                assert!(dst < n, "message routed to group {dst} of {n}");
                inboxes[dst].push(msg);
                stats.messages += 1;
            }
        }
    }
    stats.completed = inboxes.iter().all(Vec::is_empty) && groups.iter().all(ShardWorld::idle);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the process-global override.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_shards<R>(s: usize, f: impl FnOnce() -> R) -> R {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_shards_override(Some(s));
        let r = f();
        set_shards_override(None);
        r
    }

    /// A toy deterministic group: hashes its inbox into its state each
    /// epoch and gossips to a pseudo-random peer while it has work left.
    struct Gossip {
        id: usize,
        n: usize,
        state: u64,
        remaining: u32,
    }

    impl ShardWorld for Gossip {
        type Msg = u64;
        fn step(&mut self, epoch: u64, inbox: Vec<u64>) -> Vec<(usize, u64)> {
            for m in inbox {
                self.state = self
                    .state
                    .rotate_left(7)
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(m);
            }
            if self.remaining == 0 {
                return Vec::new();
            }
            self.remaining -= 1;
            self.state = self.state.wrapping_add(epoch ^ 0x9E37_79B9_7F4A_7C15);
            let dst = (self.state >> 17) as usize % self.n;
            vec![(dst, self.state ^ self.id as u64)]
        }
        fn idle(&self) -> bool {
            self.remaining == 0
        }
    }

    fn fleet(n: usize) -> Vec<Gossip> {
        (0..n)
            .map(|id| Gossip {
                id,
                n,
                state: id as u64 * 0x9E37_79B9,
                remaining: 8 + (id as u32 % 5),
            })
            .collect()
    }

    #[test]
    fn shard_counts_agree_bitwise() {
        let run = |s: usize| {
            with_shards(s, || {
                let mut gs = fleet(13);
                let stats = run_sharded(&mut gs, 1_000);
                assert!(stats.completed);
                (stats, gs.iter().map(|g| g.state).collect::<Vec<_>>())
            })
        };
        let base = run(1);
        for s in [2, 4, 7] {
            assert_eq!(run(s), base, "shards={s}");
        }
    }

    #[test]
    fn quiescence_terminates_early() {
        let stats = with_shards(2, || {
            let mut gs = fleet(4);
            run_sharded(&mut gs, 1_000)
        });
        assert!(stats.completed);
        assert!(stats.epochs < 100, "{stats:?}");
        assert!(stats.messages > 0);
    }

    #[test]
    fn epoch_cap_reports_incomplete() {
        let mut gs = fleet(4);
        let stats = with_shards(1, || run_sharded(&mut gs, 2));
        assert!(!stats.completed);
        assert_eq!(stats.epochs, 2);
    }

    #[test]
    fn empty_fleet_is_immediately_quiescent() {
        let mut gs: Vec<Gossip> = Vec::new();
        let stats = run_sharded(&mut gs, 10);
        assert!(stats.completed);
        assert_eq!(stats.epochs, 0);
    }

    #[test]
    fn shards_override_takes_precedence_and_clears() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_shards_override(Some(5));
        assert_eq!(shards(), 5);
        set_shards_override(None);
        assert!(shards() >= 1);
    }
}
