//! Deterministic parallel run execution.
//!
//! Every experiment in this workspace is a set of *independent* simulation
//! runs — one per (seed, configuration) cell — whose results are then folded
//! into figures, tables, and fingerprints in a fixed order. The runs share
//! no state (each builds its own `NfsWorld` from plain-data configs and a
//! seed), so they can execute on any thread in any order; only the *fold*
//! order matters for bit-reproducibility.
//!
//! [`run_indexed`] exploits exactly that split: it executes the jobs on a
//! work-stealing pool of scoped threads, but returns the results in a `Vec`
//! indexed by job number. Callers fold that `Vec` in the same order the old
//! serial loop used, so every downstream byte — figure cells, table rows,
//! simtest fingerprints — is identical whether the jobs ran on one thread
//! or sixteen. The determinism argument is spelled out in DESIGN.md §9.
//!
//! [`run_sharded`] extends the same contract from independent runs to one
//! *sharded world*: sub-worlds that exchange typed messages at fixed time
//! barriers, bit-identical at any shard count (the [`run_sharded`] docs
//! spell out the determinism argument).
//!
//! Threading is std-only (scoped threads, atomics, channels) and confined
//! to this crate; the simulator itself stays single-threaded per run.
//!
//! The pool width comes from, in priority order:
//!
//! 1. [`set_jobs_override`] (tests pin `jobs=1` vs `jobs=N` side by side);
//! 2. the `NFS_BENCH_JOBS` environment variable (`1` = serial, exactly the
//!    pre-`simfleet` behaviour);
//! 3. [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod shard;

pub use shard::{run_sharded, set_shards_override, shards, ShardRunStats, ShardWorld, SHARDS_ENV};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable naming the number of worker threads.
pub const JOBS_ENV: &str = "NFS_BENCH_JOBS";

/// `0` = no override; otherwise the override value (set by tests).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the pool width for the current process, taking precedence
/// over `NFS_BENCH_JOBS` and the detected core count. `None` removes the
/// override. Intended for tests that compare `jobs=1` against `jobs=N`
/// without touching the process environment.
pub fn set_jobs_override(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::SeqCst);
}

/// Resolves the worker-pool width (always ≥ 1): the test override, else
/// `NFS_BENCH_JOBS`, else available parallelism.
pub fn jobs() -> usize {
    let o = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(0), f(1), …, f(n - 1)` and returns the results in index order.
///
/// With `jobs() == 1` (or `n <= 1`) this is a plain serial loop on the
/// calling thread — bit-for-bit the pre-`simfleet` execution. Otherwise a
/// scoped-thread pool pulls job indices from a shared atomic counter
/// (work stealing: fast jobs free their thread for slow ones), sends each
/// `(index, result)` over a channel, and the results are written into
/// their slots. Because results are *keyed by index*, the returned `Vec`
/// is independent of scheduling; callers that fold it left-to-right
/// reproduce the serial output exactly.
///
/// # Panics
///
/// Panics if any job panics (the panic is propagated after the scope
/// joins all workers).
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let width = jobs().min(n.max(1));
    if width <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..width {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, out) in rx {
            slots[i] = Some(out);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job index sends exactly once"))
        .collect()
}

/// Maps `f` over `items`, in parallel, preserving input order in the
/// output. Convenience wrapper over [`run_indexed`] for the common
/// "cells of an experiment matrix" shape.
pub fn map_indexed<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the process-global override.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_jobs_override(Some(jobs));
        let r = f();
        set_jobs_override(None);
        r
    }

    #[test]
    fn results_come_back_in_index_order() {
        let out = with_jobs(8, || {
            run_indexed(100, |i| {
                // Stagger so late indices often finish first.
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                i * i
            })
        });
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        // A job whose result depends only on its index (as every
        // simulation run depends only on its seed/config cell).
        let job = |i: usize| -> u64 {
            let mut x = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
            for _ in 0..1_000 {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            x
        };
        let serial = with_jobs(1, || run_indexed(64, job));
        let parallel = with_jobs(6, || run_indexed(64, job));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_and_one_job_counts_run_inline() {
        let out: Vec<usize> = with_jobs(1, || run_indexed(0, |i| i));
        assert!(out.is_empty());
        let out = with_jobs(4, || run_indexed(1, |i| i + 10));
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn map_indexed_preserves_input_order() {
        let items = ["a", "bb", "ccc", "dddd"];
        let out = with_jobs(4, || map_indexed(&items, |s| s.len()));
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn override_takes_precedence_and_clears() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_jobs_override(Some(3));
        assert_eq!(jobs(), 3);
        set_jobs_override(None);
        assert!(jobs() >= 1);
    }

    #[test]
    fn pool_survives_many_more_jobs_than_workers() {
        let out = with_jobs(4, || run_indexed(10_000, |i| i as u64));
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }
}
