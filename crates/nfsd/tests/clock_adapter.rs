//! Satellite: the wall-clock adapter must not change server behaviour.
//!
//! The serve loop drives the world the way a wall clock forces it to —
//! many small `advance(now)` pumps at whatever instants the loop happens
//! to run — while the simulator drives it event-to-event. These tests
//! replay one trace through both driving styles (with a SlowDown stall
//! and UNSTABLE writes in the middle, so stall windows and gather-window
//! flush timers are both in play) and require the *server event order*
//! to be identical: heuristic probes, gather flushes, and replies must
//! fire in the same sequence regardless of how time is fed in.

use nfsd::{build_world, Clock, ManualClock};
use nfsproto::{FileHandle, NfsCall, StableHow};
use nfssim::{NfsWorld, ServerEvent, WorldConfig};
use simcore::{SimDuration, SimRng, SimTime};

/// One scripted arrival: `(time, xid, call)`.
type Arrival = (SimTime, u32, NfsCall);

/// A mixed workload: two interleaved sequential readers, a burst of
/// UNSTABLE writes with a COMMIT, and enough reads after the stall to
/// see the heuristics keep running.
fn script(exports: &[FileHandle]) -> Vec<Arrival> {
    let mut rng = SimRng::new(0xC10C);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut xid = 0u32;
    for i in 0..48u64 {
        t += rng.exponential(400.0);
        let at = SimTime::from_nanos((t * 1_000.0) as u64);
        xid += 1;
        let fh = exports[(i % 2) as usize];
        let offset = (i / 2) * 8_192;
        if i % 8 == 5 {
            out.push((
                at,
                xid,
                NfsCall::Write {
                    fh: exports[2],
                    offset,
                    count: 8_192,
                    stable: StableHow::Unstable,
                },
            ));
        } else if i % 16 == 9 {
            out.push((
                at,
                xid,
                NfsCall::Commit {
                    fh: exports[2],
                    offset: 0,
                    count: 0,
                },
            ));
        } else {
            out.push((
                at,
                xid,
                NfsCall::Read {
                    fh,
                    offset,
                    count: 8_192,
                },
            ));
        }
    }
    out
}

/// When the SlowDown stall lands (between arrivals, mid-trace).
const STALL_AT: SimTime = SimTime::from_nanos(8_000_000);
const STALL: SimDuration = SimDuration::from_millis(5);

fn world_with_exports() -> (NfsWorld, Vec<FileHandle>) {
    let config = WorldConfig {
        stable_how: StableHow::Unstable,
        ..WorldConfig::default()
    };
    let mut world = build_world(config, 77);
    let ext = world.register_external_client();
    let exports: Vec<_> = (0..3)
        .map(|_| world.create_export_file(ext, 64 * 8_192))
        .collect();
    world.enable_server_event_log();
    (world, exports)
}

/// Virtual-clock driving: leap exactly to each arrival, then run the
/// event queue dry the way the simulator does.
///
/// Both drivers build their own world from the same seed; export file
/// layout draws come from the server's own deterministic RNG stream, so
/// the script's handles are valid in every copy.
fn run_virtual(script: &[Arrival]) -> Vec<ServerEvent> {
    let (mut world, _exports) = world_with_exports();
    let mut stalled = false;
    for (at, xid, call) in script.iter().cloned() {
        maybe_stall(&mut world, at, &mut stalled);
        world.advance(at);
        world.external_call(at, 0, xid, call);
    }
    quiesce_virtual(&mut world);
    world.take_server_events()
}

/// Wall-clock driving: a ManualClock plays the role of the socket loop's
/// time source, pumping the world at coarse, jittery instants that never
/// coincide with event times — exactly what `serve` does to the world.
fn run_wall(script: &[Arrival], pump_ns: u64) -> Vec<ServerEvent> {
    let (mut world, _exports) = world_with_exports();
    let clock = ManualClock::new();
    let mut stalled = false;
    for (at, xid, call) in script.iter().cloned() {
        // Pump in fixed increments until the arrival instant passes.
        while clock.now() < at {
            let next = SimTime::from_nanos(clock.now().as_nanos() + pump_ns).min(at);
            clock.advance_to(next);
            maybe_stall(&mut world, clock.now(), &mut stalled);
            world.advance(clock.now());
        }
        world.external_call(clock.now(), 0, xid, call);
    }
    // Keep pumping until the world runs dry.
    while let Some(deadline) = world.next_event() {
        clock.advance_to(SimTime::from_nanos(deadline.as_nanos() + pump_ns));
        world.advance(clock.now());
        world.take_external_replies();
    }
    world.take_server_events()
}

fn maybe_stall(world: &mut NfsWorld, now: SimTime, stalled: &mut bool) {
    if !*stalled && now >= STALL_AT {
        world.stall_server(STALL_AT, STALL);
        *stalled = true;
    }
}

fn quiesce_virtual(world: &mut NfsWorld) {
    while let Some(t) = world.next_event() {
        world.advance(t);
        world.take_external_replies();
    }
}

#[test]
fn wall_clock_driver_preserves_server_event_order() {
    let (_, exports) = world_with_exports();
    let script = script(&exports);
    let virtual_events = run_virtual(&script);
    // 100µs pump: the serve loop's idle tick. 1ms pump: a badly lagging
    // loop. Both must reproduce the virtual order exactly.
    for pump_ns in [100_000u64, 1_000_000] {
        let wall_events = run_wall(&script, pump_ns);
        assert_eq!(
            virtual_events, wall_events,
            "server event order diverged at pump={pump_ns}ns"
        );
    }
    // Sanity: the workload actually exercised all three event kinds.
    let has = |f: fn(&ServerEvent) -> bool| virtual_events.iter().any(f);
    assert!(has(|e| matches!(e, ServerEvent::HeurRead { .. })));
    assert!(has(|e| matches!(e, ServerEvent::GatherFlush { .. })));
    assert!(has(|e| matches!(e, ServerEvent::Reply { .. })));
}

#[test]
fn jittered_pump_instants_keep_books_equal() {
    // Irregular pump cadence (prime-ish steps) — books, not just order,
    // must match the virtual replay.
    let (_, exports) = world_with_exports();
    let script = script(&exports);
    let virtual_events = run_virtual(&script);
    let wall_events = run_wall(&script, 173_000);
    assert_eq!(virtual_events.len(), wall_events.len());
    let flushes = |evs: &[ServerEvent]| {
        evs.iter()
            .filter(|e| matches!(e, ServerEvent::GatherFlush { .. }))
            .count()
    };
    assert_eq!(flushes(&virtual_events), flushes(&wall_events));
}
