//! End-to-end over a real socket: serve on loopback, mount, replay, and
//! diff the books against a pure virtual-clock replay of the same trace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nfsd::{
    bind, build_world, serve, sim_replay, DiffReport, Endpoint, ExportSpec, HeurBooks, NfsClient,
    WallClock,
};
use nfsproto::StableHow;
use nfssim::WorldConfig;
use nfstrace::synth::{self, SequentialSpec};
use simcore::SimRng;

const SEED: u64 = 42;
const FILES: u32 = 4;
const BLOCKS: u64 = 16;

fn trace() -> Vec<nfstrace::TraceRecord> {
    let spec = SequentialSpec {
        files: FILES,
        blocks_per_file: BLOCKS,
        ..SequentialSpec::default()
    };
    let mut rng = SimRng::new(SEED);
    synth::sequential(spec, &mut rng).records
}

#[test]
fn socket_replay_matches_virtual_replay() {
    let config = WorldConfig::default();
    let spec = ExportSpec {
        files: FILES as usize,
        file_size: BLOCKS * 8_192,
    };

    // Real side.
    let endpoint = Endpoint::new(build_world(config, SEED), spec);
    let (listener, local) = bind("127.0.0.1:0").expect("bind");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server = std::thread::spawn(move || serve(listener, endpoint, WallClock::start(), stop2));

    let mut client = NfsClient::connect(local).expect("connect");
    let stats = client
        .replay(&trace(), StableHow::FileSync, false)
        .expect("replay");
    assert_eq!(stats.calls, u64::from(FILES) * BLOCKS);
    assert_eq!(stats.nfs_errors, 0);
    assert!(stats.read.total() > 0);
    drop(client);
    stop.store(true, Ordering::Relaxed);
    let endpoint = server.join().expect("server thread");
    let real = HeurBooks::from_stats(&endpoint.world().server_stats());

    // Sim side.
    let mut world = build_world(config, SEED);
    let ext = world.register_external_client();
    let exports: Vec<_> = (0..FILES)
        .map(|_| world.create_export_file(ext, BLOCKS * 8_192))
        .collect();
    let sim = sim_replay(&mut world, &exports, &trace(), StableHow::FileSync);

    let report = DiffReport::diff(&sim, &real);
    assert!(report.passed(), "diff failed:\n{}", report.render());
    assert!(real.heur_hits > 0, "sequential replay must train nfsheur");
}

#[test]
fn two_connections_share_one_heuristic_table() {
    // Two clients mounting the same endpoint contend for the same
    // `nfsheur` table — the ejection pressure §6.3 describes.
    let config = WorldConfig::default();
    let endpoint = Endpoint::new(
        build_world(config, 7),
        ExportSpec {
            files: 2,
            file_size: 16 * 8_192,
        },
    );
    let (listener, local) = bind("127.0.0.1:0").expect("bind");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server = std::thread::spawn(move || serve(listener, endpoint, WallClock::start(), stop2));

    let spec = SequentialSpec {
        files: 2,
        blocks_per_file: 8,
        ..SequentialSpec::default()
    };
    let mut rng = SimRng::new(9);
    let t = synth::sequential(spec, &mut rng).records;
    let mut a = NfsClient::connect(local).expect("connect a");
    let mut b = NfsClient::connect(local).expect("connect b");
    let sa = a.replay(&t, StableHow::FileSync, false).expect("replay a");
    let sb = b.replay(&t, StableHow::FileSync, false).expect("replay b");
    drop((a, b));
    stop.store(true, Ordering::Relaxed);
    let endpoint = server.join().expect("server thread");

    let s = endpoint.world().server_stats();
    assert_eq!(s.reads, sa.calls + sb.calls);
    assert_eq!(s.replies, s.reads + s.other_calls);
}
