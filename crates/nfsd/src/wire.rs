//! Full RFC 1813 / RFC 1094 (MOUNT) wire encodings for the real-socket
//! endpoint.
//!
//! The simulator's [`nfsproto::NfsReply`] deliberately elides reply
//! attributes — it transfers *time*, not content. A real OS client will
//! not accept that: READ3res carries `post_op_attr` and actual data
//! bytes, WRITE3res carries `wcc_data`, LOOKUP3res carries two attribute
//! blocks. This module is the endpoint's outbound encoding layer (full
//! RFC shapes, zero-filled data payloads) plus the matching client-side
//! decoders used by `nfsd-client` and the differential harness.
//!
//! Call argument shapes need no second implementation: the simulator's
//! `NfsCall` encodings are wire-compatible with RFC 1813 call args (the
//! WRITE payload is declared by length; [`nfsproto::NfsCall::decode_args`]
//! skips any carried bytes), so the endpoint decodes real calls with the
//! shared codec.

use nfsproto::{
    CallHeader, FileHandle, ReplyHeader, StableHow, XdrDecoder, XdrEncoder, XdrError, AUTH_UNIX,
};

/// The MOUNT program number.
pub const MOUNT_PROGRAM: u32 = 100_005;
/// MOUNT protocol version served (v3, paired with NFSv3).
pub const MOUNT_VERSION: u32 = 3;
/// MOUNTPROC3_NULL.
pub const MOUNTPROC_NULL: u32 = 0;
/// MOUNTPROC3_MNT.
pub const MOUNTPROC_MNT: u32 = 1;
/// MOUNTPROC3_UMNT.
pub const MOUNTPROC_UMNT: u32 = 3;

/// NFSPROC3_NULL.
pub const NFSPROC_NULL: u32 = 0;
/// NFSPROC3_ACCESS.
pub const NFSPROC_ACCESS: u32 = 4;
/// NFSPROC3_FSSTAT.
pub const NFSPROC_FSSTAT: u32 = 18;
/// NFSPROC3_FSINFO.
pub const NFSPROC_FSINFO: u32 = 19;
/// NFSPROC3_PATHCONF.
pub const NFSPROC_PATHCONF: u32 = 20;

/// `MNT3ERR_NOENT`.
pub const MNT_ERR_NOENT: u32 = 2;
/// `MNT3ERR_ACCES`.
pub const MNT_ERR_ACCES: u32 = 13;

/// ACCESS3 permission bits granted on every export (read-oriented world:
/// READ | LOOKUP | MODIFY | EXTEND).
pub const ACCESS_ALL: u32 = 0x1 | 0x2 | 0x4 | 0x8;

/// What the endpoint knows about a file when building reply attributes.
#[derive(Debug, Clone, Copy)]
pub struct FileAttr {
    /// Inode / fileid.
    pub fileid: u64,
    /// Size in bytes.
    pub size: u64,
    /// File-system id.
    pub fsid: u64,
    /// Directory (the export root) vs regular file.
    pub is_dir: bool,
}

/// Encodes an RFC 1813 `fattr3` (84 bytes).
fn put_fattr3(e: &mut XdrEncoder, a: &FileAttr) {
    e.put_u32(if a.is_dir { 2 } else { 1 }) // type: NF3DIR / NF3REG
        .put_u32(if a.is_dir { 0o755 } else { 0o644 }) // mode
        .put_u32(1) // nlink
        .put_u32(0) // uid
        .put_u32(0) // gid
        .put_u64(a.size)
        .put_u64(a.size.next_multiple_of(4096)) // used
        .put_u32(0) // rdev major
        .put_u32(0) // rdev minor
        .put_u64(a.fsid)
        .put_u64(a.fileid)
        .put_u32(0)
        .put_u32(0) // atime
        .put_u32(0)
        .put_u32(0) // mtime
        .put_u32(0)
        .put_u32(0); // ctime
}

/// Encodes a `post_op_attr`.
fn put_post_op_attr(e: &mut XdrEncoder, a: Option<&FileAttr>) {
    match a {
        Some(a) => {
            e.put_bool(true);
            put_fattr3(e, a);
        }
        None => {
            e.put_bool(false);
        }
    }
}

/// Encodes a `wcc_data` (pre-op attrs elided, post-op as given).
fn put_wcc_data(e: &mut XdrEncoder, post: Option<&FileAttr>) {
    e.put_bool(false); // pre_op_attr: not recorded
    put_post_op_attr(e, post);
}

fn reply_encoder(xid: u32) -> XdrEncoder {
    let mut e = XdrEncoder::new();
    ReplyHeader::success(xid).encode(&mut e);
    e
}

/// A void reply (NFS NULL, MOUNT NULL, MOUNT UMNT).
pub fn void_res(xid: u32) -> Vec<u8> {
    reply_encoder(xid).finish()
}

/// An accepted-but-failed reply (PROG_UNAVAIL, PROC_UNAVAIL, GARBAGE_ARGS,
/// PROG_MISMATCH…) with no results body.
pub fn accept_error_res(xid: u32, stat: nfsproto::AcceptStat) -> Vec<u8> {
    let mut e = XdrEncoder::new();
    ReplyHeader { xid, stat }.encode(&mut e);
    e.finish()
}

/// GETATTR3res (always has attributes on success).
pub fn getattr_res(xid: u32, a: &FileAttr) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    put_fattr3(&mut e, a);
    e.finish()
}

/// GETATTR3resfail (status only — GETATTR carries no fail body).
pub fn getattr_res_err(xid: u32, status: u32) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(status);
    e.finish()
}

/// LOOKUP3resok: object handle + object attrs + directory attrs.
pub fn lookup_res_ok(xid: u32, fh: &FileHandle, obj: &FileAttr, dir: &FileAttr) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    fh.encode(&mut e);
    put_post_op_attr(&mut e, Some(obj));
    put_post_op_attr(&mut e, Some(dir));
    e.finish()
}

/// LOOKUP3resfail: status + directory post-op attrs.
pub fn lookup_res_err(xid: u32, status: u32, dir: Option<&FileAttr>) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(status);
    put_post_op_attr(&mut e, dir);
    e.finish()
}

/// ACCESS3resok.
pub fn access_res(xid: u32, a: &FileAttr, access: u32) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    put_post_op_attr(&mut e, Some(a));
    e.put_u32(access);
    e.finish()
}

/// READ3resok with a zero-filled data payload of `count` bytes — the
/// simulated world carries no file contents, but the wire shape (and
/// size) is the real one.
pub fn read_res_ok(xid: u32, a: &FileAttr, count: u32, eof: bool) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    put_post_op_attr(&mut e, Some(a));
    e.put_u32(count).put_bool(eof);
    e.put_u32(count); // opaque length
    let padded = (count as usize).next_multiple_of(4);
    let mut buf = e.finish();
    buf.resize(buf.len() + padded, 0);
    buf
}

/// READ3resfail.
pub fn read_res_err(xid: u32, status: u32, a: Option<&FileAttr>) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(status);
    put_post_op_attr(&mut e, a);
    e.finish()
}

/// WRITE3res (ok or fail — a failed write carries `wcc_data` too).
pub fn write_res(
    xid: u32,
    status: u32,
    a: Option<&FileAttr>,
    count: u32,
    committed: StableHow,
    verf: u64,
) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(status);
    put_wcc_data(&mut e, a);
    if status == 0 {
        e.put_u32(count).put_u32(committed.code());
        e.put_opaque_fixed(&verf.to_be_bytes());
    }
    e.finish()
}

/// COMMIT3res.
pub fn commit_res(xid: u32, status: u32, a: Option<&FileAttr>, verf: u64) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(status);
    put_wcc_data(&mut e, a);
    if status == 0 {
        e.put_opaque_fixed(&verf.to_be_bytes());
    }
    e.finish()
}

/// FSINFO3resok advertising the endpoint's transfer geometry.
pub fn fsinfo_res(xid: u32, a: &FileAttr, rsize: u32) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    put_post_op_attr(&mut e, Some(a));
    e.put_u32(rsize) // rtmax
        .put_u32(rsize) // rtpref
        .put_u32(512) // rtmult
        .put_u32(rsize) // wtmax
        .put_u32(rsize) // wtpref
        .put_u32(512) // wtmult
        .put_u32(rsize) // dtpref
        .put_u64(u64::MAX) // maxfilesize
        .put_u32(0)
        .put_u32(1) // time_delta: 1ns
        .put_u32(0x0008 | 0x0010); // FSF3_HOMOGENEOUS | FSF3_CANSETTIME
    e.finish()
}

/// FSSTAT3resok (static free-space picture; the simulated fs does not
/// track it, so we advertise a roomy constant).
pub fn fsstat_res(xid: u32, a: &FileAttr) -> Vec<u8> {
    const TB: u64 = 1 << 40;
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    put_post_op_attr(&mut e, Some(a));
    e.put_u64(TB) // tbytes
        .put_u64(TB / 2) // fbytes
        .put_u64(TB / 2) // abytes
        .put_u64(1 << 20) // tfiles
        .put_u64(1 << 19) // ffiles
        .put_u64(1 << 19) // afiles
        .put_u32(0); // invarsec
    e.finish()
}

/// PATHCONF3resok.
pub fn pathconf_res(xid: u32, a: &FileAttr) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0);
    put_post_op_attr(&mut e, Some(a));
    e.put_u32(32_000) // linkmax
        .put_u32(255) // name_max
        .put_bool(true) // no_trunc
        .put_bool(false) // chown_restricted
        .put_bool(true) // case_insensitive = false? (false: case matters)
        .put_bool(true); // case_preserving
    e.finish()
}

/// MOUNTPROC3_MNT success: file handle + auth flavor list.
pub fn mnt_res_ok(xid: u32, root: &FileHandle) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(0); // MNT3_OK
    root.encode(&mut e); // fhandle3: variable opaque
    e.put_u32(1).put_u32(AUTH_UNIX); // one supported flavor
    e.finish()
}

/// MOUNTPROC3_MNT failure.
pub fn mnt_res_err(xid: u32, status: u32) -> Vec<u8> {
    let mut e = reply_encoder(xid);
    e.put_u32(status);
    e.finish()
}

// ---------------------------------------------------------------------
// Client-side encode/decode (nfsd-client and the differential harness).
// ---------------------------------------------------------------------

/// Attributes as a client sees them in a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAttr {
    /// Inode / fileid.
    pub fileid: u64,
    /// Size in bytes.
    pub size: u64,
}

fn get_fattr3(d: &mut XdrDecoder<'_>) -> Result<DecodedAttr, XdrError> {
    let _ftype = d.get_u32()?;
    let _mode = d.get_u32()?;
    let _nlink = d.get_u32()?;
    let _uid = d.get_u32()?;
    let _gid = d.get_u32()?;
    let size = d.get_u64()?;
    let _used = d.get_u64()?;
    let _rdev = (d.get_u32()?, d.get_u32()?);
    let _fsid = d.get_u64()?;
    let fileid = d.get_u64()?;
    for _ in 0..6 {
        let _t = d.get_u32()?; // atime/mtime/ctime
    }
    Ok(DecodedAttr { fileid, size })
}

fn get_post_op_attr(d: &mut XdrDecoder<'_>) -> Result<Option<DecodedAttr>, XdrError> {
    if d.get_bool()? {
        Ok(Some(get_fattr3(d)?))
    } else {
        Ok(None)
    }
}

fn get_wcc_data(d: &mut XdrDecoder<'_>) -> Result<Option<DecodedAttr>, XdrError> {
    if d.get_bool()? {
        // pre_op_attr present: size(u64) + mtime + ctime.
        let _sz = d.get_u64()?;
        for _ in 0..4 {
            let _t = d.get_u32()?;
        }
    }
    get_post_op_attr(d)
}

/// Encodes a MOUNTPROC3_MNT call for `dirpath`.
pub fn encode_mnt_call(xid: u32, dirpath: &str) -> Vec<u8> {
    let mut e = XdrEncoder::new();
    CallHeader {
        xid,
        prog: MOUNT_PROGRAM,
        vers: MOUNT_VERSION,
        proc_num: MOUNTPROC_MNT,
    }
    .encode(&mut e);
    e.put_string(dirpath);
    e.finish()
}

/// Encodes a MOUNT/NFS NULL call.
pub fn encode_null_call(xid: u32, prog: u32, vers: u32) -> Vec<u8> {
    let mut e = XdrEncoder::new();
    CallHeader {
        xid,
        prog,
        vers,
        proc_num: 0,
    }
    .encode(&mut e);
    e.finish()
}

/// Encodes an NFSPROC3_ACCESS call.
pub fn encode_access_call(xid: u32, fh: &FileHandle, access: u32) -> Vec<u8> {
    let mut e = XdrEncoder::new();
    CallHeader {
        xid,
        prog: nfsproto::NFS_PROGRAM,
        vers: nfsproto::NFS_VERSION,
        proc_num: NFSPROC_ACCESS,
    }
    .encode(&mut e);
    fh.encode(&mut e);
    e.put_u32(access);
    e.finish()
}

/// Encodes an FSINFO/FSSTAT/PATHCONF call (they all take one handle).
pub fn encode_fh_call(xid: u32, proc_num: u32, fh: &FileHandle) -> Vec<u8> {
    let mut e = XdrEncoder::new();
    CallHeader {
        xid,
        prog: nfsproto::NFS_PROGRAM,
        vers: nfsproto::NFS_VERSION,
        proc_num,
    }
    .encode(&mut e);
    fh.encode(&mut e);
    e.finish()
}

/// Encodes a full RFC 1813 WRITE3args with a real (zero-filled) payload —
/// what an OS client sends, as opposed to the simulator's length-only
/// form. The endpoint must accept both.
pub fn encode_write_call(
    xid: u32,
    fh: &FileHandle,
    offset: u64,
    count: u32,
    stable: StableHow,
) -> Vec<u8> {
    let mut e = XdrEncoder::new();
    CallHeader {
        xid,
        prog: nfsproto::NFS_PROGRAM,
        vers: nfsproto::NFS_VERSION,
        proc_num: 7,
    }
    .encode(&mut e);
    fh.encode(&mut e);
    e.put_u64(offset).put_u32(count).put_u32(stable.code());
    e.put_u32(count);
    let padded = (count as usize).next_multiple_of(4);
    let mut buf = e.finish();
    buf.resize(buf.len() + padded, 0);
    buf
}

/// Decodes a MOUNTPROC3_MNT reply, returning the root handle.
pub fn decode_mnt_reply(buf: &[u8]) -> Result<(u32, FileHandle), XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    let status = d.get_u32()?;
    if status != 0 {
        return Err(XdrError::BadEnum {
            what: "mountstat3",
            value: status,
        });
    }
    let fh = FileHandle::decode(&mut d)?;
    Ok((hdr.xid, fh))
}

/// Decodes a GETATTR3res.
pub fn decode_getattr_reply(buf: &[u8]) -> Result<(u32, DecodedAttr), XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    nfs_ok(&mut d)?;
    Ok((hdr.xid, get_fattr3(&mut d)?))
}

/// Decodes a LOOKUP3res, returning the object handle and attributes.
pub fn decode_lookup_reply(buf: &[u8]) -> Result<(u32, FileHandle, Option<DecodedAttr>), XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    nfs_ok(&mut d)?;
    let fh = FileHandle::decode(&mut d)?;
    let obj = get_post_op_attr(&mut d)?;
    let _dir = get_post_op_attr(&mut d)?;
    Ok((hdr.xid, fh, obj))
}

/// Decodes an ACCESS3res, returning the granted bits.
pub fn decode_access_reply(buf: &[u8]) -> Result<(u32, u32), XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    nfs_ok(&mut d)?;
    let _attr = get_post_op_attr(&mut d)?;
    Ok((hdr.xid, d.get_u32()?))
}

/// Decoded READ3res.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReply {
    /// Echoed transaction id.
    pub xid: u32,
    /// `nfsstat3` (0 = ok).
    pub status: u32,
    /// Bytes returned.
    pub count: u32,
    /// EOF flag.
    pub eof: bool,
}

/// Decodes a READ3res (data bytes are length-checked, then discarded).
pub fn decode_read_reply(buf: &[u8]) -> Result<ReadReply, XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    let status = d.get_u32()?;
    let _attr = get_post_op_attr(&mut d)?;
    if status != 0 {
        return Ok(ReadReply {
            xid: hdr.xid,
            status,
            count: 0,
            eof: false,
        });
    }
    let count = d.get_u32()?;
    let eof = d.get_bool()?;
    let data = d.get_opaque()?;
    if data.len() != count as usize {
        return Err(XdrError::BadLength(count));
    }
    Ok(ReadReply {
        xid: hdr.xid,
        status,
        count,
        eof,
    })
}

/// Decoded WRITE3res.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReply {
    /// Echoed transaction id.
    pub xid: u32,
    /// `nfsstat3` (0 = ok).
    pub status: u32,
    /// Bytes accepted.
    pub count: u32,
    /// Stability achieved.
    pub committed: StableHow,
    /// Write verifier.
    pub verf: u64,
}

/// Decodes a WRITE3res.
pub fn decode_write_reply(buf: &[u8]) -> Result<WriteReply, XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    let status = d.get_u32()?;
    let _wcc = get_wcc_data(&mut d)?;
    if status != 0 {
        return Ok(WriteReply {
            xid: hdr.xid,
            status,
            count: 0,
            committed: StableHow::FileSync,
            verf: 0,
        });
    }
    let count = d.get_u32()?;
    let code = d.get_u32()?;
    let committed = StableHow::from_code(code).ok_or(XdrError::BadEnum {
        what: "stable_how (committed)",
        value: code,
    })?;
    let verf_bytes = d.get_opaque_fixed(8)?;
    let verf = u64::from_be_bytes(verf_bytes.try_into().expect("8 bytes"));
    Ok(WriteReply {
        xid: hdr.xid,
        status,
        count,
        committed,
        verf,
    })
}

/// Decodes a COMMIT3res, returning `(xid, status, verf)`.
pub fn decode_commit_reply(buf: &[u8]) -> Result<(u32, u32, u64), XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    let status = d.get_u32()?;
    let _wcc = get_wcc_data(&mut d)?;
    if status != 0 {
        return Ok((hdr.xid, status, 0));
    }
    let verf_bytes = d.get_opaque_fixed(8)?;
    let verf = u64::from_be_bytes(verf_bytes.try_into().expect("8 bytes"));
    Ok((hdr.xid, status, verf))
}

/// Decodes an FSINFO3res, returning `(xid, rtmax)`.
pub fn decode_fsinfo_reply(buf: &[u8]) -> Result<(u32, u32), XdrError> {
    let mut d = XdrDecoder::new(buf);
    let hdr = ReplyHeader::decode(&mut d)?;
    expect_success(&hdr)?;
    nfs_ok(&mut d)?;
    let _attr = get_post_op_attr(&mut d)?;
    Ok((hdr.xid, d.get_u32()?))
}

fn expect_success(hdr: &ReplyHeader) -> Result<(), XdrError> {
    if hdr.stat != nfsproto::AcceptStat::Success {
        return Err(XdrError::BadEnum {
            what: "accept_stat (expected SUCCESS)",
            value: hdr.stat.code(),
        });
    }
    Ok(())
}

fn nfs_ok(d: &mut XdrDecoder<'_>) -> Result<(), XdrError> {
    let status = d.get_u32()?;
    if status != 0 {
        return Err(XdrError::BadEnum {
            what: "nfsstat3",
            value: status,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh() -> FileHandle {
        FileHandle {
            fsid: 1,
            ino: 42,
            generation: 1,
        }
    }

    fn attr() -> FileAttr {
        FileAttr {
            fileid: 42,
            size: 1 << 20,
            fsid: 1,
            is_dir: false,
        }
    }

    #[test]
    fn fattr3_is_84_bytes() {
        let mut e = XdrEncoder::new();
        put_fattr3(&mut e, &attr());
        assert_eq!(e.len(), 84);
    }

    #[test]
    fn read_reply_roundtrip_with_payload() {
        for count in [0u32, 1, 5, 8192] {
            let buf = read_res_ok(9, &attr(), count, count == 0);
            assert_eq!(buf.len() % 4, 0, "word aligned");
            let r = decode_read_reply(&buf).unwrap();
            assert_eq!(
                r,
                ReadReply {
                    xid: 9,
                    status: 0,
                    count,
                    eof: count == 0
                }
            );
        }
    }

    #[test]
    fn write_and_commit_replies_roundtrip() {
        let buf = write_res(3, 0, Some(&attr()), 8192, StableHow::Unstable, 0xfeed);
        let w = decode_write_reply(&buf).unwrap();
        assert_eq!(
            (w.xid, w.count, w.committed, w.verf),
            (3, 8192, StableHow::Unstable, 0xfeed)
        );
        let buf = commit_res(4, 0, Some(&attr()), 0xbeef);
        assert_eq!(decode_commit_reply(&buf).unwrap(), (4, 0, 0xbeef));
        // Error forms decode too.
        let buf = write_res(5, 5, None, 0, StableHow::FileSync, 0);
        assert_eq!(decode_write_reply(&buf).unwrap().status, 5);
    }

    #[test]
    fn mount_reply_roundtrip() {
        let buf = mnt_res_ok(1, &fh());
        let (xid, got) = decode_mnt_reply(&buf).unwrap();
        assert_eq!((xid, got), (1, fh()));
        assert!(decode_mnt_reply(&mnt_res_err(2, MNT_ERR_NOENT)).is_err());
    }

    #[test]
    fn lookup_getattr_access_fsinfo_roundtrip() {
        let buf = lookup_res_ok(7, &fh(), &attr(), &attr());
        let (xid, got, obj) = decode_lookup_reply(&buf).unwrap();
        assert_eq!((xid, got), (7, fh()));
        assert_eq!(obj.unwrap().size, 1 << 20);
        let (_, a) = decode_getattr_reply(&getattr_res(8, &attr())).unwrap();
        assert_eq!(
            a,
            DecodedAttr {
                fileid: 42,
                size: 1 << 20
            }
        );
        let (_, bits) = decode_access_reply(&access_res(9, &attr(), ACCESS_ALL)).unwrap();
        assert_eq!(bits, ACCESS_ALL);
        let (_, rtmax) = decode_fsinfo_reply(&fsinfo_res(10, &attr(), 8192)).unwrap();
        assert_eq!(rtmax, 8192);
    }

    #[test]
    fn real_write_call_decodes_with_shared_codec() {
        // The full WRITE3args (payload bytes included) must decode with
        // the same codec the simulator uses.
        let buf = encode_write_call(6, &fh(), 8192, 4097, StableHow::Unstable);
        let (xid, call) = nfsproto::NfsCall::decode(&buf).unwrap();
        assert_eq!(xid, 6);
        assert_eq!(
            call,
            nfsproto::NfsCall::Write {
                fh: fh(),
                offset: 8192,
                count: 4097,
                stable: StableHow::Unstable
            }
        );
    }
}
