//! The sim-vs-real differential harness.
//!
//! The claim the endpoint makes is that putting a real TCP socket in
//! front of the simulated server changes *when* things happen but not
//! *what* happens: the `nfsheur` heuristic table, the duplicate request
//! cache, and the write-gathering pool see the same operation stream and
//! keep the same books. This module checks that claim: it replays the
//! same seed-derived trace (a) through a fresh world on the pure virtual
//! clock and (b) against a live endpoint over real sockets, then diffs
//! the two servers' books.
//!
//! Which counters must match exactly and which get tolerance is the
//! interesting part:
//!
//! * **Order-driven** counters — calls received, replies, heuristic
//!   hits/misses/ejections, UNSTABLE writes stashed, COMMITs, dirty
//!   blocks — depend only on the operation *sequence*, which a
//!   single-connection closed-loop replay reproduces exactly. These must
//!   be equal.
//! * **Time-driven** counters — gather flushes — depend on how many
//!   gather windows expire before the next write to the same file
//!   arrives. Wall-clock jitter can merge or split adjacent gathers, so
//!   flushes get a documented tolerance (they can differ, but the total
//!   *blocks* flushed cannot, since every stashed block is flushed
//!   exactly once by quiescence).

use nfsproto::StableHow;
use nfssim::{NfsWorld, ServerStats};
use nfstrace::{TraceOp, TraceRecord};
use simcore::{SimDuration, SimTime};

/// The heuristic-and-write-path books the harness compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeurBooks {
    /// READ calls accepted.
    pub reads: u64,
    /// Non-READ calls accepted.
    pub other_calls: u64,
    /// RPC replies sent.
    pub replies: u64,
    /// `nfsheur` probe hits.
    pub heur_hits: u64,
    /// `nfsheur` probe misses.
    pub heur_misses: u64,
    /// `nfsheur` entries ejected.
    pub heur_ejections: u64,
    /// UNSTABLE writes stashed in the dirty pool.
    pub unstable_writes: u64,
    /// COMMIT calls.
    pub commits: u64,
    /// Blocks that entered the dirty pool.
    pub dirty_blocks_stashed: u64,
    /// Dirty-pool flushes submitted (time-driven; tolerance applies).
    pub gather_flushes: u64,
}

impl HeurBooks {
    /// Extracts the compared books from full server stats.
    pub fn from_stats(s: &ServerStats) -> Self {
        HeurBooks {
            reads: s.reads,
            other_calls: s.other_calls,
            replies: s.replies,
            heur_hits: s.heur_hits,
            heur_misses: s.heur_misses,
            heur_ejections: s.heur_ejections,
            unstable_writes: s.unstable_writes,
            commits: s.commits,
            dirty_blocks_stashed: s.dirty_blocks_stashed,
            gather_flushes: s.gather_flushes,
        }
    }
}

/// One compared counter in a [`DiffReport`].
#[derive(Debug, Clone, Copy)]
pub struct DiffLine {
    /// Counter name.
    pub name: &'static str,
    /// Value from the pure-virtual replay.
    pub sim: u64,
    /// Value from the real endpoint.
    pub real: u64,
    /// Whether this counter is allowed to drift (time-driven).
    pub tolerated: bool,
}

impl DiffLine {
    /// Whether this line passes: exact for order-driven counters,
    /// any value for tolerated ones.
    pub fn ok(&self) -> bool {
        self.tolerated || self.sim == self.real
    }
}

/// Result of diffing the two books.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Per-counter lines, order-driven first.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Diffs two books.
    pub fn diff(sim: &HeurBooks, real: &HeurBooks) -> Self {
        let line = |name, s, r, tolerated| DiffLine {
            name,
            sim: s,
            real: r,
            tolerated,
        };
        DiffReport {
            lines: vec![
                line("reads", sim.reads, real.reads, false),
                line("other_calls", sim.other_calls, real.other_calls, false),
                line("replies", sim.replies, real.replies, false),
                line("heur_hits", sim.heur_hits, real.heur_hits, false),
                line("heur_misses", sim.heur_misses, real.heur_misses, false),
                line(
                    "heur_ejections",
                    sim.heur_ejections,
                    real.heur_ejections,
                    false,
                ),
                line(
                    "unstable_writes",
                    sim.unstable_writes,
                    real.unstable_writes,
                    false,
                ),
                line("commits", sim.commits, real.commits, false),
                line(
                    "dirty_blocks_stashed",
                    sim.dirty_blocks_stashed,
                    real.dirty_blocks_stashed,
                    false,
                ),
                line(
                    "gather_flushes",
                    sim.gather_flushes,
                    real.gather_flushes,
                    true,
                ),
            ],
        }
    }

    /// True when every order-driven counter matches exactly.
    pub fn passed(&self) -> bool {
        self.lines.iter().all(DiffLine::ok)
    }

    /// Renders an aligned terminal table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "counter                 sim          real    verdict\n\
             -------------------- -------- -------- ----------\n",
        );
        for l in &self.lines {
            let verdict = if l.sim == l.real {
                "match"
            } else if l.tolerated {
                "tolerated"
            } else {
                "MISMATCH"
            };
            out.push_str(&format!(
                "{:<20} {:>8} {:>8}    {}\n",
                l.name, l.sim, l.real, verdict
            ));
        }
        out
    }
}

/// Replays `trace` through a fresh world on the pure virtual clock using
/// the same external-ingress path the endpoint uses, mirroring the
/// client's closed-loop order: each call is injected when the previous
/// reply has been produced, so the server sees the identical sequence the
/// socket replay produces. Returns the settled books.
///
/// `world` must be fresh (same seed and config as the endpoint's) with
/// export files for connection 0 already created by the caller, handed
/// over in `exports` in `f{i}` order.
pub fn sim_replay(
    world: &mut NfsWorld,
    exports: &[nfsproto::FileHandle],
    trace: &[TraceRecord],
    stable: StableHow,
) -> HeurBooks {
    let mut now = SimTime::ZERO;
    let mut xid = 0u32;
    for rec in trace {
        xid = xid.wrapping_add(1).max(1);
        let fh = exports[rec.fh.saturating_sub(0x1000) as usize];
        let call = match rec.op {
            TraceOp::Read => nfsproto::NfsCall::Read {
                fh,
                offset: rec.offset,
                count: rec.len,
            },
            TraceOp::Write => nfsproto::NfsCall::Write {
                fh,
                offset: rec.offset,
                count: rec.len,
                stable,
            },
            TraceOp::Getattr => nfsproto::NfsCall::Getattr { fh },
            TraceOp::Lookup => nfsproto::NfsCall::Lookup {
                dir: fh,
                name: "x".repeat(rec.len.max(1) as usize),
            },
            TraceOp::Readdir => nfsproto::NfsCall::Readdir {
                dir: fh,
                cookie: rec.offset,
                cookieverf: 0,
                count: rec.len.max(1),
            },
        };
        world.external_call(now, 0, xid, call);
        // Closed loop: run the world until the reply for this call lands.
        loop {
            let replies = world.take_external_replies();
            if !replies.is_empty() {
                debug_assert_eq!(replies.len(), 1);
                now = replies[0].at;
                break;
            }
            match world.next_event() {
                Some(t) => {
                    world.advance(t);
                }
                None => panic!("world quiesced without replying to xid {xid}"),
            }
        }
    }
    // Quiesce: let gather windows expire and flushes finish.
    settle(world, now);
    HeurBooks::from_stats(&world.server_stats())
}

/// Runs the world until no event remains within `horizon` of the last.
pub fn settle(world: &mut NfsWorld, from: SimTime) {
    let horizon = SimDuration::from_secs_f64(120.0);
    let mut t = from;
    while let Some(next) = world.next_event() {
        if next > t + horizon {
            break;
        }
        world.advance(next);
        t = next;
    }
    world.take_external_replies();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::build_world;
    use nfssim::WorldConfig;
    use nfstrace::synth::{self, SequentialSpec};
    use simcore::SimRng;

    fn trace(seed: u64) -> Vec<TraceRecord> {
        let spec = SequentialSpec {
            files: 4,
            blocks_per_file: 24,
            ..SequentialSpec::default()
        };
        let mut rng = SimRng::new(seed);
        synth::sequential(spec, &mut rng).records
    }

    fn replay_books(seed: u64) -> HeurBooks {
        let mut world = build_world(WorldConfig::default(), seed);
        let ext = world.register_external_client();
        let exports: Vec<_> = (0..4)
            .map(|_| world.create_export_file(ext, 24 * 8_192))
            .collect();
        sim_replay(&mut world, &exports, &trace(seed), StableHow::FileSync)
    }

    #[test]
    fn sim_replay_is_deterministic() {
        let a = replay_books(11);
        let b = replay_books(11);
        assert_eq!(a, b);
        assert_eq!(a.reads + a.other_calls, a.replies);
        assert!(a.heur_hits > 0, "sequential trace must train the heuristic");
    }

    #[test]
    fn diff_report_flags_order_driven_mismatches_only() {
        let a = replay_books(11);
        let mut b = a;
        b.gather_flushes += 3; // time-driven: tolerated
        assert!(DiffReport::diff(&a, &b).passed());
        b.heur_hits += 1; // order-driven: must fail
        let report = DiffReport::diff(&a, &b);
        assert!(!report.passed());
        assert!(report.render().contains("MISMATCH"));
    }
}
