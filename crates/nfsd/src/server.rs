//! The real TCP front of the endpoint: a nonblocking listener, one
//! [`RecordReader`] per connection, and a wall-clock pump loop.
//!
//! std-only by design (no async runtime, no polling crate): the loop
//! accepts, reads, and writes with nonblocking sockets, pumps the
//! [`Endpoint`] up to "now" on every lap, and sleeps only as long as the
//! world's next deadline allows — so gather-window expiries and disk
//! completions fire on real wall-clock schedule.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nfsproto::{frame_record, RecordReader};
use simcore::SimTime;

use crate::clock::Clock;
use crate::endpoint::Endpoint;

/// How long the loop sleeps when the world has nothing scheduled.
const IDLE_SLEEP: Duration = Duration::from_micros(200);
/// Per-lap read buffer.
const READ_CHUNK: usize = 64 * 1024;

struct ConnIo {
    stream: TcpStream,
    reader: RecordReader,
    /// Encoded records waiting for the socket to accept them.
    outbox: VecDeque<Vec<u8>>,
    /// Bytes of the front outbox record already written.
    written: usize,
    dead: bool,
}

impl ConnIo {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(ConnIo {
            stream,
            reader: RecordReader::new(),
            outbox: VecDeque::new(),
            written: 0,
            dead: false,
        })
    }

    /// Drains the outbox as far as the socket allows.
    fn flush(&mut self) {
        while let Some(front) = self.outbox.front() {
            match self.stream.write(&front[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.written += n;
                    if self.written == front.len() {
                        self.outbox.pop_front();
                        self.written = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// Serves `endpoint` on `listener` until `stop` goes true, returning the
/// endpoint (with its final books) when the loop exits.
///
/// Every accepted connection becomes one external client of the world.
/// Connections that hang up or violate record framing are dropped; the
/// endpoint keeps running.
pub fn serve(
    listener: TcpListener,
    mut endpoint: Endpoint,
    clock: impl Clock,
    stop: Arc<AtomicBool>,
) -> Endpoint {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let mut conns: Vec<Option<ConnIo>> = Vec::new();

    while !stop.load(Ordering::Relaxed) {
        let mut progressed = false;

        // Accept.
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => match ConnIo::new(stream) {
                    Ok(io) => {
                        let id = endpoint.connect();
                        debug_assert_eq!(id, conns.len());
                        conns.push(Some(io));
                        progressed = true;
                    }
                    Err(_) => continue,
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Read and decode.
        let now = clock.now();
        let mut buf = [0u8; READ_CHUNK];
        for (id, slot) in conns.iter_mut().enumerate() {
            let Some(io) = slot else { continue };
            loop {
                match io.stream.read(&mut buf) {
                    Ok(0) => {
                        io.dead = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        if io.reader.push(&buf[..n]).is_err() {
                            io.dead = true; // framing violation: drop peer
                            break;
                        }
                        while let Some(record) = io.reader.next_record() {
                            for reply in endpoint.handle_record(now, id, &record) {
                                io.outbox.push_back(frame(&reply));
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        io.dead = true;
                        break;
                    }
                }
            }
        }

        // Pump the world to "now" and route finished replies.
        for (conn, reply) in endpoint.pump(clock.now()) {
            if let Some(io) = conns.get_mut(conn).and_then(Option::as_mut) {
                io.outbox.push_back(frame(&reply));
                progressed = true;
            }
        }

        // Write, then reap the dead.
        for slot in conns.iter_mut() {
            if let Some(io) = slot {
                io.flush();
                if io.dead {
                    *slot = None; // keep indices stable: conn id == ext id
                }
            }
        }

        if !progressed {
            // Sleep until the world's next deadline, capped at the idle
            // tick so new connections and stop flags stay responsive.
            let sleep = match endpoint.next_deadline() {
                Some(t) => {
                    let now = clock.now();
                    if t <= now {
                        continue;
                    }
                    Duration::from_nanos(t.as_nanos() - now.as_nanos()).min(IDLE_SLEEP)
                }
                None => IDLE_SLEEP,
            };
            std::thread::sleep(sleep);
        }
    }

    // Final pump so books are settled when the caller reads them.
    endpoint.pump(clock.now().max(SimTime::from_nanos(1)));
    endpoint
}

/// Binds a listener on `addr` (port 0 = ephemeral), returning it with the
/// actual bound address.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

fn frame(reply: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(reply.len() + 4);
    frame_record(reply, &mut out);
    out
}
