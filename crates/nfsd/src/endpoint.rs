//! The protocol brain of the real-socket server: decodes ONC RPC records,
//! answers MOUNT and NFS metadata immediately, and routes data-path calls
//! (GETATTR / READ / WRITE / COMMIT) through the simulated server stack.
//!
//! [`Endpoint`] is transport-agnostic: `server.rs` feeds it reassembled
//! records off real TCP connections and a wall clock, the loopback tests
//! feed it the same records with a [`crate::ManualClock`], and both get
//! byte-identical replies. Each TCP connection maps to one *external
//! client* of the [`NfsWorld`] — it shares the `nfsd` pool, duplicate
//! request cache, `nfsheur` table, write-gathering dirty pool, and disk
//! with any simulated traffic, which is exactly what makes the
//! sim-vs-real differential harness meaningful.

use std::collections::HashMap;

use ffs::{FileSystem, FsConfig};
use iosched::SchedulerKind;
use nfsproto::{AcceptStat, CallHeader, FileHandle, NfsCall, NfsReply, NfsStatus, XdrDecoder};
use nfssim::{NfsWorld, WorldConfig};
use simcore::{SimRng, SimTime};

use crate::wire;

/// Inode sentinel for the export root directory. The directory is
/// synthetic — the simulated file system has no namespace — so the
/// endpoint answers for it directly and never routes its handle into the
/// world.
pub const ROOT_INO: u64 = u64::MAX;

/// The export path the MOUNT program answers for.
pub const EXPORT_PATH: &str = "/export";

/// Shape of the export every connection sees.
#[derive(Debug, Clone, Copy)]
pub struct ExportSpec {
    /// Files created per connection, named `f0`, `f1`, ….
    pub files: usize,
    /// Size of each file in bytes.
    pub file_size: u64,
}

impl Default for ExportSpec {
    fn default() -> Self {
        ExportSpec {
            files: 8,
            file_size: 256 * 8_192,
        }
    }
}

/// Endpoint-level counters (RPC layer, above the world's own books).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Well-formed calls received.
    pub calls: u64,
    /// Replies answered at the endpoint without touching the world
    /// (MOUNT, NULL, ACCESS, LOOKUP, FSINFO, FSSTAT, PATHCONF).
    pub immediate_replies: u64,
    /// Calls routed into the simulated server stack.
    pub routed_calls: u64,
    /// RPC-level error replies sent (prog/proc unavailable, garbage args).
    pub rpc_errors: u64,
}

struct Conn {
    /// Export files for this connection, index `i` answering to name `f{i}`.
    exports: Vec<FileHandle>,
    /// Root directory handle handed out by MOUNT.
    root: FileHandle,
    /// Calls in flight in the world, keyed by xid, so the pump can build
    /// full RFC replies (attributes need the target handle).
    pending: HashMap<u32, FileHandle>,
}

/// Builds the standard benchmarking world the endpoint serves: the
/// paper's WD WD200BB IDE disk, the second quarter partition, an elevator
/// scheduler, and the given [`WorldConfig`]. The differential harness
/// calls this twice with the same seed — once under the endpoint, once
/// for the pure-virtual replay — so both sides see the same disk layout.
pub fn build_world(config: WorldConfig, seed: u64) -> NfsWorld {
    let disk = diskmodel::DriveModel::WdWd200bbIde.build(SimRng::new(seed));
    let part = diskmodel::PartitionTable::quarters(disk.geometry()).get(1);
    let fs = FileSystem::format(disk, part, SchedulerKind::Elevator, FsConfig::default());
    NfsWorld::new(config, fs, seed)
}

/// The record-in, records-out NFSv3 endpoint over a simulated world.
pub struct Endpoint {
    world: NfsWorld,
    spec: ExportSpec,
    conns: Vec<Conn>,
    stats: EndpointStats,
}

impl Endpoint {
    /// Wraps a world. The world may already carry simulated clients;
    /// external connections ride alongside them.
    pub fn new(world: NfsWorld, spec: ExportSpec) -> Self {
        Endpoint {
            world,
            spec,
            conns: Vec::new(),
            stats: EndpointStats::default(),
        }
    }

    /// Registers a new TCP connection, creating its export files.
    /// Returns the connection id used by [`Endpoint::handle_record`].
    pub fn connect(&mut self) -> usize {
        let ext = self.world.register_external_client();
        debug_assert_eq!(ext, self.conns.len());
        let exports: Vec<FileHandle> = (0..self.spec.files)
            .map(|_| self.world.create_export_file(ext, self.spec.file_size))
            .collect();
        let root = FileHandle {
            fsid: exports.first().map_or(0, |fh| fh.fsid),
            ino: ROOT_INO,
            generation: 1,
        };
        self.conns.push(Conn {
            exports,
            root,
            pending: HashMap::new(),
        });
        ext
    }

    /// Handles one reassembled RPC record from connection `conn` arriving
    /// at `now`, returning any replies ready immediately. Replies for
    /// routed calls surface later from [`Endpoint::pump`].
    pub fn handle_record(&mut self, now: SimTime, conn: usize, record: &[u8]) -> Vec<Vec<u8>> {
        let mut d = XdrDecoder::new(record);
        let hdr = match CallHeader::decode(&mut d) {
            Ok(h) => h,
            Err(_) => {
                // Not even an RPC call header — nothing to address a
                // reply to. Drop the record; the framing layer already
                // guarantees it was a complete record, so this is a
                // protocol error by the peer.
                self.stats.rpc_errors += 1;
                return Vec::new();
            }
        };
        self.stats.calls += 1;
        match hdr.prog {
            wire::MOUNT_PROGRAM => vec![self.handle_mount(conn, &hdr, &mut d)],
            nfsproto::NFS_PROGRAM => self
                .handle_nfs(now, conn, &hdr, &mut d)
                .map_or_else(Vec::new, |r| vec![r]),
            _ => {
                self.stats.rpc_errors += 1;
                vec![wire::accept_error_res(hdr.xid, AcceptStat::ProgUnavail)]
            }
        }
    }

    fn handle_mount(&mut self, conn: usize, hdr: &CallHeader, d: &mut XdrDecoder<'_>) -> Vec<u8> {
        if hdr.vers != wire::MOUNT_VERSION {
            self.stats.rpc_errors += 1;
            return wire::accept_error_res(
                hdr.xid,
                AcceptStat::ProgMismatch {
                    low: wire::MOUNT_VERSION,
                    high: wire::MOUNT_VERSION,
                },
            );
        }
        match hdr.proc_num {
            wire::MOUNTPROC_NULL | wire::MOUNTPROC_UMNT => {
                self.stats.immediate_replies += 1;
                wire::void_res(hdr.xid)
            }
            wire::MOUNTPROC_MNT => match d.get_string() {
                Ok(path) if path == EXPORT_PATH => {
                    self.stats.immediate_replies += 1;
                    wire::mnt_res_ok(hdr.xid, &self.conns[conn].root)
                }
                Ok(_) => {
                    self.stats.immediate_replies += 1;
                    wire::mnt_res_err(hdr.xid, wire::MNT_ERR_NOENT)
                }
                Err(_) => {
                    self.stats.rpc_errors += 1;
                    wire::accept_error_res(hdr.xid, AcceptStat::GarbageArgs)
                }
            },
            _ => {
                self.stats.rpc_errors += 1;
                wire::accept_error_res(hdr.xid, AcceptStat::ProcUnavail)
            }
        }
    }

    /// NFS program dispatch. `None` means the call was routed into the
    /// world and will reply via [`Endpoint::pump`].
    fn handle_nfs(
        &mut self,
        now: SimTime,
        conn: usize,
        hdr: &CallHeader,
        d: &mut XdrDecoder<'_>,
    ) -> Option<Vec<u8>> {
        if hdr.vers != nfsproto::NFS_VERSION {
            self.stats.rpc_errors += 1;
            return Some(wire::accept_error_res(
                hdr.xid,
                AcceptStat::ProgMismatch {
                    low: nfsproto::NFS_VERSION,
                    high: nfsproto::NFS_VERSION,
                },
            ));
        }
        match hdr.proc_num {
            wire::NFSPROC_NULL => {
                self.stats.immediate_replies += 1;
                Some(wire::void_res(hdr.xid))
            }
            wire::NFSPROC_ACCESS => {
                let (fh, bits) = match (FileHandle::decode(d), d.get_u32()) {
                    (Ok(fh), Ok(bits)) => (fh, bits),
                    _ => return Some(self.garbage(hdr.xid)),
                };
                self.stats.immediate_replies += 1;
                match self.attr_for(conn, &fh) {
                    Some(a) => Some(wire::access_res(hdr.xid, &a, bits & wire::ACCESS_ALL)),
                    None => Some(wire::read_res_err(hdr.xid, 70, None)), // same shape as ACCESS3resfail
                }
            }
            wire::NFSPROC_FSINFO | wire::NFSPROC_FSSTAT | wire::NFSPROC_PATHCONF => {
                let fh = match FileHandle::decode(d) {
                    Ok(fh) => fh,
                    Err(_) => return Some(self.garbage(hdr.xid)),
                };
                self.stats.immediate_replies += 1;
                let a = self
                    .attr_for(conn, &fh)
                    .unwrap_or_else(|| self.root_attr(conn));
                Some(match hdr.proc_num {
                    wire::NFSPROC_FSINFO => wire::fsinfo_res(hdr.xid, &a, 8_192),
                    wire::NFSPROC_FSSTAT => wire::fsstat_res(hdr.xid, &a),
                    _ => wire::pathconf_res(hdr.xid, &a),
                })
            }
            // Procedures the shared codec models.
            1 | 3 | 6 | 7 | 21 => {
                let proc_ = nfsproto::NfsProc::from_number(hdr.proc_num).expect("modelled proc");
                let call = match NfsCall::decode_args(proc_, d) {
                    Ok(c) => c,
                    Err(_) => return Some(self.garbage(hdr.xid)),
                };
                self.dispatch_call(now, conn, hdr.xid, call)
            }
            _ => {
                self.stats.rpc_errors += 1;
                Some(wire::accept_error_res(hdr.xid, AcceptStat::ProcUnavail))
            }
        }
    }

    fn dispatch_call(
        &mut self,
        now: SimTime,
        conn: usize,
        xid: u32,
        call: NfsCall,
    ) -> Option<Vec<u8>> {
        match call {
            // LOOKUP resolves against the synthetic export namespace —
            // answered here; the simulated world has no directories.
            NfsCall::Lookup { dir, name } => {
                self.stats.immediate_replies += 1;
                if dir.ino != ROOT_INO {
                    return Some(wire::lookup_res_err(xid, 20, None)); // NFS3ERR_NOTDIR
                }
                let idx = name
                    .strip_prefix('f')
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&i| i < self.conns[conn].exports.len());
                match idx {
                    Some(i) => {
                        let fh = self.conns[conn].exports[i];
                        let obj = self.attr_for(conn, &fh).unwrap_or(wire::FileAttr {
                            fileid: fh.ino,
                            size: 0,
                            fsid: u64::from(fh.fsid),
                            is_dir: false,
                        });
                        let dir_attr = self.root_attr(conn);
                        Some(wire::lookup_res_ok(xid, &fh, &obj, &dir_attr))
                    }
                    None => Some(wire::lookup_res_err(
                        xid,
                        2, // NFS3ERR_NOENT
                        Some(&self.root_attr(conn)),
                    )),
                }
            }
            // GETATTR on the synthetic root is also endpoint business.
            NfsCall::Getattr { fh } if fh.ino == ROOT_INO => {
                self.stats.immediate_replies += 1;
                Some(wire::getattr_res(xid, &self.root_attr(conn)))
            }
            // Everything else is the data path: into the world, sharing
            // nfsds, the heuristic table, and the disk.
            NfsCall::Getattr { fh }
            | NfsCall::Read { fh, .. }
            | NfsCall::Write { fh, .. }
            | NfsCall::Commit { fh, .. } => {
                self.stats.routed_calls += 1;
                self.conns[conn].pending.insert(xid, fh);
                self.world.external_call(now, conn, xid, call);
                None
            }
            // The export namespace is flat and resolved at the endpoint
            // (LOOKUP by name above); directory enumeration is not served
            // over the real socket. Real mounts list via the same error
            // they would get from a pre-READDIR server.
            NfsCall::Readdir { .. } | NfsCall::Readdirplus { .. } => {
                self.stats.rpc_errors += 1;
                Some(wire::accept_error_res(xid, AcceptStat::ProcUnavail))
            }
        }
    }

    /// Advances the world to `now` and drains finished external calls as
    /// `(connection, encoded reply)` pairs, in server completion order.
    pub fn pump(&mut self, now: SimTime) -> Vec<(usize, Vec<u8>)> {
        self.world.advance(now);
        let replies = self.world.take_external_replies();
        let mut out = Vec::with_capacity(replies.len());
        for r in replies {
            let fh = self.conns[r.ext].pending.remove(&r.xid);
            out.push((r.ext, self.encode_reply(r.ext, r.xid, fh, &r.reply)));
        }
        out
    }

    /// The next instant the world has work scheduled (disk completion,
    /// gather-window expiry). The socket loop sleeps no longer than this.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.world.next_event()
    }

    fn encode_reply(
        &self,
        conn: usize,
        xid: u32,
        fh: Option<FileHandle>,
        reply: &NfsReply,
    ) -> Vec<u8> {
        let attr = fh.and_then(|fh| self.attr_for(conn, &fh));
        match *reply {
            NfsReply::Getattr { status, attrs } => match (status, attrs) {
                (NfsStatus::Ok, Some(a)) => {
                    let full = wire::FileAttr {
                        fileid: a.fileid,
                        size: a.size,
                        fsid: fh.map_or(0, |fh| u64::from(fh.fsid)),
                        is_dir: false,
                    };
                    wire::getattr_res(xid, &full)
                }
                _ => wire::getattr_res_err(xid, status_code(status)),
            },
            NfsReply::Read { status, count, eof } => match (status, &attr) {
                (NfsStatus::Ok, Some(a)) => wire::read_res_ok(xid, a, count, eof),
                _ => wire::read_res_err(xid, status_code(status), attr.as_ref()),
            },
            NfsReply::Write {
                status,
                count,
                committed,
                verf,
            } => wire::write_res(
                xid,
                status_code(status),
                attr.as_ref(),
                count,
                committed,
                verf,
            ),
            NfsReply::Commit { status, verf } => {
                wire::commit_res(xid, status_code(status), attr.as_ref(), verf)
            }
            // The world never answers LOOKUP for external calls (the
            // endpoint resolves names), but encode it defensively.
            NfsReply::Lookup { status, fh: obj } => match obj {
                Some(obj) if status == NfsStatus::Ok => {
                    let a = self.attr_for(conn, &obj).unwrap_or(wire::FileAttr {
                        fileid: obj.ino,
                        size: 0,
                        fsid: u64::from(obj.fsid),
                        is_dir: false,
                    });
                    wire::lookup_res_ok(xid, &obj, &a, &self.root_attr(conn))
                }
                _ => wire::lookup_res_err(xid, status_code(status), None),
            },
            // Never produced for external calls (READDIR is refused at
            // dispatch), but encode defensively as the same refusal.
            NfsReply::Readdir { .. } => wire::accept_error_res(xid, AcceptStat::ProcUnavail),
        }
    }

    fn attr_for(&self, conn: usize, fh: &FileHandle) -> Option<wire::FileAttr> {
        if fh.ino == ROOT_INO {
            return Some(self.root_attr(conn));
        }
        let inode = self.world.fs().inode(fh.ino)?;
        Some(wire::FileAttr {
            fileid: fh.ino,
            size: inode.size,
            fsid: u64::from(fh.fsid),
            is_dir: false,
        })
    }

    fn root_attr(&self, conn: usize) -> wire::FileAttr {
        wire::FileAttr {
            fileid: ROOT_INO,
            size: 4_096,
            fsid: u64::from(self.conns[conn].root.fsid),
            is_dir: true,
        }
    }

    fn garbage(&mut self, xid: u32) -> Vec<u8> {
        self.stats.rpc_errors += 1;
        wire::accept_error_res(xid, AcceptStat::GarbageArgs)
    }

    /// Endpoint-level counters.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// The export files of a connection (what LOOKUP `f{i}` resolves to).
    pub fn exports(&self, conn: usize) -> &[FileHandle] {
        &self.conns[conn].exports
    }

    /// The world under the endpoint (heuristic books, server stats).
    pub fn world(&self) -> &NfsWorld {
        &self.world
    }

    /// Mutable world access (tests enable the server event log with it).
    pub fn world_mut(&mut self) -> &mut NfsWorld {
        &mut self.world
    }
}

fn status_code(s: NfsStatus) -> u32 {
    match s {
        NfsStatus::Ok => 0,
        NfsStatus::NoEnt => 2,
        NfsStatus::Io => 5,
        NfsStatus::Stale => 70,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsproto::StableHow;

    fn endpoint() -> Endpoint {
        Endpoint::new(
            build_world(WorldConfig::default(), 7),
            ExportSpec {
                files: 2,
                file_size: 64 * 8_192,
            },
        )
    }

    #[test]
    fn mount_lookup_read_through_records() {
        let mut ep = endpoint();
        let conn = ep.connect();
        // MNT.
        let rec = wire::encode_mnt_call(1, EXPORT_PATH);
        let replies = ep.handle_record(SimTime::ZERO, conn, &rec);
        let (_, root) = wire::decode_mnt_reply(&replies[0]).unwrap();
        assert_eq!(root.ino, ROOT_INO);
        // LOOKUP f1.
        let call = NfsCall::Lookup {
            dir: root,
            name: "f1".into(),
        };
        let replies = ep.handle_record(SimTime::ZERO, conn, &call.encode(2));
        let (_, fh, attr) = wire::decode_lookup_reply(&replies[0]).unwrap();
        assert_eq!(fh, ep.exports(conn)[1]);
        assert_eq!(attr.unwrap().size, 64 * 8_192);
        // READ routes into the world; the reply surfaces from pump().
        let call = NfsCall::Read {
            fh,
            offset: 0,
            count: 8_192,
        };
        assert!(ep
            .handle_record(SimTime::ZERO, conn, &call.encode(3))
            .is_empty());
        let out = ep.pump(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, conn);
        let r = wire::decode_read_reply(&out[0].1).unwrap();
        assert_eq!((r.xid, r.status, r.count), (3, 0, 8_192));
        assert_eq!(ep.world().server_stats().reads, 1);
    }

    #[test]
    fn unknown_program_and_proc_get_rpc_errors() {
        let mut ep = endpoint();
        let conn = ep.connect();
        let rec = wire::encode_null_call(5, 100_099, 1);
        let replies = ep.handle_record(SimTime::ZERO, conn, &rec);
        assert_eq!(replies.len(), 1);
        assert!(wire::decode_mnt_reply(&replies[0]).is_err());
        let rec = wire::encode_fh_call(6, 17, &ep.exports(conn)[0]); // READDIRPLUS-ish: unmodelled
        let replies = ep.handle_record(SimTime::ZERO, conn, &rec);
        assert_eq!(replies.len(), 1);
        assert_eq!(ep.stats().rpc_errors, 2);
    }

    #[test]
    fn unstable_write_then_commit_reuses_gather_machinery() {
        let mut ep = endpoint();
        let conn = ep.connect();
        let fh = ep.exports(conn)[0];
        let w = NfsCall::Write {
            fh,
            offset: 0,
            count: 8_192,
            stable: StableHow::Unstable,
        };
        ep.handle_record(SimTime::ZERO, conn, &w.encode(10));
        let out = ep.pump(SimTime::from_nanos(1_000_000_000));
        let w = wire::decode_write_reply(&out[0].1).unwrap();
        assert_eq!(w.committed, StableHow::Unstable);
        let c = NfsCall::Commit {
            fh,
            offset: 0,
            count: 0,
        };
        ep.handle_record(SimTime::from_nanos(1_000_000_000), conn, &c.encode(11));
        let out = ep.pump(SimTime::from_nanos(60_000_000_000));
        let (_, status, verf) = wire::decode_commit_reply(&out[0].1).unwrap();
        assert_eq!(status, 0);
        assert_eq!(verf, w.verf, "write and commit verifiers must match");
        let s = ep.world().server_stats();
        assert_eq!(s.unstable_writes, 1);
        assert_eq!(s.commits, 1);
        assert!(s.gather_flushes >= 1);
    }
}
