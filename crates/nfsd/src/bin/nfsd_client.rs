//! Mounts a running `nfsd` and replays a seed-derived trace, printing
//! per-op latency quantiles.
//!
//! ```text
//! nfsd_client --addr 127.0.0.1:PORT [--seed 42] [--files 8]
//!             [--file-blocks 256] [--unstable] [--paced]
//! ```

use nfsd::NfsClient;
use nfsproto::StableHow;
use nfstrace::synth::{self, SequentialSpec};
use simcore::SimRng;
use testbed::render_endpoint_line;

fn main() {
    let mut addr = None;
    let mut seed = 42u64;
    let mut files = 8u32;
    let mut file_blocks = 256u64;
    let mut unstable = false;
    let mut paced = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next(),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--files" => files = args.next().and_then(|v| v.parse().ok()).expect("--files N"),
            "--file-blocks" => {
                file_blocks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--file-blocks N")
            }
            "--unstable" => unstable = true,
            "--paced" => paced = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    let addr = addr.expect("--addr HOST:PORT is required");

    let spec = SequentialSpec {
        files,
        blocks_per_file: file_blocks,
        ..SequentialSpec::default()
    };
    let mut rng = SimRng::new(seed);
    let trace = synth::sequential(spec, &mut rng).records;

    let stable = if unstable {
        StableHow::Unstable
    } else {
        StableHow::FileSync
    };
    let mut client = NfsClient::connect(&addr).expect("connect");
    let stats = client.replay(&trace, stable, paced).expect("replay");

    println!(
        "replayed {} calls against {addr} ({} nfs errors)",
        stats.calls, stats.nfs_errors
    );
    println!("{}", render_endpoint_line("read", &stats.read));
    println!("{}", render_endpoint_line("write", &stats.write));
    println!("{}", render_endpoint_line("meta", &stats.meta));
}
