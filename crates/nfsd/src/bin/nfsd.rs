//! Serves the simulated NFSv3 world on a real TCP socket.
//!
//! ```text
//! nfsd [--addr 127.0.0.1:0] [--seed 42] [--files 8] [--file-blocks 256]
//!      [--unstable]
//! ```
//!
//! Prints the bound address on stdout (`listening on <addr>`) so a
//! driver can parse it, then serves until killed.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use nfsd::{bind, build_world, serve, Endpoint, ExportSpec, WallClock};
use nfsproto::StableHow;
use nfssim::WorldConfig;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut seed = 42u64;
    let mut files = 8usize;
    let mut file_blocks = 256u64;
    let mut unstable = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().expect("--addr ADDR"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--files" => files = args.next().and_then(|v| v.parse().ok()).expect("--files N"),
            "--file-blocks" => {
                file_blocks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--file-blocks N")
            }
            "--unstable" => unstable = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut config = WorldConfig::default();
    if unstable {
        config.stable_how = StableHow::Unstable;
    }
    let world = build_world(config, seed);
    let endpoint = Endpoint::new(
        world,
        ExportSpec {
            files,
            file_size: file_blocks * u64::from(config.rsize),
        },
    );

    let (listener, local) = bind(&addr).expect("bind");
    println!("listening on {local}");

    let stop = Arc::new(AtomicBool::new(false));
    let endpoint = serve(listener, endpoint, WallClock::start(), stop);

    let s = endpoint.world().server_stats();
    eprintln!(
        "served: {} reads, {} other calls, {} replies",
        s.reads, s.other_calls, s.replies
    );
}
