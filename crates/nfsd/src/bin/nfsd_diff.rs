//! The sim-vs-real differential harness, self-contained: starts an
//! in-process `nfsd` on loopback, replays a seed-derived trace against
//! it over real TCP, replays the identical trace through a fresh world
//! on the pure virtual clock, and diffs the two servers' heuristic and
//! write-path books. Exit 0 when every order-driven counter matches,
//! 1 on mismatch, 3 on watchdog timeout.
//!
//! ```text
//! nfsd_diff [--seed 42] [--files 8] [--file-blocks 64] [--unstable]
//!           [--noise 0.0] [--timeout-secs 90]
//! ```
//!
//! `--noise F` sprinkles GETATTR/WRITE records into the read trace
//! (fraction F), which with `--unstable` drives the write-gathering
//! dirty pool on both sides.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nfsd::{
    bind, build_world, serve, sim_replay, DiffReport, Endpoint, ExportSpec, HeurBooks, NfsClient,
    WallClock,
};
use nfsproto::StableHow;
use nfssim::WorldConfig;
use nfstrace::synth::{self, SequentialSpec};
use simcore::SimRng;

fn main() {
    let mut seed = 42u64;
    let mut files = 8u32;
    let mut file_blocks = 64u64;
    let mut unstable = false;
    let mut noise = 0.0f64;
    let mut timeout_secs = 90u64;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--files" => files = args.next().and_then(|v| v.parse().ok()).expect("--files N"),
            "--file-blocks" => {
                file_blocks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--file-blocks N")
            }
            "--unstable" => unstable = true,
            "--noise" => noise = args.next().and_then(|v| v.parse().ok()).expect("--noise F"),
            "--timeout-secs" => {
                timeout_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--timeout-secs N")
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    // Watchdog: a wedged socket loop must not hang CI.
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(timeout_secs));
        eprintln!("nfsd_diff: watchdog timeout after {timeout_secs}s");
        std::process::exit(3);
    });

    let mut config = WorldConfig::default();
    let stable = if unstable {
        config.stable_how = StableHow::Unstable;
        StableHow::Unstable
    } else {
        StableHow::FileSync
    };
    let spec = SequentialSpec {
        files,
        blocks_per_file: file_blocks,
        ..SequentialSpec::default()
    };
    let file_size = file_blocks * u64::from(spec.block_len);
    let mut rng = SimRng::new(seed);
    let mut trace = synth::sequential(spec, &mut rng);
    if noise > 0.0 {
        trace = synth::with_metadata_noise(trace, noise, &mut rng);
    }
    let trace = trace.records;
    println!(
        "trace: {} records over {files} files (seed {seed}, {:?} writes: {unstable})",
        trace.len(),
        stable
    );

    // --- Real side: endpoint on loopback, closed-loop socket replay. ---
    let endpoint = Endpoint::new(
        build_world(config, seed),
        ExportSpec {
            files: files as usize,
            file_size,
        },
    );
    let (listener, local) = bind("127.0.0.1:0").expect("bind loopback");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server = std::thread::spawn(move || serve(listener, endpoint, WallClock::start(), stop2));

    let mut client = NfsClient::connect(local).expect("connect");
    let replay = client.replay(&trace, stable, false).expect("socket replay");
    drop(client);
    // Let gather windows expire on the wall clock before reading books.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    let endpoint = server.join().expect("server thread");
    let real = HeurBooks::from_stats(&endpoint.world().server_stats());
    println!("real: {} calls over TCP", replay.calls);
    println!("{}", testbed::render_endpoint_line("read", &replay.read));
    println!("{}", testbed::render_endpoint_line("write", &replay.write));

    // --- Sim side: identical trace, pure virtual clock. ---
    let mut world = build_world(config, seed);
    let ext = world.register_external_client();
    let exports: Vec<_> = (0..files)
        .map(|_| world.create_export_file(ext, file_size))
        .collect();
    let sim = sim_replay(&mut world, &exports, &trace, stable);

    let report = DiffReport::diff(&sim, &real);
    print!("{}", report.render());
    if report.passed() {
        println!("PASS: real endpoint books match the virtual-clock replay");
    } else {
        println!("FAIL: order-driven counters diverged");
        std::process::exit(1);
    }
}
