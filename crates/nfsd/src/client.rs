//! A synchronous NFSv3/MOUNT test client speaking real TCP.
//!
//! This is the measuring half of the differential harness: it mounts the
//! endpoint's export, resolves file handles with LOOKUP, replays a
//! [`nfstrace`] workload one RPC at a time, and collects per-operation
//! wall-clock latency into a [`LogHist`] — the same histogram type the
//! simulator uses, so real and simulated latency distributions print and
//! fingerprint identically.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use nfsproto::{frame_record, FileHandle, NfsCall, RecordReader, StableHow};
use nfstrace::{TraceOp, TraceRecord};
use simcore::LogHist;

use crate::endpoint::EXPORT_PATH;
use crate::wire;

/// A client-side RPC failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The reply did not parse, or the server rejected the call.
    Proto(nfsproto::XdrError),
    /// Record framing violated by the server.
    Framing(nfsproto::RecordError),
    /// The server replied to a different xid than the one in flight.
    XidMismatch {
        /// What we sent.
        sent: u32,
        /// What came back.
        got: u32,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Framing(e) => write!(f, "framing: {e}"),
            ClientError::XidMismatch { sent, got } => {
                write!(f, "xid mismatch: sent {sent}, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<nfsproto::XdrError> for ClientError {
    fn from(e: nfsproto::XdrError) -> Self {
        ClientError::Proto(e)
    }
}

/// Per-op latency books from a replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// READ latencies.
    pub read: LogHist,
    /// WRITE latencies.
    pub write: LogHist,
    /// GETATTR (and COMMIT) latencies.
    pub meta: LogHist,
    /// RPCs sent.
    pub calls: u64,
    /// Replies with a non-OK NFS status.
    pub nfs_errors: u64,
}

/// A blocking NFSv3 client over one TCP connection.
pub struct NfsClient {
    stream: TcpStream,
    reader: RecordReader,
    next_xid: u32,
}

impl NfsClient {
    /// Connects and performs the RPC NULL ping.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut c = NfsClient {
            stream,
            reader: RecordReader::new(),
            next_xid: 1,
        };
        let xid = c.fresh_xid();
        c.call_raw(&wire::encode_null_call(
            xid,
            nfsproto::NFS_PROGRAM,
            nfsproto::NFS_VERSION,
        ))?;
        Ok(c)
    }

    fn fresh_xid(&mut self) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        xid
    }

    /// Sends one framed call and blocks for the matching reply record.
    fn call_raw(&mut self, msg: &[u8]) -> Result<Vec<u8>, ClientError> {
        let mut framed = Vec::with_capacity(msg.len() + 4);
        frame_record(msg, &mut framed);
        self.stream.write_all(&framed)?;
        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(record) = self.reader.next_record() {
                return Ok(record);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                )));
            }
            self.reader.push(&buf[..n]).map_err(ClientError::Framing)?;
        }
    }

    fn check_xid(&self, sent: u32, got: u32) -> Result<(), ClientError> {
        if sent == got {
            Ok(())
        } else {
            Err(ClientError::XidMismatch { sent, got })
        }
    }

    /// MOUNTs the export, returning the root directory handle.
    pub fn mount(&mut self) -> Result<FileHandle, ClientError> {
        let xid = self.fresh_xid();
        let reply = self.call_raw(&wire::encode_mnt_call(xid, EXPORT_PATH))?;
        let (got, fh) = wire::decode_mnt_reply(&reply)?;
        self.check_xid(xid, got)?;
        Ok(fh)
    }

    /// LOOKUPs `name` under `dir`.
    pub fn lookup(&mut self, dir: FileHandle, name: &str) -> Result<FileHandle, ClientError> {
        let xid = self.fresh_xid();
        let call = NfsCall::Lookup {
            dir,
            name: name.to_string(),
        };
        let reply = self.call_raw(&call.encode(xid))?;
        let (got, fh, _attr) = wire::decode_lookup_reply(&reply)?;
        self.check_xid(xid, got)?;
        Ok(fh)
    }

    /// GETATTR.
    pub fn getattr(&mut self, fh: FileHandle) -> Result<wire::DecodedAttr, ClientError> {
        let xid = self.fresh_xid();
        let call = NfsCall::Getattr { fh };
        let reply = self.call_raw(&call.encode(xid))?;
        let (got, attr) = wire::decode_getattr_reply(&reply)?;
        self.check_xid(xid, got)?;
        Ok(attr)
    }

    /// READ `count` bytes at `offset`.
    pub fn read(
        &mut self,
        fh: FileHandle,
        offset: u64,
        count: u32,
    ) -> Result<wire::ReadReply, ClientError> {
        let xid = self.fresh_xid();
        let call = NfsCall::Read { fh, offset, count };
        let reply = self.call_raw(&call.encode(xid))?;
        let r = wire::decode_read_reply(&reply)?;
        self.check_xid(xid, r.xid)?;
        Ok(r)
    }

    /// WRITE `count` (zero-filled) bytes at `offset` — sent in the full
    /// RFC 1813 form, payload included.
    pub fn write(
        &mut self,
        fh: FileHandle,
        offset: u64,
        count: u32,
        stable: StableHow,
    ) -> Result<wire::WriteReply, ClientError> {
        let xid = self.fresh_xid();
        let reply = self.call_raw(&wire::encode_write_call(xid, &fh, offset, count, stable))?;
        let r = wire::decode_write_reply(&reply)?;
        self.check_xid(xid, r.xid)?;
        Ok(r)
    }

    /// COMMIT the whole file.
    pub fn commit(&mut self, fh: FileHandle) -> Result<(u32, u64), ClientError> {
        let xid = self.fresh_xid();
        let call = NfsCall::Commit {
            fh,
            offset: 0,
            count: 0,
        };
        let reply = self.call_raw(&call.encode(xid))?;
        let (got, status, verf) = wire::decode_commit_reply(&reply)?;
        self.check_xid(xid, got)?;
        Ok((status, verf))
    }

    /// Mounts, resolves every `f{i}` the trace touches, and replays the
    /// trace synchronously. Trace handles (`0x1000 + i` from the
    /// synthesizers) map to export file `f{i}`.
    ///
    /// With `paced`, the client honours the trace's inter-arrival gaps
    /// (sleeping to each record's `time_us`); without it, the replay is
    /// closed-loop: each call is issued the moment the previous reply
    /// lands — the server-visible *order* is the same either way, which
    /// is what the differential harness depends on.
    pub fn replay(
        &mut self,
        trace: &[TraceRecord],
        stable: StableHow,
        paced: bool,
    ) -> Result<ReplayStats, ClientError> {
        let root = self.mount()?;
        let max_file = trace
            .iter()
            .map(|r| r.fh.saturating_sub(0x1000))
            .max()
            .unwrap_or(0);
        let mut handles = Vec::with_capacity(max_file as usize + 1);
        for i in 0..=max_file {
            handles.push(self.lookup(root, &format!("f{i}"))?);
        }

        let mut stats = ReplayStats::default();
        let epoch = Instant::now();
        for rec in trace {
            if paced {
                let target = Duration::from_micros(rec.time_us);
                if let Some(gap) = target.checked_sub(epoch.elapsed()) {
                    std::thread::sleep(gap);
                }
            }
            let fh = handles[rec.fh.saturating_sub(0x1000) as usize];
            let start = Instant::now();
            let (hist, status) = match rec.op {
                TraceOp::Read => {
                    let r = self.read(fh, rec.offset, rec.len)?;
                    (&mut stats.read, r.status)
                }
                TraceOp::Write => {
                    let r = self.write(fh, rec.offset, rec.len, stable)?;
                    (&mut stats.write, r.status)
                }
                TraceOp::Getattr => {
                    self.getattr(fh)?;
                    (&mut stats.meta, 0)
                }
                TraceOp::Lookup | TraceOp::Readdir => {
                    // The real endpoint's export namespace is flat (no
                    // directories beyond the root), so namespace ops lower
                    // to the same class of small metadata round trip.
                    self.getattr(fh)?;
                    (&mut stats.meta, 0)
                }
            };
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            hist.add(us);
            stats.calls += 1;
            if status != 0 {
                stats.nfs_errors += 1;
            }
        }
        Ok(stats)
    }
}
