//! Virtual-clock-to-wall-clock adapter.
//!
//! The simulated server stack schedules everything — SlowDown stall
//! windows, gather-window flush timers, disk completions — on
//! [`SimTime`], a virtual nanosecond axis that normally advances by
//! event-queue leaps. The real-socket endpoint instead anchors `SimTime`
//! zero at process start and maps *wall* time onto the same axis: every
//! pump of the world advances the virtual clock to "now" as measured by
//! a [`Clock`], so timers fire on real deadlines while the server logic
//! stays byte-for-byte the simulated one.
//!
//! [`WallClock`] is the production implementation (monotonic
//! `Instant`-based). [`ManualClock`] is a test double that only moves
//! when told to, which is what lets the clock-adapter tests replay the
//! same trace through a wall-clock-shaped driver and the virtual event
//! loop and compare event orders exactly.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use simcore::SimTime;

/// A source of "now" on the simulated time axis.
pub trait Clock: Send {
    /// Current instant. Must be monotone non-decreasing.
    fn now(&self) -> SimTime;
}

/// Maps monotonic wall time onto the simulated axis, with `SimTime::ZERO`
/// at construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts the clock; this instant becomes `SimTime::ZERO`.
    pub fn start() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let ns = self.epoch.elapsed().as_nanos();
        SimTime::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }
}

/// A clock that only advances when a test advances it. Shared handles
/// (`Clone`) observe the same time, so a driver thread and a test
/// harness can coordinate.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<Mutex<SimTime>>,
}

impl ManualClock {
    /// Creates a clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward to `t` (backward moves are ignored — the
    /// clock is monotone like the real one).
    pub fn advance_to(&self, t: SimTime) {
        let mut now = self.now.lock().expect("clock lock");
        if t > *now {
            *now = t;
        }
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        *self.now.lock().expect("clock lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_starts_near_zero() {
        let c = WallClock::start();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a.as_secs_f64() < 1.0, "epoch must be construction time");
    }

    #[test]
    fn manual_clock_moves_only_forward_on_command() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_nanos(50));
        c.advance_to(SimTime::from_nanos(10)); // ignored
        assert_eq!(c.now(), SimTime::from_nanos(50));
        let c2 = c.clone();
        c2.advance_to(SimTime::from_nanos(99));
        assert_eq!(c.now(), SimTime::from_nanos(99), "handles share time");
    }
}
