//! Real-socket NFSv3 endpoint over the simulated server stack.
//!
//! The simulator answers one question well — *what does the server do,
//! and when* — but everything in it runs on a virtual clock behind fake
//! transports. This crate puts a real TCP listener in front of the same
//! server half: ONC RPC (RFC 5531) with XDR record marking, a minimal
//! MOUNT v3 program handing out root handles, and the NFSv3 procedures
//! the simulator models, dispatched into the identical `nfsheur` table,
//! write-gathering pool, and disk model via the world's external-ingress
//! hooks. A wall-clock adapter ([`Clock`]) maps real elapsed time onto
//! the virtual axis so gather windows and SlowDown stalls fire on real
//! schedule.
//!
//! The payoff is the differential harness ([`diff`]): replay one
//! seed-derived trace both purely virtually and over a real socket, then
//! diff the servers' heuristic books. Order-driven counters must match
//! exactly; only time-driven gather flushing gets tolerance. That closes
//! the loop on the paper's benchmarking-trap theme — the tricks survive
//! contact with a real wire, and the harness proves it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod clock;
mod diff;
mod endpoint;
mod server;
pub mod wire;

pub use client::{ClientError, NfsClient, ReplayStats};
pub use clock::{Clock, ManualClock, WallClock};
pub use diff::{settle, sim_replay, DiffLine, DiffReport, HeurBooks};
pub use endpoint::{build_world, Endpoint, EndpointStats, ExportSpec, EXPORT_PATH, ROOT_INO};
pub use server::{bind, serve};
