//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each `fig*` binary regenerates one figure or table from the paper's
//! evaluation, prints the measured series, and then prints the paper's
//! published numbers (exact for Table 1, qualitative landmarks for the
//! plot-only figures) so the shapes can be compared side by side.
//!
//! Scale control: set `NFS_BENCH_SCALE=quick` for an 8x-reduced smoke run;
//! the default reproduces the paper's workload sizes (256 MB per
//! iteration, >= 10 runs per point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use testbed::experiments::Scale;
use testbed::Figure;

/// Base seed for all experiments; per-run seeds are derived from it.
pub const BASE_SEED: u64 = 20030609; // The conference's opening day.

/// Prints a regenerated figure followed by the paper's reference block.
pub fn emit(fig: &Figure, paper_reference: &str) {
    println!("{}", fig.render());
    println!("--- paper reference ---");
    println!("{paper_reference}");
}

/// The scale selected by the environment.
pub fn scale() -> Scale {
    let s = Scale::from_env();
    eprintln!(
        "# scale: {} MB/iteration, {} runs/point (set NFS_BENCH_SCALE=quick for a fast pass)",
        s.total_mb, s.runs
    );
    s
}

/// Paper landmarks for Figure 1.
pub const FIG1_REF: &str = "\
Figure 1 (plot): ide1 is the fastest curve and ide4 clearly below it
(outer vs inner cylinders, ~2:3 ZCAV ratio). scsi1/scsi4 sit much lower
than the IDE curves for >1 reader because tagged queueing is on by
default, and the ZCAV gap between them is partly obscured. For both
drives the ZCAV effect exceeds any small filesystem tweak.";

/// Paper landmarks for Figure 2.
pub const FIG2_REF: &str = "\
Figure 2 (plot): with tagged queues the single-reader case spikes and
then falls to ~15 MB/s (scsi1); with tags disabled throughput 'barely
dips below 27 MB/s' and decreases only slowly with reader count. For
this workload the kernel elevator beats the on-disk scheduler.";

/// Paper landmarks for Figure 3.
pub const FIG3_REF: &str = "\
Figure 3 (plot, 8 readers x 32 MB, 34 runs): Elevator finishes readers
one after another - ide1 means 1.04s, 1.98s, 2.94s, ... 5.97s (almost a
factor 6 first-to-last; scsi1/no-tags 1.18s..8.54s). N-CSCAN is nearly
flat (spread < 20%) but all jobs are much slower: the slowest elevator
reader still beats the fastest N-CSCAN reader by ~50%. Tagged queues
are fairer than N-CSCAN but worse in total throughput.";

/// Paper landmarks for Figure 4.
pub const FIG4_REF: &str = "\
Figure 4 (plot): NFS/UDP starts around 20+ MB/s for one reader (about
half the local rate) and drops steadily as readers increase; the ZCAV
effect is still visible (ide1 above ide4). Disabling tagged queues
improves scsi1 relative to ide1 as concurrency grows.";

/// Paper landmarks for Figure 5.
pub const FIG5_REF: &str = "\
Figure 5 (plot): NFS/TCP is substantially slower than UDP for small
numbers of readers (roughly 12-15 MB/s) but relatively constant as
readers increase, roughly paralleling the local filesystem's shape.
(The paper's unexplained ide 2-reader spike and 1-reader TCP anomaly -
suspected TCP flow control - are not modelled.)";

/// Paper landmarks for Figure 6.
pub const FIG6_REF: &str = "\
Figure 6 (plot, ide1/UDP): Always-Read-ahead and Default coincide up to
4 readers and diverge beyond - the default heuristic loses read-ahead
under reordering and nfsheur ejection. On a busy client (4 infinite
loops) overall throughput is lower; the paper found the Always/Default
gap counterintuitively *smaller* when busy.";

/// Paper landmarks for Figure 7.
pub const FIG7_REF: &str = "\
Figure 7 (plot, ide1/UDP/busy): with the NEW nfsheur table, SlowDown
matches Always-Read-ahead - and so does the Default heuristic; having
an entry per active file matters more than the entry being accurate.
Default with the DEFAULT (tiny) table falls far below for >4 readers.";

/// Paper values for Figure 8 / Table 1 (mean MB/s, stddev in parens).
pub const TABLE1_REF: &str = "\
Table 1 (exact, 256 MB file, 10 runs, cache flushed per run):
  ide1   UDP/Default   7.66 (0.02)   7.83 (0.02)   5.26 (0.02)
  ide1   UDP/Cursor   11.49 (0.29)  14.15 (0.14)  12.66 (0.43)
  scsi1  UDP/Default   9.49 (0.03)   8.52 (0.04)   8.21 (0.03)
  scsi1  UDP/Cursor   15.39 (0.20)  15.38 (0.15)  14.12 (0.46)
Shape: cursors win everywhere - scsi1 60-70% faster; ide1 50% (s=2) up
to 140% (s=8) faster; ide1/default dips hardest at s=8.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_mention_their_landmarks() {
        assert!(TABLE1_REF.contains("7.66"));
        assert!(FIG3_REF.contains("5.97"));
        assert!(FIG2_REF.contains("27 MB/s"));
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = testbed::experiments::Scale::quick();
        let p = testbed::experiments::Scale::paper();
        assert!(q.total_mb < p.total_mb);
        assert!(q.runs < p.runs);
    }
}
