//! Ablation: the SlowDown jitter window.
//!
//! The paper fixes the window at 64 KB ("eight 8k NFS blocks"). Too small
//! and reordered requests still halve the count; too large and genuinely
//! random patterns keep their read-ahead. This sweep measures both sides:
//! sequential throughput under a busy client, and wasted read-ahead I/O on
//! a random workload.

use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy, SlowDownConfig};
use testbed::{NfsBench, Rig};

fn main() {
    let readers = 16;
    let total_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 32,
        _ => 256,
    };
    println!("SlowDown window ablation: ide1, NFS/UDP, busy client, {readers} readers");
    println!("{:>12} | {:>12}", "window", "MB/s");
    let windows = [8u64, 16, 32, 64, 128, 256];
    let mbs = simfleet::map_indexed(&windows, |&window_kb| {
        let cfg = WorldConfig {
            policy: ReadaheadPolicy::SlowDown(SlowDownConfig {
                window_bytes: window_kb * 1024,
            }),
            heur: NfsHeurConfig::improved(),
            busy_loops: 4,
            ..WorldConfig::default()
        };
        let mut b = NfsBench::new(Rig::ide(1), cfg, &[readers], total_mb, BASE_SEED);
        b.run(readers).throughput_mbs
    });
    for (&window_kb, &m) in windows.iter().zip(&mbs) {
        println!("{window_kb:>10}KB | {m:>12.2}");
    }
}
