//! Regenerates Figure 4: NFS over UDP, default and no-tags.

use nfs_bench::{emit, scale, BASE_SEED, FIG4_REF};

fn main() {
    let fig = testbed::experiments::fig4_nfs_udp(scale(), BASE_SEED);
    emit(&fig, FIG4_REF);
}
