//! The client-count x table-size contention grid (EXPERIMENTS.md).
//!
//! Regenerates the `nfscluster` grid: every host runs the same modest
//! two-reader workload, only the host count grows, and the stock vs
//! enlarged `nfsheur` tables are compared on aggregate throughput,
//! ejection rate, cross-client interference, and heuristic hit rate.
//!
//! `NFS_BENCH_SCALE=quick` runs the CI-sized grid; the default is the
//! full grid printed in EXPERIMENTS.md. Output is a markdown table and is
//! byte-identical at any `NFS_BENCH_JOBS` width.

use nfscluster::experiments::{contention_grid, GridScale};

fn main() {
    let scale = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => GridScale::quick(),
        _ => GridScale::full(),
    };
    println!(
        "cluster contention grid: ide1, NFS/UDP, {} readers x {} MB per client, {} runs per cell",
        scale.readers, scale.per_client_mb, scale.runs
    );
    println!();
    let grid = contention_grid(scale);
    print!("{}", grid.render_markdown());
}
