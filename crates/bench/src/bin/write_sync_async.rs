//! The sync-vs-async write trap, measured: the same sequential write
//! workload under FILE_SYNC and UNSTABLE mounts, reported two ways.
//!
//! An NFSv2-era mount writes through: every WRITE waits for the platter,
//! so "when did my last write() return" and "when is my data safe" are
//! the same instant. An NFSv3 async mount (UNSTABLE + COMMIT) splits
//! them: write() returns after a memcpy into the client's write-behind
//! cache, the server gathers dirty blocks and flushes them lazily, and
//! only close()'s COMMIT pins the data to stable storage. A benchmark
//! that times the write loop and skips the close measures RAM, not disk
//! — the classic "my NFS writes got 10x faster" trap: the *apparent*
//! column below is what such a benchmark reports, the *durable* column is
//! what the storage actually did, and only the latter is comparable
//! across mounts.
//!
//! The second table sweeps the server's gather window on the UNSTABLE
//! mount: longer windows coalesce more UNSTABLE WRITEs per disk flush
//! (fewer, larger writes), the §4.1 server-side half of the async path.

use nfs_bench::BASE_SEED;
use nfsproto::StableHow;
use nfssim::{NfsWorld, OpId, WorldConfig};
use simcore::{SimDuration, SimTime};
use testbed::Rig;

const BS: u64 = 8_192;

struct Cell {
    apparent_mbs: f64,
    durable_mbs: f64,
    write_rpcs: u64,
    unstable_writes: u64,
    gather_flushes: u64,
    commit_rpcs: u64,
}

fn drive_next(world: &mut NfsWorld, now: &mut SimTime) -> SimTime {
    loop {
        let t = world.next_event().expect("pending op must progress");
        let done = world.advance(t);
        *now = (*now).max(t);
        if let Some(d) = done.first() {
            return d.done_at;
        }
    }
}

fn drive_op(world: &mut NfsWorld, id: OpId) -> SimTime {
    loop {
        let t = world.next_event().expect("pending op must progress");
        if let Some(d) = world.advance(t).into_iter().find(|d| d.id == id) {
            assert!(d.outcome.is_ok(), "{:?}", d.outcome);
            return d.done_at;
        }
    }
}

/// Writes `blocks` sequential 8 KB blocks, then closes. Returns the
/// apparent rate (to the last write() return) and the durable rate (to
/// close() return, COMMIT included — on FILE_SYNC the close is a local
/// no-op and the two differ only by bookkeeping noise).
fn run_cell(stable_how: StableHow, gather_window: SimDuration, blocks: u64) -> Cell {
    let cfg = WorldConfig {
        stable_how,
        gather_window,
        ..WorldConfig::default()
    };
    let fs = Rig::ide(1).build_fs(BASE_SEED);
    let mut w = NfsWorld::new(cfg, fs, BASE_SEED);
    let fh = w.create_file(blocks * BS);
    let mut now = SimTime::ZERO;
    let mut last_write = SimTime::ZERO;
    for i in 0..blocks {
        w.write(now, fh, i * BS, BS, i);
        last_write = drive_next(&mut w, &mut now);
        now = now.max(last_write);
    }
    let id = w.close(now, fh, blocks);
    let durable_at = drive_op(&mut w, id);
    let mb = (blocks * BS) as f64 / (1024.0 * 1024.0);
    let c = w.client_stats();
    let s = w.server_stats();
    Cell {
        apparent_mbs: mb / last_write.as_secs_f64(),
        durable_mbs: mb / durable_at.as_secs_f64(),
        write_rpcs: c.write_rpcs,
        unstable_writes: s.unstable_writes,
        gather_flushes: s.gather_flushes,
        commit_rpcs: c.commit_rpcs,
    }
}

fn print_row(label: &str, c: &Cell) {
    println!(
        "{:<22} | {:>10.2} | {:>10.2} | {:>6.2}x | {:>7} | {:>7} | {:>7}",
        label,
        c.apparent_mbs,
        c.durable_mbs,
        c.apparent_mbs / c.durable_mbs,
        c.write_rpcs.max(c.unstable_writes),
        c.gather_flushes,
        c.commit_rpcs
    );
}

fn main() {
    let blocks: u64 = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 256, // 2 MB
        _ => 1024,          // 8 MB
    };
    let mb = (blocks * BS) as f64 / (1024.0 * 1024.0);
    println!("sync-vs-async write trap: ide1, {mb:.0} MB sequential 8 KB writes, seed {BASE_SEED}");
    println!(
        "{:<22} | {:>10} | {:>10} | {:>7} | {:>7} | {:>7} | {:>7}",
        "mount", "appar MB/s", "durab MB/s", "trap", "writes", "flushes", "commits"
    );

    let default_gather = WorldConfig::default().gather_window;
    let mounts = [
        ("file_sync (v2-style)", StableHow::FileSync, default_gather),
        ("unstable+commit (v3)", StableHow::Unstable, default_gather),
    ];
    let rows = simfleet::map_indexed(&mounts, |&(_, how, gw)| run_cell(how, gw, blocks));
    for ((label, _, _), cell) in mounts.iter().zip(&rows) {
        print_row(label, cell);
    }

    println!();
    println!("gather-window sweep (UNSTABLE mount): coalescing vs flush latency");
    println!(
        "{:<22} | {:>10} | {:>10} | {:>7} | {:>7} | {:>7} | {:>7}",
        "gather window", "appar MB/s", "durab MB/s", "trap", "writes", "flushes", "commits"
    );
    let windows = [0u64, 5, 30, 120];
    let cells = simfleet::map_indexed(&windows, |&ms| {
        run_cell(StableHow::Unstable, SimDuration::from_millis(ms), blocks)
    });
    for (ms, cell) in windows.iter().zip(&cells) {
        print_row(&format!("{ms} ms"), cell);
    }
}
