//! Extension: the §8 mixed read/write/metadata workload.

use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use testbed::{run_mixed, MixRatios, Rig};

fn main() {
    let (ops, file_mb) = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => (300, 8),
        _ => (2_000, 64),
    };
    println!("mixed workload (70% read / 10% write / 20% getattr), 8 readers, ide1/UDP");
    println!("{:<12} | {:>10} | {:>12}", "policy", "ops/s", "read MB/s");
    for policy in [
        ReadaheadPolicy::Default,
        ReadaheadPolicy::Always,
        ReadaheadPolicy::slowdown(),
        ReadaheadPolicy::cursor(),
    ] {
        let cfg = WorldConfig {
            policy,
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        };
        let r = run_mixed(
            Rig::ide(1),
            cfg,
            8,
            file_mb,
            ops,
            MixRatios::default(),
            BASE_SEED,
        );
        println!(
            "{:<12} | {:>10.0} | {:>12.2}",
            policy.label(),
            r.ops_per_sec,
            r.read_mbs
        );
    }
}
