//! Extension: §6.2's trace methodology over synthesized request streams.
//!
//! "There are many ways that the underlying sequentiality of an access
//! pattern may be measured, such as the metrics developed in our earlier
//! studies of NFS traces... An analysis of the values of seqCount show
//! that SlowDown accomplishes this goal." The production traces are not
//! distributable, so the streams are synthesized (see the `nfstrace`
//! crate) and each heuristic is scored on the mean seqcount it sustains
//! and the fraction of reads it grants read-ahead.

use nfstrace::{analyze, synth};
use readahead_core::NfsHeurConfig;
use simcore::SimRng;

fn main() {
    println!("heuristic quality over synthesized traces (improved nfsheur, threshold 2)");
    println!();

    // One 2048-block sequential stream, perturbed at increasing rates.
    println!("sequential stream, adjacent-swap reordering:");
    println!(
        "{:>8} | {:>24} | {:>24} | {:>24}",
        "swap %", "default", "slowdown", "cursor"
    );
    println!(
        "{:>8} | {:>11} {:>12} | {:>11} {:>12} | {:>11} {:>12}",
        "", "mean seq", "RA enabled", "mean seq", "RA enabled", "mean seq", "RA enabled"
    );
    for pct in [0u32, 2, 6, 10, 20] {
        let mut rng = SimRng::new(u64::from(pct) + 100);
        let base = synth::sequential(
            synth::SequentialSpec {
                files: 1,
                blocks_per_file: 2_048,
                ..synth::SequentialSpec::default()
            },
            &mut rng,
        );
        let (trace, _) = synth::reorder(base, f64::from(pct) / 100.0, &mut rng);
        let all = analyze::score_all(&trace, NfsHeurConfig::improved(), 2);
        let get = |label: &str| {
            all.iter()
                .find(|(l, _)| *l == label)
                .map(|(_, q)| *q)
                .expect("scored")
        };
        let (d, s, c) = (get("default"), get("slowdown"), get("cursor"));
        println!(
            "{:>7}% | {:>11.1} {:>11.1}% | {:>11.1} {:>11.1}% | {:>11.1} {:>11.1}%",
            pct,
            d.mean_seqcount,
            d.readahead_fraction * 100.0,
            s.mean_seqcount,
            s.readahead_fraction * 100.0,
            c.mean_seqcount,
            c.readahead_fraction * 100.0,
        );
    }

    println!();
    println!("stride streams (one reader, s sequential subcomponents):");
    println!(
        "{:>8} | {:>12} {:>12} {:>12}",
        "stride", "default RA%", "slowdown RA%", "cursor RA%"
    );
    for s in [2u64, 4, 8] {
        let mut rng = SimRng::new(s + 200);
        let trace = synth::stride(s, 2_048, 8_192, 300.0, &mut rng);
        let all = analyze::score_all(&trace, NfsHeurConfig::improved(), 2);
        let frac = |label: &str| {
            all.iter()
                .find(|(l, _)| *l == label)
                .map(|(_, q)| q.readahead_fraction * 100.0)
                .expect("scored")
        };
        println!(
            "{:>8} | {:>11.1}% {:>11.1}% {:>11.1}%",
            s,
            frac("default"),
            frac("slowdown"),
            frac("cursor")
        );
    }

    println!();
    println!("concurrent sequential readers vs the stock nfsheur (Default policy):");
    println!(
        "{:>8} | {:>14} {:>12} | {:>14} {:>12}",
        "files", "stock RA%", "ejections", "improved RA%", "ejections"
    );
    for files in [2u32, 4, 8, 16, 32] {
        let mut rng = SimRng::new(u64::from(files) + 300);
        let trace = synth::sequential(
            synth::SequentialSpec {
                files,
                blocks_per_file: 256,
                ..synth::SequentialSpec::default()
            },
            &mut rng,
        );
        let stock = analyze::score(
            &trace,
            &readahead_core::ReadaheadPolicy::Default,
            NfsHeurConfig::freebsd_default(),
            2,
        );
        let improved = analyze::score(
            &trace,
            &readahead_core::ReadaheadPolicy::Default,
            NfsHeurConfig::improved(),
            2,
        );
        println!(
            "{:>8} | {:>13.1}% {:>12} | {:>13.1}% {:>12}",
            files,
            stock.readahead_fraction * 100.0,
            stock.ejections,
            improved.readahead_fraction * 100.0,
            improved.ejections
        );
    }
}
