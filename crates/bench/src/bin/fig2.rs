//! Regenerates Figure 2: tagged command queues and ZCAV on the SCSI drive.

use nfs_bench::{emit, scale, BASE_SEED, FIG2_REF};

fn main() {
    let fig = testbed::experiments::fig2_tagged_queues(scale(), BASE_SEED);
    emit(&fig, FIG2_REF);
}
