//! Regenerates Figure 1: the ZCAV effect on local drives.

use nfs_bench::{emit, scale, BASE_SEED, FIG1_REF};

fn main() {
    let fig = testbed::experiments::fig1_zcav(scale(), BASE_SEED);
    emit(&fig, FIG1_REF);
}
