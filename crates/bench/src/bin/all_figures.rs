//! Regenerates every figure and table in sequence (the full evaluation).
//!
//! Output is EXPERIMENTS.md-ready: each block pairs the measured series
//! with the paper's reference landmarks.

use nfs_bench::{
    emit, scale, BASE_SEED, FIG1_REF, FIG2_REF, FIG3_REF, FIG4_REF, FIG5_REF, FIG6_REF, FIG7_REF,
    TABLE1_REF,
};
use testbed::experiments as ex;

fn main() {
    let s = scale();
    emit(&ex::fig1_zcav(s, BASE_SEED), FIG1_REF);
    emit(&ex::fig2_tagged_queues(s, BASE_SEED), FIG2_REF);
    emit(&ex::fig3_fairness(s, BASE_SEED), FIG3_REF);
    emit(&ex::fig4_nfs_udp(s, BASE_SEED), FIG4_REF);
    emit(&ex::fig5_nfs_tcp(s, BASE_SEED), FIG5_REF);
    emit(&ex::fig6_readahead_potential(s, BASE_SEED), FIG6_REF);
    emit(&ex::fig7_slowdown_nfsheur(s, BASE_SEED), FIG7_REF);
    let f8 = ex::fig8_table1_stride(s, BASE_SEED);
    emit(&f8, TABLE1_REF);
    println!("{}", ex::render_table1(&f8));
}
