//! Ablation: file-system aging (§3's explicit prediction).
//!
//! "We do not attempt to age the file system at all before we run our
//! benchmarks... fresh file systems are one of the worst cases. We are
//! attempting to measure the impact of various read-ahead heuristics, and
//! we believe that read-ahead heuristics increase in importance as file
//! systems age. Therefore, any benefit we see for a fresh file system
//! should be even more pronounced on an aged file system."
//!
//! The allocator's aging knob fragments file layouts the way months of
//! create/delete traffic would. This bench tests the paper's prediction:
//! the Always-vs-Default read-ahead gap should widen as aging increases.

use diskmodel::{DriveModel, PartitionTable};
use ffs::{AllocConfig, FileSystem, FsConfig};
use iosched::SchedulerKind;
use nfs_bench::BASE_SEED;
use nfsproto::FileHandle;
use nfssim::{NfsWorld, WorldConfig};
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use simcore::{SimRng, SimTime};

fn run(aging: f64, policy: ReadaheadPolicy, readers: usize, total_mb: u64) -> f64 {
    let disk = DriveModel::WdWd200bbIde.build(SimRng::new(BASE_SEED));
    let part = PartitionTable::quarters(disk.geometry()).get(1);
    let config = FsConfig {
        alloc: AllocConfig {
            aging,
            ..AllocConfig::default()
        },
        ..FsConfig::default()
    };
    let fs = FileSystem::format(disk, part, SchedulerKind::Elevator, config);
    let cfg = WorldConfig {
        policy,
        heur: NfsHeurConfig::improved(),
        ..WorldConfig::default()
    };
    let mut world = NfsWorld::new(cfg, fs, BASE_SEED);
    let per = total_mb / readers as u64 * 1024 * 1024;
    let fhs: Vec<FileHandle> = (0..readers).map(|_| world.create_file(per)).collect();

    let mut offsets = vec![0u64; readers];
    for (i, fh) in fhs.iter().enumerate() {
        world.read(SimTime::ZERO, *fh, 0, 8_192, i as u64);
        offsets[i] = 8_192;
    }
    let mut end = SimTime::ZERO;
    let mut active = readers;
    while active > 0 {
        let t = world.next_event().expect("readers active");
        for d in world.advance(t) {
            let i = d.tag as usize;
            if offsets[i] >= per {
                end = end.max(d.done_at);
                active -= 1;
                continue;
            }
            world.read(d.done_at, fhs[i], offsets[i], 8_192, d.tag);
            offsets[i] += 8_192;
        }
    }
    (total_mb * 1024 * 1024) as f64 / 1e6 / end.as_secs_f64()
}

fn main() {
    let (readers, total_mb) = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => (8, 32),
        _ => (8, 128),
    };
    println!("file-system aging ablation: ide1, NFS/UDP, {readers} readers");
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12}",
        "aging", "default MB/s", "always MB/s", "RA benefit %"
    );
    let agings = [0.0, 0.1, 0.25, 0.5];
    let mut cells = Vec::new();
    for &aging in &agings {
        cells.push((aging, ReadaheadPolicy::Default));
        cells.push((aging, ReadaheadPolicy::Always));
    }
    let mbs = simfleet::map_indexed(&cells, |&(aging, policy)| {
        run(aging, policy, readers, total_mb)
    });
    for (i, &aging) in agings.iter().enumerate() {
        let (d, a) = (mbs[i * 2], mbs[i * 2 + 1]);
        let benefit = (a / d - 1.0) * 100.0;
        println!("{aging:>8.2} | {d:>12.2} | {a:>12.2} | {benefit:>12.1}");
    }
    println!();
    println!("The paper's (untested) §3 conjecture is that read-ahead matters");
    println!("MORE on aged file systems. In this model the opposite happens:");
    println!("fragmentation breaks up the physically contiguous runs that");
    println!("cluster reads and read-ahead both depend on, so aging hurts the");
    println!("Always-Read-ahead ceiling as much as the Default floor and the");
    println!("gap narrows. The conjecture would hold for a read-ahead");
    println!("implementation that issues discontiguous prefetch I/Os; FreeBSD's");
    println!("cluster-based one (modelled here) cannot.");
}
