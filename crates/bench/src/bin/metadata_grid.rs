//! Extension: the attribute-cache payoff grid over a build-tree storm.
//!
//! The paper's benchmarks stream a few large files; production NFS
//! traffic (checkouts, compile farms) is GETATTR/LOOKUP/READDIR storms
//! over deep trees of small files. This grid replays the synthesized
//! build workloads (`nfstrace::tree`) through the full simulated
//! installation, in two tables:
//!
//! * the **tree-walk storm** (pure metadata, `find | xargs stat` shape):
//!   an attribute-timeout sweep showing the cache's first-order payoff —
//!   at the classic `acregmin=3,acregmax=60` mount defaults the wire
//!   GETATTR count collapses by well over 5x, an effect no read-ahead
//!   tuning can touch;
//! * the **full build workload** (walk + compile-like read burst): the
//!   attribute sweep crossed with the server's `nfsheur` geometry (stock
//!   vs the paper's enlarged table), since the burst's small-file reads
//!   are where the read-ahead heuristic still matters.

use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use nfstrace::tree::{build_tree, build_workload, tree_walk, BuildSpec};
use nfstrace::Trace;
use readahead_core::NfsHeurConfig;
use simcore::{SimDuration, SimRng};
use testbed::{replay, Rig};

/// Attribute-timeout axis: off, the classic mount defaults, a long mount.
const TIMEOS: [(&str, u64, u64); 3] = [("off", 0, 0), ("3s/60s", 3, 60), ("30s/300s", 30, 300)];

fn config(heur: NfsHeurConfig, min_s: u64, max_s: u64) -> WorldConfig {
    WorldConfig {
        heur,
        attr_timeo_min: SimDuration::from_secs(min_s),
        attr_timeo_max: SimDuration::from_secs(max_s),
        ..WorldConfig::default()
    }
}

fn row(r: &testbed::ReplayResult) -> String {
    let classed = r.getattr_rpcs + r.attr_cache_hits;
    let hit_pct = if classed > 0 {
        100.0 * r.attr_cache_hits as f64 / classed as f64
    } else {
        0.0
    };
    format!(
        "{:>8} {:>8} {:>5.1}% | {:>9.2} {:>9.2}",
        r.getattr_rpcs, r.attr_cache_hits, hit_pct, r.mean_ms, r.elapsed_secs
    )
}

fn main() {
    let spec = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => BuildSpec {
            depth: 2,
            dirs_per_dir: 3,
            files_per_dir: 4,
            clients: 8,
            // Slow enough that the rig keeps up: the payoff being measured
            // is wire traffic, not queueing collapse.
            inter_arrival_us: 4_000.0,
            ..BuildSpec::default()
        },
        _ => BuildSpec {
            clients: 8,
            inter_arrival_us: 4_000.0,
            ..BuildSpec::default()
        },
    };
    let mut rng = SimRng::new(BASE_SEED);
    let tree = build_tree(&spec, &mut rng);
    let walk: Trace = tree_walk(&tree, &spec, &mut rng);
    let full: Trace = build_workload(&spec, &mut SimRng::new(BASE_SEED));
    println!(
        "build tree: depth {}, {} dirs, {} files; {} concurrent walkers",
        spec.depth,
        tree.dir_count(),
        tree.file_count(),
        spec.clients
    );
    println!();

    println!(
        "tree-walk storm (pure metadata, {} ops), stock nfsheur:",
        walk.len()
    );
    println!(
        "{:<14} | {:>8} {:>8} {:>6} | {:>9} {:>9}",
        "attr cache", "gattr", "hits", "hit%", "mean ms", "elapsed s"
    );
    let mut off_gattr = 0u64;
    let mut default_gattr = 0u64;
    for (tname, min_s, max_s) in TIMEOS {
        let r = replay(
            Rig::ide(1),
            config(NfsHeurConfig::freebsd_default(), min_s, max_s),
            &walk,
            BASE_SEED,
        );
        if tname == "off" {
            off_gattr = r.getattr_rpcs;
        }
        if tname == "3s/60s" {
            default_gattr = r.getattr_rpcs;
        }
        println!("{:<14} | {}", tname, row(&r));
    }
    if default_gattr > 0 {
        println!(
            "attr-cache payoff at default timeouts: {off_gattr} -> {default_gattr} \
             wire GETATTRs ({:.1}x reduction)",
            off_gattr as f64 / default_gattr as f64
        );
    }
    println!();

    println!(
        "full build workload (walk + compile burst, {} ops):",
        full.len()
    );
    println!(
        "{:<10} {:<14} | {:>8} {:>8} {:>6} | {:>9} {:>9}",
        "nfsheur", "attr cache", "gattr", "hits", "hit%", "mean ms", "elapsed s"
    );
    for (hname, heur) in [
        ("stock", NfsHeurConfig::freebsd_default()),
        ("enlarged", NfsHeurConfig::improved()),
    ] {
        for (tname, min_s, max_s) in TIMEOS {
            let r = replay(Rig::ide(1), config(heur, min_s, max_s), &full, BASE_SEED);
            println!("{:<10} {:<14} | {}", hname, tname, row(&r));
        }
        println!();
    }
}
