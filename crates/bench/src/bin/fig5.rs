//! Regenerates Figure 5: NFS over TCP, default and no-tags.

use nfs_bench::{emit, scale, BASE_SEED, FIG5_REF};

fn main() {
    let fig = testbed::experiments::fig5_nfs_tcp(scale(), BASE_SEED);
    emit(&fig, FIG5_REF);
}
