//! Extension: shared cursor pool vs per-handle cursors (§8 future work).
//!
//! A synthetic head-to-head on the heuristic layer itself: `H` file
//! handles each read an `s`-stride pattern; the per-handle scheme reserves
//! `max_cursors` per handle while the shared pool holds a single global
//! budget. The score is the fraction of observations that earned
//! read-ahead (effective seqcount >= 2).

use readahead_core::{CursorConfig, HeurRecord, ReadaheadPolicy, SharedCursorPool};

const BLK: u64 = 8_192;

fn stride_offsets(s: u64, per: u64) -> Vec<u64> {
    let mut v = Vec::new();
    for i in 0..per {
        for k in 0..s {
            v.push((k * 1_000_000 + i) * BLK);
        }
    }
    v
}

fn main() {
    println!("shared cursor pool vs per-handle cursors (synthetic stride streams)");
    println!(
        "{:>8} {:>8} {:>8} | {:>14} | {:>14} | {:>12}",
        "handles", "stride", "budget", "per-handle %", "shared-pool %", "pool size"
    );
    // (active handles, stride width, total handles sized for). The last
    // scenarios are the Section 8 motivation: one MPI-like job with a wide
    // stride on a server sized for 16 handles - the per-handle cap (8)
    // cannot follow 16 subcomponents, the shared pool can because the other
    // handles are idle.
    let scenarios = [
        (4u64, 2u64, 4u64),
        (4, 8, 4),
        (8, 8, 8),
        (16, 4, 16),
        (1, 16, 16),
        (2, 12, 16),
    ];
    let rows = simfleet::map_indexed(&scenarios, |&(handles, s, sized_for)| {
        // Equal total memory: per-handle reserves 8 cursors per handle.
        let per_handle_cfg = CursorConfig::default(); // 8 cursors each
        let budget = sized_for as usize * per_handle_cfg.max_cursors;
        let policy = ReadaheadPolicy::Cursor(per_handle_cfg);
        let mut records: Vec<HeurRecord> = (0..handles).map(|_| HeurRecord::fresh(0, 0)).collect();
        let mut pool = SharedCursorPool::new(budget, 64 * 1024);
        let per = 64;
        let offsets = stride_offsets(s, per);
        let (mut ph_hits, mut sp_hits, mut total) = (0u64, 0u64, 0u64);
        let mut clock = 0;
        for &off in &offsets {
            for h in 0..handles {
                clock += 1;
                total += 1;
                if policy.observe(&mut records[h as usize], off, BLK, clock) >= 2 {
                    ph_hits += 1;
                }
                if pool.observe(h, off, BLK) >= 2 {
                    sp_hits += 1;
                }
            }
        }
        (budget, ph_hits, sp_hits, total, pool.live())
    });
    for (&(handles, s, _), &(budget, ph_hits, sp_hits, total, live)) in scenarios.iter().zip(&rows)
    {
        println!(
            "{:>8} {:>8} {:>8} | {:>14.1} | {:>14.1} | {:>12}",
            handles,
            s,
            budget,
            100.0 * ph_hits as f64 / total as f64,
            100.0 * sp_hits as f64 / total as f64,
            live
        );
    }
}
