//! Regenerates Figure 6: Always vs Default read-ahead, idle vs busy client.

use nfs_bench::{emit, scale, BASE_SEED, FIG6_REF};

fn main() {
    let fig = testbed::experiments::fig6_readahead_potential(scale(), BASE_SEED);
    emit(&fig, FIG6_REF);
}
