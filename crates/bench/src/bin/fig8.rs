//! Regenerates Figure 8: stride-read throughput, cursor vs default.

use nfs_bench::{emit, scale, BASE_SEED, TABLE1_REF};

fn main() {
    let fig = testbed::experiments::fig8_table1_stride(scale(), BASE_SEED);
    emit(&fig, TABLE1_REF);
}
