//! Degraded-disk extension: throughput and recovery under latent sector
//! errors and fail-slow regions, for every kernel I/O scheduler.
//!
//! The paper benchmarks healthy drives only; real fleets spend a
//! meaningful fraction of their life with a drive that is *partly*
//! broken — a defect cluster that costs retries, or a region whose
//! transfer rate has silently collapsed. This matrix shows what each
//! scheduler does with that: aggregate MB/s for 4 concurrent readers,
//! plus the bio layer's recovery books (retries, EIOs, worst attempt
//! count) proving errors are absorbed below the file system within the
//! bounded retry budget (`MAX_IO_RETRIES`).

use diskfault::{FaultPlan, FaultState};
use diskmodel::{DriveModel, PartitionTable};
use ffs::{FileSystem, FsConfig, IoStatus, OpDone, BLOCK_BYTES, MAX_IO_RETRIES};
use iosched::SchedulerKind;
use nfs_bench::BASE_SEED;
use simcore::{SimRng, SimTime};
use testbed::render_device_line;

const READERS: usize = 4;

const SCHEDULERS: [SchedulerKind; 5] = [
    SchedulerKind::Fcfs,
    SchedulerKind::Elevator,
    SchedulerKind::Scan,
    SchedulerKind::NCscan,
    SchedulerKind::Sstf,
];

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Healthy,
    FailSlow,
    SectorErrors,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Healthy => "healthy",
            Mode::FailSlow => "fail-slow",
            Mode::SectorErrors => "sector-errors",
        }
    }
}

struct Cell {
    mbs: f64,
    retries: u64,
    recovered: u64,
    eio: u64,
    max_attempts: u32,
    disk_line: String,
}

fn run_cell(sched: SchedulerKind, mode: Mode, per_mb: u64) -> Cell {
    let disk = DriveModel::WdWd200bbIde.build(SimRng::new(BASE_SEED));
    let part = PartitionTable::quarters(disk.geometry()).get(1);
    let mut fs = FileSystem::format(disk, part, sched, FsConfig::default());
    let mut rng = SimRng::from_seed_and_stream(BASE_SEED, 0xD15C);
    let blocks = per_mb * (1 << 20) / BLOCK_BYTES;
    let inos: Vec<u64> = (0..READERS)
        .map(|_| fs.create_file(blocks * BLOCK_BYTES, &mut rng))
        .collect();

    let plan = match mode {
        Mode::Healthy => FaultPlan::healthy(),
        Mode::FailSlow => {
            let (start, sectors) = fs.allocated_span();
            FaultPlan::seeded_fail_slow(&mut rng, start, sectors)
        }
        Mode::SectorErrors => {
            // Anchor the defect neighborhood inside the first reader's
            // extent so the sweep actually crosses it, and pin one hard
            // cluster three-quarters in so every cell also exercises the
            // EIO + spare-remap path, not just transient recovery.
            let ino = fs.inode(inos[0]).expect("created");
            let mut plan = FaultPlan::seeded_sector_errors(
                &mut rng,
                ino.lba_of(0),
                blocks * ffs::BLOCK_SECTORS,
            );
            plan.sector_errors.push(diskfault::ErrorCluster {
                start: ino.lba_of(blocks * 3 / 4),
                sectors: ffs::BLOCK_SECTORS,
                kind: diskmodel::DiskErrorKind::HardMedia,
                recovery_reads: 0,
                stall: simcore::SimDuration::from_millis(40),
            });
            plan
        }
    };
    if !plan.is_empty() {
        fs.bio_mut()
            .disk_mut()
            .set_fault_model(Some(Box::new(FaultState::new(plan))));
    }

    let mut tag = 0u64;
    for blk in 0..blocks {
        for (r, &ino) in inos.iter().enumerate() {
            fs.read(
                SimTime::ZERO,
                ino,
                blk * BLOCK_BYTES,
                BLOCK_BYTES,
                r as u32 + 1,
                tag,
            );
            tag += 1;
        }
    }
    let mut done: Vec<OpDone> = Vec::new();
    while let Some(t) = fs.next_event() {
        done.extend(fs.advance(t));
    }
    assert_eq!(
        done.len() as u64,
        blocks * READERS as u64,
        "lost completions"
    );
    let last = done.iter().map(|d| d.done_at).max().expect("non-empty run");
    let eio_ops = done.iter().filter(|d| d.status == IoStatus::Eio).count();
    let bytes = (blocks * READERS as u64 - eio_ops as u64) * BLOCK_BYTES;
    let bio = fs.bio().stats();
    assert!(
        bio.max_attempts <= MAX_IO_RETRIES,
        "{sched:?}/{}: retry budget exceeded",
        mode.label()
    );
    Cell {
        mbs: bytes as f64 / (1 << 20) as f64 / last.since(SimTime::ZERO).as_secs_f64(),
        retries: bio.retries,
        recovered: bio.recovered,
        eio: bio.eio,
        max_attempts: bio.max_attempts,
        disk_line: render_device_line(&fs.bio().device().report()),
    }
}

fn main() {
    let per_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 2,
        _ => 8,
    };
    println!("degraded-disk matrix: ide1, {READERS} readers x {per_mb} MB, seed {BASE_SEED}");
    println!(
        "{:<10} {:<14} | {:>8} | {:>7} | {:>9} | {:>4} | {:>12}",
        "scheduler", "mode", "MB/s", "retries", "recovered", "eio", "max attempts"
    );
    let mut cells = Vec::new();
    for sched in SCHEDULERS {
        for mode in [Mode::Healthy, Mode::FailSlow, Mode::SectorErrors] {
            cells.push((sched, mode));
        }
    }
    let rows = simfleet::map_indexed(&cells, |&(sched, mode)| run_cell(sched, mode, per_mb));
    for ((sched, mode), cell) in cells.iter().zip(&rows) {
        println!(
            "{:<10} {:<14} | {:>8.2} | {:>7} | {:>9} | {:>4} | {:>12}",
            format!("{sched:?}"),
            mode.label(),
            cell.mbs,
            cell.retries,
            cell.recovered,
            cell.eio,
            cell.max_attempts,
        );
        if *mode == Mode::SectorErrors && *sched == SchedulerKind::Elevator {
            println!("  {}", cell.disk_line);
        }
    }
}
