//! Extension: the device × policy grid — does the paper still give good
//! advice on flash?
//!
//! Cells: {HDD ide1, SSD tlc1} × {stock, paper-tricks (static), autotune}
//! across three workloads: sequential streams, random reads, and
//! sequential streams under metadata noise. With 16 streams the stock
//! 8-slot `nfsheur` table thrashes on its own (the paper's Figure 7
//! collapse); the noise files make the evictions adversarial.
//! "Paper tricks" is the paper's static software tuning: SlowDown
//! read-ahead plus the enlarged `nfsheur` table — measured, patched,
//! rebooted, and forever fixed whatever the device underneath does.
//! "Autotune" starts from stock and lets the online hill-climber
//! (crates/autotune) find its own knobs while the benchmark runs.

use autotune::{Controller, Knobs, TuneConfig, WindowedTuner};
use nfs_bench::BASE_SEED;
use nfssim::{NfsWorld, WorldConfig};
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use simcore::{LogHist, SimDuration, SimRng, SimTime};
use testbed::Rig;

const BLOCK: u64 = 8_192;
const STREAMS: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Stock,
    Static,
    Autotune,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Stock => "stock",
            Mode::Static => "paper-tricks",
            Mode::Autotune => "autotune",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Sequential,
    Random,
    MetaNoise,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::Sequential => "sequential",
            Workload::Random => "random",
            Workload::MetaNoise => "meta-noise",
        }
    }
}

struct Cell {
    mbs: f64,
    p99_ms: f64,
    note: String,
}

fn build_world(rig: Rig, mode: Mode, seed: u64) -> NfsWorld {
    let cfg = match mode {
        Mode::Static => WorldConfig {
            policy: ReadaheadPolicy::slowdown(),
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        },
        _ => WorldConfig::default(),
    };
    let fs = rig.build_fs(seed);
    NfsWorld::new(cfg, fs, seed)
}

fn run_cell(rig: Rig, mode: Mode, workload: Workload, file_mb: u64, seed: u64) -> Cell {
    let mut w = build_world(rig, mode, seed);
    let size = file_mb * (1 << 20);
    let fhs: Vec<_> = (0..STREAMS).map(|_| w.create_file(size)).collect();
    // Metadata noise: a population of small files whose GETATTR+READ
    // traffic evicts the streams' nfsheur slots.
    let noise: Vec<_> = if workload == Workload::MetaNoise {
        (0..32).map(|_| w.create_file(4 * BLOCK)).collect()
    } else {
        Vec::new()
    };
    let mut tuner = (mode == Mode::Autotune).then(|| {
        WindowedTuner::new(Controller::new(
            TuneConfig {
                window: SimDuration::from_millis(40),
                min_ops: 16,
                ..TuneConfig::default()
            },
            Knobs::stock(),
            SimRng::from_seed_and_stream(seed, 0x7u64),
        ))
    });
    let mut wrng = SimRng::from_seed_and_stream(seed, 0x6752_4944); // "GRID"
    let mut hist = LogHist::new();
    let mut data_bytes = 0u64;
    let mut now = SimTime::ZERO;
    let mut tag = 0u64;
    let blocks = size / BLOCK;

    // Drain until the round's `expect` issued ops complete; `now` tracks
    // the latest completion, not the event clock, so pending retransmit
    // timers and background read-ahead do not fast-forward the benchmark.
    let drain = |w: &mut NfsWorld,
                 now: &mut SimTime,
                 hist: &mut LogHist,
                 tuner: &mut Option<WindowedTuner>,
                 expect: usize| {
        let mut seen = 0usize;
        while seen < expect {
            let t = w.next_event().expect("issued ops must complete");
            let batch = w.advance(t);
            for d in &batch {
                *now = (*now).max(d.done_at);
                hist.add(d.done_at.since(d.issued_at).as_nanos());
                if let Some(tn) = tuner.as_mut() {
                    tn.record(d);
                }
            }
            seen += batch.len();
            if let Some(tn) = tuner.as_mut() {
                tn.poll(*now, w);
            }
        }
    };

    match workload {
        Workload::Sequential | Workload::MetaNoise => {
            for blk in 0..blocks {
                for fh in &fhs {
                    w.read(now, *fh, blk * BLOCK, BLOCK, tag);
                    tag += 1;
                    data_bytes += BLOCK;
                }
                let mut issued = STREAMS;
                if workload == Workload::MetaNoise {
                    for _ in 0..2 {
                        let nf = noise[wrng.gen_range(0usize..noise.len())];
                        w.getattr(now, nf, tag);
                        tag += 1;
                        let nblk = wrng.gen_range(0u64..4);
                        w.read(now, nf, nblk * BLOCK, BLOCK, tag);
                        tag += 1;
                        data_bytes += BLOCK;
                        issued += 2;
                    }
                }
                drain(&mut w, &mut now, &mut hist, &mut tuner, issued);
            }
        }
        Workload::Random => {
            // Same volume as sequential, scattered uniformly.
            for _ in 0..blocks {
                for fh in &fhs {
                    let blk = wrng.gen_range(0u64..blocks);
                    w.read(now, *fh, blk * BLOCK, BLOCK, tag);
                    tag += 1;
                    data_bytes += BLOCK;
                }
                drain(&mut w, &mut now, &mut hist, &mut tuner, STREAMS);
            }
        }
    }

    let mbs = data_bytes as f64 / (1 << 20) as f64 / now.as_secs_f64();
    let p99_ms = hist.quantile(0.99).unwrap_or(0) as f64 / 1e6;
    let report = w.device_report();
    let mut note = String::new();
    for (name, v) in &report.gauges {
        if *name == "gc runs" && *v > 0 {
            note.push_str(&format!("gc runs {v}; "));
        }
    }
    if let Some(tn) = tuner {
        let c = tn.controller();
        let (a, r) = c.accept_revert_counts();
        let k = c.knobs();
        note.push_str(&format!(
            "{a} accepted / {r} reverted -> ra={} sched={:?} slots={}",
            k.readahead_blocks, k.scheduler, k.heur_slots
        ));
    }
    Cell { mbs, p99_ms, note }
}

fn main() {
    let file_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 1,
        _ => 2,
    };
    println!("device grid: {STREAMS} streams x {file_mb} MB per workload, UDP, seed {BASE_SEED}");
    println!(
        "{:<6} {:<13} {:<11} | {:>8} | {:>9} | note",
        "device", "mode", "workload", "MB/s", "p99 ms"
    );
    let mut cells = Vec::new();
    for rig in [Rig::ide(1), Rig::ssd(1)] {
        for mode in [Mode::Stock, Mode::Static, Mode::Autotune] {
            for wl in [Workload::Sequential, Workload::Random, Workload::MetaNoise] {
                cells.push((rig, mode, wl));
            }
        }
    }
    let rows = simfleet::map_indexed(&cells, |(rig, mode, wl)| {
        run_cell(*rig, *mode, *wl, file_mb, BASE_SEED)
    });
    for ((rig, mode, wl), cell) in cells.iter().zip(&rows) {
        println!(
            "{:<6} {:<13} {:<11} | {:>8.2} | {:>9.2} | {}",
            rig.label(),
            mode.label(),
            wl.label(),
            cell.mbs,
            cell.p99_ms,
            cell.note
        );
    }

    // The SlowDown-on-SSD verdict: compare the static paper tricks
    // against stock on each device for the sequential workload.
    let get = |rig_label: &str, mode: Mode, wl: Workload| {
        cells
            .iter()
            .zip(&rows)
            .find(|((r, m, w), _)| r.label() == rig_label && *m == mode && *w == wl)
            .map(|(_, c)| c.mbs)
            .expect("cell present")
    };
    let hdd_gain = get("ide1", Mode::Static, Workload::Sequential)
        / get("ide1", Mode::Stock, Workload::Sequential);
    let ssd_gain = get("tlc1", Mode::Static, Workload::Sequential)
        / get("tlc1", Mode::Stock, Workload::Sequential);
    println!();
    println!(
        "paper-tricks sequential gain: HDD {hdd_gain:.2}x, SSD {ssd_gain:.2}x — \
         the static tricks were tuned for seek economics{}",
        if ssd_gain < hdd_gain {
            "; on flash most of their margin evaporates"
        } else {
            ""
        }
    );
}
