//! Extension: open-loop trace replay latency, per policy.
//!
//! Replays synthesized traces through the *entire* simulated installation
//! and reports request-latency percentiles — the evaluation one would run
//! against a production trace. Complements `trace_analysis`, which scores
//! the heuristics in isolation.

use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use nfstrace::{synth, Trace};
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use simcore::SimRng;
use testbed::{replay, Rig};

fn traces(scale_blocks: u64) -> Vec<(&'static str, Trace)> {
    let mut rng = SimRng::new(BASE_SEED);
    let sequential = synth::sequential(
        synth::SequentialSpec {
            files: 8,
            blocks_per_file: scale_blocks,
            ..synth::SequentialSpec::default()
        },
        &mut rng,
    );
    let (reordered, _) = synth::reorder(sequential.clone(), 0.06, &mut rng);
    let stride = synth::stride(4, scale_blocks * 4, 8_192, 300.0, &mut rng);
    let mixed = synth::with_metadata_noise(sequential.clone(), 0.3, &mut rng);
    vec![
        ("sequential x8", sequential),
        ("6% reordered", reordered),
        ("4-stride", stride),
        ("30% metadata", mixed),
    ]
}

fn main() {
    let blocks = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 128,
        _ => 512,
    };
    println!("open-loop trace replay: ide1, NFS/UDP, improved nfsheur");
    println!(
        "{:<16} {:<10} | {:>8} | {:>9} {:>9} {:>9}",
        "trace", "policy", "ops", "mean ms", "p50 ms", "p99 ms"
    );
    for (name, trace) in traces(blocks) {
        for policy in [
            ReadaheadPolicy::Default,
            ReadaheadPolicy::slowdown(),
            ReadaheadPolicy::cursor(),
        ] {
            let cfg = WorldConfig {
                policy,
                heur: NfsHeurConfig::improved(),
                ..WorldConfig::default()
            };
            let r = replay(Rig::ide(1), cfg, &trace, BASE_SEED);
            println!(
                "{:<16} {:<10} | {:>8} | {:>9.2} {:>9.2} {:>9.2}",
                name,
                policy.label(),
                r.ops,
                r.mean_ms,
                r.p50_ms,
                r.p99_ms
            );
        }
        println!();
    }
}
