//! The §5.4 transport trap, measured: UDP vs TCP throughput as frame loss
//! rises.
//!
//! At zero loss the two transports move identical wire traffic and UDP's
//! lower per-RPC CPU cost wins. Under loss the picture inverts: every
//! lost frame costs UDP a whole RPC (a ~1 s soft-mount retransmit after
//! fragmentation amplifies the frame loss into datagram loss), while TCP
//! retransmits single segments on its RTO/fast-retransmit ladder and the
//! RPC layer never notices. A benchmark that compares the transports only
//! on a clean LAN — the paper's warning — measures the CPU tax and none
//! of the recovery behaviour.

use netsim::TransportKind;
use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use testbed::{render_tcp_line, NfsBench, Rig};

const READERS: usize = 2;

/// Frame-loss rates for the matrix. 0.005 is the wireless-ish profile's
/// rate; 0.05 is a badly degraded path (amplified ~6x by 8 KB datagram
/// fragmentation on UDP).
const LOSS_RATES: [f64; 4] = [0.0, 0.002, 0.01, 0.05];

struct Cell {
    mbs: f64,
    rpc_retransmits: u64,
    rpc_timeouts: u64,
    tcp_lines: Option<(String, String)>,
}

fn run_cell(transport: TransportKind, frame_loss: f64, total_mb: u64) -> Cell {
    let mut cfg = WorldConfig {
        transport,
        ..WorldConfig::default()
    };
    cfg.link.frame_loss = frame_loss;
    let mut b = NfsBench::new(Rig::ide(1), cfg, &[READERS], total_mb, BASE_SEED);
    let mbs = b.run(READERS).throughput_mbs;
    let s = b.world().client_stats();
    Cell {
        mbs,
        rpc_retransmits: s.retransmits,
        rpc_timeouts: s.rpc_timeouts,
        tcp_lines: b
            .world()
            .tcp_stats_for(0)
            .map(|(c2s, s2c)| (render_tcp_line("c2s", &c2s), render_tcp_line("s2c", &s2c))),
    }
}

fn main() {
    let total_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 4,
        _ => 16,
    };
    println!(
        "transport-loss matrix: ide1, {READERS} readers x {} MB each, seed {BASE_SEED}",
        total_mb / READERS as u64
    );
    println!(
        "{:<10} {:<12} | {:>8} | {:>13} | {:>12}",
        "transport", "frame loss", "MB/s", "rpc retrans", "rpc timeouts"
    );
    let mut cells = Vec::new();
    for transport in [TransportKind::Udp, TransportKind::Tcp] {
        for loss in LOSS_RATES {
            cells.push((transport, loss));
        }
    }
    let rows = simfleet::map_indexed(&cells, |&(transport, loss)| {
        run_cell(transport, loss, total_mb)
    });
    for ((transport, loss), cell) in cells.iter().zip(&rows) {
        println!(
            "{:<10} {:<12} | {:>8.2} | {:>13} | {:>12}",
            format!("{transport:?}"),
            format!("{loss:.3}"),
            cell.mbs,
            cell.rpc_retransmits,
            cell.rpc_timeouts,
        );
        if let Some((c2s, s2c)) = &cell.tcp_lines {
            if *loss == LOSS_RATES[LOSS_RATES.len() - 1] {
                println!("  {c2s}");
                println!("  {s2c}");
            }
        }
    }
}
