//! Ablation: nfsheur table geometry (slots x probes).
//!
//! DESIGN.md calls out the table geometry as the paper's highest-leverage
//! change; this sweep shows throughput at 16 concurrent readers as the
//! table grows, with the Default heuristic held fixed.

use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use readahead_core::NfsHeurConfig;
use testbed::{NfsBench, Rig};

fn main() {
    let readers = 16;
    let total_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 32,
        _ => 256,
    };
    println!("nfsheur geometry ablation: ide1, NFS/UDP, {readers} readers, Default heuristic");
    println!(
        "{:>7} {:>7} | {:>12} | {:>10}",
        "slots", "probes", "MB/s", "ejections"
    );
    let mut cells = Vec::new();
    for slots in [8usize, 16, 64, 256, 1024] {
        for probes in [1usize, 2, 4, 8] {
            if probes > slots {
                continue;
            }
            cells.push((slots, probes));
        }
    }
    let rows = simfleet::map_indexed(&cells, |&(slots, probes)| {
        let cfg = WorldConfig {
            heur: NfsHeurConfig { slots, probes },
            ..WorldConfig::default()
        };
        let mut b = NfsBench::new(Rig::ide(1), cfg, &[readers], total_mb, BASE_SEED);
        let r = b.run(readers);
        (r.throughput_mbs, b.world().heur().stats().ejections)
    });
    for (&(slots, probes), &(mbs, ej)) in cells.iter().zip(&rows) {
        println!("{slots:>7} {probes:>7} | {mbs:>12.2} | {ej:>10}");
    }
}
