//! Regenerates Figure 7: SlowDown and the new nfsheur table.

use nfs_bench::{emit, scale, BASE_SEED, FIG7_REF};

fn main() {
    let fig = testbed::experiments::fig7_slowdown_nfsheur(scale(), BASE_SEED);
    emit(&fig, FIG7_REF);
}
