//! Extension: real-socket endpoint replay — wall-clock NFS latency over
//! loopback TCP, with the sim-vs-real differential check inline.
//!
//! Where `trace_replay` measures the *simulated* installation end to
//! end, this binary runs the same server stack behind a real ONC RPC /
//! TCP endpoint (`nfsd`), replays seed-derived traces through a real
//! socket client, and reports two things per workload: the wall-clock
//! latency the client measured, and whether the server's heuristic and
//! write-path books match a pure virtual-clock replay of the identical
//! trace (order-driven counters must be exact; gather flushes are
//! time-driven and only reported).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nfs_bench::BASE_SEED;
use nfsd::{
    bind, build_world, serve, sim_replay, DiffReport, Endpoint, ExportSpec, HeurBooks, NfsClient,
    WallClock,
};
use nfsproto::StableHow;
use nfssim::WorldConfig;
use nfstrace::{synth, TraceRecord};
use simcore::SimRng;
use testbed::render_endpoint_line;

fn workloads(blocks: u64) -> Vec<(&'static str, StableHow, Vec<TraceRecord>)> {
    let mut rng = SimRng::new(BASE_SEED);
    let spec = synth::SequentialSpec {
        files: 8,
        blocks_per_file: blocks,
        ..synth::SequentialSpec::default()
    };
    let sequential = synth::sequential(spec, &mut rng);
    let mixed = synth::with_metadata_noise(sequential.clone(), 0.25, &mut rng);
    vec![
        (
            "sequential x8 (sync)",
            StableHow::FileSync,
            sequential.records,
        ),
        ("25% metadata (async)", StableHow::Unstable, mixed.records),
    ]
}

fn main() {
    let blocks = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 32,
        _ => 128,
    };
    println!("# Real-socket endpoint replay (loopback TCP, {blocks} blocks/file)\n");

    for (i, (name, stable, trace)) in workloads(blocks).into_iter().enumerate() {
        let seed = BASE_SEED + i as u64;
        let config = WorldConfig {
            stable_how: stable,
            ..WorldConfig::default()
        };
        let export = ExportSpec {
            files: 8,
            file_size: blocks * 8_192,
        };

        let endpoint = Endpoint::new(build_world(config, seed), export);
        let (listener, local) = bind("127.0.0.1:0").expect("bind loopback");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let server =
            std::thread::spawn(move || serve(listener, endpoint, WallClock::start(), stop2));

        let mut client = NfsClient::connect(local).expect("connect");
        let stats = client.replay(&trace, stable, false).expect("replay");
        drop(client);
        std::thread::sleep(Duration::from_millis(120)); // drain gather windows
        stop.store(true, Ordering::Relaxed);
        let endpoint = server.join().expect("server thread");
        let real = HeurBooks::from_stats(&endpoint.world().server_stats());

        let mut world = build_world(config, seed);
        let ext = world.register_external_client();
        let exports: Vec<_> = (0..8)
            .map(|_| world.create_export_file(ext, blocks * 8_192))
            .collect();
        let sim = sim_replay(&mut world, &exports, &trace, stable);
        let report = DiffReport::diff(&sim, &real);

        println!("## {name} — {} calls", stats.calls);
        println!("{}", render_endpoint_line("read", &stats.read));
        println!("{}", render_endpoint_line("write", &stats.write));
        println!("{}", render_endpoint_line("meta", &stats.meta));
        println!(
            "diff vs virtual clock: {}",
            if report.passed() {
                "order-driven counters exact".to_string()
            } else {
                format!("MISMATCH\n{}", report.render())
            }
        );
        println!(
            "gather flushes: sim {} / real {} (time-driven, tolerated)\n",
            sim.gather_flushes, real.gather_flushes
        );
        assert!(report.passed(), "differential check failed for {name}");
    }
}
