//! Regenerates Table 1 in the paper's own layout.

use nfs_bench::{scale, BASE_SEED, TABLE1_REF};

fn main() {
    let fig = testbed::experiments::fig8_table1_stride(scale(), BASE_SEED);
    println!("{}", testbed::experiments::render_table1(&fig));
    println!("--- paper reference ---");
    println!("{TABLE1_REF}");
}
