//! Ablation: kernel disk scheduler matrix (local benchmark).
//!
//! §5.3 laments that operating systems do not let administrators pick a
//! scheduler per workload. Here the full matrix: throughput and fairness
//! (last/first completion ratio) for 8 concurrent readers on each rig.

use iosched::SchedulerKind;
use nfs_bench::BASE_SEED;
use testbed::{LocalBench, Rig};

fn main() {
    let per_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 4,
        _ => 32,
    };
    let readers = 8;
    println!("scheduler matrix: local, {readers} readers x {per_mb} MB");
    println!(
        "{:<22} {:<10} | {:>10} | {:>14}",
        "rig", "scheduler", "MB/s", "last/first"
    );
    // Every (rig, scheduler) cell is an independent run: fan them through
    // the simfleet pool and print in the original serial order.
    let mut cells = Vec::new();
    for rig_base in [Rig::ide(1), Rig::scsi(1).no_tags(), Rig::scsi(1)] {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Elevator,
            SchedulerKind::Scan,
            SchedulerKind::NCscan,
            SchedulerKind::Sstf,
        ] {
            cells.push((rig_base, kind));
        }
    }
    let rows = simfleet::map_indexed(&cells, |(rig_base, kind)| {
        let rig = rig_base.with_scheduler(*kind);
        let mut b = LocalBench::new(rig, &[readers], per_mb * readers as u64, BASE_SEED);
        let r = b.run(readers);
        let spread = r.completion_secs[readers - 1] / r.completion_secs[0];
        let label = if rig_base.tagged_queues {
            format!("{} (tags)", rig.label())
        } else {
            rig.label()
        };
        (label, r.throughput_mbs, spread)
    });
    for ((_, kind), (label, mbs, spread)) in cells.iter().zip(&rows) {
        println!(
            "{:<22} {:<10} | {:>10.2} | {:>14.2}",
            label,
            format!("{kind:?}"),
            mbs,
            spread
        );
    }
}
