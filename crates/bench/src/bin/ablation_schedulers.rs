//! Ablation: kernel disk scheduler matrix (local benchmark).
//!
//! §5.3 laments that operating systems do not let administrators pick a
//! scheduler per workload. Here the full matrix: throughput and fairness
//! (last/first completion ratio) for 8 concurrent readers on each rig.

use iosched::SchedulerKind;
use nfs_bench::BASE_SEED;
use testbed::{LocalBench, Rig};

fn main() {
    let per_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 4,
        _ => 32,
    };
    let readers = 8;
    println!("scheduler matrix: local, {readers} readers x {per_mb} MB");
    println!(
        "{:<22} {:<10} | {:>10} | {:>14}",
        "rig", "scheduler", "MB/s", "last/first"
    );
    for rig_base in [Rig::ide(1), Rig::scsi(1).no_tags(), Rig::scsi(1)] {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Elevator,
            SchedulerKind::Scan,
            SchedulerKind::NCscan,
            SchedulerKind::Sstf,
        ] {
            let rig = rig_base.with_scheduler(kind);
            let mut b = LocalBench::new(rig, &[readers], per_mb * readers as u64, BASE_SEED);
            let r = b.run(readers);
            let spread = r.completion_secs[readers - 1] / r.completion_secs[0];
            let label = if rig_base.tagged_queues {
                format!("{} (tags)", rig.label())
            } else {
                rig.label()
            };
            println!(
                "{:<22} {:<10} | {:>10.2} | {:>14.2}",
                label,
                format!("{kind:?}"),
                r.throughput_mbs,
                spread
            );
        }
    }
}
