//! Regenerates Figure 3: completion-time fairness, Elevator vs N-CSCAN.

use nfs_bench::{emit, scale, BASE_SEED, FIG3_REF};

fn main() {
    let fig = testbed::experiments::fig3_fairness(scale(), BASE_SEED);
    emit(&fig, FIG3_REF);
}
