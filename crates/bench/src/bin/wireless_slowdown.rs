//! Extension: SlowDown on a lossy, jittery network (§2's wireless NFS).
//!
//! "Dube et al. discuss the problems with NFS over wireless networks,
//! which typically suffer from packet loss and reordering at much higher
//! rates than our switched Ethernet testbed. We believe that our SlowDown
//! heuristic would be effective in this environment." This bench tests
//! that belief: reorder rates are cranked up via link jitter and loss, and
//! SlowDown's margin over Default is measured.

use netsim::LinkProfile;
use nfs_bench::BASE_SEED;
use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use testbed::{NfsBench, Rig};

fn main() {
    let readers = 8;
    let total_mb = match std::env::var("NFS_BENCH_SCALE").as_deref() {
        Ok("quick") => 16,
        _ => 64,
    };
    println!("lossy-network extension: ide1, NFS/UDP, {readers} readers");
    println!(
        "{:>10} {:>8} | {:>12} {:>12} {:>10} | {:>9}",
        "jitter", "loss", "default MB/s", "slowdn MB/s", "gain %", "reorder %"
    );
    for (jitter_us, loss) in [(2.0, 0.0), (100.0, 0.0), (300.0, 0.001), (800.0, 0.003)] {
        let link = LinkProfile {
            jitter: jitter_us * 1e-6,
            frame_loss: loss,
            ..LinkProfile::gigabit_lan()
        };
        let run = |policy| {
            let cfg = WorldConfig {
                policy,
                heur: NfsHeurConfig::improved(),
                link,
                retransmit_timeout: simcore::SimDuration::from_millis(100),
                ..WorldConfig::default()
            };
            let mut b = NfsBench::new(Rig::ide(1), cfg, &[readers], total_mb, BASE_SEED);
            let t = b.run(readers).throughput_mbs;
            let reorder = b.world().server_stats().reorder_fraction();
            (t, reorder)
        };
        let (d, _) = run(ReadaheadPolicy::Default);
        let (s, reorder) = run(ReadaheadPolicy::slowdown());
        println!(
            "{:>8}us {:>8.3} | {:>12.2} {:>12.2} {:>10.1} | {:>9.2}",
            jitter_us,
            loss,
            d,
            s,
            (s / d - 1.0) * 100.0,
            reorder * 100.0
        );
    }
}
