//! Machine-readable perf baselines.
//!
//! The micro and end-to-end benches emit their measurements as JSON
//! (`BENCH_micro.json` / `BENCH_e2e.json` at the repo root) so the repo
//! carries a perf trajectory instead of numbers buried in CI logs. The
//! writer and the (deliberately small) reader below are hand-rolled: the
//! workspace builds with zero external crates, and the only JSON we ever
//! parse is the JSON we ourselves wrote.

use std::fmt::Write as _;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Case name, e.g. `event_queue_schedule_pop_64`.
    pub name: String,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Iterations timed.
    pub iters: u64,
    /// The pre-optimization measurement this run is compared against,
    /// when one was recorded.
    pub baseline_ns_per_op: Option<f64>,
}

/// A full bench-suite report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Suite name (`micro` or `e2e`).
    pub suite: String,
    /// `full`, `quick`, or `test` — how many iterations were run.
    pub mode: String,
    /// Per-case measurements, in execution order.
    pub benches: Vec<BenchResult>,
}

impl PerfReport {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"{}\",", self.suite);
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        s.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"iters\": {}",
                b.name, b.ns_per_op, b.iters
            );
            if let Some(base) = b.baseline_ns_per_op {
                let _ = write!(s, ", \"baseline_ns_per_op\": {base:.1}");
            }
            s.push('}');
            if i + 1 < self.benches.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report previously produced by [`PerfReport::to_json`].
    ///
    /// This is not a general JSON parser: it understands exactly the
    /// subset the writer emits (string and number fields, no escapes,
    /// one bench object per line).
    pub fn parse(text: &str) -> Result<PerfReport, String> {
        let suite = take_string_field(text, "suite").ok_or("missing \"suite\"")?;
        let mode = take_string_field(text, "mode").ok_or("missing \"mode\"")?;
        let mut benches = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with('{') || !line.contains("\"name\"") {
                continue;
            }
            let name =
                take_string_field(line, "name").ok_or_else(|| format!("bad line: {line}"))?;
            let ns_per_op = take_number_field(line, "ns_per_op")
                .ok_or_else(|| format!("missing ns_per_op: {line}"))?;
            let iters = take_number_field(line, "iters")
                .ok_or_else(|| format!("missing iters: {line}"))? as u64;
            let baseline_ns_per_op = take_number_field(line, "baseline_ns_per_op");
            benches.push(BenchResult {
                name,
                ns_per_op,
                iters,
                baseline_ns_per_op,
            });
        }
        Ok(PerfReport {
            suite,
            mode,
            benches,
        })
    }

    /// Looks up a case by name.
    pub fn get(&self, name: &str) -> Option<&BenchResult> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Compares this run against a checked-in report: returns one message
    /// per case whose name starts with any of `prefixes` and whose
    /// current ns/op exceeds `factor` times the recorded ns/op. An empty
    /// vector means the gate passes. Cases present in only one of the two
    /// reports are ignored (the gate guards regressions, not coverage).
    pub fn regressions_vs(
        &self,
        recorded: &PerfReport,
        prefixes: &[&str],
        factor: f64,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for b in &self.benches {
            if !prefixes.iter().any(|p| b.name.starts_with(p)) {
                continue;
            }
            let Some(rec) = recorded.get(&b.name) else {
                continue;
            };
            if rec.ns_per_op > 0.0 && b.ns_per_op > rec.ns_per_op * factor {
                out.push(format!(
                    "{}: {:.1} ns/op is more than {factor}x the recorded {:.1} ns/op",
                    b.name, b.ns_per_op, rec.ns_per_op
                ));
            }
        }
        out
    }
}

fn take_string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_string())
}

fn take_number_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            suite: "micro".into(),
            mode: "full".into(),
            benches: vec![
                BenchResult {
                    name: "event_queue_schedule_pop_64".into(),
                    ns_per_op: 1500.5,
                    iters: 2000,
                    baseline_ns_per_op: Some(2077.4),
                },
                BenchResult {
                    name: "xdr_encode_read_call".into(),
                    ns_per_op: 80.0,
                    iters: 200_000,
                    baseline_ns_per_op: None,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let parsed = PerfReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn regression_gate_fires_only_on_matching_prefixes() {
        let recorded = sample();
        let mut current = sample();
        current.benches[0].ns_per_op = 10_000.0; // 6.7x the recorded value
        current.benches[1].ns_per_op = 10_000.0; // huge, but not gated
        let v = current.regressions_vs(&recorded, &["event_queue", "nfsheur"], 3.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("event_queue_schedule_pop_64"));
        let ok = recorded.regressions_vs(&recorded, &["event_queue"], 3.0);
        assert!(ok.is_empty());
    }

    #[test]
    fn unknown_cases_are_ignored_by_the_gate() {
        let recorded = sample();
        let current = PerfReport {
            suite: "micro".into(),
            mode: "quick".into(),
            benches: vec![BenchResult {
                name: "event_queue_brand_new_case".into(),
                ns_per_op: 1e9,
                iters: 1,
                baseline_ns_per_op: None,
            }],
        };
        assert!(current
            .regressions_vs(&recorded, &["event_queue"], 3.0)
            .is_empty());
    }
}
