//! Micro-benchmarks of the hot data structures (ns/op of the Rust
//! implementation), distinct from the figure-regeneration binaries, which
//! measure *simulated* time.
//!
//! Hand-rolled harness (no external bench crate, so the workspace builds
//! offline): each case is warmed up, then timed over enough iterations to
//! smooth scheduler noise. Run with `cargo bench -p nfs-bench --bench micro`.
//! Under `cargo test` each case runs once as a smoke test.

use std::hint::black_box;
use std::time::Instant;

use diskmodel::{CacheConfig, DiskRequest, DriveModel, Replacement, SegmentedCache};
use ffs::BufferCache;
use iosched::{IoScheduler, QueuedRequest, SchedulerKind};
use nfsproto::{FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus};
use readahead_core::{HeurRecord, NfsHeur, NfsHeurConfig, ReadaheadPolicy, SharedCursorPool};
use simcore::{EventQueue, SimRng, SimTime};

/// Times `iters` runs of `f` and prints mean ns/op.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    // Warm-up.
    for _ in 0..iters.min(1_000) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {ns:>12.1} ns/op   ({iters} iters)");
}

fn bench_heuristics(iters: u64) {
    for policy in [
        ReadaheadPolicy::Default,
        ReadaheadPolicy::Always,
        ReadaheadPolicy::slowdown(),
        ReadaheadPolicy::cursor(),
    ] {
        let mut rec = HeurRecord::fresh(0, 0);
        let mut off = 0u64;
        let mut clock = 0u64;
        bench(
            &format!("heuristic_observe/{}", policy.label()),
            iters,
            || {
                clock += 1;
                // Mostly sequential with a jump every 13 observations.
                off = if clock.is_multiple_of(13) {
                    off + (1 << 20)
                } else {
                    off + 8_192
                };
                black_box(policy.observe(&mut rec, off, 8_192, clock));
            },
        );
    }
}

fn bench_nfsheur(iters: u64) {
    let p = ReadaheadPolicy::slowdown();
    let mut t = NfsHeur::new(NfsHeurConfig::freebsd_default());
    t.observe(1, 0, 8_192, &p);
    let mut off = 8_192u64;
    bench("nfsheur/hit_default_table", iters, || {
        off += 8_192;
        black_box(t.observe(1, off, 8_192, &p));
    });

    let mut t = NfsHeur::new(NfsHeurConfig::freebsd_default());
    let mut k = 0u64;
    bench("nfsheur/thrash_default_table", iters, || {
        k += 1;
        black_box(t.observe(k % 64, 0, 8_192, &p));
    });

    let mut t = NfsHeur::new(NfsHeurConfig::improved());
    let mut k = 0u64;
    let mut off = 0u64;
    bench("nfsheur/hit_improved_table", iters, || {
        k += 1;
        off += 8_192;
        black_box(t.observe(k % 32, off, 8_192, &p));
    });
}

fn bench_shared_pool(iters: u64) {
    let mut pool = SharedCursorPool::new(64, 64 * 1024);
    let mut k = 0u64;
    let mut off = 0u64;
    bench("shared_pool_observe", iters, || {
        k += 1;
        off += 8_192;
        black_box(pool.observe(k % 8, off, 8_192));
    });
}

fn bench_schedulers(iters: u64) {
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Elevator,
        SchedulerKind::NCscan,
        SchedulerKind::Sstf,
    ] {
        bench(&format!("iosched_enqueue_dispatch/{kind:?}"), iters, || {
            let mut s = kind.build();
            for i in 0..64u64 {
                s.enqueue(QueuedRequest {
                    req: DiskRequest::read((i * 7_919) % 1_000_000, 16, i),
                    queued_at: SimTime::ZERO,
                    seq: i,
                });
            }
            let mut head = 0;
            while let Some(q) = s.dispatch(head) {
                head = q.req.end();
                black_box(&q);
            }
        });
    }
}

fn bench_event_queue(iters: u64) {
    bench("event_queue_schedule_pop_64", iters, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
        }
        let mut acc = 0;
        while let Some((_, e)) = q.pop() {
            acc ^= e;
        }
        black_box(acc);
    });
}

fn bench_xdr(iters: u64) {
    let fh = FileHandle {
        fsid: 1,
        ino: 42,
        generation: 1,
    };
    let call = NfsCall::Read {
        fh,
        offset: 1 << 20,
        count: 8_192,
    };
    let encoded = call.encode(7);
    bench("xdr_encode_read_call", iters, || {
        black_box(call.encode(black_box(7)));
    });
    bench("xdr_decode_read_call", iters, || {
        black_box(NfsCall::decode(black_box(&encoded)).expect("valid"));
    });
    let reply = NfsReply::Read {
        status: NfsStatus::Ok,
        count: 8_192,
        eof: false,
    };
    let renc = reply.encode(7);
    bench("xdr_decode_read_reply", iters, || {
        black_box(NfsReply::decode(NfsProc::Read, black_box(&renc)).expect("valid"));
    });
}

fn bench_buffer_cache(iters: u64) {
    let mut bc = BufferCache::new(4_096);
    for blk in 0..1_024u64 {
        bc.fill((1, blk));
    }
    let mut blk = 0u64;
    bench("buffer_cache_hit", iters, || {
        blk = (blk + 1) % 1_024;
        black_box(bc.lookup((1, blk)));
    });

    let mut bc = BufferCache::new(256);
    let mut blk = 0u64;
    bench("buffer_cache_evicting_fill", iters, || {
        blk += 1;
        bc.fill((1, blk));
    });
}

fn bench_drive_cache(iters: u64) {
    let mut sc = SegmentedCache::new(
        CacheConfig {
            segments: 16,
            segment_sectors: 512,
            replacement: Replacement::Lru,
        },
        SimRng::new(1),
    );
    for s in 0..16u64 {
        sc.insert_after_read(SimTime::ZERO, s * 1_000_000, 128, 70_000.0);
    }
    let mut i = 0u64;
    bench("segmented_cache_lookup", iters, || {
        i += 1;
        black_box(sc.lookup(SimTime::from_nanos(i), (i % 16) * 1_000_000, 16));
    });
}

fn bench_disk_service(iters: u64) {
    bench("disk_submit_advance_sequential", iters, || {
        let mut d = DriveModel::IbmDdysScsi.build(SimRng::new(3));
        let mut lba = 0;
        for i in 0..32u64 {
            d.submit(SimTime::ZERO, DiskRequest::read(lba, 128, i));
            lba += 128;
        }
        while let Some(t) = d.next_completion() {
            black_box(d.advance(t));
        }
    });
}

fn main() {
    // `cargo test` runs bench targets as smoke tests with `--test`; keep
    // that fast by collapsing to one iteration per case.
    let testing = std::env::args().any(|a| a == "--test");
    let fast = if testing { 1 } else { 200_000 };
    let slow = if testing { 1 } else { 2_000 };
    bench_heuristics(fast);
    bench_nfsheur(fast);
    bench_shared_pool(fast);
    bench_schedulers(slow);
    bench_event_queue(slow);
    bench_xdr(fast);
    bench_buffer_cache(fast);
    bench_drive_cache(fast);
    bench_disk_service(slow);
}
