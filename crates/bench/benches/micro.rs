//! Criterion micro-benchmarks of the hot data structures.
//!
//! These are *code* benchmarks (ns/op of the Rust implementation), distinct
//! from the figure-regeneration binaries, which measure *simulated* time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use diskmodel::{CacheConfig, Disk, DiskRequest, DriveModel, Replacement, SegmentedCache};
use ffs::BufferCache;
use iosched::{IoScheduler, QueuedRequest, SchedulerKind};
use nfsproto::{FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus};
use readahead_core::{HeurRecord, NfsHeur, NfsHeurConfig, ReadaheadPolicy, SharedCursorPool};
use simcore::{EventQueue, SimRng, SimTime};

fn bench_heuristics(c: &mut Criterion) {
    let mut g = c.benchmark_group("heuristic_observe");
    for policy in [
        ReadaheadPolicy::Default,
        ReadaheadPolicy::Always,
        ReadaheadPolicy::slowdown(),
        ReadaheadPolicy::cursor(),
    ] {
        g.bench_function(policy.label(), |b| {
            let mut rec = HeurRecord::fresh(0, 0);
            let mut off = 0u64;
            let mut clock = 0u64;
            b.iter(|| {
                clock += 1;
                // Mostly sequential with a jump every 13 observations.
                off = if clock % 13 == 0 { off + 1 << 20 } else { off + 8_192 };
                black_box(policy.observe(&mut rec, off, 8_192, clock))
            });
        });
    }
    g.finish();
}

fn bench_nfsheur(c: &mut Criterion) {
    let mut g = c.benchmark_group("nfsheur");
    g.bench_function("hit_default_table", |b| {
        let mut t = NfsHeur::new(NfsHeurConfig::freebsd_default());
        let p = ReadaheadPolicy::slowdown();
        t.observe(1, 0, 8_192, &p);
        let mut off = 8_192u64;
        b.iter(|| {
            off += 8_192;
            black_box(t.observe(1, off, 8_192, &p))
        });
    });
    g.bench_function("thrash_default_table", |b| {
        let mut t = NfsHeur::new(NfsHeurConfig::freebsd_default());
        let p = ReadaheadPolicy::slowdown();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(t.observe(k % 64, 0, 8_192, &p))
        });
    });
    g.bench_function("hit_improved_table", |b| {
        let mut t = NfsHeur::new(NfsHeurConfig::improved());
        let p = ReadaheadPolicy::slowdown();
        let mut k = 0u64;
        let mut off = 0u64;
        b.iter(|| {
            k += 1;
            off += 8_192;
            black_box(t.observe(k % 32, off, 8_192, &p))
        });
    });
    g.finish();
}

fn bench_shared_pool(c: &mut Criterion) {
    c.bench_function("shared_pool_observe", |b| {
        let mut pool = SharedCursorPool::new(64, 64 * 1024);
        let mut k = 0u64;
        let mut off = 0u64;
        b.iter(|| {
            k += 1;
            off += 8_192;
            black_box(pool.observe(k % 8, off, 8_192))
        });
    });
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("iosched_enqueue_dispatch");
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Elevator,
        SchedulerKind::NCscan,
        SchedulerKind::Sstf,
    ] {
        g.bench_function(format!("{kind:?}"), |b| {
            b.iter_batched(
                || {
                    let mut s = kind.build();
                    for i in 0..64u64 {
                        s.enqueue(QueuedRequest {
                            req: DiskRequest::read((i * 7_919) % 1_000_000, 16, i),
                            queued_at: SimTime::ZERO,
                            seq: i,
                        });
                    }
                    s
                },
                |mut s| {
                    let mut head = 0;
                    while let Some(q) = s.dispatch(head) {
                        head = q.req.end();
                        black_box(q);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_64", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..64u64 {
                q.schedule_at(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut acc = 0;
            while let Some((_, e)) = q.pop() {
                acc ^= e;
            }
            black_box(acc)
        });
    });
}

fn bench_xdr(c: &mut Criterion) {
    let fh = FileHandle {
        fsid: 1,
        ino: 42,
        generation: 1,
    };
    let call = NfsCall::Read {
        fh,
        offset: 1 << 20,
        count: 8_192,
    };
    let encoded = call.encode(7);
    c.bench_function("xdr_encode_read_call", |b| {
        b.iter(|| black_box(call.encode(black_box(7))));
    });
    c.bench_function("xdr_decode_read_call", |b| {
        b.iter(|| black_box(NfsCall::decode(black_box(&encoded)).expect("valid")));
    });
    let reply = NfsReply::Read {
        status: NfsStatus::Ok,
        count: 8_192,
        eof: false,
    };
    let renc = reply.encode(7);
    c.bench_function("xdr_decode_read_reply", |b| {
        b.iter(|| black_box(NfsReply::decode(NfsProc::Read, black_box(&renc)).expect("valid")));
    });
}

fn bench_buffer_cache(c: &mut Criterion) {
    c.bench_function("buffer_cache_hit", |b| {
        let mut bc = BufferCache::new(4_096);
        for blk in 0..1_024u64 {
            bc.fill((1, blk));
        }
        let mut blk = 0u64;
        b.iter(|| {
            blk = (blk + 1) % 1_024;
            black_box(bc.lookup((1, blk)))
        });
    });
    c.bench_function("buffer_cache_evicting_fill", |b| {
        let mut bc = BufferCache::new(256);
        let mut blk = 0u64;
        b.iter(|| {
            blk += 1;
            bc.fill((1, blk));
        });
    });
}

fn bench_drive_cache(c: &mut Criterion) {
    c.bench_function("segmented_cache_lookup", |b| {
        let mut sc = SegmentedCache::new(
            CacheConfig {
                segments: 16,
                segment_sectors: 512,
                replacement: Replacement::Lru,
            },
            SimRng::new(1),
        );
        for s in 0..16u64 {
            sc.insert_after_read(SimTime::ZERO, s * 1_000_000, 128, 70_000.0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(sc.lookup(SimTime::from_nanos(i), (i % 16) * 1_000_000, 16))
        });
    });
}

fn bench_disk_service(c: &mut Criterion) {
    c.bench_function("disk_submit_advance_sequential", |b| {
        b.iter_batched(
            || DriveModel::IbmDdysScsi.build(SimRng::new(3)),
            |mut d: Disk| {
                let mut lba = 0;
                for i in 0..32u64 {
                    d.submit(SimTime::ZERO, DiskRequest::read(lba, 128, i));
                    lba += 128;
                }
                while let Some(t) = d.next_completion() {
                    black_box(d.advance(t));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_heuristics,
    bench_nfsheur,
    bench_shared_pool,
    bench_schedulers,
    bench_event_queue,
    bench_xdr,
    bench_buffer_cache,
    bench_drive_cache,
    bench_disk_service
);
criterion_main!(benches);
