//! Micro-benchmarks of the hot data structures (ns/op of the Rust
//! implementation), distinct from the figure-regeneration binaries, which
//! measure *simulated* time.
//!
//! Hand-rolled harness (no external bench crate, so the workspace builds
//! offline): each case is warmed up, then timed over enough iterations to
//! smooth scheduler noise. Run with `cargo bench -p nfs-bench --bench micro`.
//! Under `cargo test` each case runs once as a smoke test.

use std::hint::black_box;
use std::time::Instant;

use diskmodel::{CacheConfig, DiskRequest, DriveModel, Replacement, SegmentedCache};
use ffs::BufferCache;
use iosched::{IoScheduler, QueuedRequest, SchedulerKind};
use nfs_bench::perf::{BenchResult, PerfReport};
use nfsproto::{FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus};
use readahead_core::{HeurRecord, NfsHeur, NfsHeurConfig, ReadaheadPolicy, SharedCursorPool};
use simcore::{EventQueue, SimRng, SimTime};

/// Times `iters` runs of `f`, prints mean ns/op, and records the result.
fn bench(out: &mut Vec<BenchResult>, name: &str, iters: u64, mut f: impl FnMut()) {
    // Warm-up.
    for _ in 0..iters.min(1_000) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {ns:>12.1} ns/op   ({iters} iters)");
    out.push(BenchResult {
        name: name.to_string(),
        ns_per_op: ns,
        iters,
        baseline_ns_per_op: None,
    });
}

fn bench_heuristics(out: &mut Vec<BenchResult>, iters: u64) {
    for policy in [
        ReadaheadPolicy::Default,
        ReadaheadPolicy::Always,
        ReadaheadPolicy::slowdown(),
        ReadaheadPolicy::cursor(),
    ] {
        let mut rec = HeurRecord::fresh(0, 0);
        let mut off = 0u64;
        let mut clock = 0u64;
        bench(
            out,
            &format!("heuristic_observe/{}", policy.label()),
            iters,
            || {
                clock += 1;
                // Mostly sequential with a jump every 13 observations.
                off = if clock.is_multiple_of(13) {
                    off + (1 << 20)
                } else {
                    off + 8_192
                };
                black_box(policy.observe(&mut rec, off, 8_192, clock));
            },
        );
    }
}

fn bench_nfsheur(out: &mut Vec<BenchResult>, iters: u64) {
    let p = ReadaheadPolicy::slowdown();
    let mut t = NfsHeur::new(NfsHeurConfig::freebsd_default());
    t.observe(1, 0, 8_192, &p);
    let mut off = 8_192u64;
    bench(out, "nfsheur/hit_default_table", iters, || {
        off += 8_192;
        black_box(t.observe(1, off, 8_192, &p));
    });

    let mut t = NfsHeur::new(NfsHeurConfig::freebsd_default());
    let mut k = 0u64;
    bench(out, "nfsheur/thrash_default_table", iters, || {
        k += 1;
        black_box(t.observe(k % 64, 0, 8_192, &p));
    });

    let mut t = NfsHeur::new(NfsHeurConfig::improved());
    let mut k = 0u64;
    let mut off = 0u64;
    bench(out, "nfsheur/hit_improved_table", iters, || {
        k += 1;
        off += 8_192;
        black_box(t.observe(k % 32, off, 8_192, &p));
    });
}

fn bench_shared_pool(out: &mut Vec<BenchResult>, iters: u64) {
    let mut pool = SharedCursorPool::new(64, 64 * 1024);
    let mut k = 0u64;
    let mut off = 0u64;
    bench(out, "shared_pool_observe", iters, || {
        k += 1;
        off += 8_192;
        black_box(pool.observe(k % 8, off, 8_192));
    });
}

fn bench_schedulers(out: &mut Vec<BenchResult>, iters: u64) {
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Elevator,
        SchedulerKind::NCscan,
        SchedulerKind::Sstf,
    ] {
        bench(
            out,
            &format!("iosched_enqueue_dispatch/{kind:?}"),
            iters,
            || {
                let mut s = kind.build();
                for i in 0..64u64 {
                    s.enqueue(QueuedRequest {
                        req: DiskRequest::read((i * 7_919) % 1_000_000, 16, i),
                        queued_at: SimTime::ZERO,
                        seq: i,
                    });
                }
                let mut head = 0;
                while let Some(q) = s.dispatch(head) {
                    head = q.req.end();
                    black_box(&q);
                }
            },
        );
    }
}

fn bench_event_queue(out: &mut Vec<BenchResult>, iters: u64) {
    bench(out, "event_queue_schedule_pop_64", iters, || {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
        }
        let mut acc = 0;
        while let Some((_, e)) = q.pop() {
            acc ^= e;
        }
        black_box(acc);
    });
}

fn bench_xdr(out: &mut Vec<BenchResult>, iters: u64) {
    let fh = FileHandle {
        fsid: 1,
        ino: 42,
        generation: 1,
    };
    let call = NfsCall::Read {
        fh,
        offset: 1 << 20,
        count: 8_192,
    };
    let encoded = call.encode(7);
    bench(out, "xdr_encode_read_call", iters, || {
        black_box(call.encode(black_box(7)));
    });
    bench(out, "xdr_decode_read_call", iters, || {
        black_box(NfsCall::decode(black_box(&encoded)).expect("valid"));
    });
    let reply = NfsReply::Read {
        status: NfsStatus::Ok,
        count: 8_192,
        eof: false,
    };
    let renc = reply.encode(7);
    bench(out, "xdr_decode_read_reply", iters, || {
        black_box(NfsReply::decode(NfsProc::Read, black_box(&renc)).expect("valid"));
    });
}

fn bench_buffer_cache(out: &mut Vec<BenchResult>, iters: u64) {
    let mut bc = BufferCache::new(4_096);
    for blk in 0..1_024u64 {
        bc.fill((1, blk));
    }
    let mut blk = 0u64;
    bench(out, "buffer_cache_hit", iters, || {
        blk = (blk + 1) % 1_024;
        black_box(bc.lookup((1, blk)));
    });

    let mut bc = BufferCache::new(256);
    let mut blk = 0u64;
    bench(out, "buffer_cache_evicting_fill", iters, || {
        blk += 1;
        bc.fill((1, blk));
    });
}

fn bench_drive_cache(out: &mut Vec<BenchResult>, iters: u64) {
    let mut sc = SegmentedCache::new(
        CacheConfig {
            segments: 16,
            segment_sectors: 512,
            replacement: Replacement::Lru,
        },
        SimRng::new(1),
    );
    for s in 0..16u64 {
        sc.insert_after_read(SimTime::ZERO, s * 1_000_000, 128, 70_000.0);
    }
    let mut i = 0u64;
    bench(out, "segmented_cache_lookup", iters, || {
        i += 1;
        black_box(sc.lookup(SimTime::from_nanos(i), (i % 16) * 1_000_000, 16));
    });
}

fn bench_disk_service(out: &mut Vec<BenchResult>, iters: u64) {
    bench(out, "disk_submit_advance_sequential", iters, || {
        let mut d = DriveModel::IbmDdysScsi.build(SimRng::new(3));
        let mut lba = 0;
        for i in 0..32u64 {
            d.submit(SimTime::ZERO, DiskRequest::read(lba, 128, i));
            lba += 128;
        }
        while let Some(t) = d.next_completion() {
            black_box(d.advance(t));
        }
    });
}

/// Flags understood by this harness (all optional, combinable):
///
/// * `--test`   — one iteration per case (`cargo test` smoke mode);
/// * `--quick`  — 10x fewer iterations (CI perf-smoke mode);
/// * `--json P` — write the measurements to `P` as JSON;
/// * `--baseline P` — copy `ns_per_op` from the report at `P` into this
///   run's output as `baseline_ns_per_op` (before/after provenance);
/// * `--check P` — exit non-zero if any `event_queue*`/`nfsheur*` case
///   runs more than 3x slower than the report at `P` records.
struct Options {
    testing: bool,
    quick: bool,
    json_out: Option<String>,
    baseline: Option<String>,
    check: Option<String>,
}

fn parse_options() -> Options {
    let mut o = Options {
        testing: false,
        quick: false,
        json_out: None,
        baseline: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => o.testing = true,
            "--quick" => o.quick = true,
            "--json" => o.json_out = args.next(),
            "--baseline" => o.baseline = args.next(),
            "--check" => o.check = args.next(),
            "--bench" => {} // passed through by `cargo bench`
            other => eprintln!("# ignoring unknown argument: {other}"),
        }
    }
    o
}

fn load_report(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read perf report {path}: {e}"));
    PerfReport::parse(&text).unwrap_or_else(|e| panic!("cannot parse perf report {path}: {e}"))
}

/// Hot-path cases gated by `--check`; the tentpole's regression fence.
const GATED_PREFIXES: &[&str] = &["event_queue", "nfsheur"];
const GATE_FACTOR: f64 = 3.0;

fn main() {
    let o = parse_options();
    let (fast, slow) = if o.testing {
        (1, 1)
    } else if o.quick {
        (20_000, 200)
    } else {
        (200_000, 2_000)
    };
    let mut results = Vec::new();
    let out = &mut results;
    bench_heuristics(out, fast);
    bench_nfsheur(out, fast);
    bench_shared_pool(out, fast);
    bench_schedulers(out, slow);
    bench_event_queue(out, slow);
    bench_xdr(out, fast);
    bench_buffer_cache(out, fast);
    bench_drive_cache(out, fast);
    bench_disk_service(out, slow);

    let mut report = PerfReport {
        suite: "micro".to_string(),
        mode: if o.testing {
            "test"
        } else if o.quick {
            "quick"
        } else {
            "full"
        }
        .to_string(),
        benches: results,
    };
    if let Some(path) = &o.baseline {
        let base = load_report(path);
        for b in &mut report.benches {
            b.baseline_ns_per_op = base.get(&b.name).map(|r| r.ns_per_op);
        }
    }
    if let Some(path) = &o.json_out {
        std::fs::write(path, report.to_json()).expect("write perf json");
        eprintln!("# wrote {path}");
    }
    if let Some(path) = &o.check {
        let recorded = load_report(path);
        let violations = report.regressions_vs(&recorded, GATED_PREFIXES, GATE_FACTOR);
        if violations.is_empty() {
            eprintln!("# perf gate ok vs {path} (prefixes {GATED_PREFIXES:?}, {GATE_FACTOR}x)");
        } else {
            for v in &violations {
                eprintln!("PERF REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
