//! Criterion end-to-end benchmarks: how fast the *simulator* runs.
//!
//! Wall-clock cost of simulating small instances of the paper's workloads;
//! useful for catching performance regressions in the event loop, the disk
//! model, or the NFS pipeline. (The figures themselves report *simulated*
//! throughput and live in the `fig*` binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use testbed::{LocalBench, NfsBench, Rig, StrideBench};

fn bench_local_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_local");
    g.sample_size(10);
    g.bench_function("ide1_4_readers_8mb", |b| {
        b.iter(|| {
            let mut bench = LocalBench::new(Rig::ide(1), &[4], 8, 1);
            black_box(bench.run(4).throughput_mbs)
        });
    });
    g.finish();
}

fn bench_nfs_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_nfs");
    g.sample_size(10);
    g.bench_function("udp_4_readers_8mb", |b| {
        b.iter(|| {
            let mut bench =
                NfsBench::new(Rig::ide(1), WorldConfig::default(), &[4], 8, 1);
            black_box(bench.run(4).throughput_mbs)
        });
    });
    g.finish();
}

fn bench_stride_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_stride");
    g.sample_size(10);
    let cfg = WorldConfig {
        policy: ReadaheadPolicy::cursor(),
        heur: NfsHeurConfig::improved(),
        ..WorldConfig::default()
    };
    g.bench_function("cursor_s4_8mb", |b| {
        b.iter(|| {
            let mut bench = StrideBench::new(Rig::scsi(1), cfg, 8, 1);
            black_box(bench.run(4))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_local_run, bench_nfs_run, bench_stride_run);
criterion_main!(benches);
