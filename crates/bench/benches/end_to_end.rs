//! End-to-end benchmarks: how fast the *simulator* runs.
//!
//! Wall-clock cost of simulating small instances of the paper's workloads;
//! useful for catching performance regressions in the event loop, the disk
//! model, or the NFS pipeline. (The figures themselves report *simulated*
//! throughput and live in the `fig*` binaries.)
//!
//! Hand-rolled harness (no external bench crate, so the workspace builds
//! offline). Run with `cargo bench -p nfs-bench --bench end_to_end`.
//! Flags: `--test` (one iteration), `--quick` (fewer iterations),
//! `--json PATH` (machine-readable report), `--baseline PATH` (attach
//! recorded numbers as `baseline_ns_per_op`), `--check PATH` (exit
//! non-zero if any case runs more than 3x slower than the report at
//! `PATH` — the CI fence for the simulator's own speed, `BENCH_e2e.json`
//! at the repo root).

use std::hint::black_box;
use std::time::Instant;

use nfs_bench::perf::{BenchResult, PerfReport};
use nfscluster::{ClusterBench, ClusterConfig, FleetConfig, FleetReport, FleetWorld};
use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use testbed::{LocalBench, NfsBench, Rig, StrideBench};

fn bench(out: &mut Vec<BenchResult>, name: &str, iters: u64, mut f: impl FnMut()) {
    f(); // Warm-up.
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ms = elapsed.as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<32} {ms:>10.2} ms/run   ({iters} iters)");
    out.push(BenchResult {
        name: name.to_string(),
        ns_per_op: elapsed.as_nanos() as f64 / iters as f64,
        iters,
        baseline_ns_per_op: None,
    });
}

/// Every e2e case is gated by `--check`; the simulator has no cold paths
/// worth exempting here.
const GATED_PREFIXES: &[&str] = &[
    "simulate", "cluster", "degraded", "ssd", "autotune", "metadata", "attr",
];
const GATE_FACTOR: f64 = 3.0;

fn main() {
    let mut testing = false;
    let mut quick = false;
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => testing = true,
            "--quick" => quick = true,
            "--json" => json_out = args.next(),
            "--baseline" => baseline = args.next(),
            "--check" => check = args.next(),
            "--bench" => {}
            other => eprintln!("# ignoring unknown argument: {other}"),
        }
    }
    let iters = if testing {
        1
    } else if quick {
        3
    } else {
        10
    };

    let mut results = Vec::new();
    let out = &mut results;

    bench(out, "simulate_local/ide1_4_readers_8mb", iters, || {
        let mut b = LocalBench::new(Rig::ide(1), &[4], 8, 1);
        black_box(b.run(4).throughput_mbs);
    });

    bench(out, "simulate_nfs/udp_4_readers_8mb", iters, || {
        let mut b = NfsBench::new(Rig::ide(1), WorldConfig::default(), &[4], 8, 1);
        black_box(b.run(4).throughput_mbs);
    });

    let cfg = WorldConfig {
        policy: ReadaheadPolicy::cursor(),
        heur: NfsHeurConfig::improved(),
        ..WorldConfig::default()
    };
    bench(out, "simulate_stride/cursor_s4_8mb", iters, || {
        let mut b = StrideBench::new(Rig::scsi(1), cfg, 8, 1);
        black_box(b.run(4));
    });

    // The multi-client cluster: 8 hosts x 2 readers against one server,
    // on the stock table (heavy nfsheur thrash, the slow path through
    // ejection accounting) and the enlarged table (the clean path).
    for (name, heur) in [
        (
            "cluster_contention/stock_8_clients",
            NfsHeurConfig::freebsd_default(),
        ),
        (
            "cluster_contention/improved_8_clients",
            NfsHeurConfig::improved(),
        ),
    ] {
        let config = WorldConfig {
            heur,
            ..WorldConfig::default()
        };
        let cluster = ClusterConfig::uniform(config, 8);
        bench(out, name, iters, || {
            let mut b = ClusterBench::new(Rig::ide(1), &cluster, &[2], 4, 1);
            black_box(b.run(2).throughput_mbs);
        });
    }

    // Degraded-disk end-to-end: the full simtest fault schedule with the
    // four disk kinds shuffled in (sector errors, stuck tag, firmware
    // stall, fail-slow), oracles included — the cost of simulating a
    // cluster whose drive is partly broken. Seed 0 drives reads into a
    // defect cluster (one surfaced EIO), so the bio retry path and the
    // error propagation stack are on the measured path.
    bench(out, "degraded_simtest/disk_faults_seed0", iters, || {
        let p = simtest::plan_full(0, simtest::DISK_BATCHES, false, true);
        let opts = simtest::RunOptions {
            disk_faults: true,
            ..simtest::RunOptions::default()
        };
        black_box(simtest::run_plan(&p, opts).expect("oracles hold"));
    });

    bench(
        out,
        "degraded_cluster/overlap_2_clients_seed1",
        iters,
        || {
            let p = simtest::plan_full(1, simtest::DISK_BATCHES, true, true);
            let opts = simtest::RunOptions {
                clients: 2,
                disk_faults: true,
                ..simtest::RunOptions::default()
            };
            black_box(simtest::run_plan(&p, opts).expect("oracles hold"));
        },
    );

    // Crash-consistency end-to-end: the UNSTABLE-write workload with the
    // nfsd-outage batch turned into a mid-gather server crash — the cost
    // of simulating write-behind, gathering, the verifier-mismatch rewrite
    // loop, and the write-loss oracle set on top of the fault schedule.
    bench(out, "degraded_writeloss/crash_seed0", iters, || {
        let p = simtest::plan(0, simtest::DEFAULT_BATCHES);
        let opts = simtest::RunOptions {
            write_loss: true,
            ..simtest::RunOptions::default()
        };
        black_box(simtest::run_plan(&p, opts).expect("oracles hold"));
    });

    // Forced-TCP end-to-end: the full fault schedule (including the
    // TCP-only total-blackout window) against the timed segment engine —
    // the cost of simulating RTO backoff ladders, per-segment timers, and
    // blackout abort/recovery with all oracles on.
    bench(out, "degraded_tcp/tcp_blackout_seed0", iters, || {
        let p = simtest::plan_forced(
            0,
            simtest::DEFAULT_BATCHES,
            false,
            false,
            Some(netsim::TransportKind::Tcp),
        );
        black_box(simtest::run_plan(&p, simtest::RunOptions::default()).expect("oracles hold"));
    });

    // Metadata end-to-end: the build-tree walk replayed through the full
    // installation with the attribute cache armed — the cost of the
    // READDIR/LOOKUP/GETATTR pipeline plus the cache's hit/revalidation
    // bookkeeping on the hot path.
    {
        use nfstrace::tree::{build_tree, tree_walk, BuildSpec};
        let spec = BuildSpec {
            depth: 2,
            dirs_per_dir: 3,
            files_per_dir: 4,
            clients: 8,
            inter_arrival_us: 4_000.0,
            ..BuildSpec::default()
        };
        let mut rng = simcore::SimRng::new(1);
        let tree = build_tree(&spec, &mut rng);
        let walk = tree_walk(&tree, &spec, &mut rng);
        let cfg = WorldConfig {
            attr_timeo_min: simcore::SimDuration::from_secs(3),
            attr_timeo_max: simcore::SimDuration::from_secs(60),
            ..WorldConfig::default()
        };
        bench(out, "metadata_walk/8_walkers_armed_cache", iters, || {
            let r = testbed::replay(Rig::ide(1), cfg, &walk, 1);
            assert!(r.attr_cache_hits > 0, "the armed cache must fire");
            black_box(r.ops);
        });
    }

    // The simtest meta-storm mode end-to-end: the full fault schedule
    // under the metadata-heavy workload with the attribute cache armed —
    // the cost of the storm mix plus the attrcache-books oracle set.
    bench(out, "attr_storm/simtest_seed0", iters, || {
        let p = simtest::plan(0, simtest::DEFAULT_BATCHES);
        let opts = simtest::RunOptions {
            meta_storm: true,
            ..simtest::RunOptions::default()
        };
        black_box(simtest::run_plan(&p, opts).expect("oracles hold"));
    });

    // SSD end-to-end: the same NFS pipeline with the flash backend
    // underneath — the cost of the channel/die completion math on the
    // hot path.
    bench(out, "ssd_seq_read/tlc_4_readers_8mb", iters, || {
        let mut b = NfsBench::new(Rig::ssd(1), WorldConfig::default(), &[4], 8, 1);
        black_box(b.run(4).throughput_mbs);
    });

    // GC interference at the device layer: overwrite a small drive's LBA
    // space until the FTL runs out of free blocks and garbage-collects,
    // then read through the pause windows — the cost of the GC victim
    // scan and wait attribution.
    bench(out, "ssd_gc_interference/overwrite_8mb", iters, || {
        use diskmodel::{DeviceModel, DiskRequest, SsdParams};
        let params = SsdParams {
            channels: 2,
            dies_per_channel: 2,
            page_sectors: 16,
            pages_per_block: 16,
            total_sectors: 16 * 1024, // 8 MB
            overprovision: 0.25,
            read_us: 60.0,
            program_us: 600.0,
            erase_ms: 3.0,
            channel_mb_s: 400.0,
            gc_low_water_blocks: 2,
            gc_jitter_us: 100.0,
            queue_depth: 32,
        };
        let mut d = ssd::Ssd::new(params, simcore::SimRng::new(1));
        let mut now = simcore::SimTime::ZERO;
        let mut drive = |d: &mut ssd::Ssd, req: DiskRequest| {
            d.submit(now, req);
            while let Some(t) = d.next_completion() {
                now = t;
                black_box(d.advance(t));
            }
        };
        for pass in 0..3u64 {
            for lba in (0..params.total_sectors).step_by(16) {
                drive(&mut d, DiskRequest::write(lba, 16, pass << 32 | lba));
            }
        }
        for lba in (0..params.total_sectors).step_by(16) {
            drive(&mut d, DiskRequest::read(lba, 16, lba));
        }
        assert!(
            d.stats().gc_runs > 0,
            "the overwrite passes must trigger GC"
        );
    });

    // The online tuner in the loop: an SSD-backed world driven with the
    // hill-climber closing 2 ms windows — the cost of histogram windowing,
    // scoring, and knob re-actuation on top of the pipeline.
    bench(out, "autotune_converge/ssd_4_streams", iters, || {
        use autotune::{Controller, Knobs, TuneConfig, WindowedTuner};
        use diskmodel::{DeviceModel, PartitionTable, SsdParams};
        use ffs::{FileSystem, FsConfig};
        use nfssim::NfsWorld;
        use simcore::{SimDuration, SimRng, SimTime};
        let params = SsdParams {
            channels: 2,
            dies_per_channel: 2,
            page_sectors: 16,
            pages_per_block: 16,
            total_sectors: 64 * 1024, // 32 MB
            overprovision: 0.25,
            read_us: 60.0,
            program_us: 600.0,
            erase_ms: 3.0,
            channel_mb_s: 400.0,
            gc_low_water_blocks: 2,
            gc_jitter_us: 100.0,
            queue_depth: 32,
        };
        let drive = ssd::Ssd::new(params, SimRng::new(1));
        let part = PartitionTable::quarters_of(drive.total_sectors()).get(1);
        let fs = FileSystem::format_on(
            Box::new(drive),
            part,
            iosched::SchedulerKind::Elevator,
            FsConfig::default(),
        );
        let mut w = NfsWorld::new(WorldConfig::default(), fs, 1);
        let size = 512 * 1024u64;
        let fhs: Vec<_> = (0..4).map(|_| w.create_file(size)).collect();
        let cfg = TuneConfig {
            window: SimDuration::from_millis(2),
            min_ops: 4,
            ..TuneConfig::default()
        };
        let mut tuner = WindowedTuner::new(Controller::new(
            cfg,
            Knobs::stock(),
            SimRng::from_seed_and_stream(1, 0x7),
        ));
        let mut now = SimTime::ZERO;
        let block = 8_192u64;
        for blk in 0..(size / block) {
            for (i, fh) in fhs.iter().enumerate() {
                w.read(now, *fh, blk * block, block, (i as u64) << 32 | blk);
                while let Some(t) = w.next_event() {
                    let done = w.advance(t);
                    now = now.max(t);
                    for d in &done {
                        tuner.record(d);
                    }
                    tuner.poll(now, &mut w);
                    if !done.is_empty() {
                        break;
                    }
                }
            }
        }
        assert!(
            tuner.controller().decisions().len() > 4,
            "the tuner must close enough windows to converge"
        );
        black_box(tuner.controller().fingerprint());
    });

    // Fleet scale: the sharded world at real client counts. One
    // iteration per case — a 100k-client fleet is seconds of wall clock,
    // and the case exists to catch regressions in the SoA arena, the
    // barrier engine, and the streaming histograms, not micro-noise.
    // Test mode proves the path on a tiny fleet; quick mode (the CI
    // smoke) runs 10k; full mode records 10k and the headline 100k.
    let scale_cases: &[(&str, usize)] = if testing {
        &[("cluster_scale/1k_clients", 1_000)]
    } else if quick {
        &[("cluster_scale/10k_clients", 10_000)]
    } else {
        &[
            ("cluster_scale/10k_clients", 10_000),
            ("cluster_scale/100k_clients", 100_000),
        ]
    };
    for &(name, clients) in scale_cases {
        let cfg = FleetConfig::scale(clients);
        let mut last: Option<FleetReport> = None;
        bench(out, name, 1, || {
            let r = FleetWorld::new(&cfg, 1).run();
            assert!(r.shard_stats.completed, "fleet must quiesce");
            black_box(r.fingerprint);
            last = Some(r);
        });
        let r = last.expect("bench ran");
        println!(
            "#   {clients} clients: p50={:.2} ms  p99={:.2} ms  p99.9={:.2} ms  \
             {} B/client (full host: {} B, {:.0}x)  migrations={}",
            r.latency_ms(0.50).unwrap_or(0.0),
            r.latency_ms(0.99).unwrap_or(0.0),
            r.latency_ms(0.999).unwrap_or(0.0),
            r.mem.per_client_bytes,
            r.mem.full_host_bytes,
            r.mem.reduction,
            r.migrations,
        );
    }

    let mut report = PerfReport {
        suite: "e2e".to_string(),
        mode: if testing {
            "test"
        } else if quick {
            "quick"
        } else {
            "full"
        }
        .to_string(),
        benches: results,
    };
    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path).expect("read baseline report");
        let base = PerfReport::parse(&text).expect("parse baseline report");
        for b in &mut report.benches {
            b.baseline_ns_per_op = base.get(&b.name).map(|r| r.ns_per_op);
        }
    }
    if let Some(path) = &json_out {
        std::fs::write(path, report.to_json()).expect("write perf json");
        eprintln!("# wrote {path}");
    }
    if let Some(path) = &check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read perf report {path}: {e}"));
        let recorded = PerfReport::parse(&text)
            .unwrap_or_else(|e| panic!("cannot parse perf report {path}: {e}"));
        let violations = report.regressions_vs(&recorded, GATED_PREFIXES, GATE_FACTOR);
        if violations.is_empty() {
            eprintln!("# perf gate ok vs {path} (prefixes {GATED_PREFIXES:?}, {GATE_FACTOR}x)");
        } else {
            for v in &violations {
                eprintln!("PERF REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
