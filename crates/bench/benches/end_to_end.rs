//! End-to-end benchmarks: how fast the *simulator* runs.
//!
//! Wall-clock cost of simulating small instances of the paper's workloads;
//! useful for catching performance regressions in the event loop, the disk
//! model, or the NFS pipeline. (The figures themselves report *simulated*
//! throughput and live in the `fig*` binaries.)
//!
//! Hand-rolled harness (no external bench crate, so the workspace builds
//! offline). Run with `cargo bench -p nfs-bench --bench end_to_end`.

use std::hint::black_box;
use std::time::Instant;

use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use testbed::{LocalBench, NfsBench, Rig, StrideBench};

fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    f(); // Warm-up.
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{name:<32} {ms:>10.2} ms/run   ({iters} iters)");
}

fn main() {
    let testing = std::env::args().any(|a| a == "--test");
    let iters = if testing { 1 } else { 10 };

    bench("simulate_local/ide1_4_readers_8mb", iters, || {
        let mut b = LocalBench::new(Rig::ide(1), &[4], 8, 1);
        black_box(b.run(4).throughput_mbs);
    });

    bench("simulate_nfs/udp_4_readers_8mb", iters, || {
        let mut b = NfsBench::new(Rig::ide(1), WorldConfig::default(), &[4], 8, 1);
        black_box(b.run(4).throughput_mbs);
    });

    let cfg = WorldConfig {
        policy: ReadaheadPolicy::cursor(),
        heur: NfsHeurConfig::improved(),
        ..WorldConfig::default()
    };
    bench("simulate_stride/cursor_s4_8mb", iters, || {
        let mut b = StrideBench::new(Rig::scsi(1), cfg, 8, 1);
        black_box(b.run(4));
    });
}
