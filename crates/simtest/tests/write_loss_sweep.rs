//! Bounded CI sweep for the crash-consistency harness: write-loss runs
//! mount UNSTABLE, drive a write-heavy workload with interleaved closes,
//! and turn every `nfsd`-outage batch into a mid-gather server crash. The
//! sweep must prove the crash machinery is *live* — data really is lost
//! and really is rewritten — while the no-committed-loss, dirty-books,
//! and crash-detection oracles hold on every seed. Long sweeps run via
//! the binary: `cargo run -p simtest --release -- --seeds 1000 --write-loss`.

use std::sync::Mutex;

use netsim::TransportKind;
use simtest::{
    plan, plan_forced, run_plan, run_seed_checked, run_seed_checked_with, FaultKind, RunOptions,
    DEFAULT_BATCHES,
};

const CI_SEEDS: u64 = 10;

fn write_loss_opts() -> RunOptions {
    RunOptions {
        write_loss: true,
        ..RunOptions::default()
    }
}

/// The jobs override is process-global; serialize tests that flip it.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Every write-loss seed passes all oracles twice (determinism included),
/// every run injects at least one server crash, and across the sweep the
/// crash machinery demonstrably fires: UNSTABLE data is lost from the
/// dirty pool, clients detect it through verifier mismatches, and the
/// lost blocks are rewritten — the RFC 1813 recovery loop, end to end.
#[test]
fn write_loss_sweep_holds_all_oracles_and_loses_data() {
    let mut lost = 0u64;
    let mut mismatches = 0u64;
    let mut rewritten = 0u64;
    let mut unstable = 0u64;
    let mut gathered = 0u64;
    for seed in 0..CI_SEEDS {
        let r =
            run_seed_checked_with(seed, write_loss_opts(), false).unwrap_or_else(|e| panic!("{e}"));
        assert!(r.write_loss);
        assert_eq!(
            r.ok_ops + r.timed_out_ops + r.eio_ops,
            r.ops,
            "seed {seed}: every op completes with a typed outcome"
        );
        assert!(
            r.restarts >= 1,
            "seed {seed}: the nfsd-outage batch must crash the server"
        );
        assert!(
            r.faults.contains(&FaultKind::NfsdOutage),
            "seed {seed}: {:?}",
            r.faults
        );
        lost += r.dirty_blocks_lost;
        mismatches += r.verifier_mismatches;
        rewritten += r.blocks_rewritten;
        unstable += r.unstable_writes;
        gathered += r.gather_flushes;
    }
    assert!(unstable > 0, "the workload must send UNSTABLE WRITEs");
    assert!(
        gathered > 0 && gathered < unstable,
        "write gathering must coalesce: {gathered} flushes for {unstable} writes"
    );
    assert!(
        lost > 0,
        "some crash must catch UNSTABLE data still in the dirty pool"
    );
    assert!(
        mismatches > 0,
        "some client must detect a crash through the write verifier"
    );
    assert!(
        rewritten > 0,
        "detected losses must be repaired by rewriting the blocks"
    );
}

/// A clean (FILE_SYNC) run never wakes the async write path: the report's
/// async counters are all zero, and the in-run `async-dormancy` oracle
/// backs the same claim inside `run_plan`.
#[test]
fn clean_runs_keep_the_async_machinery_dormant() {
    for seed in 0..4u64 {
        let r = run_seed_checked(seed).unwrap_or_else(|e| panic!("{e}"));
        assert!(!r.write_loss, "seed {seed}");
        assert_eq!(r.unstable_writes, 0, "seed {seed}");
        assert_eq!(r.commits, 0, "seed {seed}");
        assert_eq!(r.gather_flushes, 0, "seed {seed}");
        assert_eq!(r.dirty_blocks_lost, 0, "seed {seed}");
        assert_eq!(r.verifier_mismatches, 0, "seed {seed}");
        assert_eq!(r.blocks_rewritten, 0, "seed {seed}");
        assert_eq!(r.restarts, 0, "seed {seed}");
    }
}

/// The crash-consistency oracles compose with the rest of the matrix:
/// a 2-client cluster and overlapping fault pairs both hold, and the
/// 2-client run diverges from the single-client run (the per-op client
/// draw changes the stream).
#[test]
fn write_loss_composes_with_cluster_and_overlap() {
    let mut diverged = false;
    for seed in 0..4u64 {
        let single =
            run_seed_checked_with(seed, write_loss_opts(), false).unwrap_or_else(|e| panic!("{e}"));
        let cluster = run_seed_checked_with(
            seed,
            RunOptions {
                clients: 2,
                ..write_loss_opts()
            },
            false,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(cluster.clients, 2, "seed {seed}");
        if cluster.fingerprint != single.fingerprint {
            diverged = true;
        }
        let paired =
            run_seed_checked_with(seed, write_loss_opts(), true).unwrap_or_else(|e| panic!("{e}"));
        assert!(paired.overlap, "seed {seed}");
        assert!(paired.restarts >= 1, "seed {seed}");
    }
    assert!(
        diverged,
        "2-client write-loss runs must explore different runs"
    );
}

/// Forced TCP: the async write path rides the timed segment engine — the
/// crash, the parked-call replay after the outage, and the COMMIT-driven
/// rewrites all hold with zero RPC-layer retransmissions.
#[test]
fn write_loss_holds_under_forced_tcp() {
    for seed in 0..3u64 {
        let p = plan_forced(
            seed,
            DEFAULT_BATCHES,
            false,
            false,
            Some(TransportKind::Tcp),
        );
        let r = run_plan(&p, write_loss_opts()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.transport, TransportKind::Tcp, "seed {seed}");
        assert_eq!(r.retransmits, 0, "seed {seed}: TCP never retransmits RPCs");
        assert!(r.restarts >= 1, "seed {seed}");
        assert!(r.unstable_writes > 0, "seed {seed}");
    }
}

/// Mutation check: a sabotaged (swallowed) reply under write-loss must
/// still be caught, and the reproduction command must carry the
/// `--write-loss` flag so the printed line reproduces the failing mode.
#[test]
fn write_loss_failures_print_the_mode_flag() {
    let seed = (0..100)
        .find(|&s| plan(s, DEFAULT_BATCHES).transport == TransportKind::Udp)
        .expect("a UDP seed among the first 100");
    let err = run_plan(
        &plan(seed, DEFAULT_BATCHES),
        RunOptions {
            sabotage_replies: 1,
            ..write_loss_opts()
        },
    )
    .expect_err("a swallowed reply must trip an oracle");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("SIMTEST_SEED={seed}")),
        "failure must print a reproduction command: {msg}"
    );
    assert!(msg.contains("--write-loss"), "missing mode flag: {msg}");
}

/// The write-loss sweep is bit-identical whether the seeds run serially
/// or fan out across `simfleet` worker threads: crash injection and the
/// rewrite machinery add no hidden cross-run state.
#[test]
fn write_loss_sweep_is_bit_identical_across_job_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let sweep = |jobs| {
        let _guard = JOBS_LOCK.lock().unwrap();
        simfleet::set_jobs_override(Some(jobs));
        let out = simfleet::map_indexed(&seeds, |&seed| {
            let r = run_seed_checked_with(seed, write_loss_opts(), false)
                .unwrap_or_else(|e| panic!("{e}"));
            (
                r.fingerprint,
                r.ops,
                r.dirty_blocks_lost,
                r.verifier_mismatches,
                r.blocks_rewritten,
                r.sim_nanos,
            )
        });
        simfleet::set_jobs_override(None);
        out
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        serial, parallel,
        "write-loss sweep diverged between jobs=1 and jobs=4"
    );
}
