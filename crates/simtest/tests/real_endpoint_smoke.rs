//! Tier-1 smoke oracle for the real-socket endpoint: a short trace over
//! a loopback TCP mount must produce books identical (order-driven) to
//! the pure virtual-clock replay, every run, on every machine.
//!
//! This is deliberately small — the full-size differential run lives in
//! the `nfsd_diff` binary and its own CI step — but it rides `cargo
//! test` so a patch that breaks the RPC layer, the external-ingress
//! path, or the clock adapter fails tier-1 immediately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nfsd::{
    bind, build_world, serve, sim_replay, DiffReport, Endpoint, ExportSpec, HeurBooks, NfsClient,
    WallClock,
};
use nfsproto::StableHow;
use nfssim::WorldConfig;
use nfstrace::synth::{self, SequentialSpec};
use simcore::SimRng;

#[test]
fn real_endpoint_books_match_sim_replay() {
    const SEED: u64 = 1803; // Ellard & Seltzer '03
    const FILES: u32 = 3;
    const BLOCKS: u64 = 12;
    let spec = SequentialSpec {
        files: FILES,
        blocks_per_file: BLOCKS,
        ..SequentialSpec::default()
    };
    let mut rng = SimRng::new(SEED);
    let trace = synth::with_metadata_noise(synth::sequential(spec, &mut rng), 0.2, &mut rng);

    let config = WorldConfig {
        stable_how: StableHow::Unstable,
        ..WorldConfig::default()
    };
    let export = ExportSpec {
        files: FILES as usize,
        file_size: BLOCKS * 8_192,
    };

    // Real: loopback socket replay.
    let endpoint = Endpoint::new(build_world(config, SEED), export);
    let (listener, local) = bind("127.0.0.1:0").expect("bind loopback");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server = std::thread::spawn(move || serve(listener, endpoint, WallClock::start(), stop2));
    let mut client = NfsClient::connect(local).expect("connect");
    let stats = client
        .replay(&trace.records, StableHow::Unstable, false)
        .expect("socket replay");
    drop(client);
    // Give wall-clock gather windows (30 ms) time to expire.
    std::thread::sleep(std::time::Duration::from_millis(120));
    stop.store(true, Ordering::Relaxed);
    let endpoint = server.join().expect("server thread");
    let real = HeurBooks::from_stats(&endpoint.world().server_stats());

    // Sim: identical trace, virtual clock.
    let mut world = build_world(config, SEED);
    let ext = world.register_external_client();
    let exports: Vec<_> = (0..FILES)
        .map(|_| world.create_export_file(ext, BLOCKS * 8_192))
        .collect();
    let sim = sim_replay(&mut world, &exports, &trace.records, StableHow::Unstable);

    let report = DiffReport::diff(&sim, &real);
    assert!(
        report.passed(),
        "sim-vs-real diff failed:\n{}",
        report.render()
    );
    assert_eq!(stats.nfs_errors, 0);
    assert!(real.heur_hits > 0, "replay must train the heuristics");
    // Every stashed dirty block must eventually flush on both clocks.
    assert_eq!(sim.dirty_blocks_stashed, real.dirty_blocks_stashed);
}
