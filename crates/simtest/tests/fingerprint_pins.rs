//! Pinned fingerprints: the cluster refactor of `NfsWorld` (client/server
//! host split, per-client RNG streams, key-encoded events) must not move
//! a single bit of the classic single-client world. These constants were
//! captured from the pre-refactor engine; if one changes, the 1-client
//! fast path stopped being the old world.

use simtest::run_seed_checked;
use testbed::experiments::{fig6_readahead_potential, Scale};

/// FNV-1a of the figure's Debug rendering (f64 Debug round-trips exactly,
/// so equal hashes mean equal bits in every mean and stddev).
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FIG6_QUICK_SEED7: u64 = 0x7f63_4807_1959_5f6f;

const SWEEP_FPS: [u64; 8] = [
    0x0960_fde0_cf9b_0735,
    0x7787_a23f_c6a3_0109,
    0x6764_4516_bb32_f4fb,
    // Seed 3 is the sweep's one TCP seed; re-pinned for the timed segment
    // engine (faults now include real blackouts, and TCP fingerprints fold
    // the segment books in). The seven UDP pins are untouched.
    0x3187_9998_2141_6557,
    0xe6d8_d53f_87b8_4800,
    0x4d4a_5bbc_d8ef_15d8,
    0xabf2_02cd_0a8e_b50a,
    0xa494_546e_7e93_f9dc,
];

#[test]
fn figure6_bits_are_pinned_at_both_job_widths() {
    for jobs in [1usize, 4] {
        simfleet::set_jobs_override(Some(jobs));
        let fig = format!("{:?}", fig6_readahead_potential(Scale::quick(), 7));
        simfleet::set_jobs_override(None);
        assert_eq!(
            fnv(&fig),
            FIG6_QUICK_SEED7,
            "figure 6 (quick, seed 7) bits moved at jobs={jobs}"
        );
    }
}

#[test]
fn simtest_fingerprints_are_pinned_at_both_job_widths() {
    for jobs in [1usize, 4] {
        simfleet::set_jobs_override(Some(jobs));
        let fps: Vec<u64> = (0..8u64)
            .map(|s| {
                run_seed_checked(s)
                    .unwrap_or_else(|e| panic!("{e}"))
                    .fingerprint
            })
            .collect();
        simfleet::set_jobs_override(None);
        assert_eq!(fps, SWEEP_FPS, "sweep fingerprints moved at jobs={jobs}");
    }
}
