//! Pinned fingerprints: the cluster refactor of `NfsWorld` (client/server
//! host split, per-client RNG streams, key-encoded events) must not move
//! a single bit of the classic single-client world. These constants were
//! captured from the pre-refactor engine; if one changes, the 1-client
//! fast path stopped being the old world.

use simtest::run_seed_checked;
use testbed::experiments::{fig6_readahead_potential, Scale};

/// FNV-1a of the figure's Debug rendering (f64 Debug round-trips exactly,
/// so equal hashes mean equal bits in every mean and stddev).
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FIG6_QUICK_SEED7: u64 = 0x7f63_4807_1959_5f6f;

// All eight re-pinned when `NfsReply::Write`'s wire size stopped eliding
// the verifier (8 -> 20 bytes, the codec-honesty fix): every workload
// writes, so every reply's s2c transmit time shifted. The jobs=1 / jobs=4
// and shards=1 / shards=N identities held across the change.
const SWEEP_FPS: [u64; 8] = [
    0x9389_3efa_26a3_993a,
    0xb8c7_9852_25b0_0f55,
    0x06d7_2d90_8252_7b20,
    0xd36b_ac6b_638c_d604,
    0x27e1_120d_afdb_c27a,
    0x0064_87db_f131_6a92,
    0x02c2_be0f_7bce_7f46,
    0xe48b_576c_c121_3207,
];

#[test]
fn figure6_bits_are_pinned_at_both_job_widths() {
    for jobs in [1usize, 4] {
        simfleet::set_jobs_override(Some(jobs));
        let fig = format!("{:?}", fig6_readahead_potential(Scale::quick(), 7));
        simfleet::set_jobs_override(None);
        assert_eq!(
            fnv(&fig),
            FIG6_QUICK_SEED7,
            "figure 6 (quick, seed 7) bits moved at jobs={jobs}"
        );
    }
}

#[test]
fn simtest_fingerprints_are_pinned_at_both_job_widths() {
    for jobs in [1usize, 4] {
        simfleet::set_jobs_override(Some(jobs));
        let fps: Vec<u64> = (0..8u64)
            .map(|s| {
                run_seed_checked(s)
                    .unwrap_or_else(|e| panic!("{e}"))
                    .fingerprint
            })
            .collect();
        simfleet::set_jobs_override(None);
        assert_eq!(fps, SWEEP_FPS, "sweep fingerprints moved at jobs={jobs}");
    }
}
