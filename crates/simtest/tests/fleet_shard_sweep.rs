//! Regression tests for the sharded-fleet determinism contract: a
//! [`nfscluster::FleetWorld`] run must be bit-identical whether its
//! groups execute on one shard thread or four — including when the
//! fleet's disk-fault and TCP machinery is fully lit. The fingerprint
//! folds every completion `(client, done_at, outcome)` in completion
//! order plus the per-group histogram fingerprints, so any divergence in
//! event order, migration routing, fault timing, or retransmission
//! schedules shows up as a changed fingerprint.

use std::sync::Mutex;

use netsim::TransportKind;
use nfscluster::{FleetConfig, FleetWorld};
use simcore::SimDuration;

/// The shards override is process-global; serialize tests that flip it.
static SHARDS_LOCK: Mutex<()> = Mutex::new(());

fn with_shards<T>(shards: usize, f: impl FnOnce() -> T) -> T {
    let _guard = SHARDS_LOCK.lock().unwrap();
    simfleet::set_shards_override(Some(shards));
    let out = f();
    simfleet::set_shards_override(None);
    out
}

/// A deliberately hot little fleet: the 2 s arrival window overloads the
/// groups, so load-shed migration (the only cross-shard traffic) is
/// exercised for real, not vacuously.
fn hot_fleet(clients: usize) -> FleetConfig {
    let mut cfg = FleetConfig::scale(clients);
    cfg.groups = cfg.groups.max(3);
    cfg.arrival_window = SimDuration::from_secs(2);
    cfg
}

fn digest(cfg: &FleetConfig, seed: u64, shards: usize) -> (u64, u64, u64, u64, u64, u64) {
    let r = with_shards(shards, || FleetWorld::new(cfg, seed).run());
    assert!(
        r.shard_stats.completed,
        "fleet must quiesce: {:?}",
        r.shard_stats
    );
    (
        r.fingerprint,
        r.hist.fingerprint(),
        r.ops_ok,
        r.ops_eio,
        r.migrations,
        r.shard_stats.messages,
    )
}

#[test]
fn fleet_is_bit_identical_across_shard_counts() {
    let cfg = hot_fleet(240);
    let base = digest(&cfg, 17, 1);
    assert_eq!(digest(&cfg, 17, 4), base, "shards=4 diverged from shards=1");
}

/// Every group degraded: the seeded fail-slow disk-fault machinery runs
/// in every shard's event loop, and the extra latency drives heavy
/// shedding. Fault timing must not leak across shard boundaries.
#[test]
fn fleet_with_disk_faults_is_bit_identical_across_shard_counts() {
    let mut cfg = hot_fleet(240);
    cfg.degraded_every = 1;
    let base = digest(&cfg, 23, 1);
    assert!(
        base.4 > 0,
        "overloaded fail-slow fleet should migrate: {base:?}"
    );
    assert_eq!(digest(&cfg, 23, 4), base, "shards=4 diverged from shards=1");
}

/// Forced TCP: the timed segment engine's retransmission timers and
/// connection bookkeeping run inside every group's world. Same contract.
#[test]
fn fleet_under_tcp_is_bit_identical_across_shard_counts() {
    let mut cfg = hot_fleet(180);
    cfg.world.transport = TransportKind::Tcp;
    let base = digest(&cfg, 29, 1);
    assert_eq!(digest(&cfg, 29, 4), base, "shards=4 diverged from shards=1");
}

/// TCP and universal disk faults together, at a third shard width, with
/// migration traffic asserted live — the full machinery in one pot.
#[test]
fn fleet_tcp_plus_faults_is_bit_identical_across_shard_counts() {
    let mut cfg = hot_fleet(180);
    cfg.world.transport = TransportKind::Tcp;
    cfg.degraded_every = 1;
    let base = digest(&cfg, 31, 1);
    let wide = digest(&cfg, 31, 3);
    assert_eq!(wide, base, "shards=3 diverged from shards=1");
}
