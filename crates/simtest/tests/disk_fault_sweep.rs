//! Bounded CI sweep with disk faults in the schedule: all eleven fault
//! kinds (seven classic + four disk) run under the full oracle set, the
//! bio retry path is actually exercised, and runs stay bit-deterministic
//! whether the sweep executes serially or across `simfleet` workers.

use std::collections::HashSet;
use std::sync::Mutex;

use simtest::{
    plan_full, run_seed_checked_with, FaultKind, RunOptions, DEFAULT_BATCHES, DISK_BATCHES,
};

const CI_SEEDS: u64 = 16;

fn disk_opts(clients: usize) -> RunOptions {
    RunOptions {
        clients,
        disk_faults: true,
        ..RunOptions::default()
    }
}

/// Every seed of the disk-fault sweep holds all oracles (twice each, via
/// the determinism check), the sweep as a whole schedules every one of
/// the eleven fault kinds, and at least one seed drives reads into a
/// defective cluster so the bio retry/EIO machinery is really exercised.
#[test]
fn disk_fault_sweep_holds_all_oracles() {
    let mut kinds: HashSet<FaultKind> = HashSet::new();
    let mut retries = 0u64;
    let mut eios = 0u64;
    for seed in 0..CI_SEEDS {
        let r = run_seed_checked_with(seed, disk_opts(1), false).unwrap_or_else(|e| panic!("{e}"));
        assert!(r.disk_faults, "report must carry the disk-faults flag");
        assert_eq!(
            r.ok_ops + r.timed_out_ops + r.eio_ops,
            r.ops,
            "seed {seed}: every op ends Ok, timed out, or EIO"
        );
        kinds.extend(r.faults.iter().copied());
        retries += r.disk_retries;
        eios += r.disk_eios;
    }
    for required in FaultKind::ALL.iter().chain(FaultKind::DISK.iter()) {
        assert!(
            kinds.contains(required),
            "sweep never injected {required:?}"
        );
    }
    assert!(
        retries > 0,
        "sector-error batches must force bio retries somewhere in the sweep"
    );
    assert!(
        eios > 0,
        "hard sector errors must surface at least one EIO in the sweep"
    );
}

/// The oracle set also holds when disk faults overlap with link/pool
/// faults in a 2-client cluster (a sector-error burst during a server
/// stall, a fail-slow region under a loss burst, ...).
#[test]
fn disk_faults_overlap_and_cluster_hold_oracles() {
    for seed in 0..6u64 {
        for clients in [1usize, 2] {
            let r = run_seed_checked_with(seed, disk_opts(clients), true)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(r.overlap && r.disk_faults);
            assert_eq!(r.clients, clients);
            assert_eq!(r.ok_ops + r.timed_out_ops + r.eio_ops, r.ops, "seed {seed}");
        }
    }
}

/// The seed-derived disk plan is deterministic, schedules all eleven
/// kinds, and the disk-free plan draws the identical RNG stream it did
/// before disk faults existed (same transport, same classic-kind order),
/// so pinned fingerprints cannot move.
#[test]
fn disk_plans_are_deterministic_and_complete() {
    for seed in 0..20u64 {
        let a = plan_full(seed, DISK_BATCHES, false, true);
        let b = plan_full(seed, DISK_BATCHES, false, true);
        assert_eq!(a.faults, b.faults, "seed {seed}");
        assert_eq!(a.transport, b.transport, "seed {seed}");
        let kinds: HashSet<FaultKind> = a.faults.iter().map(|&(_, k)| k).collect();
        assert_eq!(kinds.len(), 11, "all kinds scheduled: {:?}", a.faults);

        let classic = plan_full(seed, DEFAULT_BATCHES, false, false);
        assert_eq!(
            classic.transport, a.transport,
            "seed {seed}: transport draw must not depend on disk_faults"
        );
        let classic_kinds: HashSet<FaultKind> = classic.faults.iter().map(|&(_, k)| k).collect();
        assert_eq!(classic_kinds.len(), 7, "seed {seed}");
        assert!(
            classic
                .faults
                .iter()
                .all(|(_, k)| !FaultKind::DISK.contains(k)),
            "seed {seed}: disk kinds must stay out of the default plan"
        );
    }
}

/// The jobs override is process-global; serialize tests that flip it.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// A disk-fault sweep is bit-identical whether it runs serially or fans
/// out across worker threads: the `FaultPlan` derivation and every
/// per-op outcome live in the seed, not in scheduling order (the
/// `NFS_BENCH_JOBS` contract extended to degraded-disk runs).
#[test]
fn disk_fault_sweep_is_bit_identical_across_job_counts() {
    let _guard = JOBS_LOCK.lock().unwrap();
    let seeds: Vec<u64> = (0..8).collect();
    let sweep = |jobs| {
        simfleet::set_jobs_override(Some(jobs));
        let out = simfleet::map_indexed(&seeds, |&seed| {
            let r =
                run_seed_checked_with(seed, disk_opts(1), false).unwrap_or_else(|e| panic!("{e}"));
            (
                r.fingerprint,
                r.ops,
                r.ok_ops,
                r.eio_ops,
                r.disk_retries,
                r.disk_eios,
                r.sim_nanos,
            )
        });
        simfleet::set_jobs_override(None);
        out
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        serial, parallel,
        "disk-fault sweep diverged between jobs=1 and jobs=4"
    );
}
