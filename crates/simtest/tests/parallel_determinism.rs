//! Regression test for the `simfleet` determinism contract: a figure cell
//! and a simtest seed sweep must produce bit-identical results whether the
//! run engine executes serially (`jobs=1`) or fans out across worker
//! threads (`jobs=4`). Results are keyed by job index and folded in the
//! original serial order, so even float accumulation must not drift.

use std::sync::Mutex;

use netsim::TransportKind;
use simtest::{run_seed_checked, run_seed_checked_forced, RunOptions};
use testbed::experiments::{fig1_zcav, Scale};

/// The jobs override is process-global; serialize tests that flip it.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    let _guard = JOBS_LOCK.lock().unwrap();
    simfleet::set_jobs_override(Some(jobs));
    let out = f();
    simfleet::set_jobs_override(None);
    out
}

#[test]
fn simtest_sweep_is_bit_identical_across_job_counts() {
    let seeds: Vec<u64> = (0..12).collect();
    let sweep = |jobs| {
        with_jobs(jobs, || {
            simfleet::map_indexed(&seeds, |&seed| {
                let r = run_seed_checked(seed).unwrap_or_else(|e| panic!("{e}"));
                (r.fingerprint, r.ops, r.ok_ops, r.timed_out_ops, r.sim_nanos)
            })
        })
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial, parallel, "sweep diverged between jobs=1 and jobs=4");
}

/// The same contract under forced TCP: the timed segment engine's timer
/// events (retransmission schedules, blackout abort ladders) must be as
/// deterministic as the rest of the world, at any job count. The TCP
/// fingerprint folds the segment books in, so divergence anywhere in the
/// retransmission schedule would show here.
#[test]
fn forced_tcp_sweep_is_bit_identical_across_job_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let sweep = |jobs| {
        with_jobs(jobs, || {
            simfleet::map_indexed(&seeds, |&seed| {
                let r = run_seed_checked_forced(
                    seed,
                    RunOptions::default(),
                    false,
                    Some(TransportKind::Tcp),
                )
                .unwrap_or_else(|e| panic!("{e}"));
                (r.fingerprint, r.ops, r.ok_ops, r.timed_out_ops, r.sim_nanos)
            })
        })
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        serial, parallel,
        "TCP sweep diverged between jobs=1 and jobs=4"
    );
}

#[test]
fn figure_cell_is_bit_identical_across_job_counts() {
    // Debug-format f64s round-trip exactly, so equal strings mean equal
    // bits in every mean and standard deviation of the figure.
    let render = |jobs| with_jobs(jobs, || format!("{:?}", fig1_zcav(Scale::quick(), 7)));
    let serial = render(1);
    let parallel = render(4);
    assert_eq!(
        serial, parallel,
        "figure diverged between jobs=1 and jobs=4"
    );
}
