//! Bounded CI sweep: a handful of seeds through the full fault schedule,
//! the determinism oracle, and a mutation check proving the oracles can
//! actually catch a broken invariant. Long sweeps run via the binary:
//! `cargo run -p simtest --release -- --seeds 1000`.

use std::collections::HashSet;

use netsim::TransportKind;
use simtest::{plan, run_plan, run_seed_checked, FaultKind, RunOptions, DEFAULT_BATCHES};

const CI_SEEDS: u64 = 10;

/// Every seed in the bounded sweep must pass all oracles twice (the
/// second run feeds the determinism fingerprint comparison), and the
/// sweep as a whole must exercise every fault kind and both the
/// retransmission and RPC-timeout recovery paths.
#[test]
fn bounded_sweep_holds_all_oracles() {
    let mut kinds: HashSet<FaultKind> = HashSet::new();
    let mut transports: HashSet<&str> = HashSet::new();
    let mut retransmits = 0u64;
    let mut timed_out = 0u64;
    for seed in 0..CI_SEEDS {
        let r = run_seed_checked(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.ok_ops + r.timed_out_ops, r.ops, "seed {seed}");
        kinds.extend(r.faults.iter().copied());
        transports.insert(match r.transport {
            TransportKind::Udp => "udp",
            TransportKind::Tcp => "tcp",
        });
        retransmits += r.retransmits;
        timed_out += r.timed_out_ops;
    }
    for required in [
        FaultKind::LossBurst,
        FaultKind::LinkDegrade,
        FaultKind::ServerStall,
        FaultKind::NfsdResize,
        FaultKind::NfsdOutage,
        FaultKind::NfsiodResize,
        FaultKind::CacheFlush,
    ] {
        assert!(
            kinds.contains(&required),
            "sweep never injected {required:?}"
        );
    }
    assert!(transports.contains("udp"), "sweep must cover UDP");
    assert!(
        retransmits > 0,
        "loss bursts must force RPC retransmissions"
    );
    assert!(
        timed_out > 0,
        "a UDP blackout must force at least one typed RPC timeout"
    );
}

/// Same seed, same bits: the full report (fingerprint included) must be
/// identical across independent runs.
#[test]
fn same_seed_is_bit_exact() {
    let a = run_seed_checked(3).unwrap_or_else(|e| panic!("{e}"));
    let b = run_seed_checked(3).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(a, b);
    let c = run_seed_checked(4).unwrap_or_else(|e| panic!("{e}"));
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds should explore different runs"
    );
}

/// Mutation check: deliberately break reply conservation (a reply is
/// counted but never transmitted) and require the oracle set to catch it
/// with a printed reproduction seed.
#[test]
fn broken_invariant_is_caught_with_repro_seed() {
    // Use a UDP seed so the run still terminates (the client retransmits
    // around the swallowed reply) and the accounting oracle must do the
    // catching, not a hang.
    let seed = (0..100)
        .find(|&s| plan(s, DEFAULT_BATCHES).transport == TransportKind::Udp)
        .expect("a UDP seed among the first 100");
    let err = run_plan(
        &plan(seed, DEFAULT_BATCHES),
        RunOptions {
            sabotage_replies: 1,
        },
    )
    .expect_err("a swallowed reply must trip an oracle");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("SIMTEST_SEED={seed}")),
        "failure must print a reproduction command: {msg}"
    );
    assert!(
        msg.contains("conservation") || msg.contains("no-stuck-ops"),
        "unexpected oracle: {msg}"
    );
}

/// The seed-derived plan is itself deterministic and always schedules
/// every fault kind with the default batch count.
#[test]
fn plans_are_deterministic_and_complete() {
    for seed in 0..20u64 {
        let a = plan(seed, DEFAULT_BATCHES);
        let b = plan(seed, DEFAULT_BATCHES);
        assert_eq!(a.faults, b.faults, "seed {seed}");
        assert_eq!(a.transport, b.transport, "seed {seed}");
        let kinds: HashSet<FaultKind> = a.faults.iter().map(|&(_, k)| k).collect();
        assert_eq!(kinds.len(), 7, "all fault kinds scheduled: {:?}", a.faults);
    }
}
