//! Bounded CI sweep: a handful of seeds through the full fault schedule,
//! the determinism oracle, and a mutation check proving the oracles can
//! actually catch a broken invariant. Long sweeps run via the binary:
//! `cargo run -p simtest --release -- --seeds 1000`.

use std::collections::HashSet;

use netsim::TransportKind;
use simtest::{
    plan, plan_forced, plan_with, run_plan, run_seed_checked, run_seed_checked_forced,
    run_seed_checked_with, FaultKind, RunOptions, DEFAULT_BATCHES,
};

const CI_SEEDS: u64 = 10;

/// Every seed in the bounded sweep must pass all oracles twice (the
/// second run feeds the determinism fingerprint comparison), and the
/// sweep as a whole must exercise every fault kind and both the
/// retransmission and RPC-timeout recovery paths.
#[test]
fn bounded_sweep_holds_all_oracles() {
    let mut kinds: HashSet<FaultKind> = HashSet::new();
    let mut transports: HashSet<&str> = HashSet::new();
    let mut retransmits = 0u64;
    let mut timed_out = 0u64;
    for seed in 0..CI_SEEDS {
        let r = run_seed_checked(seed).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.ok_ops + r.timed_out_ops, r.ops, "seed {seed}");
        kinds.extend(r.faults.iter().copied());
        transports.insert(match r.transport {
            TransportKind::Udp => "udp",
            TransportKind::Tcp => "tcp",
        });
        retransmits += r.retransmits;
        timed_out += r.timed_out_ops;
    }
    for required in [
        FaultKind::LossBurst,
        FaultKind::LinkDegrade,
        FaultKind::ServerStall,
        FaultKind::NfsdResize,
        FaultKind::NfsdOutage,
        FaultKind::NfsiodResize,
        FaultKind::CacheFlush,
    ] {
        assert!(
            kinds.contains(&required),
            "sweep never injected {required:?}"
        );
    }
    assert!(transports.contains("udp"), "sweep must cover UDP");
    assert!(
        retransmits > 0,
        "loss bursts must force RPC retransmissions"
    );
    assert!(
        timed_out > 0,
        "a UDP blackout must force at least one typed RPC timeout"
    );
}

/// Same seed, same bits: the full report (fingerprint included) must be
/// identical across independent runs.
#[test]
fn same_seed_is_bit_exact() {
    let a = run_seed_checked(3).unwrap_or_else(|e| panic!("{e}"));
    let b = run_seed_checked(3).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(a, b);
    let c = run_seed_checked(4).unwrap_or_else(|e| panic!("{e}"));
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds should explore different runs"
    );
}

/// Mutation check: deliberately break reply conservation (a reply is
/// counted but never transmitted) and require the oracle set to catch it
/// with a printed reproduction seed.
#[test]
fn broken_invariant_is_caught_with_repro_seed() {
    // Use a UDP seed so the run still terminates (the client retransmits
    // around the swallowed reply) and the accounting oracle must do the
    // catching, not a hang.
    let seed = (0..100)
        .find(|&s| plan(s, DEFAULT_BATCHES).transport == TransportKind::Udp)
        .expect("a UDP seed among the first 100");
    let err = run_plan(
        &plan(seed, DEFAULT_BATCHES),
        RunOptions {
            sabotage_replies: 1,
            ..RunOptions::default()
        },
    )
    .expect_err("a swallowed reply must trip an oracle");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("SIMTEST_SEED={seed}")),
        "failure must print a reproduction command: {msg}"
    );
    assert!(
        msg.contains("conservation") || msg.contains("no-stuck-ops"),
        "unexpected oracle: {msg}"
    );
}

/// The seed-derived plan is itself deterministic and always schedules
/// every fault kind with the default batch count.
#[test]
fn plans_are_deterministic_and_complete() {
    for seed in 0..20u64 {
        let a = plan(seed, DEFAULT_BATCHES);
        let b = plan(seed, DEFAULT_BATCHES);
        assert_eq!(a.faults, b.faults, "seed {seed}");
        assert_eq!(a.transport, b.transport, "seed {seed}");
        let kinds: HashSet<FaultKind> = a.faults.iter().map(|&(_, k)| k).collect();
        assert_eq!(kinds.len(), 7, "all fault kinds scheduled: {:?}", a.faults);
    }
}

/// Overlap scheduling packs fault *pairs* into shared batches: all seven
/// kinds still run, but at least one batch hosts two concurrently active
/// faults, and the transport/kind-shuffle stream matches the classic plan.
#[test]
fn overlap_plans_pair_up_faults() {
    for seed in 0..20u64 {
        let classic = plan(seed, DEFAULT_BATCHES);
        let paired = plan_with(seed, DEFAULT_BATCHES, true);
        assert_eq!(paired.transport, classic.transport, "seed {seed}");
        let kinds: HashSet<FaultKind> = paired.faults.iter().map(|&(_, k)| k).collect();
        assert_eq!(kinds.len(), 7, "seed {seed}: {:?}", paired.faults);
        let mut per_batch: HashSet<usize> = HashSet::new();
        let mut doubled = 0;
        for &(b, _) in &paired.faults {
            if !per_batch.insert(b) {
                doubled += 1;
            }
        }
        assert!(doubled >= 3, "seed {seed}: 7 kinds over 4 slots must share");
    }
}

/// The full oracle set holds under overlapping fault pairs (a loss burst
/// during a server stall, an outage during a flush, ...) for both the
/// classic and the 2-client worlds, and the restore path composes: one
/// revert returns every knob to baseline no matter how many faults were
/// active (checked by the in-run restore-composition oracle).
#[test]
fn overlapping_faults_hold_all_oracles() {
    for seed in 0..6u64 {
        for clients in [1usize, 2] {
            let opts = RunOptions {
                clients,
                ..RunOptions::default()
            };
            let r = run_seed_checked_with(seed, opts, true).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(r.ok_ops + r.timed_out_ops, r.ops, "seed {seed}");
            assert_eq!(r.faults.len(), 7, "all kinds injected: {:?}", r.faults);
            assert!(r.overlap);
            assert_eq!(r.clients, clients);
        }
    }
}

/// A 2-client cluster holds every oracle across the bounded sweep: the
/// summed per-host books still reconcile exactly with the shared server's
/// counters under every fault kind.
#[test]
fn two_client_cluster_sweep_holds_all_oracles() {
    let opts = RunOptions {
        clients: 2,
        ..RunOptions::default()
    };
    let mut multi_host_issue = false;
    for seed in 0..CI_SEEDS {
        let r = run_seed_checked_with(seed, opts, false).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.ok_ops + r.timed_out_ops, r.ops, "seed {seed}");
        assert_eq!(r.clients, 2);
        // The same seed must explore a genuinely different run than the
        // single-client world (the per-op client draw changes the stream).
        let single = run_seed_checked(seed).unwrap_or_else(|e| panic!("{e}"));
        if r.fingerprint != single.fingerprint {
            multi_host_issue = true;
        }
    }
    assert!(
        multi_host_issue,
        "2-client runs must actually diverge from single-client runs"
    );
}

/// The full fault matrix holds under forced TCP (`--transport tcp`):
/// every classic kind *plus* the TCP-only total-blackout window runs
/// against the timed segment engine, every oracle (including the TCP
/// segment books and in-order delivery) stays green, and the blackout's
/// abort ladder surfaces typed `RpcTimedOut` completions — the recovery
/// path the old inline engine could never reach.
#[test]
fn forced_tcp_sweep_holds_all_oracles_through_blackouts() {
    let mut kinds: HashSet<FaultKind> = HashSet::new();
    let mut timed_out = 0u64;
    for seed in 0..6u64 {
        let r =
            run_seed_checked_forced(seed, RunOptions::default(), false, Some(TransportKind::Tcp))
                .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.transport, TransportKind::Tcp, "seed {seed}");
        assert_eq!(r.ok_ops + r.timed_out_ops, r.ops, "seed {seed}");
        assert_eq!(
            r.retransmits, 0,
            "seed {seed}: TCP must never retransmit at the RPC layer"
        );
        assert!(
            r.faults.contains(&FaultKind::TcpBlackout),
            "seed {seed}: forced-TCP plans must schedule the blackout: {:?}",
            r.faults
        );
        kinds.extend(r.faults.iter().copied());
        timed_out += r.timed_out_ops;
    }
    for required in FaultKind::ALL {
        assert!(
            kinds.contains(&required),
            "forced-TCP sweep never injected {required:?}"
        );
    }
    assert!(
        timed_out > 0,
        "blackout abort ladders must surface typed RPC timeouts on TCP"
    );
}

/// Forcing the transport overrides the seed's draw without disturbing the
/// rest of the plan stream, and only forced-TCP plans gain the blackout.
#[test]
fn forced_transport_overrides_the_draw_only() {
    for seed in 0..20u64 {
        let drawn = plan(seed, DEFAULT_BATCHES);
        let tcp = plan_forced(
            seed,
            DEFAULT_BATCHES,
            false,
            false,
            Some(TransportKind::Tcp),
        );
        let udp = plan_forced(
            seed,
            DEFAULT_BATCHES,
            false,
            false,
            Some(TransportKind::Udp),
        );
        assert_eq!(tcp.transport, TransportKind::Tcp, "seed {seed}");
        assert_eq!(udp.transport, TransportKind::Udp, "seed {seed}");
        let tcp_kinds: HashSet<FaultKind> = tcp.faults.iter().map(|&(_, k)| k).collect();
        let udp_kinds: HashSet<FaultKind> = udp.faults.iter().map(|&(_, k)| k).collect();
        assert_eq!(tcp_kinds.len(), 8, "seed {seed}: 7 classic + blackout");
        assert!(tcp_kinds.contains(&FaultKind::TcpBlackout), "seed {seed}");
        assert_eq!(
            udp_kinds.len(),
            7,
            "seed {seed}: forced UDP schedules only the classic kinds"
        );
        assert!(!udp_kinds.contains(&FaultKind::TcpBlackout), "seed {seed}");
        // A forced-UDP plan is the drawn plan with only the transport
        // (possibly) swapped: same shuffle, same slots.
        assert_eq!(udp.faults, drawn.faults, "seed {seed}");
    }
}

/// Failure reports from forced-transport runs print the `--transport`
/// repro flag. A swallowed reply on TCP hangs the waiting operation (TCP
/// never retransmits RPCs), so the no-stuck-ops oracle must catch it.
#[test]
fn forced_tcp_failures_print_the_transport_flag() {
    let err = run_plan(
        &plan_forced(0, DEFAULT_BATCHES, false, false, Some(TransportKind::Tcp)),
        RunOptions {
            sabotage_replies: 1,
            ..RunOptions::default()
        },
    )
    .expect_err("a swallowed reply must trip an oracle");
    let msg = err.to_string();
    assert!(
        msg.contains("--transport tcp"),
        "missing transport flag: {msg}"
    );
    assert!(msg.contains("no-stuck-ops"), "unexpected oracle: {msg}");
}

/// Failure reports from cluster / overlap runs carry the extra repro
/// flags, so the printed command actually reproduces the failing mode.
#[test]
fn cluster_failures_print_full_repro_flags() {
    let seed = (0..100)
        .find(|&s| plan(s, DEFAULT_BATCHES).transport == TransportKind::Udp)
        .expect("a UDP seed among the first 100");
    let err = run_plan(
        &plan_with(seed, DEFAULT_BATCHES, true),
        RunOptions {
            sabotage_replies: 1,
            clients: 2,
            ..RunOptions::default()
        },
    )
    .expect_err("a swallowed reply must trip an oracle");
    let msg = err.to_string();
    assert!(msg.contains("--clients 2"), "missing cluster flag: {msg}");
    assert!(msg.contains("--overlap"), "missing overlap flag: {msg}");
}
