//! The latency-histogram oracle (`--hist-oracle`) holds across a small
//! fault sweep: the streaming `LogHist` the tail-latency instrumentation
//! is built on reconciles with exact order statistics on every seed, the
//! reported tail quantiles are sane, and turning the oracle on does not
//! move the world's fingerprint (observation is passive).

use simtest::{run_seed_checked_with, RunOptions};

const CI_SEEDS: u64 = 8;

#[test]
fn hist_oracle_holds_under_disk_faults() {
    for seed in 0..CI_SEEDS {
        let opts = RunOptions {
            disk_faults: true,
            hist_oracle: true,
            ..RunOptions::default()
        };
        let r = run_seed_checked_with(seed, opts, false).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            r.lat_p99_ns > 0,
            "seed {seed}: a faulted run must have nonzero p99"
        );
        assert!(
            r.lat_p99_ns <= r.lat_p999_ns,
            "seed {seed}: quantiles must be monotone in the report"
        );
        assert!(
            r.lat_p999_ns <= r.sim_nanos,
            "seed {seed}: no op outlasts the run"
        );
    }
}

#[test]
fn hist_collection_is_passive() {
    for seed in [0u64, 5] {
        let off = run_seed_checked_with(seed, RunOptions::default(), false)
            .unwrap_or_else(|e| panic!("{e}"));
        let on = run_seed_checked_with(
            seed,
            RunOptions {
                hist_oracle: true,
                ..RunOptions::default()
            },
            false,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            off.fingerprint, on.fingerprint,
            "seed {seed}: observing latencies must not perturb the world"
        );
    }
}
