//! Bounded CI sweep for the metadata-storm mode: storm runs arm the
//! client attribute cache at the classic `acregmin=3s`/`acregmax=60s`
//! timeouts and drive a GETATTR/LOOKUP/READDIR-heavy mix with
//! open()-style forced revalidations. The sweep must prove the cache is
//! *live* — getattr-class ops really are answered locally — while the
//! attrcache-books oracle balances every hit, miss, and revalidation on
//! every seed, and non-storm runs keep the machinery provably dormant.
//! Long sweeps run via the binary:
//! `cargo run -p simtest --release -- --seeds 1000 --meta-storm`.

use std::sync::Mutex;

use netsim::TransportKind;
use simtest::{
    plan, plan_forced, run_plan, run_seed_checked, run_seed_checked_with, RunOptions,
    DEFAULT_BATCHES,
};

const CI_SEEDS: u64 = 10;

fn meta_storm_opts() -> RunOptions {
    RunOptions {
        meta_storm: true,
        ..RunOptions::default()
    }
}

/// The jobs override is process-global; serialize tests that flip it.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Every storm seed passes all oracles twice (determinism included), and
/// across the sweep the attribute cache demonstrably fires: getattr-class
/// ops are answered locally, wire GETATTRs still flow (misses and
/// revalidations), and at least one revalidation catches the server's
/// attributes having moved under a storm write.
#[test]
fn meta_storm_sweep_holds_all_oracles_and_the_cache_fires() {
    let mut hits = 0u64;
    let mut wire = 0u64;
    let mut revalidations = 0u64;
    let mut stale = 0u64;
    for seed in 0..CI_SEEDS {
        let r =
            run_seed_checked_with(seed, meta_storm_opts(), false).unwrap_or_else(|e| panic!("{e}"));
        assert!(r.meta_storm);
        assert_eq!(
            r.ok_ops + r.timed_out_ops + r.eio_ops,
            r.ops,
            "seed {seed}: every op completes with a typed outcome"
        );
        assert!(
            r.getattr_rpcs > 0,
            "seed {seed}: a storm run must put GETATTRs on the wire"
        );
        hits += r.attr_cache_hits;
        wire += r.getattr_rpcs;
        revalidations += r.attr_revalidations;
        stale += r.attr_stale_detected;
    }
    assert!(hits > 0, "the attribute cache must answer some ops locally");
    assert!(
        revalidations > 0,
        "expired and open-forced entries must revalidate over the wire"
    );
    assert!(
        stale > 0,
        "some revalidation must catch the server's attributes moving \
         (storm writes bump them): {wire} wire GETATTRs, {revalidations} revalidations"
    );
}

/// A non-storm run never wakes the attribute cache: the report's cache
/// counters are all zero, and the in-run `attrcache-dormancy` oracle
/// backs the same claim inside `run_plan` (including the entry table).
#[test]
fn clean_runs_keep_the_attr_cache_dormant() {
    for seed in 0..4u64 {
        let r = run_seed_checked(seed).unwrap_or_else(|e| panic!("{e}"));
        assert!(!r.meta_storm, "seed {seed}");
        assert_eq!(r.attr_cache_hits, 0, "seed {seed}");
        assert_eq!(r.attr_revalidations, 0, "seed {seed}");
        assert_eq!(r.attr_stale_detected, 0, "seed {seed}");
    }
}

/// The attrcache books compose with the rest of the matrix: a 2-client
/// cluster and overlapping fault pairs both hold, and the 2-client run
/// diverges from the single-client run (the per-op client draw changes
/// the stream).
#[test]
fn meta_storm_composes_with_cluster_and_overlap() {
    let mut diverged = false;
    for seed in 0..4u64 {
        let single =
            run_seed_checked_with(seed, meta_storm_opts(), false).unwrap_or_else(|e| panic!("{e}"));
        let cluster = run_seed_checked_with(
            seed,
            RunOptions {
                clients: 2,
                ..meta_storm_opts()
            },
            false,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(cluster.clients, 2, "seed {seed}");
        if cluster.fingerprint != single.fingerprint {
            diverged = true;
        }
        let paired =
            run_seed_checked_with(seed, meta_storm_opts(), true).unwrap_or_else(|e| panic!("{e}"));
        assert!(paired.overlap, "seed {seed}");
        assert!(paired.attr_cache_hits > 0, "seed {seed}");
    }
    assert!(diverged, "2-client storm runs must explore different runs");
}

/// Storm mode composes with the disk-fault schedule: the full
/// `DISK_BATCHES` matrix runs with the cache armed, and both the
/// attrcache books and the disk books hold on every seed.
#[test]
fn meta_storm_composes_with_disk_faults() {
    for seed in 0..3u64 {
        let r = run_seed_checked_with(
            seed,
            RunOptions {
                disk_faults: true,
                ..meta_storm_opts()
            },
            false,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert!(r.disk_faults, "seed {seed}");
        assert!(r.meta_storm, "seed {seed}");
        assert!(r.attr_cache_hits > 0, "seed {seed}");
    }
}

/// Forced TCP: the metadata mix rides the timed segment engine — hits
/// stay local, wire GETATTRs flow in order, and the books hold with zero
/// RPC-layer retransmissions.
#[test]
fn meta_storm_holds_under_forced_tcp() {
    for seed in 0..3u64 {
        let p = plan_forced(
            seed,
            DEFAULT_BATCHES,
            false,
            false,
            Some(TransportKind::Tcp),
        );
        let r = run_plan(&p, meta_storm_opts()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.transport, TransportKind::Tcp, "seed {seed}");
        assert_eq!(r.retransmits, 0, "seed {seed}: TCP never retransmits RPCs");
        assert!(r.attr_cache_hits > 0, "seed {seed}");
        assert!(r.getattr_rpcs > 0, "seed {seed}");
    }
}

/// Mutation check: a sabotaged (swallowed) reply under meta-storm must
/// still be caught, and the reproduction command must carry the
/// `--meta-storm` flag so the printed line reproduces the failing mode.
#[test]
fn meta_storm_failures_print_the_mode_flag() {
    let seed = (0..100)
        .find(|&s| plan(s, DEFAULT_BATCHES).transport == TransportKind::Udp)
        .expect("a UDP seed among the first 100");
    let err = run_plan(
        &plan(seed, DEFAULT_BATCHES),
        RunOptions {
            sabotage_replies: 1,
            ..meta_storm_opts()
        },
    )
    .expect_err("a swallowed reply must trip an oracle");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("SIMTEST_SEED={seed}")),
        "failure must print a reproduction command: {msg}"
    );
    assert!(msg.contains("--meta-storm"), "missing mode flag: {msg}");
}

/// The storm sweep is bit-identical whether the seeds run serially or
/// fan out across `simfleet` worker threads: the attribute cache adds no
/// hidden cross-run state.
#[test]
fn meta_storm_sweep_is_bit_identical_across_job_counts() {
    let seeds: Vec<u64> = (0..6).collect();
    let sweep = |jobs| {
        let _guard = JOBS_LOCK.lock().unwrap();
        simfleet::set_jobs_override(Some(jobs));
        let out = simfleet::map_indexed(&seeds, |&seed| {
            let r = run_seed_checked_with(seed, meta_storm_opts(), false)
                .unwrap_or_else(|e| panic!("{e}"));
            (
                r.fingerprint,
                r.ops,
                r.getattr_rpcs,
                r.attr_cache_hits,
                r.attr_stale_detected,
                r.sim_nanos,
            )
        });
        simfleet::set_jobs_override(None);
        out
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(
        serial, parallel,
        "meta-storm sweep diverged between jobs=1 and jobs=4"
    );
}

/// `--write-loss` wins when both modes are requested: the workload stays
/// the crash-consistency mix and the attribute cache stays disarmed, so
/// the close books keep their exact shape.
#[test]
fn write_loss_wins_over_meta_storm() {
    let r = run_seed_checked_with(
        0,
        RunOptions {
            write_loss: true,
            ..meta_storm_opts()
        },
        false,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(r.write_loss);
    assert!(!r.meta_storm, "the write-loss workload must win");
    assert_eq!(r.attr_cache_hits, 0);
    assert!(r.unstable_writes > 0);
}
