//! Deterministic fault-injection simulation tests for the NFS world.
//!
//! FoundationDB-style simulation testing: a single `u64` seed generates a
//! randomized multi-process workload (readers, writers, getattr pollers)
//! over [`NfsWorld`], injects faults mid-run — frame-loss bursts, link
//! degradation, server stalls, `nfsd`/`nfsiod` pool resizing, total
//! zero-`nfsd` outages, forced cache flushes, and (with `--disk-faults`)
//! server disk faults: latent sector errors, a stuck TCQ tag, firmware
//! stall windows, fail-slow regions — and checks invariant *oracles*
//! after every event batch:
//!
//! - **monotone time**: simulated time never runs backwards, and no
//!   operation completes before it was issued;
//! - **op accounting**: every issued [`OpId`] completes exactly once, with
//!   its own tag, as `Ok` or a typed `RpcTimedOut` / `Eio`;
//! - **no stuck operations**: quiescence (no pending events) with
//!   operations still outstanding is a failure, reported with the hung
//!   xids;
//! - **block conservation**: every client-cache block miss is fetched by
//!   exactly one non-retransmit READ RPC (`rpcs == predicted demand
//!   misses + read-ahead RPCs`);
//! - **RPC conservation**: link-level message counts reconcile exactly
//!   with client transmissions, server call/duplicate/orphan counts, and
//!   replies;
//! - **restore composition**: after a fault batch is reverted — including
//!   an *overlapping* batch where two fault kinds were active at once —
//!   every host's link profile, both daemon pools, and the drive's fault
//!   model are back at their baseline values;
//! - **restore baseline**: across any batch without an installed disk
//!   fault model the drive produces zero new error completions;
//! - **disk books**: bio error completions reconcile exactly with retries
//!   plus propagated `EIO`s, every `EIO` is a hard error or an exhausted
//!   transient, no request exceeds the retry cap, and every server `EIO`
//!   is attributed to a specific client;
//! - **TCP books** (TCP runs): per client and direction, every segment
//!   ever sent is acked, in flight, or tracked as lost; every segment
//!   that survived the link was delivered exactly once; in-order
//!   delivery was never violated;
//! - **determinism**: the same seed reproduces the bit-exact same run
//!   fingerprint (TCP runs fold the segment-engine books in too).
//!
//! The workload generalises to a cluster: with [`RunOptions::clients`]
//! greater than one, the same seed drives N client hosts (each with its
//! own files, cursors, and RNG-derived streams inside the world) against
//! the one shared server, and the conservation oracles reconcile the
//! *summed* per-host books against the server's.
//!
//! With [`RunOptions::write_loss`] the mount switches to the NFSv3 async
//! write path (UNSTABLE WRITEs, server-side write gathering, COMMIT on
//! close) and the workload becomes write-heavy with interleaved closes.
//! Every `nfsd`-outage batch turns into a *crash*: the run drains only a
//! few milliseconds — less than the gather window, so UNSTABLE data is
//! still sitting in the server's dirty pool — then the server loses its
//! pool and changes its write verifier. Three crash-consistency oracles
//! join the set:
//!
//! - **no committed loss**: every block a completed `close()` reported
//!   stable is actually on the server's stable storage;
//! - **dirty books**: blocks stashed in the server's dirty pool equal
//!   blocks flushed + blocks lost to crashes + the live gauge, at every
//!   batch boundary;
//! - **crash detection**: a verifier mismatch implies a restart happened,
//!   a rewritten block implies a mismatch was detected, and (in clean
//!   runs) the async machinery never wakes on a FILE_SYNC mount.
//!
//! With [`RunOptions::meta_storm`] the workload flips to a
//! metadata-heavy mix (GETATTR pollers, open()-style revalidations,
//! LOOKUPs, READDIR chunks, occasional writes) and the client attribute
//! cache arms at the classic `acregmin=3,acregmax=60` timeouts. Two
//! oracle families join the set:
//!
//! - **attrcache-books**: every getattr-class op is a cache hit or a wire
//!   GETATTR; every wire GETATTR is a miss or a revalidation; staleness
//!   detections never exceed revalidations;
//! - **attrcache-dormancy** (always on in *non*-storm runs): with the
//!   cache disarmed every attribute-cache counter is zero and the cache
//!   holds no entries — the machinery is provably inert by default.
//!
//! Every failure message carries a one-line reproduction command:
//! `SIMTEST_SEED=<n> cargo run -p simtest -- --seed <n>` (plus
//! `--clients N` / `--overlap` / `--disk-faults` / `--write-loss` /
//! `--meta-storm` when those modes were active).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use diskfault::{FaultPlan, FaultState};
use netsim::{LinkProfile, LinkStats, TransportKind};
use nfsproto::{FileHandle, StableHow};
use nfssim::{BlockState, ClientHostConfig, ClientStats, NfsWorld, OpId, OpOutcome, WorldConfig};
use simcore::{LogHist, SimDuration, SimRng, SimTime};
use testbed::Rig;

/// Batches per run with the default options: seven fault batches (one per
/// [`FaultKind`], shuffled by seed) interleaved with clean batches, plus a
/// clean tail to observe recovery.
pub const DEFAULT_BATCHES: usize = 16;

/// Batches per run when disk faults join the schedule: eleven fault
/// batches (seven classic kinds + four disk kinds) interleaved with clean
/// batches, plus a clean tail.
pub const DISK_BATCHES: usize = 24;

/// Event budget per run; exhausting it fails the bounded-progress oracle.
const STEP_BUDGET: u64 = 5_000_000;

const FILES: usize = 3;
const FILE_BLOCKS: u64 = 64;
const BS: u64 = 8_192;

/// One kind of mid-run fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Frame loss jumps (to a total blackout on UDP half the time:
    /// exercises retransmission and the typed RPC-timeout path).
    LossBurst,
    /// Bandwidth collapses and latency/jitter balloon (congested path).
    LinkDegrade,
    /// The server CPU freezes for a while (GC pause / competing job —
    /// the §9.2 "quiet workload" trap).
    ServerStall,
    /// The `nfsd` pool shrinks to one or two daemons.
    NfsdResize,
    /// The `nfsd` pool drops to zero: a total server outage. Calls queue
    /// and nothing is served until the pool is restored (UDP clients
    /// retransmit into the void and time out; TCP clients wait it out).
    NfsdOutage,
    /// The client `nfsiod` pool shrinks (possibly to zero: read-ahead
    /// disabled).
    NfsiodResize,
    /// Every data cache is dropped mid-run (§4.3.1 flush discipline).
    CacheFlush,
    /// Latent sector errors appear under live server data: transient
    /// clusters cost bounded bio retries, hard clusters surface one `EIO`
    /// and are remapped to spares.
    SectorErrors,
    /// One TCQ tag on the server's drive goes bad: every Nth command
    /// stalls for tens of milliseconds.
    StuckTag,
    /// Drive firmware stalls (GC / thermal recal): commands starting
    /// inside a window are held until it closes.
    FirmwareStall,
    /// A fail-slow region: transfers touching it pay a per-sector penalty
    /// but still succeed — the degraded-but-not-dead drive.
    FailSlow,
    /// A `frame_loss = 1.0` blackout window on one (seed-chosen) client's
    /// links. Scheduled only by forced-TCP plans: the point is the TCP
    /// segment engine's RTO ladder — segments back off through the
    /// window, abort after the retry budget (typed `RpcTimedOut`), and
    /// anything still queued recovers at restore. The UDP equivalent is
    /// [`FaultKind::LossBurst`]'s blackout half.
    TcpBlackout,
}

impl FaultKind {
    /// The classic (non-disk) fault kinds, in declaration order. The
    /// pinned fingerprints shuffle exactly this array, so disk kinds live
    /// in [`FaultKind::DISK`] and only join the schedule on request.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::LossBurst,
        FaultKind::LinkDegrade,
        FaultKind::ServerStall,
        FaultKind::NfsdResize,
        FaultKind::NfsdOutage,
        FaultKind::NfsiodResize,
        FaultKind::CacheFlush,
    ];

    /// The disk fault kinds (scheduled only with `--disk-faults`).
    pub const DISK: [FaultKind; 4] = [
        FaultKind::SectorErrors,
        FaultKind::StuckTag,
        FaultKind::FirmwareStall,
        FaultKind::FailSlow,
    ];

    /// Short kebab-case name for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LossBurst => "loss-burst",
            FaultKind::LinkDegrade => "link-degrade",
            FaultKind::ServerStall => "server-stall",
            FaultKind::NfsdResize => "nfsd-resize",
            FaultKind::NfsdOutage => "nfsd-outage",
            FaultKind::NfsiodResize => "nfsiod-resize",
            FaultKind::CacheFlush => "cache-flush",
            FaultKind::SectorErrors => "sector-errors",
            FaultKind::StuckTag => "stuck-tag",
            FaultKind::FirmwareStall => "firmware-stall",
            FaultKind::FailSlow => "fail-slow",
            FaultKind::TcpBlackout => "tcp-blackout",
        }
    }
}

/// Everything a run does, derived purely from the seed.
#[derive(Debug, Clone)]
pub struct SimPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// Number of event batches.
    pub batches: usize,
    /// Transport under test (3 in 4 seeds use UDP, the paper's default).
    pub transport: TransportKind,
    /// `(batch, kind)` fault schedule; each fault lasts until its batch's
    /// revert. With overlap scheduling two kinds share one batch.
    pub faults: Vec<(usize, FaultKind)>,
    /// Whether the schedule packs fault *pairs* into shared batches.
    pub overlap: bool,
    /// Whether [`FaultKind::DISK`] kinds were shuffled into the schedule.
    pub disk_faults: bool,
    /// Set when the transport axis was forced (`--transport tcp|udp`)
    /// instead of seed-drawn; forced-TCP plans additionally schedule
    /// [`FaultKind::TcpBlackout`].
    pub forced_transport: Option<TransportKind>,
}

/// Knobs that are not part of the seed-derived plan.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Mutation check: this many server replies are counted in the books
    /// but never transmitted, which a healthy oracle set must catch.
    pub sabotage_replies: u32,
    /// Client hosts in the cluster under test (1 = the classic world).
    pub clients: usize,
    /// Shuffle the [`FaultKind::DISK`] kinds into the fault schedule
    /// (lengthening the run to [`DISK_BATCHES`]).
    pub disk_faults: bool,
    /// Mount UNSTABLE (the NFSv3 async write path), run a write-heavy
    /// workload with interleaved closes, and turn every `nfsd`-outage
    /// batch into a mid-gather server crash (dirty pool lost, write
    /// verifier changed). Adds the crash-consistency oracle set.
    pub write_loss: bool,
    /// Metadata-storm mode: the workload becomes GETATTR/LOOKUP/READDIR
    /// heavy with open()-style forced revalidations, and the client
    /// attribute cache arms at `acregmin=3s`/`acregmax=60s`. Adds the
    /// attrcache-books oracle. Ignored when [`RunOptions::write_loss`] is
    /// also set (the write workload wins and the cache stays off).
    pub meta_storm: bool,
    /// Record every operation's latency into a [`LogHist`] alongside an
    /// exact list, and run the latency-histogram oracle at end of run:
    /// counts reconcile, quantiles are monotone, the streaming p50/p99/
    /// p99.9 agree with the exact order statistics within the histogram's
    /// documented relative-error bound, and the tail is inside the run.
    pub hist_oracle: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            sabotage_replies: 0,
            clients: 1,
            disk_faults: false,
            write_loss: false,
            meta_storm: false,
            hist_oracle: false,
        }
    }
}

/// Summary of one completed (oracle-clean) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The seed that generated the run.
    pub seed: u64,
    /// Transport used.
    pub transport: TransportKind,
    /// Operations issued.
    pub ops: u64,
    /// Operations that completed `Ok`.
    pub ok_ops: u64,
    /// Operations that failed with `RpcTimedOut`.
    pub timed_out_ops: u64,
    /// Operations that failed with `Eio` (server disk gave up).
    pub eio_ops: u64,
    /// Disk requests the bio layer retried after a transient error.
    pub disk_retries: u64,
    /// `EIO`s the server returned after bio-layer recovery gave up.
    pub disk_eios: u64,
    /// Client RPC retransmissions.
    pub retransmits: u64,
    /// RPCs abandoned after the retry cap.
    pub rpc_timeouts: u64,
    /// Faults injected, in schedule order.
    pub faults: Vec<FaultKind>,
    /// Client hosts the run drove.
    pub clients: usize,
    /// Whether faults were injected in overlapping pairs.
    pub overlap: bool,
    /// Whether disk fault kinds were in the schedule.
    pub disk_faults: bool,
    /// Whether the run used the async write path with crash injection.
    pub write_loss: bool,
    /// Whether the run used the metadata-storm workload with the
    /// attribute cache armed.
    pub meta_storm: bool,
    /// GETATTR RPCs the clients put on the wire (misses + revalidations).
    pub getattr_rpcs: u64,
    /// Getattr-class ops the attribute cache answered locally.
    pub attr_cache_hits: u64,
    /// Wire GETATTRs that revalidated an existing (expired or
    /// open-forced) cache entry.
    pub attr_revalidations: u64,
    /// Revalidations that found the server's attributes had moved.
    pub attr_stale_detected: u64,
    /// UNSTABLE WRITE calls the server stashed without touching disk.
    pub unstable_writes: u64,
    /// COMMIT calls the server received.
    pub commits: u64,
    /// Dirty-pool flushes the server submitted (one per coalesced run).
    pub gather_flushes: u64,
    /// Blocks dropped from the dirty pool by server crashes.
    pub dirty_blocks_lost: u64,
    /// COMMIT replies whose verifier betrayed a server crash window.
    pub verifier_mismatches: u64,
    /// Blocks rewritten after a verifier mismatch.
    pub blocks_rewritten: u64,
    /// Server restarts injected (each one changes the write verifier).
    pub restarts: u64,
    /// Streaming p99 operation latency, nanoseconds (0 unless the run
    /// collected the latency histogram — [`RunOptions::hist_oracle`]).
    pub lat_p99_ns: u64,
    /// Streaming p99.9 operation latency, nanoseconds (0 unless the run
    /// collected the latency histogram).
    pub lat_p999_ns: u64,
    /// Order-sensitive hash of every completion and the final counters;
    /// equal across runs of the same seed iff the world is deterministic.
    pub fingerprint: u64,
    /// Final simulated time, nanoseconds.
    pub sim_nanos: u64,
}

/// An invariant violation, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// The seed that produced the failing run.
    pub seed: u64,
    /// Which oracle tripped.
    pub oracle: &'static str,
    /// What it saw.
    pub detail: String,
    /// Cluster width of the failing run.
    pub clients: usize,
    /// Whether the failing run used overlapping fault pairs.
    pub overlap: bool,
    /// Whether the failing run scheduled disk fault kinds.
    pub disk_faults: bool,
    /// Whether the failing run used the async write path with crashes.
    pub write_loss: bool,
    /// Whether the failing run used the metadata-storm workload.
    pub meta_storm: bool,
    /// Whether (and how) the failing run forced the transport axis.
    pub forced_transport: Option<TransportKind>,
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simtest oracle `{}` failed: {}\n  reproduce with: SIMTEST_SEED={} cargo run -p simtest -- --seed {}",
            self.oracle, self.detail, self.seed, self.seed
        )?;
        if self.clients > 1 {
            write!(f, " --clients {}", self.clients)?;
        }
        if self.overlap {
            write!(f, " --overlap")?;
        }
        if self.disk_faults {
            write!(f, " --disk-faults")?;
        }
        if self.write_loss {
            write!(f, " --write-loss")?;
        }
        if self.meta_storm {
            write!(f, " --meta-storm")?;
        }
        match self.forced_transport {
            Some(TransportKind::Tcp) => write!(f, " --transport tcp")?,
            Some(TransportKind::Udp) => write!(f, " --transport udp")?,
            None => {}
        }
        Ok(())
    }
}

impl std::error::Error for OracleFailure {}

/// Derives the full run plan from a seed.
pub fn plan(seed: u64, batches: usize) -> SimPlan {
    plan_with(seed, batches, false)
}

/// Derives a run plan, optionally packing faults into overlapping pairs.
///
/// With `overlap` false, one fault lands on each odd batch (the classic
/// schedule, each kind followed by a clean recovery batch). With `overlap`
/// true, *two* distinct fault kinds land on each odd batch and stay active
/// together until the batch's revert — the concurrent-failure mode (a loss
/// burst during a server stall, an outage during a cache flush, ...).
/// Transport choice and the kind shuffle draw the same RNG stream either
/// way, so the two modes explore the same per-seed fault orderings.
pub fn plan_with(seed: u64, batches: usize, overlap: bool) -> SimPlan {
    plan_full(seed, batches, overlap, false)
}

/// [`plan_with`] plus disk faults: with `disk_faults` true the
/// [`FaultKind::DISK`] kinds join the shuffle (pass [`DISK_BATCHES`] so
/// all eleven kinds land). The disk-free plan draws the identical RNG
/// stream as before disk faults existed, so pinned fingerprints hold.
pub fn plan_full(seed: u64, batches: usize, overlap: bool, disk_faults: bool) -> SimPlan {
    plan_forced(seed, batches, overlap, disk_faults, None)
}

/// [`plan_full`] with the transport axis forced instead of seed-drawn
/// (`--transport tcp|udp`). The transport draw is still made — and then
/// overridden — so the kind shuffle and every later workload draw stay on
/// the seed's usual stream. Forcing TCP also appends
/// [`FaultKind::TcpBlackout`] to the shuffle: 8 classic kinds fit the
/// default 16 batches, 12 fit [`DISK_BATCHES`], so the whole existing
/// fault matrix runs under TCP *plus* the blackout window the old inline
/// engine could never survive.
pub fn plan_forced(
    seed: u64,
    batches: usize,
    overlap: bool,
    disk_faults: bool,
    forced: Option<TransportKind>,
) -> SimPlan {
    let mut rng = SimRng::from_seed_and_stream(seed, 0x53_49_4D_54_45_53_54); // "SIMTEST"
    let drawn = if rng.gen_range(0u32..4) == 3 {
        TransportKind::Tcp
    } else {
        TransportKind::Udp
    };
    let transport = forced.unwrap_or(drawn);
    let mut kinds = FaultKind::ALL.to_vec();
    if disk_faults {
        kinds.extend(FaultKind::DISK);
    }
    if forced == Some(TransportKind::Tcp) {
        kinds.push(FaultKind::TcpBlackout);
    }
    rng.shuffle(&mut kinds);
    // With the default 16 batches every run exercises all seven classic
    // kinds (24 fit all eleven when disk kinds are in).
    let faults = kinds
        .into_iter()
        .enumerate()
        .map(|(i, k)| {
            let slot = if overlap { i / 2 } else { i };
            (1 + 2 * slot, k)
        })
        .filter(|&(b, _)| b < batches)
        .collect();
    SimPlan {
        seed,
        batches,
        transport,
        faults,
        overlap,
        disk_faults,
        forced_transport: forced,
    }
}

/// Runs one seed with the default plan and options.
pub fn run_seed(seed: u64) -> Result<RunReport, OracleFailure> {
    run_plan(&plan(seed, DEFAULT_BATCHES), RunOptions::default())
}

/// Runs one seed twice and adds the determinism oracle: both runs must
/// produce the bit-exact same fingerprint.
pub fn run_seed_checked(seed: u64) -> Result<RunReport, OracleFailure> {
    run_seed_checked_with(seed, RunOptions::default(), false)
}

/// [`run_seed_checked`] with explicit options and overlap scheduling.
pub fn run_seed_checked_with(
    seed: u64,
    opts: RunOptions,
    overlap: bool,
) -> Result<RunReport, OracleFailure> {
    run_seed_checked_forced(seed, opts, overlap, None)
}

/// [`run_seed_checked_with`] with the transport axis forced
/// (`--transport tcp|udp`); see [`plan_forced`].
pub fn run_seed_checked_forced(
    seed: u64,
    opts: RunOptions,
    overlap: bool,
    forced: Option<TransportKind>,
) -> Result<RunReport, OracleFailure> {
    let batches = if opts.disk_faults {
        DISK_BATCHES
    } else {
        DEFAULT_BATCHES
    };
    let p = plan_forced(seed, batches, overlap, opts.disk_faults, forced);
    let first = run_plan(&p, opts)?;
    let second = run_plan(&p, opts)?;
    if first != second {
        return Err(OracleFailure {
            seed,
            oracle: "determinism",
            detail: format!(
                "same seed diverged: fingerprints {:#x} vs {:#x}",
                first.fingerprint, second.fingerprint
            ),
            clients: opts.clients,
            overlap,
            disk_faults: opts.disk_faults,
            write_loss: opts.write_loss,
            meta_storm: opts.meta_storm,
            forced_transport: forced,
        });
    }
    Ok(first)
}

struct IssueRec {
    tag: u64,
    at: SimTime,
}

/// The run's mutable accounting state, threaded through every drain so the
/// crash-injection path can drain in several pieces (a partial drain up to
/// a horizon, then the post-crash drain) without duplicating the oracle
/// bookkeeping. The recording order inside [`drain_until`] is exactly the
/// old inline loop's, so clean-mode fingerprints are unmoved.
struct Books {
    issued: BTreeMap<OpId, IssueRec>,
    completed: HashSet<OpId>,
    /// Latency collection for the hist oracle; `None` when the oracle is
    /// off, so default runs do no extra work and no extra allocation.
    lat: Option<(LogHist, Vec<u64>)>,
    predicted_demand: u64,
    /// Getattr-class ops (GETATTR polls + open()-style revalidations) the
    /// meta-storm workload issued; the attrcache-books oracle checks every
    /// one was either a cache hit or a wire GETATTR.
    predicted_getattr_class: u64,
    ok_ops: u64,
    timed_out_ops: u64,
    eio_ops: u64,
    next_tag: u64,
    fp: u64,
    last_now: SimTime,
    steps: u64,
}

fn mix(fp: &mut u64, v: u64) {
    // FNV-1a over the 8 bytes of `v`.
    for b in v.to_le_bytes() {
        *fp ^= u64::from(b);
        *fp = fp.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Drains events, checking the per-event oracles (bounded progress,
/// monotone time, op accounting) and folding each completion into the
/// fingerprint. With a `horizon` the drain stops *before* the first event
/// past it — the crash path uses this to freeze the world mid-gather.
/// Returns each completion as `(op, completed_ok)` so the caller can run
/// mode-specific bookkeeping (the crash-consistency close oracles) on top.
fn drain_until<F>(
    w: &mut NfsWorld,
    bk: &mut Books,
    horizon: Option<SimTime>,
    batch: usize,
    fail: &F,
) -> Result<Vec<(OpId, bool)>, OracleFailure>
where
    F: Fn(&'static str, String) -> OracleFailure,
{
    let mut done = Vec::new();
    while let Some(t) = w.next_event() {
        if horizon.is_some_and(|h| t > h) {
            break;
        }
        bk.steps += 1;
        if bk.steps > STEP_BUDGET {
            return Err(fail(
                "bounded-progress",
                format!(
                    "event budget exhausted in batch {batch}; outstanding xids {:?}",
                    w.outstanding_xids()
                ),
            ));
        }
        if t < bk.last_now {
            return Err(fail(
                "monotone-time",
                format!("event time regressed: {t} after {}", bk.last_now),
            ));
        }
        bk.last_now = t;
        for d in w.advance(t) {
            if !bk.completed.insert(d.id) {
                return Err(fail(
                    "op-accounting",
                    format!("operation {:?} completed twice", d.id),
                ));
            }
            let Some(rec) = bk.issued.get(&d.id) else {
                return Err(fail(
                    "op-accounting",
                    format!("completion for never-issued operation {:?}", d.id),
                ));
            };
            if d.tag != rec.tag {
                return Err(fail(
                    "op-accounting",
                    format!(
                        "operation {:?} returned tag {} != issued {}",
                        d.id, d.tag, rec.tag
                    ),
                ));
            }
            if d.done_at < rec.at {
                return Err(fail(
                    "monotone-time",
                    format!(
                        "operation {:?} finished at {} before issue at {}",
                        d.id, d.done_at, rec.at
                    ),
                ));
            }
            if let Some((hist, exact)) = bk.lat.as_mut() {
                let lat = d.done_at.since(rec.at).as_nanos();
                hist.add(lat);
                exact.push(lat);
            }
            let outcome_code = match d.outcome {
                OpOutcome::Ok => {
                    bk.ok_ops += 1;
                    0
                }
                OpOutcome::RpcTimedOut { xid } => {
                    bk.timed_out_ops += 1;
                    u64::from(xid) << 1 | 1
                }
                OpOutcome::Eio { xid } => {
                    bk.eio_ops += 1;
                    u64::from(xid) << 2 | 2
                }
            };
            mix(&mut bk.fp, d.id.0);
            mix(&mut bk.fp, d.tag);
            mix(&mut bk.fp, d.done_at.as_nanos());
            mix(&mut bk.fp, outcome_code);
            done.push((d.id, outcome_code == 0));
        }
    }
    Ok(done)
}

/// Crash-consistency bookkeeping for one drain's completions: a `close()`
/// that completed `Ok` promised every block written *before it was issued*
/// (its shadow snapshot) is on stable storage. Blocks written after the
/// close started stay in the ongoing shadow for the file's next close to
/// account for. A close that failed (`Eio`/`RpcTimedOut`) made no promise
/// — the soft mount dropped the file's entire write-behind tracking,
/// later-issued writes included — so both its snapshot and the ongoing
/// shadow are discarded without the check.
fn settle_closes<F>(
    w: &NfsWorld,
    done: &[(OpId, bool)],
    close_ops: &mut HashMap<OpId, (usize, usize, BTreeSet<u64>)>,
    close_pending: &mut HashSet<(usize, usize)>,
    shadow: &mut HashMap<(usize, usize), BTreeSet<u64>>,
    fhs: &[Vec<FileHandle>],
    fail: &F,
) -> Result<(), OracleFailure>
where
    F: Fn(&'static str, String) -> OracleFailure,
{
    for &(id, ok) in done {
        let Some((cl, f, snap)) = close_ops.remove(&id) else {
            continue;
        };
        close_pending.remove(&(cl, f));
        if !ok {
            shadow.remove(&(cl, f));
            continue;
        }
        for blk in snap {
            if !w.is_durable(fhs[cl][f], blk) {
                return Err(fail(
                    "no-committed-loss",
                    format!(
                        "close {id:?} on client {cl} file {f} completed Ok \
                         but block {blk} is not on stable storage"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Applies one classic (non-disk) fault to the world. Disk kinds go
/// through [`disk_fault_plan`] instead: they build [`FaultPlan`] fragments
/// the caller merges, because several disk kinds in one overlap batch
/// share a single installed model.
fn apply_fault(w: &mut NfsWorld, kind: FaultKind, rng: &mut SimRng, base: &WorldConfig) {
    let now = w.now();
    match kind {
        FaultKind::LossBurst => {
            // Half the time a total blackout, half the time 30% loss —
            // on either transport. UDP blackouts force RPC timeouts; TCP
            // blackouts exercise the segment engine's RTO backoff ladder
            // (the old inline engine capped loss here because a blackout
            // would spin its retransmission loop forever).
            let loss = if rng.chance(0.5) { 1.0 } else { 0.3 };
            w.set_link_profile(LinkProfile {
                frame_loss: loss,
                ..base.link
            });
        }
        FaultKind::LinkDegrade => {
            w.set_link_profile(LinkProfile {
                bandwidth: base.link.bandwidth / 50.0,
                latency: SimDuration::from_micros(900),
                jitter: 1e-3,
                ..base.link
            });
        }
        FaultKind::ServerStall => {
            let ms = rng.gen_range(50u64..400);
            w.stall_server(now, SimDuration::from_millis(ms));
        }
        FaultKind::NfsdResize => {
            w.set_nfsds(now, rng.gen_range(1usize..3));
        }
        FaultKind::NfsdOutage => {
            // Zero daemons: every arriving call queues and nothing is
            // served. `run_plan` restores the pool once the batch starves
            // to quiescence, so parked calls reconcile before the
            // end-of-batch oracles run.
            w.set_nfsds(now, 0);
        }
        FaultKind::NfsiodResize => {
            let n = if rng.chance(0.5) { 0 } else { 1 };
            w.set_nfsiods(n);
        }
        FaultKind::CacheFlush => {
            w.flush_all_caches();
        }
        FaultKind::TcpBlackout => {
            // A total blackout on one seed-chosen client's links. The
            // batch revert restores every client to the baseline profile,
            // so no per-kind revert bookkeeping is needed.
            let victim = rng.gen_range(0..w.n_clients());
            w.set_link_profile_for(
                victim,
                LinkProfile {
                    frame_loss: 1.0,
                    ..base.link
                },
            );
        }
        FaultKind::SectorErrors
        | FaultKind::StuckTag
        | FaultKind::FirmwareStall
        | FaultKind::FailSlow => {
            unreachable!("disk kinds build their plans via disk_fault_plan")
        }
    }
}

/// Builds the seeded [`FaultPlan`] fragment for one disk fault kind. All
/// randomness is drawn here, so the installed [`FaultState`] is draw-free
/// and a faulted run is schedule-independent. Sector errors are aimed at
/// the blocks a seed-chosen file is currently reading (a defect nobody
/// reads proves nothing), and drop the data caches so the batch's
/// in-flight reads reach the platter instead of the buffer cache.
fn disk_fault_plan(
    w: &mut NfsWorld,
    kind: FaultKind,
    rng: &mut SimRng,
    fhs: &[Vec<FileHandle>],
    cursors: &[[u64; FILES]],
) -> FaultPlan {
    match kind {
        FaultKind::SectorErrors => {
            w.flush_all_caches();
            let cl = rng.gen_range(0..fhs.len());
            let f = rng.gen_range(0..FILES);
            // Anchor the defect neighbourhood at the chosen file's cursor:
            // the faults are installed before the batch issues, and 70% of
            // its reads continue from exactly there.
            let blk = cursors[cl][f].min(FILE_BLOCKS - 1);
            let (start, sectors) = match w.fs().inode(fhs[cl][f].ino) {
                Some(ino) => (ino.lba_of(blk), 16 * ffs::BLOCK_SECTORS),
                None => w.allocated_span(),
            };
            FaultPlan::seeded_sector_errors(rng, start, sectors)
        }
        FaultKind::StuckTag => FaultPlan::seeded_stuck_tag(rng),
        FaultKind::FirmwareStall => FaultPlan::seeded_firmware_stall(rng, w.now()),
        FaultKind::FailSlow => {
            let (start, sectors) = w.allocated_span();
            FaultPlan::seeded_fail_slow(rng, start, sectors)
        }
        other => unreachable!("{other:?} is not a disk fault kind"),
    }
}

/// Sums one counter struct per client host into cluster-wide books.
fn sum_client_stats(w: &NfsWorld) -> ClientStats {
    let mut total = ClientStats::default();
    for c in 0..w.n_clients() {
        let s = w.client_stats_for(c);
        total.ops += s.ops;
        total.cache_hits += s.cache_hits;
        total.rpcs += s.rpcs;
        total.readahead_rpcs += s.readahead_rpcs;
        total.retransmits += s.retransmits;
        total.iod_starved += s.iod_starved;
        total.rpc_timeouts += s.rpc_timeouts;
        total.transmissions += s.transmissions;
        total.replies_received += s.replies_received;
        total.duplicate_replies += s.duplicate_replies;
        total.write_rpcs += s.write_rpcs;
        total.commit_rpcs += s.commit_rpcs;
        total.closes += s.closes;
        total.verifier_mismatches += s.verifier_mismatches;
        total.blocks_rewritten += s.blocks_rewritten;
        total.getattr_rpcs += s.getattr_rpcs;
        total.lookup_rpcs += s.lookup_rpcs;
        total.readdir_rpcs += s.readdir_rpcs;
        total.attr_cache_hits += s.attr_cache_hits;
        total.attr_cache_misses += s.attr_cache_misses;
        total.attr_revalidations += s.attr_revalidations;
        total.attr_stale_detected += s.attr_stale_detected;
        total.attr_invalidations += s.attr_invalidations;
    }
    total
}

fn sum_link_stats(per_host: impl Iterator<Item = LinkStats>) -> LinkStats {
    let mut total = LinkStats::default();
    for s in per_host {
        total.messages += s.messages;
        total.lost += s.lost;
        total.bytes_delivered += s.bytes_delivered;
    }
    total
}

/// Executes a plan and checks every oracle. Returns the report of a clean
/// run, or the first invariant violation.
#[allow(clippy::too_many_lines)]
pub fn run_plan(plan: &SimPlan, opts: RunOptions) -> Result<RunReport, OracleFailure> {
    let seed = plan.seed;
    let clients = opts.clients.max(1);
    let overlap = plan.overlap;
    let disk_faults = plan.disk_faults;
    let write_loss = opts.write_loss;
    // The write-loss workload wins when both modes are requested: the storm
    // arm never runs and the attribute cache stays disarmed, so the
    // crash-consistency close books keep their exact shape.
    let meta_storm = opts.meta_storm && !write_loss;
    let forced_transport = plan.forced_transport;
    let fail = move |oracle: &'static str, detail: String| OracleFailure {
        seed,
        oracle,
        detail,
        clients,
        overlap,
        disk_faults,
        write_loss,
        meta_storm,
        forced_transport,
    };

    let base = WorldConfig {
        transport: plan.transport,
        stable_how: if write_loss {
            StableHow::Unstable
        } else {
            StableHow::FileSync
        },
        // Storm runs arm the attribute cache at the classic NFS client
        // defaults (acregmin=3s, acregmax=60s); everywhere else both stay
        // ZERO and the cache machinery must be provably inert.
        attr_timeo_min: if meta_storm {
            SimDuration::from_secs(3)
        } else {
            SimDuration::ZERO
        },
        attr_timeo_max: if meta_storm {
            SimDuration::from_secs(60)
        } else {
            SimDuration::ZERO
        },
        ..WorldConfig::default()
    };
    let mut rng = SimRng::from_seed_and_stream(seed, 0x574F_524B_4C44); // "WORKLD"
    let fs = Rig::scsi(1).build_fs(seed);
    let hosts = vec![ClientHostConfig::from_world(&base); clients];
    let mut w = NfsWorld::new_cluster(base, &hosts, fs, seed);
    let fhs: Vec<Vec<FileHandle>> = (0..clients)
        .map(|c| {
            (0..FILES)
                .map(|_| w.create_file_for(c, FILE_BLOCKS * BS))
                .collect()
        })
        .collect();
    let mut cursors = vec![[0u64; FILES]; clients];
    // Write-loss bookkeeping: independent sequential write cursors, the
    // shadow set of every block written per (client, file) since its last
    // settled close, the in-flight close per file (the world forbids two
    // concurrent closes of one file), and which op is a close of what.
    let mut wcursors = vec![[0u64; FILES]; clients];
    let mut shadow: HashMap<(usize, usize), BTreeSet<u64>> = HashMap::new();
    let mut close_pending: HashSet<(usize, usize)> = HashSet::new();
    let mut close_ops: HashMap<OpId, (usize, usize, BTreeSet<u64>)> = HashMap::new();

    let mut bk = Books {
        issued: BTreeMap::new(),
        completed: HashSet::new(),
        lat: opts.hist_oracle.then(|| (LogHist::new(), Vec::new())),
        predicted_demand: 0,
        predicted_getattr_class: 0,
        ok_ops: 0,
        timed_out_ops: 0,
        eio_ops: 0,
        next_tag: 0,
        fp: 0xcbf2_9ce4_8422_2325u64,
        last_now: SimTime::ZERO,
        steps: 0,
    };
    let mut fault_active = false;
    let mut fault_log = Vec::new();
    // Disk error completions seen at the last batch boundary where no
    // fault model was installed — the restore-baseline oracle's watermark.
    let mut clean_watch: Option<u64> = None;

    for batch in 0..plan.batches {
        // Revert the previous batch's fault(s): restore the baseline link
        // and pool sizes (a stall simply expires; a flush is one-shot).
        // One revert must compose over however many faults were active.
        if fault_active {
            let now = w.now();
            w.set_link_profile(base.link);
            w.set_nfsds(now, base.nfsds);
            w.set_nfsiods(base.nfsiods);
            w.set_disk_fault_model(None);
            fault_active = false;

            // Restore-composition oracle: every host back at baseline.
            for c in 0..clients {
                if w.link_profile_for(c) != base.link {
                    return Err(fail(
                        "restore-composition",
                        format!(
                            "batch {batch}: client {c} link {:?} != baseline {:?}",
                            w.link_profile_for(c),
                            base.link
                        ),
                    ));
                }
                if w.nfsiods_for(c) != base.nfsiods {
                    return Err(fail(
                        "restore-composition",
                        format!(
                            "batch {batch}: client {c} nfsiods {} != baseline {}",
                            w.nfsiods_for(c),
                            base.nfsiods
                        ),
                    ));
                }
            }
            if w.nfsds() != base.nfsds {
                return Err(fail(
                    "restore-composition",
                    format!(
                        "batch {batch}: nfsds {} != baseline {}",
                        w.nfsds(),
                        base.nfsds
                    ),
                ));
            }
            if w.disk_fault_active() {
                return Err(fail(
                    "restore-composition",
                    format!("batch {batch}: disk fault model still installed after revert"),
                ));
            }
        }

        // Install this batch's disk fault (if any) *before* issuing: a
        // media defect is only observable under reads that reach the
        // platter, so the cache flush and fault plan land first and the
        // batch's demand misses read straight through them. An overlap
        // batch may carry two disk kinds, merged into the one model the
        // drive runs.
        let mut disk_plan: Option<FaultPlan> = None;
        for &(b, kind) in &plan.faults {
            if b == batch && FaultKind::DISK.contains(&kind) {
                let frag = disk_fault_plan(&mut w, kind, &mut rng, &fhs, &cursors);
                disk_plan = Some(match disk_plan.take() {
                    Some(mut acc) => {
                        acc.merge(frag);
                        acc
                    }
                    None => frag,
                });
                fault_active = true;
                fault_log.push(kind);
            }
        }
        if let Some(p) = disk_plan {
            w.set_disk_fault_model(Some(Box::new(FaultState::new(p))));
        }

        // Issue this batch's operations, predicting which blocks must be
        // fetched by a demand RPC (the block-conservation oracle's books).
        // The issuing client is drawn per operation only when the cluster
        // is wider than one host, so single-client runs consume exactly
        // the classic RNG stream and keep their pinned fingerprints.
        let now = w.now();
        let n_ops = rng.gen_range(4usize..10);
        for _ in 0..n_ops {
            let cl = if clients > 1 {
                rng.gen_range(0usize..clients)
            } else {
                0
            };
            let f = rng.gen_range(0usize..FILES);
            let fh = fhs[cl][f];
            let tag = bk.next_tag;
            bk.next_tag += 1;
            let id = if write_loss {
                // Write-heavy async-path mix: sequential dirty runs feed
                // the server's write gathering, closes force COMMITs (and
                // verifier comparisons) mid-run, reads keep the demand
                // books honest. Only write-loss runs take this arm, so the
                // clean-mode RNG stream — and its pinned fingerprints —
                // never sees the extra draws.
                match rng.gen_range(0u32..10) {
                    0..=3 => {
                        let len = rng.gen_range(1u64..5);
                        let start = wcursors[cl][f].min(FILE_BLOCKS - len);
                        wcursors[cl][f] = (start + len) % FILE_BLOCKS;
                        shadow
                            .entry((cl, f))
                            .or_default()
                            .extend(start..start + len);
                        w.write_from(cl, now, fh, start * BS, len * BS, tag)
                    }
                    4 if !close_pending.contains(&(cl, f)) => {
                        close_pending.insert((cl, f));
                        let snap = shadow.remove(&(cl, f)).unwrap_or_default();
                        let id = w.close_from(cl, now, fh, tag);
                        close_ops.insert(id, (cl, f, snap));
                        id
                    }
                    5 => w.getattr_from(cl, now, fh, tag),
                    _ => {
                        let len_blocks = rng.gen_range(1u64..4);
                        let start = if rng.chance(0.7) {
                            cursors[cl][f]
                        } else {
                            rng.gen_range(0u64..FILE_BLOCKS)
                        }
                        .min(FILE_BLOCKS - len_blocks);
                        cursors[cl][f] = (start + len_blocks) % FILE_BLOCKS;
                        for blk in start..start + len_blocks {
                            if w.block_state_for(cl, fh, blk) == BlockState::Absent {
                                bk.predicted_demand += 1;
                            }
                        }
                        w.read_from(cl, now, fh, start * BS, len_blocks * BS, tag)
                    }
                }
            } else if meta_storm {
                // Metadata-storm mix: a build-tree walker's wire profile —
                // GETATTR polls dominate, open()-style forced revalidations
                // and LOOKUP/READDIR traffic ride along, occasional writes
                // move the server's attributes so revalidations can detect
                // staleness. Only storm runs take this arm, so the classic
                // stream — and its pinned fingerprints — never sees the
                // extra draws.
                match rng.gen_range(0u32..10) {
                    0 => {
                        let blk = rng.gen_range(0u64..FILE_BLOCKS);
                        w.write_from(cl, now, fh, blk * BS, BS, tag)
                    }
                    1 => {
                        let name_len = rng.gen_range(3u32..16);
                        w.lookup_from(cl, now, fh, name_len, tag)
                    }
                    2 => {
                        let entries = rng.gen_range(4u32..32);
                        w.readdir_from(cl, now, fh, 0, entries, true, tag)
                    }
                    3 | 4 => {
                        bk.predicted_getattr_class += 1;
                        w.open_from(cl, now, fh, tag)
                    }
                    5..=8 => {
                        bk.predicted_getattr_class += 1;
                        w.getattr_from(cl, now, fh, tag)
                    }
                    _ => {
                        let len_blocks = rng.gen_range(1u64..4);
                        let start = if rng.chance(0.7) {
                            cursors[cl][f]
                        } else {
                            rng.gen_range(0u64..FILE_BLOCKS)
                        }
                        .min(FILE_BLOCKS - len_blocks);
                        cursors[cl][f] = (start + len_blocks) % FILE_BLOCKS;
                        for blk in start..start + len_blocks {
                            if w.block_state_for(cl, fh, blk) == BlockState::Absent {
                                bk.predicted_demand += 1;
                            }
                        }
                        w.read_from(cl, now, fh, start * BS, len_blocks * BS, tag)
                    }
                }
            } else {
                match rng.gen_range(0u32..10) {
                    0 => {
                        let blk = rng.gen_range(0u64..FILE_BLOCKS);
                        w.write_from(cl, now, fh, blk * BS, BS, tag)
                    }
                    1 => w.getattr_from(cl, now, fh, tag),
                    _ => {
                        let len_blocks = rng.gen_range(1u64..4);
                        let start = if rng.chance(0.7) {
                            cursors[cl][f]
                        } else {
                            rng.gen_range(0u64..FILE_BLOCKS)
                        }
                        .min(FILE_BLOCKS - len_blocks);
                        cursors[cl][f] = (start + len_blocks) % FILE_BLOCKS;
                        for blk in start..start + len_blocks {
                            if w.block_state_for(cl, fh, blk) == BlockState::Absent {
                                bk.predicted_demand += 1;
                            }
                        }
                        w.read_from(cl, now, fh, start * BS, len_blocks * BS, tag)
                    }
                }
            };
            bk.issued.insert(id, IssueRec { tag, at: now });
        }

        // Crash batches: in write-loss mode every `nfsd` outage becomes a
        // server crash. Drain only a few milliseconds first — less than
        // the 30 ms gather window, so the batch's UNSTABLE WRITEs have
        // reached the server's dirty pool but the pool has not flushed —
        // then (below, once the outage is in force) lose the pool and
        // change the verifier. Data acked UNSTABLE before the crash is
        // exactly the data RFC 1813 lets a server lose.
        let crash_batch = write_loss
            && plan
                .faults
                .iter()
                .any(|&(b, k)| b == batch && k == FaultKind::NfsdOutage);
        if crash_batch {
            let horizon = w.now() + SimDuration::from_millis(rng.gen_range(2u64..20));
            let done = drain_until(&mut w, &mut bk, Some(horizon), batch, &fail)?;
            settle_closes(
                &w,
                &done,
                &mut close_ops,
                &mut close_pending,
                &mut shadow,
                &fhs,
                &fail,
            )?;
        }

        // Inject this batch's classic fault(s) while those operations are
        // in flight.
        let mut outage_pending = false;
        for &(b, kind) in &plan.faults {
            if b == batch && !FaultKind::DISK.contains(&kind) {
                apply_fault(&mut w, kind, &mut rng, &base);
                fault_active = true;
                // `|=`: under overlap scheduling a second fault in the same
                // batch must not forget that an outage is in force.
                outage_pending |= kind == FaultKind::NfsdOutage;
                fault_log.push(kind);
            }
        }
        if crash_batch {
            // The outage is now in force (zero nfsds: nothing serves) and
            // the gather window has not expired: crash. The dirty pool is
            // lost, the verifier changes, in-flight disk I/O completes,
            // and parked calls survive to be served after the restore.
            w.restart_server(w.now());
        }
        if batch == 1 && opts.sabotage_replies > 0 {
            w.sabotage_drop_next_replies(opts.sabotage_replies);
        }

        // Drain to quiescence, checking per-event oracles. A zero-`nfsd`
        // outage starves the world to quiescence with calls still parked
        // at the server (and, on TCP, operations still waiting on them:
        // TCP never retransmits RPCs, so nothing times out). Once the
        // world goes quiet, restore the pool and keep draining so every
        // parked call is answered or retired stale before the
        // end-of-batch oracles run.
        loop {
            let done = drain_until(&mut w, &mut bk, None, batch, &fail)?;
            if write_loss {
                settle_closes(
                    &w,
                    &done,
                    &mut close_ops,
                    &mut close_pending,
                    &mut shadow,
                    &fhs,
                    &fail,
                )?;
            }
            if outage_pending {
                outage_pending = false;
                w.set_nfsds(w.now(), base.nfsds);
                continue;
            }
            break;
        }

        // Quiescent with operations still open: something is stuck.
        if !w.outstanding_ops().is_empty() {
            return Err(fail(
                "no-stuck-ops",
                format!(
                    "batch {batch} quiesced with operations {:?} hung on xids {:?}",
                    w.outstanding_ops(),
                    w.outstanding_xids()
                ),
            ));
        }

        // Dirty-page books, at every batch boundary: every block that ever
        // entered the server's dirty pool was flushed to disk, lost to a
        // crash, or is still sitting in the pool. Cheap and always on —
        // in clean mode all four terms are zero.
        let ss = w.server_stats();
        if ss.dirty_blocks_stashed
            != ss.dirty_blocks_flushed + ss.dirty_blocks_lost + w.server_dirty_blocks()
        {
            return Err(fail(
                "dirty-books",
                format!(
                    "batch {batch}: stashed {} != flushed {} + lost {} + pooled {}",
                    ss.dirty_blocks_stashed,
                    ss.dirty_blocks_flushed,
                    ss.dirty_blocks_lost,
                    w.server_dirty_blocks()
                ),
            ));
        }

        // Restore-baseline oracle: a drive whose fault model was removed
        // (or never installed) must produce no new disk error completions
        // across a whole batch — reverting a disk fault really returns
        // the disk to its healthy baseline.
        let errs = w.bio_stats().error_completions;
        if w.disk_fault_active() {
            clean_watch = None;
        } else {
            if let Some(mark) = clean_watch {
                if errs != mark {
                    return Err(fail(
                        "restore-baseline",
                        format!(
                            "batch {batch}: {} disk error completions on a healthy drive",
                            errs - mark
                        ),
                    ));
                }
            }
            clean_watch = Some(errs);
        }
    }

    // Write-loss epilogue: close every file on every client, so each
    // client's write-behind cache must drain — every block still dirty or
    // acked-only-UNSTABLE gets pushed, COMMITted, and verifier-checked
    // (rewriting after any crash the run injected) before the end-of-run
    // books are read. Any fault still active from the final batch is
    // reverted first; the closes run against a healthy world.
    if write_loss {
        if fault_active {
            let now = w.now();
            w.set_link_profile(base.link);
            w.set_nfsds(now, base.nfsds);
            w.set_nfsiods(base.nfsiods);
            w.set_disk_fault_model(None);
            fault_active = false;
        }
        let now = w.now();
        for (cl, row) in fhs.iter().enumerate().take(clients) {
            for (f, &fh) in row.iter().enumerate().take(FILES) {
                if close_pending.contains(&(cl, f)) {
                    continue;
                }
                let tag = bk.next_tag;
                bk.next_tag += 1;
                close_pending.insert((cl, f));
                let snap = shadow.remove(&(cl, f)).unwrap_or_default();
                let id = w.close_from(cl, now, fh, tag);
                close_ops.insert(id, (cl, f, snap));
                bk.issued.insert(id, IssueRec { tag, at: now });
            }
        }
        let done = drain_until(&mut w, &mut bk, None, plan.batches, &fail)?;
        settle_closes(
            &w,
            &done,
            &mut close_ops,
            &mut close_pending,
            &mut shadow,
            &fhs,
            &fail,
        )?;
        for cl in 0..clients {
            if w.client_uncommitted_blocks(cl) != 0 {
                return Err(fail(
                    "write-behind-drained",
                    format!(
                        "client {cl} still tracks {} uncommitted blocks after every file closed",
                        w.client_uncommitted_blocks(cl)
                    ),
                ));
            }
        }
    }
    let _ = fault_active;

    // ------------------------------------------------------------------
    // End-of-run oracles, over the cluster-wide summed books.
    // ------------------------------------------------------------------
    let c = sum_client_stats(&w);
    let s = w.server_stats();
    let c2s = sum_link_stats((0..clients).map(|i| w.c2s_stats_for(i)));
    let s2c = sum_link_stats((0..clients).map(|i| w.s2c_stats_for(i)));

    if bk.issued.len() != bk.completed.len() {
        let hung: Vec<&OpId> = bk
            .issued
            .keys()
            .filter(|id| !bk.completed.contains(id))
            .collect();
        return Err(fail(
            "no-stuck-ops",
            format!(
                "{} operations never completed: {:?}; outstanding xids {:?}",
                hung.len(),
                hung,
                w.outstanding_xids()
            ),
        ));
    }
    if !w.outstanding_xids().is_empty() {
        return Err(fail(
            "no-stuck-ops",
            format!("xids {:?} never retired", w.outstanding_xids()),
        ));
    }

    // Block conservation: every predicted demand miss produced exactly one
    // READ RPC, and every other READ RPC was a read-ahead.
    if c.rpcs != bk.predicted_demand + c.readahead_rpcs {
        return Err(fail(
            "block-conservation",
            format!(
                "READ RPCs {} != predicted demand misses {} + read-aheads {}",
                c.rpcs, bk.predicted_demand, c.readahead_rpcs
            ),
        ));
    }

    // RPC conservation: link counters reconcile with both endpoints'
    // books. On TCP the link's `messages` includes internal segment
    // retransmissions, so only delivery counts are exact there.
    if plan.transport == TransportKind::Udp {
        if c.transmissions != c2s.messages {
            return Err(fail(
                "rpc-conservation",
                format!(
                    "client transmissions {} != c2s link messages {}",
                    c.transmissions, c2s.messages
                ),
            ));
        }
        if s.replies != s2c.messages {
            return Err(fail(
                "reply-conservation",
                format!(
                    "server replies {} != s2c link messages {}",
                    s.replies, s2c.messages
                ),
            ));
        }
    }
    let delivered_calls = c2s.messages - c2s.lost;
    let accepted = s.reads + s.other_calls + s.duplicates_dropped + s.orphan_calls;
    if delivered_calls != accepted {
        return Err(fail(
            "rpc-conservation",
            format!(
                "calls delivered {delivered_calls} != server arrivals {accepted} \
                 (reads {} + other {} + duplicates {} + orphans {})",
                s.reads, s.other_calls, s.duplicates_dropped, s.orphan_calls
            ),
        ));
    }
    let delivered_replies = s2c.messages - s2c.lost;
    if c.replies_received + c.duplicate_replies != delivered_replies {
        return Err(fail(
            "reply-conservation",
            format!(
                "replies delivered {delivered_replies} != client arrivals {} + duplicates {}",
                c.replies_received, c.duplicate_replies
            ),
        ));
    }
    // Server-side conservation: every accepted call is replied to or
    // dropped as stale after acceptance.
    if s.replies + s.stale_drops != s.reads + s.other_calls {
        return Err(fail(
            "server-conservation",
            format!(
                "replies {} + stale drops {} != reads {} + other calls {}",
                s.replies, s.stale_drops, s.reads, s.other_calls
            ),
        ));
    }
    // Contention attribution: the server's aggregate ejection and
    // duplicate-cache counters must be fully accounted to specific
    // clients — no anonymous interference.
    let ejections_attributed: u64 = (0..clients)
        .map(|i| w.contention_stats(i).heur_ejections_caused)
        .sum();
    if ejections_attributed != s.heur_ejections {
        return Err(fail(
            "contention-attribution",
            format!(
                "per-client ejections {} != server ejections {}",
                ejections_attributed, s.heur_ejections
            ),
        ));
    }
    let dups_attributed: u64 = (0..clients)
        .map(|i| w.contention_stats(i).duplicate_cache_hits)
        .sum();
    if dups_attributed != s.duplicates_dropped {
        return Err(fail(
            "contention-attribution",
            format!(
                "per-client duplicate-cache hits {} != server duplicates dropped {}",
                dups_attributed, s.duplicates_dropped
            ),
        ));
    }

    // Disk error books: every error completion was either retried below
    // NFS or surfaced as exactly one EIO; every EIO was a hard error or a
    // transient that exhausted its retries; retries stayed within the bio
    // layer's cap; no retry is still parked after quiescence.
    let bio = w.bio_stats();
    if bio.error_completions != bio.retries + bio.eio {
        return Err(fail(
            "disk-books",
            format!(
                "error completions {} != retries {} + EIOs {}",
                bio.error_completions, bio.retries, bio.eio
            ),
        ));
    }
    if bio.eio != bio.hard_errors + bio.transient_exhausted {
        return Err(fail(
            "disk-books",
            format!(
                "EIOs {} != hard errors {} + exhausted transients {}",
                bio.eio, bio.hard_errors, bio.transient_exhausted
            ),
        ));
    }
    if bio.max_attempts > ffs::MAX_IO_RETRIES {
        return Err(fail(
            "bounded-retries",
            format!(
                "a request was attempted {} times, cap is {}",
                bio.max_attempts,
                ffs::MAX_IO_RETRIES
            ),
        ));
    }
    if !plan.disk_faults && (bio.error_completions != 0 || s.disk_eios != 0) {
        return Err(fail(
            "disk-books",
            format!(
                "healthy run produced disk errors: {} completions, {} EIOs",
                bio.error_completions, s.disk_eios
            ),
        ));
    }
    // Every EIO the server returned is attributed to a specific client.
    let eios_attributed: u64 = (0..clients)
        .map(|i| w.contention_stats(i).disk_eios_suffered)
        .sum();
    if eios_attributed != s.disk_eios {
        return Err(fail(
            "contention-attribution",
            format!(
                "per-client disk EIOs {} != server disk EIOs {}",
                eios_attributed, s.disk_eios
            ),
        ));
    }

    // TCP segment books, per client per direction: every segment ever
    // sent is acked, still in flight, or tracked as lost awaiting
    // retransmission (at quiescence the latter two are zero unless a
    // segment was abandoned mid-blackout); in-order delivery was never
    // violated; and every segment that survived the link was delivered
    // to the peer exactly once.
    if plan.transport == TransportKind::Tcp {
        for cl in 0..clients {
            let Some((tc2s, ts2c)) = w.tcp_stats_for(cl) else {
                return Err(fail(
                    "tcp-books",
                    format!("client {cl}: TCP run has no TCP stream stats"),
                ));
            };
            for (dir, t, link) in [
                ("c2s", tc2s, w.c2s_stats_for(cl)),
                ("s2c", ts2c, w.s2c_stats_for(cl)),
            ] {
                if t.segments_sent != t.acked + t.in_flight + t.lost_tracked {
                    return Err(fail(
                        "tcp-books",
                        format!(
                            "client {cl} {dir}: segments_sent {} != acked {} \
                             + in_flight {} + lost_tracked {}",
                            t.segments_sent, t.acked, t.in_flight, t.lost_tracked
                        ),
                    ));
                }
                if t.order_violations != 0 {
                    return Err(fail(
                        "tcp-order",
                        format!(
                            "client {cl} {dir}: {} in-order delivery violations",
                            t.order_violations
                        ),
                    ));
                }
                if t.delivered != link.messages - link.lost {
                    return Err(fail(
                        "tcp-books",
                        format!(
                            "client {cl} {dir}: delivered {} != link messages {} - lost {}",
                            t.delivered, link.messages, link.lost
                        ),
                    ));
                }
            }
        }
    }

    // Async-write books. The dirty-page identity was checked per batch;
    // here the crash-detection implications close the loop: the only way
    // a client sees a verifier mismatch is an injected restart, the only
    // way a block is rewritten is a detected mismatch, and a FILE_SYNC
    // run must never wake the async machinery at all.
    if s.dirty_blocks_stashed
        != s.dirty_blocks_flushed + s.dirty_blocks_lost + w.server_dirty_blocks()
    {
        return Err(fail(
            "dirty-books",
            format!(
                "stashed {} != flushed {} + lost {} + pooled {}",
                s.dirty_blocks_stashed,
                s.dirty_blocks_flushed,
                s.dirty_blocks_lost,
                w.server_dirty_blocks()
            ),
        ));
    }
    if c.verifier_mismatches > 0 && s.restarts == 0 {
        return Err(fail(
            "crash-detection",
            format!(
                "{} verifier mismatches with zero server restarts",
                c.verifier_mismatches
            ),
        ));
    }
    if c.blocks_rewritten > 0 && c.verifier_mismatches == 0 {
        return Err(fail(
            "crash-detection",
            format!(
                "{} blocks rewritten with no verifier mismatch detected",
                c.blocks_rewritten
            ),
        ));
    }
    if !write_loss
        && (s.unstable_writes != 0
            || s.commits != 0
            || s.dirty_blocks_stashed != 0
            || c.write_rpcs != 0
            || c.commit_rpcs != 0
            || c.verifier_mismatches != 0
            || c.blocks_rewritten != 0)
    {
        return Err(fail(
            "async-dormancy",
            format!(
                "FILE_SYNC run touched the async write path: server \
                 unstable {} commits {} stashed {}, client write RPCs {} \
                 commit RPCs {} mismatches {} rewritten {}",
                s.unstable_writes,
                s.commits,
                s.dirty_blocks_stashed,
                c.write_rpcs,
                c.commit_rpcs,
                c.verifier_mismatches,
                c.blocks_rewritten
            ),
        ));
    }

    // Attribute-cache books. In storm mode every getattr-class op the
    // workload issued (GETATTR polls plus open()-style revalidations) is
    // either a local cache hit or exactly one wire GETATTR, every wire
    // GETATTR is a cold miss or a revalidation of a known entry, and a
    // staleness detection can only come out of a revalidation. Outside
    // storm mode the cache is disarmed and all of its counters — and its
    // entry table — must be zero: the machinery is provably inert.
    if meta_storm {
        if c.attr_cache_hits + c.getattr_rpcs != bk.predicted_getattr_class {
            return Err(fail(
                "attrcache-books",
                format!(
                    "hits {} + wire GETATTRs {} != getattr-class ops issued {}",
                    c.attr_cache_hits, c.getattr_rpcs, bk.predicted_getattr_class
                ),
            ));
        }
        if c.getattr_rpcs != c.attr_cache_misses + c.attr_revalidations {
            return Err(fail(
                "attrcache-books",
                format!(
                    "wire GETATTRs {} != misses {} + revalidations {}",
                    c.getattr_rpcs, c.attr_cache_misses, c.attr_revalidations
                ),
            ));
        }
        if c.attr_stale_detected > c.attr_revalidations {
            return Err(fail(
                "attrcache-books",
                format!(
                    "{} staleness detections exceed {} revalidations",
                    c.attr_stale_detected, c.attr_revalidations
                ),
            ));
        }
    } else {
        let entries: usize = (0..clients).map(|i| w.attr_cache_entries(i)).sum();
        if c.attr_cache_hits != 0
            || c.attr_cache_misses != 0
            || c.attr_revalidations != 0
            || c.attr_stale_detected != 0
            || c.attr_invalidations != 0
            || entries != 0
        {
            return Err(fail(
                "attrcache-dormancy",
                format!(
                    "disarmed cache moved: hits {} misses {} revalidations {} \
                     stale {} invalidations {} entries {}",
                    c.attr_cache_hits,
                    c.attr_cache_misses,
                    c.attr_revalidations,
                    c.attr_stale_detected,
                    c.attr_invalidations,
                    entries
                ),
            ));
        }
    }

    for v in [
        c.ops,
        c.rpcs,
        c.readahead_rpcs,
        c.retransmits,
        c.rpc_timeouts,
        c.transmissions,
        s.reads,
        s.replies,
        s.reordered,
        bk.last_now.as_nanos(),
    ] {
        mix(&mut bk.fp, v);
    }
    if plan.disk_faults {
        // Disk-fault runs fold the error books into the fingerprint too.
        // Conditional so disk-free fingerprints stay pinned.
        for v in [bio.error_completions, bio.retries, bio.eio, s.disk_eios] {
            mix(&mut bk.fp, v);
        }
    }
    if write_loss {
        // Write-loss runs fold the async write path's books in, so the
        // determinism oracle covers gathering, crashes, and rewrites too.
        // Conditional so clean-mode fingerprints stay pinned.
        for v in [
            s.unstable_writes,
            s.commits,
            s.gather_flushes,
            s.dirty_blocks_stashed,
            s.dirty_blocks_flushed,
            s.dirty_blocks_lost,
            s.restarts,
            c.write_rpcs,
            c.commit_rpcs,
            c.verifier_mismatches,
            c.blocks_rewritten,
        ] {
            mix(&mut bk.fp, v);
        }
    }
    if meta_storm {
        // Storm runs fold the metadata and attribute-cache books in, so
        // the determinism oracle covers hit/miss/revalidation scheduling.
        // Conditional so classic fingerprints stay pinned.
        for v in [
            c.getattr_rpcs,
            c.lookup_rpcs,
            c.readdir_rpcs,
            c.attr_cache_hits,
            c.attr_cache_misses,
            c.attr_revalidations,
            c.attr_stale_detected,
            c.attr_invalidations,
            s.getattrs,
            s.lookups,
            s.readdirs,
        ] {
            mix(&mut bk.fp, v);
        }
    }
    if plan.transport == TransportKind::Tcp {
        // TCP runs fold the summed segment books in as well, so the
        // determinism oracle covers the retransmission engine's internal
        // schedule, not just RPC-visible outcomes. Conditional so UDP
        // fingerprints stay pinned.
        let mut tsum = netsim::TcpStats::default();
        for cl in 0..clients {
            if let Some((a, b)) = w.tcp_stats_for(cl) {
                for t in [a, b] {
                    tsum.segments_sent += t.segments_sent;
                    tsum.retransmits += t.retransmits;
                    tsum.fast_retransmits += t.fast_retransmits;
                    tsum.timeouts += t.timeouts;
                    tsum.rto_backoffs += t.rto_backoffs;
                    tsum.lost_tracked += t.lost_tracked;
                }
            }
        }
        for v in [
            tsum.segments_sent,
            tsum.retransmits,
            tsum.fast_retransmits,
            tsum.timeouts,
            tsum.rto_backoffs,
            tsum.lost_tracked,
        ] {
            mix(&mut bk.fp, v);
        }
    }

    // ------------------------------------------------------------------
    // Latency-histogram oracle: the streaming LogHist the tail-latency
    // instrumentation is built on must agree with ground truth.
    // ------------------------------------------------------------------
    let mut lat_p99_ns = 0;
    let mut lat_p999_ns = 0;
    if let Some((hist, mut exact)) = bk.lat.take() {
        if hist.total() != exact.len() as u64 {
            return Err(fail(
                "latency-histogram",
                format!(
                    "histogram count {} != completions recorded {}",
                    hist.total(),
                    exact.len()
                ),
            ));
        }
        if !exact.is_empty() {
            exact.sort_unstable();
            if hist.max() != exact.last().copied() || hist.min() != exact.first().copied() {
                return Err(fail(
                    "latency-histogram",
                    format!(
                        "extremes drifted: hist {:?}..{:?} vs exact {}..{}",
                        hist.min(),
                        hist.max(),
                        exact.first().expect("non-empty"),
                        exact.last().expect("non-empty")
                    ),
                ));
            }
            // Monotone quantiles, each within the documented relative
            // error (1/64 bucket width; allow 1/32 plus a nanosecond of
            // slack for midpoint reporting) of the exact order statistic.
            let mut prev = 0u64;
            for q in [0.50, 0.90, 0.99, 0.999] {
                let h = hist.quantile(q).expect("non-empty");
                if h < prev {
                    return Err(fail(
                        "latency-histogram",
                        format!("quantiles not monotone at p{}", q * 100.0),
                    ));
                }
                prev = h;
                let rank = (q * (exact.len() - 1) as f64).floor() as usize;
                let e = exact[rank];
                let tol = e / 32 + 1;
                if h.abs_diff(e) > tol {
                    return Err(fail(
                        "latency-histogram",
                        format!(
                            "p{} drifted: streaming {h} vs exact {e} (tol {tol})",
                            q * 100.0
                        ),
                    ));
                }
            }
            let p999 = hist.quantile(0.999).expect("non-empty");
            if p999 > bk.last_now.as_nanos() {
                return Err(fail(
                    "latency-histogram",
                    format!(
                        "p99.9 {} ns exceeds the whole run ({} ns)",
                        p999,
                        bk.last_now.as_nanos()
                    ),
                ));
            }
            lat_p99_ns = hist.quantile(0.99).expect("non-empty");
            lat_p999_ns = p999;
        }
    }

    Ok(RunReport {
        seed,
        transport: plan.transport,
        ops: c.ops,
        ok_ops: bk.ok_ops,
        timed_out_ops: bk.timed_out_ops,
        eio_ops: bk.eio_ops,
        disk_retries: bio.retries,
        disk_eios: s.disk_eios,
        retransmits: c.retransmits,
        rpc_timeouts: c.rpc_timeouts,
        faults: fault_log,
        clients,
        overlap,
        disk_faults: plan.disk_faults,
        write_loss,
        meta_storm,
        getattr_rpcs: c.getattr_rpcs,
        attr_cache_hits: c.attr_cache_hits,
        attr_revalidations: c.attr_revalidations,
        attr_stale_detected: c.attr_stale_detected,
        unstable_writes: s.unstable_writes,
        commits: s.commits,
        gather_flushes: s.gather_flushes,
        dirty_blocks_lost: s.dirty_blocks_lost,
        verifier_mismatches: c.verifier_mismatches,
        blocks_rewritten: c.blocks_rewritten,
        restarts: s.restarts,
        lat_p99_ns,
        lat_p999_ns,
        fingerprint: bk.fp,
        sim_nanos: bk.last_now.as_nanos(),
    })
}
