//! Seed-sweep driver for the simulation-test harness.
//!
//! ```text
//! cargo run -p simtest --release -- --seeds 200      # sweep seeds 0..200
//! cargo run -p simtest --release -- --seed 17        # one seed, verbose
//! SIMTEST_SEED=17 cargo run -p simtest --release     # same, via env
//! cargo run -p simtest -- --seeds 50 --start 1000    # shifted sweep
//! cargo run -p simtest -- --seeds 50 --clients 2     # 2-host cluster
//! NFS_CLUSTER_CLIENTS=4 cargo run -p simtest         # same, via env
//! cargo run -p simtest -- --seeds 50 --overlap       # fault pairs
//! cargo run -p simtest -- --seeds 50 --disk-faults   # + disk faults
//! cargo run -p simtest -- --seeds 50 --transport tcp # force TCP (+blackout)
//! cargo run -p simtest -- --seeds 50 --write-loss    # async writes + crashes
//! cargo run -p simtest -- --seeds 50 --meta-storm    # metadata mix + attr cache
//! cargo run -p simtest -- --seeds 50 --hist-oracle   # + latency-hist oracle
//! ```
//!
//! Every seed is run twice (the determinism oracle compares fingerprints).
//! The first oracle failure prints a one-line reproduction command and
//! exits non-zero.
//!
//! Seeds fan out across `NFS_BENCH_JOBS` worker threads through the
//! `simfleet` run engine; reports are collected by seed index and printed
//! in seed order, so stdout is byte-identical at any job count.

use std::process::ExitCode;

use netsim::TransportKind;
use simtest::{run_seed_checked_forced, FaultKind, RunOptions};

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_transport(args: &[String]) -> Option<TransportKind> {
    let v = args
        .iter()
        .position(|a| a == "--transport")
        .and_then(|i| args.get(i + 1))?;
    match v.as_str() {
        "tcp" => Some(TransportKind::Tcp),
        "udp" => Some(TransportKind::Udp),
        other => {
            eprintln!("unknown --transport {other:?} (expected tcp|udp), ignoring");
            None
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let env_seed = std::env::var("SIMTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    let single = parse_flag(&args, "--seed").or(env_seed);
    let start = parse_flag(&args, "--start").unwrap_or(0);
    let count = parse_flag(&args, "--seeds").unwrap_or(16);
    let clients = parse_flag(&args, "--clients")
        .map(|n| (n as usize).max(1))
        .or_else(nfscluster::clients_from_env)
        .unwrap_or(1);
    let overlap = args.iter().any(|a| a == "--overlap");
    let disk_faults = args.iter().any(|a| a == "--disk-faults");
    let write_loss = args.iter().any(|a| a == "--write-loss");
    let meta_storm = args.iter().any(|a| a == "--meta-storm");
    let hist_oracle = args.iter().any(|a| a == "--hist-oracle");
    let forced = parse_transport(&args);

    let seeds: Vec<u64> = match single {
        Some(s) => vec![s],
        None => (start..start + count).collect(),
    };
    let opts = RunOptions {
        clients,
        disk_faults,
        write_loss,
        meta_storm,
        hist_oracle,
        ..RunOptions::default()
    };

    let results = simfleet::map_indexed(&seeds, |&seed| {
        run_seed_checked_forced(seed, opts, overlap, forced)
    });

    let mut failures = 0u64;
    let mut total_ops = 0u64;
    let mut total_timeouts = 0u64;
    let mut total_lost = 0u64;
    let mut total_rewritten = 0u64;
    let mut kinds_seen: Vec<FaultKind> = Vec::new();
    for res in results {
        match res {
            Ok(r) => {
                total_ops += r.ops;
                total_timeouts += r.timed_out_ops;
                total_lost += r.dirty_blocks_lost;
                total_rewritten += r.blocks_rewritten;
                for k in &r.faults {
                    if !kinds_seen.contains(k) {
                        kinds_seen.push(*k);
                    }
                }
                let faults: Vec<&str> = r.faults.iter().map(|k| k.label()).collect();
                let crash = if r.write_loss {
                    format!(
                        " lost={:<3} mism={:<2} rewr={:<3}",
                        r.dirty_blocks_lost, r.verifier_mismatches, r.blocks_rewritten
                    )
                } else {
                    String::new()
                };
                let meta = if r.meta_storm {
                    format!(
                        " gattr={:<4} hits={:<4} stale={:<3}",
                        r.getattr_rpcs, r.attr_cache_hits, r.attr_stale_detected
                    )
                } else {
                    String::new()
                };
                let tail = if hist_oracle {
                    format!(
                        " p99={:>7.2}ms p999={:>7.2}ms",
                        r.lat_p99_ns as f64 / 1e6,
                        r.lat_p999_ns as f64 / 1e6
                    )
                } else {
                    String::new()
                };
                println!(
                    "seed {:>6} [{:?}] ops={:<4} ok={:<4} timeout={:<3} eio={:<3} retx={:<4} rpc_to={:<3}{}{}{} sim={:>8.1}s fp={:#018x} faults={}",
                    r.seed,
                    r.transport,
                    r.ops,
                    r.ok_ops,
                    r.timed_out_ops,
                    r.eio_ops,
                    r.retransmits,
                    r.rpc_timeouts,
                    crash,
                    meta,
                    tail,
                    r.sim_nanos as f64 / 1e9,
                    r.fingerprint,
                    faults.join(",")
                );
            }
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    let labels: Vec<&str> = kinds_seen.iter().map(|k| k.label()).collect();
    println!(
        "swept {} seed(s) [clients={clients}{}{}{}{}{}{}]: {} failed, {} ops, {} timed out{}, fault kinds exercised: {}",
        seeds.len(),
        if overlap { ", overlap" } else { "" },
        if disk_faults { ", disk-faults" } else { "" },
        if write_loss { ", write-loss" } else { "" },
        if meta_storm { ", meta-storm" } else { "" },
        if hist_oracle { ", hist-oracle" } else { "" },
        match forced {
            Some(TransportKind::Tcp) => ", transport=tcp",
            Some(TransportKind::Udp) => ", transport=udp",
            None => "",
        },
        failures,
        total_ops,
        total_timeouts,
        if write_loss {
            format!(", {total_lost} blocks crash-lost, {total_rewritten} rewritten")
        } else {
            String::new()
        },
        labels.join(",")
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
