//! Disk partitioning.
//!
//! The paper divides each test disk into four partitions of approximately
//! equal size, numbered 1 through 4; partition 1 occupies the outermost
//! (fastest) cylinders and partition 4 the innermost. `scsi1`, `ide4`, etc.
//! in the figures name a (drive, partition) pair.

use crate::geometry::DiskGeometry;
use crate::types::Lba;

/// A contiguous LBA range of a drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Absolute LBA of the first sector.
    pub start: Lba,
    /// Length in sectors.
    pub sectors: u64,
}

impl Partition {
    /// Translates a partition-relative LBA to an absolute one.
    ///
    /// # Panics
    ///
    /// Panics if the address (plus `span` sectors) exceeds the partition.
    pub fn abs(&self, rel: Lba, span: u64) -> Lba {
        assert!(
            rel + span <= self.sectors,
            "address {rel}+{span} beyond partition of {} sectors",
            self.sectors
        );
        self.start + rel
    }

    /// Partition capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.sectors * crate::types::SECTOR_BYTES
    }
}

/// The four-way split used throughout the paper's experiments.
#[derive(Debug, Clone)]
pub struct PartitionTable {
    parts: [Partition; 4],
}

impl PartitionTable {
    /// Splits a drive into four equal-sector partitions, outermost first.
    pub fn quarters(geometry: &DiskGeometry) -> Self {
        Self::quarters_of(geometry.total_sectors())
    }

    /// Splits `total` sectors into four equal partitions — the geometry-free
    /// form, for devices (SSDs) that have no cylinders to speak of.
    pub fn quarters_of(total: u64) -> Self {
        let quarter = total / 4;
        let mut parts = [Partition {
            start: 0,
            sectors: 0,
        }; 4];
        let mut at = 0;
        for (i, p) in parts.iter_mut().enumerate() {
            let len = if i == 3 { total - at } else { quarter };
            *p = Partition {
                start: at,
                sectors: len,
            };
            at += len;
        }
        PartitionTable { parts }
    }

    /// Partition `n`, 1-based as in the paper (`scsi1` = partition 1).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 4`.
    pub fn get(&self, n: usize) -> Partition {
        assert!((1..=4).contains(&n), "partitions are numbered 1..=4");
        self.parts[n - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> DiskGeometry {
        DiskGeometry::zoned(1_000, 2, 7_200.0, 200, 120, 5)
    }

    #[test]
    fn quarters_cover_whole_disk() {
        let g = geom();
        let t = PartitionTable::quarters(&g);
        let total: u64 = (1..=4).map(|i| t.get(i).sectors).sum();
        assert_eq!(total, g.total_sectors());
        assert_eq!(t.get(1).start, 0);
        for i in 1..4 {
            assert_eq!(
                t.get(i).start + t.get(i).sectors,
                t.get(i + 1).start,
                "partitions must be contiguous"
            );
        }
    }

    #[test]
    fn partition_one_is_fastest() {
        let g = geom();
        let t = PartitionTable::quarters(&g);
        let rate = |p: Partition| {
            let mid = p.start + p.sectors / 2;
            g.media_rate(g.cylinder_of(mid))
        };
        assert!(rate(t.get(1)) > rate(t.get(4)), "ZCAV: outer beats inner");
    }

    #[test]
    fn abs_translates_and_checks() {
        let g = geom();
        let t = PartitionTable::quarters(&g);
        let p2 = t.get(2);
        assert_eq!(p2.abs(0, 1), p2.start);
        assert_eq!(p2.abs(100, 16), p2.start + 100);
    }

    #[test]
    #[should_panic(expected = "beyond partition")]
    fn abs_rejects_overflow() {
        let g = geom();
        let t = PartitionTable::quarters(&g);
        let p = t.get(1);
        let _ = p.abs(p.sectors - 1, 2);
    }

    #[test]
    #[should_panic(expected = "numbered")]
    fn partition_zero_rejected() {
        let g = geom();
        let t = PartitionTable::quarters(&g);
        let _ = t.get(0);
    }

    #[test]
    fn quarters_of_sectors_matches_geometry_form() {
        let g = geom();
        let a = PartitionTable::quarters(&g);
        let b = PartitionTable::quarters_of(g.total_sectors());
        for i in 1..=4 {
            assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    fn bytes_accounts_sector_size() {
        let g = geom();
        let t = PartitionTable::quarters(&g);
        assert_eq!(t.get(1).bytes(), t.get(1).sectors * 512);
    }
}
