//! Basic disk request types.

use simcore::SimTime;

use crate::fault::DiskOutcome;

/// A logical block address, in 512-byte sectors from the start of the drive.
pub type Lba = u64;

/// Bytes per sector; every LBA addresses one of these.
pub const SECTOR_BYTES: u64 = 512;

/// Identifier assigned by the drive to each submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Direction of a disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskOp {
    /// Transfer from media to host.
    Read,
    /// Transfer from host to media.
    Write,
}

/// A request submitted to the drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// First sector of the transfer.
    pub lba: Lba,
    /// Number of sectors to transfer (must be non-zero).
    pub sectors: u64,
    /// Read or write.
    pub op: DiskOp,
    /// Opaque tag the caller can use to route the completion.
    pub tag: u64,
}

impl DiskRequest {
    /// Convenience constructor for a read request.
    pub fn read(lba: Lba, sectors: u64, tag: u64) -> Self {
        DiskRequest {
            lba,
            sectors,
            op: DiskOp::Read,
            tag,
        }
    }

    /// Convenience constructor for a write request.
    pub fn write(lba: Lba, sectors: u64, tag: u64) -> Self {
        DiskRequest {
            lba,
            sectors,
            op: DiskOp::Write,
            tag,
        }
    }

    /// One past the last sector of the transfer.
    pub fn end(&self) -> Lba {
        self.lba + self.sectors
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u64 {
        self.sectors * SECTOR_BYTES
    }
}

/// A finished request handed back to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The drive-assigned id returned by `Disk::submit`.
    pub id: RequestId,
    /// The original request.
    pub request: DiskRequest,
    /// When the request was submitted.
    pub submitted_at: SimTime,
    /// When the request finished.
    pub completed_at: SimTime,
    /// Whether the read was served from the drive's cache (always `false`
    /// for writes).
    pub cache_hit: bool,
    /// Whether data transferred or the command failed.
    pub outcome: DiskOutcome,
}

impl Completion {
    /// Total time the request spent in the drive (queueing + service).
    pub fn latency(&self) -> simcore::SimDuration {
        self.completed_at.since(self.submitted_at)
    }

    /// Whether the command succeeded.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = DiskRequest::read(100, 16, 7);
        assert_eq!(r.end(), 116);
        assert_eq!(r.bytes(), 8192);
        assert_eq!(r.op, DiskOp::Read);
        assert_eq!(r.tag, 7);
    }

    #[test]
    fn write_constructor() {
        let w = DiskRequest::write(0, 1, 0);
        assert_eq!(w.op, DiskOp::Write);
        assert_eq!(w.bytes(), 512);
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            id: RequestId(1),
            request: DiskRequest::read(0, 1, 0),
            submitted_at: SimTime::from_nanos(100),
            completed_at: SimTime::from_nanos(600),
            cache_hit: false,
            outcome: DiskOutcome::Ok,
        };
        assert_eq!(c.latency().as_nanos(), 500);
    }
}
