//! The drive itself: queue, internal scheduler, and service model.
//!
//! [`Disk`] is a passive state machine driven by explicit times: the host
//! calls [`Disk::submit`] when a request arrives, asks
//! [`Disk::next_completion`] when something will finish, and calls
//! [`Disk::advance`] to collect completions. This keeps the drive free of
//! any event-loop dependency and makes it directly unit-testable.
//!
//! Two host-visible behaviours from §5.2 of the paper are modelled:
//!
//! * **Tagged command queues.** With tags enabled the drive accepts many
//!   outstanding requests and services them in its own order — a
//!   shortest-positioning-time-first policy with an aging credit, which is
//!   *more fair* (and therefore, for concurrent sequential readers, slower)
//!   than the kernel's elevator. With tags disabled the drive takes one
//!   request at a time in host order.
//! * **Background prefetch** into the segmented cache (see
//!   [`crate::cache`]), truncated whenever the mechanics start a new
//!   request.

use simcore::{SimDuration, SimRng, SimTime};

use crate::cache::{CacheConfig, CacheOutcome, SegmentedCache};
use crate::fault::{DiskError, DiskOutcome, FaultDecision, FaultModel};
use crate::geometry::DiskGeometry;
use crate::seek::SeekModel;
use crate::types::{Completion, DiskOp, DiskRequest, Lba, RequestId, SECTOR_BYTES};

/// Mechanical and interface overheads not captured by seek/rotation.
#[derive(Debug, Clone, Copy)]
pub struct MechParams {
    /// Fixed per-command controller/firmware overhead, seconds.
    pub command_overhead: f64,
    /// Host interface bandwidth, bytes per second.
    pub interface_rate: f64,
    /// Cost of each track boundary crossed during a media transfer, seconds.
    pub track_switch: f64,
    /// Extra settle time for writes, seconds.
    pub write_settle: f64,
}

/// Tagged-command-queue configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcqConfig {
    /// Whether the host may queue multiple commands in the drive.
    pub enabled: bool,
    /// Maximum outstanding commands when enabled.
    pub depth: usize,
    /// Fairness knob of the internal scheduler: seconds of positioning
    /// "credit" granted per second a request has waited. 0 is pure SPTF;
    /// larger values approach FIFO.
    pub aging_factor: f64,
}

impl TcqConfig {
    /// Tags off: the drive takes one command at a time in host order.
    pub fn disabled() -> Self {
        TcqConfig {
            enabled: false,
            depth: 1,
            aging_factor: 0.0,
        }
    }
}

/// Cumulative decomposition of command service time, so fault cost is
/// attributable: a fail-slow drive shows up in `fault_stall`, a fragmented
/// workload in `seek`/`rotation`. Command overhead, write settle, and the
/// cache-hit fast path are not bucketed, so the four buckets need not sum
/// to [`DiskStats::busy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceBreakdown {
    /// Head movement.
    pub seek: SimDuration,
    /// Rotational positioning after the seek.
    pub rotation: SimDuration,
    /// Media + host-interface transfer.
    pub transfer: SimDuration,
    /// Time injected by the fault model: internal retry loops of failed
    /// commands, stuck-tag and firmware stalls, fail-slow re-read passes.
    pub fault_stall: SimDuration,
}

/// Running counters exposed for instrumentation and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Reads served from the segmented cache.
    pub cache_hits: u64,
    /// Mechanical (media) reads.
    pub media_reads: u64,
    /// Sectors transferred to/from media.
    pub media_sectors: u64,
    /// Number of seeks with non-zero distance.
    pub seeks: u64,
    /// Total seek distance in cylinders.
    pub seek_cylinders: u64,
    /// Total time the drive spent servicing commands.
    pub busy: SimDuration,
    /// Where the service time went (see [`ServiceBreakdown`]).
    pub breakdown: ServiceBreakdown,
    /// Commands completed with a check condition.
    pub media_errors: u64,
    /// Sectors reallocated to spares by host remap commands.
    pub remapped_sectors: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: RequestId,
    req: DiskRequest,
    arrived: SimTime,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: RequestId,
    req: DiskRequest,
    arrived: SimTime,
    completes: SimTime,
    cache_hit: bool,
    error: Option<DiskError>,
}

/// A disk drive: geometry + mechanics + cache + command queue.
#[derive(Debug)]
pub struct Disk {
    geometry: DiskGeometry,
    seek: SeekModel,
    mech: MechParams,
    tcq: TcqConfig,
    cache: SegmentedCache,
    head_cyl: u64,
    pending: Vec<Pending>,
    in_flight: Option<InFlight>,
    next_id: u64,
    next_seq: u64,
    stats: DiskStats,
    fault: Option<Box<dyn FaultModel>>,
}

impl Disk {
    /// Assembles a drive. `rng` is used only by the cache's random
    /// replacement policy (if configured).
    pub fn new(
        geometry: DiskGeometry,
        seek: SeekModel,
        mech: MechParams,
        tcq: TcqConfig,
        cache: CacheConfig,
        rng: SimRng,
    ) -> Self {
        Disk {
            geometry,
            seek,
            mech,
            tcq,
            cache: SegmentedCache::new(cache, rng),
            head_cyl: 0,
            pending: Vec::new(),
            in_flight: None,
            next_id: 0,
            next_seq: 0,
            stats: DiskStats::default(),
            fault: None,
        }
    }

    /// Installs (or clears) the drive's fault model. A healthy drive keeps
    /// `None` and pays nothing; with an empty plan installed the decisions
    /// are all [`FaultDecision::Ok`] and timings are unchanged.
    pub fn set_fault_model(&mut self, model: Option<Box<dyn FaultModel>>) {
        self.fault = model;
    }

    /// Whether a fault model is currently installed.
    pub fn fault_model_active(&self) -> bool {
        self.fault.is_some()
    }

    /// Host remap: `[lba, lba + sectors)` is reallocated to spare sectors.
    /// Faults covering the range stop firing; subsequent I/O succeeds.
    pub fn remap(&mut self, lba: Lba, sectors: u64) {
        self.stats.remapped_sectors += sectors;
        if let Some(f) = self.fault.as_mut() {
            f.remap(lba, sectors);
        }
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The drive's TCQ configuration.
    pub fn tcq(&self) -> TcqConfig {
        self.tcq
    }

    /// Enables or disables tagged queueing (the paper toggles this with a
    /// kernel setting between benchmark runs).
    pub fn set_tcq(&mut self, tcq: TcqConfig) {
        self.tcq = tcq;
    }

    /// Counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Cache hit/miss counters.
    pub fn cache_hit_miss(&self) -> (u64, u64) {
        self.cache.hit_miss()
    }

    /// Number of requests in the drive (queued + in service).
    pub fn outstanding(&self) -> usize {
        self.pending.len() + usize::from(self.in_flight.is_some())
    }

    /// Whether the host may send another command: depth 1 without tags,
    /// `tcq.depth` with tags.
    pub fn can_accept(&self) -> bool {
        let depth = if self.tcq.enabled { self.tcq.depth } else { 1 };
        self.outstanding() < depth
    }

    /// Discards all cached data (benchmark cache-flush discipline, §4.3.1).
    pub fn flush_cache(&mut self) {
        self.cache.flush();
    }

    /// Submits a request at time `now`, returning its drive-assigned id.
    ///
    /// The drive accepts the command even if `can_accept` is false (real
    /// drives would make the host wait; our integration layers respect
    /// `can_accept`, and tests may intentionally overqueue).
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) -> RequestId {
        assert!(req.sectors > 0, "zero-length disk request");
        assert!(
            req.end() <= self.geometry.total_sectors(),
            "request beyond end of drive"
        );
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let p = Pending {
            id,
            req,
            arrived: now,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.pending.push(p);
        if self.in_flight.is_none() {
            self.start_next(now);
        }
        id
    }

    /// When the current command will finish, if one is in service.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.in_flight.map(|f| f.completes)
    }

    /// Completes every command that finishes at or before `now`, starting
    /// follow-on commands as the mechanics free up.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(f) = self.in_flight {
            if f.completes > now {
                break;
            }
            self.in_flight = None;
            self.finish(&mut done, f);
            self.start_next(f.completes);
        }
        done
    }

    fn finish(&mut self, done: &mut Vec<Completion>, f: InFlight) {
        match f.req.op {
            DiskOp::Read => self.stats.reads += 1,
            DiskOp::Write => self.stats.writes += 1,
        }
        if f.cache_hit {
            self.stats.cache_hits += 1;
        }
        if f.error.is_some() {
            self.stats.media_errors += 1;
        }
        done.push(Completion {
            id: f.id,
            request: f.req,
            submitted_at: f.arrived,
            completed_at: f.completes,
            cache_hit: f.cache_hit,
            outcome: match f.error {
                None => DiskOutcome::Ok,
                Some(e) => DiskOutcome::Error(e),
            },
        });
    }

    /// Picks and starts the next pending command at time `at`.
    fn start_next(&mut self, at: SimTime) {
        if self.pending.is_empty() {
            return;
        }
        // Candidates are commands that have arrived by `at`; if none have,
        // the drive sits idle until the earliest arrival.
        let mut start = at;
        let earliest = self
            .pending
            .iter()
            .map(|p| p.arrived)
            .min()
            .expect("non-empty");
        if earliest > at {
            start = earliest;
        }
        let idx = self.choose(start);
        let p = self.pending.swap_remove(idx);
        let begin = start.max(p.arrived);
        let decision = match self.fault.as_mut() {
            Some(f) => f.decide(begin, &p.req),
            None => FaultDecision::Ok,
        };
        let (completes, cache_hit, error) = match decision {
            FaultDecision::Ok => {
                let (done, hit) = self.service(begin, &p.req);
                (done, hit, None)
            }
            FaultDecision::Slow { stall } => {
                let (done, hit) = self.service(begin, &p.req);
                self.stats.breakdown.fault_stall += stall;
                (done + stall, hit, None)
            }
            FaultDecision::Fail { kind, stall } => {
                let done = self.fail_service(begin, &p.req, stall);
                let error = DiskError {
                    kind,
                    lba: p.req.lba,
                };
                (done, false, Some(error))
            }
        };
        self.stats.busy += completes.since(begin);
        self.in_flight = Some(InFlight {
            id: p.id,
            req: p.req,
            arrived: p.arrived,
            completes,
            cache_hit,
            error,
        });
    }

    /// Chooses which arrived command to service next at time `t`.
    fn choose(&self, t: SimTime) -> usize {
        let arrived: Vec<usize> = (0..self.pending.len())
            .filter(|&i| self.pending[i].arrived <= t)
            .collect();
        let candidates: &[usize] = if arrived.is_empty() {
            // Everything is in the future; take the earliest arrival.
            return (0..self.pending.len())
                .min_by_key(|&i| (self.pending[i].arrived, self.pending[i].seq))
                .expect("non-empty");
        } else {
            &arrived
        };
        if !self.tcq.enabled {
            // Host order: FIFO by submission sequence.
            return *candidates
                .iter()
                .min_by_key(|&&i| self.pending[i].seq)
                .expect("non-empty");
        }
        // SPTF with aging: minimize estimated positioning time minus a
        // credit proportional to how long the command has waited.
        *candidates
            .iter()
            .min_by(|&&a, &&b| {
                let sa = self.sptf_score(t, &self.pending[a]);
                let sb = self.sptf_score(t, &self.pending[b]);
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(self.pending[a].seq.cmp(&self.pending[b].seq))
            })
            .expect("non-empty")
    }

    /// If the cache will satisfy `req` sooner than the mechanics could,
    /// returns the ready time. A prefetch stream technically "reaches" any
    /// LBA ahead of it eventually; real firmware aborts the prefetch and
    /// seeks when that would be faster, so a paced hit only counts when it
    /// beats the mechanical estimate.
    fn cache_beats_mechanical(&self, t: SimTime, req: &DiskRequest) -> Option<SimTime> {
        if req.op != DiskOp::Read {
            return None;
        }
        let ready = self.cache.peek(t, req.lba, req.sectors)?;
        let target = self.geometry.lba_to_chs(req.lba);
        let seek = self.seek.seek_secs(self.head_cyl.abs_diff(target.cylinder));
        let mech_estimate = self.mech.command_overhead
            + seek
            + self.geometry.revolution_secs()
            + req.sectors as f64 * self.geometry.sector_time_secs(target.cylinder);
        if ready.saturating_since(t).as_secs_f64() <= mech_estimate {
            Some(ready)
        } else {
            None
        }
    }

    fn sptf_score(&self, t: SimTime, p: &Pending) -> f64 {
        let positioning = if self.cache_beats_mechanical(t, &p.req).is_some() {
            0.0
        } else {
            let target = self.geometry.lba_to_chs(p.req.lba);
            let seek = self.seek.seek_secs(self.head_cyl.abs_diff(target.cylinder));
            let after_seek = t + SimDuration::from_secs_f64(seek);
            seek + self.rotation_wait(after_seek, p.req.lba)
        };
        let wait = t.saturating_since(p.arrived).as_secs_f64();
        positioning - self.tcq.aging_factor * wait
    }

    /// Rotational delay until `lba`'s sector comes under the head at time `t`.
    fn rotation_wait(&self, t: SimTime, lba: u64) -> f64 {
        let rev = self.geometry.revolution_secs();
        let rev_ns = rev * 1e9;
        let angle_now = (t.as_nanos() as f64 % rev_ns) / rev_ns;
        let target = self.geometry.angle_of(lba);
        let mut delta = target - angle_now;
        if delta < 0.0 {
            delta += 1.0;
        }
        delta * rev
    }

    /// Computes the completion time of a request starting service at `t0`.
    fn service(&mut self, t0: SimTime, req: &DiskRequest) -> (SimTime, bool) {
        let host_xfer = req.bytes() as f64 / self.mech.interface_rate;
        match req.op {
            DiskOp::Read => {
                if let Some(ready_at) = self.cache_beats_mechanical(t0, req) {
                    // Served from buffer; mechanics stay where they are and
                    // any background fill keeps running. Command decode and
                    // interface transfer overlap the fill (the drive streams
                    // data out as it comes off the media), so the completion
                    // is whichever finishes later.
                    let outcome = self.cache.lookup(t0, req.lba, req.sectors);
                    debug_assert!(matches!(outcome, CacheOutcome::Hit { .. }));
                    let processed =
                        t0 + SimDuration::from_secs_f64(self.mech.command_overhead + host_xfer);
                    self.stats.breakdown.transfer += SimDuration::from_secs_f64(host_xfer);
                    return (ready_at.max(processed), true);
                }
                self.cache.note_miss();
                let done = self.mechanical(t0, req, 0.0);
                // The head parks at the end of the transfer and keeps
                // reading into the cache at that track's media rate.
                let end_chs = self.geometry.lba_to_chs(req.end() - 1);
                let fill_rate = self.geometry.media_rate(end_chs.cylinder) / SECTOR_BYTES as f64;
                self.cache
                    .insert_after_read(done, req.lba, req.sectors, fill_rate);
                (done, false)
            }
            DiskOp::Write => {
                self.cache.invalidate(t0, req.lba, req.sectors);
                let done = self.mechanical(t0, req, self.mech.write_settle);
                (done, false)
            }
        }
    }

    /// Seek + rotate + media transfer, updating head position and stats.
    fn mechanical(&mut self, t0: SimTime, req: &DiskRequest, extra: f64) -> SimTime {
        self.cache.on_mechanical_start(t0);
        let target = self.geometry.lba_to_chs(req.lba);
        let dist = self.head_cyl.abs_diff(target.cylinder);
        let seek = self.seek.seek_secs(dist);
        if dist > 0 {
            self.stats.seeks += 1;
            self.stats.seek_cylinders += dist;
        }
        let after_seek = t0 + SimDuration::from_secs_f64(self.mech.command_overhead + seek + extra);
        let rot = self.rotation_wait(after_seek, req.lba);
        // Media transfer: sector times along the way plus track switches.
        let mut media = 0.0;
        let mut lba = req.lba;
        let mut remaining = req.sectors;
        while remaining > 0 {
            let chs = self.geometry.lba_to_chs(lba);
            let spt = self.geometry.sectors_per_track(chs.cylinder);
            let in_track = (spt - chs.sector).min(remaining);
            media += in_track as f64 * self.geometry.sector_time_secs(chs.cylinder);
            lba += in_track;
            remaining -= in_track;
            if remaining > 0 {
                media += self.mech.track_switch;
            }
        }
        let host_xfer = req.bytes() as f64 / self.mech.interface_rate;
        self.stats.media_reads += u64::from(req.op == DiskOp::Read);
        self.stats.media_sectors += req.sectors;
        self.stats.breakdown.seek += SimDuration::from_secs_f64(seek);
        self.stats.breakdown.rotation += SimDuration::from_secs_f64(rot);
        self.stats.breakdown.transfer += SimDuration::from_secs_f64(media + host_xfer);
        self.head_cyl = self.geometry.lba_to_chs(req.end() - 1).cylinder;
        after_seek + SimDuration::from_secs_f64(rot + media + host_xfer)
    }

    /// An errored command: the drive still positions to the target, burns
    /// `stall` in its internal retry loop, and reports a check condition.
    /// No data moves, so the cache is untouched (beyond the prefetch abort
    /// every mechanical start implies).
    fn fail_service(&mut self, t0: SimTime, req: &DiskRequest, stall: SimDuration) -> SimTime {
        self.cache.on_mechanical_start(t0);
        if req.op == DiskOp::Read {
            self.cache.note_miss();
        }
        let target = self.geometry.lba_to_chs(req.lba);
        let dist = self.head_cyl.abs_diff(target.cylinder);
        let seek = self.seek.seek_secs(dist);
        if dist > 0 {
            self.stats.seeks += 1;
            self.stats.seek_cylinders += dist;
        }
        self.stats.breakdown.seek += SimDuration::from_secs_f64(seek);
        self.stats.breakdown.fault_stall += stall;
        self.head_cyl = target.cylinder;
        t0 + SimDuration::from_secs_f64(self.mech.command_overhead + seek) + stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Replacement;

    fn test_disk(tcq: TcqConfig, cache_segments: usize) -> Disk {
        // 1000 cylinders, 2 heads, 200/100 spt, 6000 rpm (10 ms/rev).
        let g = DiskGeometry::zoned(1_000, 2, 6_000.0, 200, 100, 4);
        let seek = SeekModel::from_datasheet(1_000, 0.001, 0.005, 0.010);
        let mech = MechParams {
            command_overhead: 0.0001,
            interface_rate: 100e6,
            track_switch: 0.0005,
            write_settle: 0.0005,
        };
        let cache = CacheConfig {
            segments: cache_segments,
            segment_sectors: 512,
            replacement: Replacement::Lru,
        };
        Disk::new(g, seek, mech, tcq, cache, SimRng::new(9))
    }

    fn ms(x: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(x)
    }

    #[test]
    fn single_read_completes_with_mechanical_latency() {
        let mut d = test_disk(TcqConfig::disabled(), 0);
        d.submit(SimTime::ZERO, DiskRequest::read(100_000, 16, 0));
        let t = d.next_completion().expect("in service");
        // Must include at least some seek + rotation; far more than overhead.
        assert!(t.as_secs_f64() > 0.001, "completion at {t}");
        let done = d.advance(t);
        assert_eq!(done.len(), 1);
        assert!(!done[0].cache_hit);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn sequential_reads_hit_prefetch_cache() {
        let mut d = test_disk(TcqConfig::disabled(), 4);
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t1 = d.next_completion().unwrap();
        d.advance(t1);
        // Give the prefetch a little time, then read the next blocks.
        let later = t1 + SimDuration::from_millis(5);
        d.submit(later, DiskRequest::read(16, 16, 1));
        let t2 = d.next_completion().unwrap();
        let done = d.advance(t2);
        assert!(done[0].cache_hit, "sequential follow-up should hit cache");
        // The hit is far faster than a mechanical access.
        assert!(t2.since(later) < SimDuration::from_millis(1));
    }

    #[test]
    fn cache_hit_throughput_is_bounded_by_media_rate() {
        let mut d = test_disk(TcqConfig::disabled(), 4);
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t1 = d.next_completion().unwrap();
        d.advance(t1);
        // Immediately ask far ahead in the fill: must wait for the media.
        d.submit(t1, DiskRequest::read(16, 400, 1));
        let t2 = d.next_completion().unwrap();
        let media_rate = d.geometry().media_rate(0); // bytes/s
        let min_time = 400.0 * 512.0 / media_rate * 0.9;
        assert!(
            t2.since(t1).as_secs_f64() >= min_time,
            "paced hit took {:?}, needs >= {min_time}s",
            t2.since(t1)
        );
    }

    #[test]
    fn fifo_order_without_tags() {
        let mut d = test_disk(TcqConfig::disabled(), 0);
        // Far-apart LBAs; FIFO must not reorder them.
        d.submit(SimTime::ZERO, DiskRequest::read(280_000, 16, 0));
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 1));
        d.submit(SimTime::ZERO, DiskRequest::read(280_016, 16, 2));
        let mut tags = Vec::new();
        while let Some(t) = d.next_completion() {
            for c in d.advance(t) {
                tags.push(c.request.tag);
            }
        }
        assert_eq!(tags, vec![0, 1, 2]);
    }

    #[test]
    fn tcq_reorders_for_position() {
        let tcq = TcqConfig {
            enabled: true,
            depth: 64,
            aging_factor: 0.0,
        };
        let mut d = test_disk(tcq, 0);
        // Head starts at cylinder 0. Submit far-then-near; SPTF serves near
        // ones first even though they were submitted later.
        d.submit(SimTime::ZERO, DiskRequest::read(280_000, 16, 0));
        d.submit(SimTime::ZERO, DiskRequest::read(16, 16, 1));
        // Let the first decision already be made (far one is in flight), so
        // check the *queued* ones reorder around it.
        d.submit(SimTime::ZERO, DiskRequest::read(280_016, 16, 2));
        d.submit(SimTime::ZERO, DiskRequest::read(32, 16, 3));
        let mut tags = Vec::new();
        while let Some(t) = d.next_completion() {
            for c in d.advance(t) {
                tags.push(c.request.tag);
            }
        }
        // First submitted wins the initial idle dispatch; thereafter the
        // drive orders by positioning cost (seek + rotation), not arrival.
        assert_eq!(tags[0], 0);
        assert_eq!(tags.len(), 4, "all requests complete");
        assert_ne!(tags, vec![0, 1, 2, 3], "SPTF must deviate from host order");
    }

    #[test]
    fn aging_prevents_starvation() {
        let tcq = TcqConfig {
            enabled: true,
            depth: 64,
            aging_factor: 0.5,
        };
        let mut d = test_disk(tcq, 0);
        // One far request, then a stream of near requests submitted over
        // time; with aging the far one must complete before the stream ends.
        d.submit(SimTime::ZERO, DiskRequest::read(280_000, 16, 999));
        let mut now = SimTime::ZERO;
        let mut far_done_after = None;
        let mut near_done = 0u32;
        for i in 0..200u64 {
            d.submit(now, DiskRequest::read(i * 16, 16, i));
            now += SimDuration::from_millis(1);
            for c in d.advance(now) {
                if c.request.tag == 999 {
                    far_done_after = Some(near_done);
                } else {
                    near_done += 1;
                }
            }
        }
        let when = far_done_after.expect("far request starved entirely");
        assert!(when < 150, "far request served after {when} near ones");
    }

    #[test]
    fn write_invalidates_cache() {
        let mut d = test_disk(TcqConfig::disabled(), 4);
        d.submit(SimTime::ZERO, DiskRequest::read(0, 64, 0));
        let t1 = d.next_completion().unwrap();
        d.advance(t1);
        d.submit(t1, DiskRequest::write(0, 16, 1));
        let t2 = d.next_completion().unwrap();
        d.advance(t2);
        d.submit(t2, DiskRequest::read(0, 16, 2));
        let t3 = d.next_completion().unwrap();
        let done = d.advance(t3);
        assert!(!done[0].cache_hit, "write must invalidate cached range");
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn zcav_outer_faster_than_inner() {
        // Large sequential reads at cylinder 0 vs the last cylinder.
        let mut d = test_disk(TcqConfig::disabled(), 0);
        let inner_lba = d.geometry().total_sectors() - 4_000;
        d.submit(SimTime::ZERO, DiskRequest::read(0, 2_000, 0));
        let t1 = d.next_completion().unwrap();
        d.advance(t1);
        d.submit(t1, DiskRequest::read(inner_lba, 2_000, 1));
        let t2 = d.next_completion().unwrap();
        let outer = t1.since(SimTime::ZERO).as_secs_f64();
        let inner = t2.since(t1).as_secs_f64();
        // Inner transfer is ~2x slower (100 vs 200 spt), seek aside.
        assert!(
            inner > outer * 1.4,
            "ZCAV: inner {inner:.4}s should exceed outer {outer:.4}s by ~2x"
        );
    }

    #[test]
    fn can_accept_respects_depth() {
        let mut d = test_disk(TcqConfig::disabled(), 0);
        assert!(d.can_accept());
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        assert!(!d.can_accept());
        let tcq = TcqConfig {
            enabled: true,
            depth: 2,
            aging_factor: 0.0,
        };
        d.set_tcq(tcq);
        assert!(d.can_accept());
        d.submit(SimTime::ZERO, DiskRequest::read(16, 16, 1));
        assert!(!d.can_accept());
    }

    #[test]
    fn advance_is_idempotent_when_nothing_due() {
        let mut d = test_disk(TcqConfig::disabled(), 0);
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        assert!(d.advance(SimTime::from_nanos(1)).is_empty());
        assert_eq!(d.outstanding(), 1);
    }

    #[test]
    fn idle_gap_then_submit_starts_at_arrival() {
        let mut d = test_disk(TcqConfig::disabled(), 0);
        d.submit(ms(100), DiskRequest::read(0, 16, 0));
        let t = d.next_completion().unwrap();
        assert!(t >= ms(100));
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn oversized_request_rejected() {
        let mut d = test_disk(TcqConfig::disabled(), 0);
        let total = d.geometry().total_sectors();
        d.submit(SimTime::ZERO, DiskRequest::read(total - 8, 16, 0));
    }

    #[test]
    fn flush_cache_forces_mechanical_reads() {
        let mut d = test_disk(TcqConfig::disabled(), 4);
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t1 = d.next_completion().unwrap();
        d.advance(t1);
        d.flush_cache();
        d.submit(t1, DiskRequest::read(0, 16, 1));
        let t2 = d.next_completion().unwrap();
        let done = d.advance(t2);
        assert!(!done[0].cache_hit);
    }
}
