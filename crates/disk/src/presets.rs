//! Parameter presets for the paper's two test drives.
//!
//! The testbed (§4.1) uses an IBM DDYS-T36950N (Ultrastar-class 10k RPM
//! Ultra160 SCSI drive with tagged command queues) and a Western Digital
//! WD200BB (7200 RPM ATA66 drive without command queueing). The presets
//! below are calibrated from public datasheet figures of those drive
//! families; they are models, not firmware dumps, so absolute MB/s numbers
//! differ from the paper's testbed while preserving the ratios that matter:
//! the ~2:3 ZCAV spread, SCSI-vs-IDE spindle speed and seek profile, TCQ
//! availability, and the read-cache segment counts.

use simcore::SimRng;

use crate::cache::{CacheConfig, Replacement};
use crate::disk::{Disk, MechParams, TcqConfig};
use crate::geometry::DiskGeometry;
use crate::seek::SeekModel;

/// Parameter set for a flash device (consumed by the `ssd` crate's
/// backend; the data lives here so presets stay in one place and the
/// dependency arrow keeps pointing from `ssd` to `diskmodel`).
///
/// All latencies are per *page*; capacity and page size are in 512-byte
/// sectors like everything else in this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdParams {
    /// Independent channel buses between controller and flash.
    pub channels: u32,
    /// NAND dies per channel (total parallelism = channels × dies).
    pub dies_per_channel: u32,
    /// Flash page size in sectors.
    pub page_sectors: u64,
    /// Pages per erase block.
    pub pages_per_block: u64,
    /// Host-visible capacity in sectors.
    pub total_sectors: u64,
    /// Physical over-provisioning as a fraction of host capacity.
    pub overprovision: f64,
    /// Page read (tR) latency, microseconds.
    pub read_us: f64,
    /// Page program (tProg) latency, microseconds.
    pub program_us: f64,
    /// Block erase latency, milliseconds.
    pub erase_ms: f64,
    /// Per-channel bus bandwidth, MB/s.
    pub channel_mb_s: f64,
    /// Free-block threshold per die below which GC kicks in.
    pub gc_low_water_blocks: u64,
    /// Magnitude of the seeded jitter added to each GC pause, microseconds
    /// (firmware GC is not metronomic; the draw is deterministic per seed).
    pub gc_jitter_us: f64,
    /// Host queue depth (`can_accept` gate).
    pub queue_depth: usize,
}

/// Identifies one of the modelled devices: the paper testbed's two 2003
/// spinning drives, plus two modern flash parameter sets for the
/// SSD-vs-HDD experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveModel {
    /// IBM DDYS-T36950N: 36.9 GB, 10k RPM, Ultra160 SCSI, TCQ.
    IbmDdysScsi,
    /// Western Digital WD200BB: 20 GB, 7200 RPM, ATA66, no TCQ.
    WdWd200bbIde,
    /// Consumer TLC SATA-class SSD: 240 GB, 4 channels × 2 dies, slow
    /// program/erase, shallow over-provisioning (GC-pause prone).
    ConsumerTlcSsd,
    /// Datacenter NVMe-class SSD: 800 GB, 8 channels × 4 dies, fast NAND,
    /// deep over-provisioning.
    DatacenterSsd,
}

impl DriveModel {
    /// Short name used in benchmark labels (`scsi`, `ide`, `tlc`, `dcssd`).
    pub fn label(self) -> &'static str {
        match self {
            DriveModel::IbmDdysScsi => "scsi",
            DriveModel::WdWd200bbIde => "ide",
            DriveModel::ConsumerTlcSsd => "tlc",
            DriveModel::DatacenterSsd => "dcssd",
        }
    }

    /// Whether the drive supports tagged command queues at all. (SSDs
    /// queue deeply, but through their own `queue_depth`, not the SCSI
    /// TCQ knob the paper toggles.)
    pub fn supports_tcq(self) -> bool {
        matches!(self, DriveModel::IbmDdysScsi)
    }

    /// Whether this model is a flash device (built via the `ssd` crate
    /// rather than [`DriveModel::build`]).
    pub fn is_ssd(self) -> bool {
        self.ssd_params().is_some()
    }

    /// Flash parameter set, for the SSD models.
    pub fn ssd_params(self) -> Option<SsdParams> {
        match self {
            DriveModel::ConsumerTlcSsd => Some(SsdParams {
                channels: 4,
                dies_per_channel: 2,
                page_sectors: 16,           // 8 KB pages
                pages_per_block: 256,       // 2 MB erase blocks
                total_sectors: 468_750_000, // 240 GB
                overprovision: 0.07,
                read_us: 70.0,
                program_us: 900.0,
                erase_ms: 5.0,
                channel_mb_s: 400.0,
                gc_low_water_blocks: 4,
                gc_jitter_us: 500.0,
                queue_depth: 32,
            }),
            DriveModel::DatacenterSsd => Some(SsdParams {
                channels: 8,
                dies_per_channel: 4,
                page_sectors: 16,
                pages_per_block: 256,
                total_sectors: 1_562_500_000, // 800 GB
                overprovision: 0.28,
                read_us: 50.0,
                program_us: 400.0,
                erase_ms: 3.0,
                channel_mb_s: 600.0,
                gc_low_water_blocks: 8,
                gc_jitter_us: 200.0,
                queue_depth: 64,
            }),
            _ => None,
        }
    }

    fn expect_hdd(self, what: &str) {
        assert!(
            !self.is_ssd(),
            "{} has no {what}; SSD presets build via the ssd crate",
            self.label()
        );
    }

    /// The drive's geometry.
    ///
    /// # Panics
    ///
    /// Panics for the SSD models, which have no mechanical geometry.
    pub fn geometry(self) -> DiskGeometry {
        self.expect_hdd("geometry");
        match self {
            // ~36.9 GB: 21000 cylinders x 10 heads, 424..260 spt, 10k RPM.
            DriveModel::IbmDdysScsi => DiskGeometry::zoned(21_000, 10, 10_000.0, 424, 260, 12),
            // ~20 GB: 18000 cylinders x 4 heads, 650..435 spt, 7200 RPM.
            DriveModel::WdWd200bbIde => DiskGeometry::zoned(18_000, 4, 7_200.0, 650, 435, 12),
            _ => unreachable!(),
        }
    }

    /// Host-visible capacity in sectors, for any device family.
    pub fn total_sectors(self) -> u64 {
        match self.ssd_params() {
            Some(p) => p.total_sectors,
            None => self.geometry().total_sectors(),
        }
    }

    /// The drive's seek profile.
    ///
    /// # Panics
    ///
    /// Panics for the SSD models, which do not seek.
    pub fn seek(self) -> SeekModel {
        self.expect_hdd("seek profile");
        match self {
            // 0.6 ms track-to-track, 4.9 ms average, 10.5 ms full stroke.
            DriveModel::IbmDdysScsi => SeekModel::from_datasheet(21_000, 0.0006, 0.0049, 0.0105),
            // 1.2 ms track-to-track, 8.9 ms average, 21 ms full stroke.
            DriveModel::WdWd200bbIde => SeekModel::from_datasheet(18_000, 0.0012, 0.0089, 0.021),
            _ => unreachable!(),
        }
    }

    /// Command and interface overheads.
    ///
    /// # Panics
    ///
    /// Panics for the SSD models.
    pub fn mech(self) -> MechParams {
        self.expect_hdd("mechanical parameters");
        match self {
            DriveModel::IbmDdysScsi => MechParams {
                command_overhead: 0.00025,
                interface_rate: 160e6, // Ultra160
                track_switch: 0.0008,
                write_settle: 0.0007,
            },
            DriveModel::WdWd200bbIde => MechParams {
                command_overhead: 0.00040,
                interface_rate: 66e6, // ATA66
                track_switch: 0.0012,
                write_settle: 0.0010,
            },
            _ => unreachable!(),
        }
    }

    /// Default TCQ configuration (the FreeBSD kernel detects and uses tags
    /// on the SCSI drive; the IDE drive has none).
    pub fn default_tcq(self) -> TcqConfig {
        match self {
            DriveModel::IbmDdysScsi => TcqConfig {
                enabled: true,
                depth: 64,
                aging_factor: 2.0,
            },
            _ => TcqConfig::disabled(),
        }
    }

    /// Read-cache layout.
    ///
    /// The SCSI drive has a 4 MB buffer with generous segmentation; the IDE
    /// drive has a 2 MB buffer of which one segment is reserved for write
    /// buffering, leaving seven read segments with firmware-adaptive
    /// (modelled as random) replacement. The segment count is what makes
    /// `ide1` collapse at the 8-stride pattern in Figure 8 / Table 1.
    pub fn cache(self) -> CacheConfig {
        self.expect_hdd("segmented prefetch cache");
        match self {
            DriveModel::IbmDdysScsi => CacheConfig {
                segments: 16,
                segment_sectors: 512, // 256 KB per segment
                replacement: Replacement::Lru,
            },
            DriveModel::WdWd200bbIde => CacheConfig {
                segments: 7,
                segment_sectors: 512,
                replacement: Replacement::Random,
            },
            _ => unreachable!(),
        }
    }

    /// Builds a drive with default configuration.
    ///
    /// # Panics
    ///
    /// Panics for the SSD models; use the `ssd` crate's builder.
    pub fn build(self, rng: SimRng) -> Disk {
        Disk::new(
            self.geometry(),
            self.seek(),
            self.mech(),
            self.default_tcq(),
            self.cache(),
            rng,
        )
    }

    /// Builds a drive with tagged queueing forced off (the paper's
    /// "no tags" configurations). No-op difference for the IDE drive.
    pub fn build_no_tcq(self, rng: SimRng) -> Disk {
        Disk::new(
            self.geometry(),
            self.seek(),
            self.mech(),
            TcqConfig::disabled(),
            self.cache(),
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_are_roughly_right() {
        let scsi_gb = DriveModel::IbmDdysScsi.geometry().capacity_bytes() as f64 / 1e9;
        let ide_gb = DriveModel::WdWd200bbIde.geometry().capacity_bytes() as f64 / 1e9;
        assert!((33.0..40.0).contains(&scsi_gb), "scsi {scsi_gb} GB");
        assert!((18.0..22.0).contains(&ide_gb), "ide {ide_gb} GB");
    }

    #[test]
    fn zcav_ratio_near_two_thirds() {
        for m in [DriveModel::IbmDdysScsi, DriveModel::WdWd200bbIde] {
            let g = m.geometry();
            let ratio = g.media_rate(g.cylinders() - 1) / g.media_rate(0);
            assert!(
                (0.55..0.72).contains(&ratio),
                "{}: inner/outer = {ratio}",
                m.label()
            );
        }
    }

    #[test]
    fn media_rates_match_calibration() {
        let scsi = DriveModel::IbmDdysScsi.geometry();
        let ide = DriveModel::WdWd200bbIde.geometry();
        let scsi_outer = scsi.media_rate(0) / 1e6;
        let ide_outer = ide.media_rate(0) / 1e6;
        assert!(
            (33.0..40.0).contains(&scsi_outer),
            "scsi outer {scsi_outer}"
        );
        assert!((38.0..43.0).contains(&ide_outer), "ide outer {ide_outer}");
    }

    #[test]
    fn tcq_defaults() {
        assert!(DriveModel::IbmDdysScsi.default_tcq().enabled);
        assert!(!DriveModel::WdWd200bbIde.default_tcq().enabled);
        assert!(DriveModel::IbmDdysScsi.supports_tcq());
        assert!(!DriveModel::WdWd200bbIde.supports_tcq());
    }

    #[test]
    fn build_produces_working_drive() {
        use crate::types::DiskRequest;
        use simcore::SimTime;
        let mut d = DriveModel::IbmDdysScsi.build(SimRng::new(3));
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t = d.next_completion().expect("busy");
        assert_eq!(d.advance(t).len(), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(DriveModel::IbmDdysScsi.label(), "scsi");
        assert_eq!(DriveModel::WdWd200bbIde.label(), "ide");
        assert_eq!(DriveModel::ConsumerTlcSsd.label(), "tlc");
        assert_eq!(DriveModel::DatacenterSsd.label(), "dcssd");
    }

    #[test]
    fn ssd_params_are_sane() {
        for m in [DriveModel::ConsumerTlcSsd, DriveModel::DatacenterSsd] {
            assert!(m.is_ssd());
            assert!(!m.supports_tcq(), "SSD queues are not SCSI TCQ");
            let p = m.ssd_params().unwrap();
            assert!(p.channels >= 1 && p.dies_per_channel >= 1);
            assert!(p.overprovision > 0.0 && p.overprovision < 1.0);
            assert!(p.program_us > p.read_us, "program slower than read");
            assert!(p.erase_ms * 1e3 > p.program_us, "erase slower than program");
            assert_eq!(m.total_sectors(), p.total_sectors);
        }
        // The datacenter part is the faster, deeper-OP device.
        let tlc = DriveModel::ConsumerTlcSsd.ssd_params().unwrap();
        let dc = DriveModel::DatacenterSsd.ssd_params().unwrap();
        assert!(dc.channels * dc.dies_per_channel > tlc.channels * tlc.dies_per_channel);
        assert!(dc.overprovision > tlc.overprovision);
        assert!(dc.program_us < tlc.program_us);
    }

    #[test]
    fn hdds_have_no_ssd_params() {
        for m in [DriveModel::IbmDdysScsi, DriveModel::WdWd200bbIde] {
            assert!(!m.is_ssd());
            assert!(m.ssd_params().is_none());
            assert_eq!(m.total_sectors(), m.geometry().total_sectors());
        }
    }

    #[test]
    #[should_panic(expected = "ssd crate")]
    fn ssd_preset_refuses_mechanical_build() {
        let _ = DriveModel::ConsumerTlcSsd.build(SimRng::new(1));
    }
}
