//! Parameter presets for the paper's two test drives.
//!
//! The testbed (§4.1) uses an IBM DDYS-T36950N (Ultrastar-class 10k RPM
//! Ultra160 SCSI drive with tagged command queues) and a Western Digital
//! WD200BB (7200 RPM ATA66 drive without command queueing). The presets
//! below are calibrated from public datasheet figures of those drive
//! families; they are models, not firmware dumps, so absolute MB/s numbers
//! differ from the paper's testbed while preserving the ratios that matter:
//! the ~2:3 ZCAV spread, SCSI-vs-IDE spindle speed and seek profile, TCQ
//! availability, and the read-cache segment counts.

use simcore::SimRng;

use crate::cache::{CacheConfig, Replacement};
use crate::disk::{Disk, MechParams, TcqConfig};
use crate::geometry::DiskGeometry;
use crate::seek::SeekModel;

/// Identifies one of the two modelled drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveModel {
    /// IBM DDYS-T36950N: 36.9 GB, 10k RPM, Ultra160 SCSI, TCQ.
    IbmDdysScsi,
    /// Western Digital WD200BB: 20 GB, 7200 RPM, ATA66, no TCQ.
    WdWd200bbIde,
}

impl DriveModel {
    /// Short name used in benchmark labels (`scsi`, `ide`).
    pub fn label(self) -> &'static str {
        match self {
            DriveModel::IbmDdysScsi => "scsi",
            DriveModel::WdWd200bbIde => "ide",
        }
    }

    /// Whether the drive supports tagged command queues at all.
    pub fn supports_tcq(self) -> bool {
        matches!(self, DriveModel::IbmDdysScsi)
    }

    /// The drive's geometry.
    pub fn geometry(self) -> DiskGeometry {
        match self {
            // ~36.9 GB: 21000 cylinders x 10 heads, 424..260 spt, 10k RPM.
            DriveModel::IbmDdysScsi => DiskGeometry::zoned(21_000, 10, 10_000.0, 424, 260, 12),
            // ~20 GB: 18000 cylinders x 4 heads, 650..435 spt, 7200 RPM.
            DriveModel::WdWd200bbIde => DiskGeometry::zoned(18_000, 4, 7_200.0, 650, 435, 12),
        }
    }

    /// The drive's seek profile.
    pub fn seek(self) -> SeekModel {
        match self {
            // 0.6 ms track-to-track, 4.9 ms average, 10.5 ms full stroke.
            DriveModel::IbmDdysScsi => SeekModel::from_datasheet(21_000, 0.0006, 0.0049, 0.0105),
            // 1.2 ms track-to-track, 8.9 ms average, 21 ms full stroke.
            DriveModel::WdWd200bbIde => SeekModel::from_datasheet(18_000, 0.0012, 0.0089, 0.021),
        }
    }

    /// Command and interface overheads.
    pub fn mech(self) -> MechParams {
        match self {
            DriveModel::IbmDdysScsi => MechParams {
                command_overhead: 0.00025,
                interface_rate: 160e6, // Ultra160
                track_switch: 0.0008,
                write_settle: 0.0007,
            },
            DriveModel::WdWd200bbIde => MechParams {
                command_overhead: 0.00040,
                interface_rate: 66e6, // ATA66
                track_switch: 0.0012,
                write_settle: 0.0010,
            },
        }
    }

    /// Default TCQ configuration (the FreeBSD kernel detects and uses tags
    /// on the SCSI drive; the IDE drive has none).
    pub fn default_tcq(self) -> TcqConfig {
        match self {
            DriveModel::IbmDdysScsi => TcqConfig {
                enabled: true,
                depth: 64,
                aging_factor: 2.0,
            },
            DriveModel::WdWd200bbIde => TcqConfig::disabled(),
        }
    }

    /// Read-cache layout.
    ///
    /// The SCSI drive has a 4 MB buffer with generous segmentation; the IDE
    /// drive has a 2 MB buffer of which one segment is reserved for write
    /// buffering, leaving seven read segments with firmware-adaptive
    /// (modelled as random) replacement. The segment count is what makes
    /// `ide1` collapse at the 8-stride pattern in Figure 8 / Table 1.
    pub fn cache(self) -> CacheConfig {
        match self {
            DriveModel::IbmDdysScsi => CacheConfig {
                segments: 16,
                segment_sectors: 512, // 256 KB per segment
                replacement: Replacement::Lru,
            },
            DriveModel::WdWd200bbIde => CacheConfig {
                segments: 7,
                segment_sectors: 512,
                replacement: Replacement::Random,
            },
        }
    }

    /// Builds a drive with default configuration.
    pub fn build(self, rng: SimRng) -> Disk {
        Disk::new(
            self.geometry(),
            self.seek(),
            self.mech(),
            self.default_tcq(),
            self.cache(),
            rng,
        )
    }

    /// Builds a drive with tagged queueing forced off (the paper's
    /// "no tags" configurations). No-op difference for the IDE drive.
    pub fn build_no_tcq(self, rng: SimRng) -> Disk {
        Disk::new(
            self.geometry(),
            self.seek(),
            self.mech(),
            TcqConfig::disabled(),
            self.cache(),
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_are_roughly_right() {
        let scsi_gb = DriveModel::IbmDdysScsi.geometry().capacity_bytes() as f64 / 1e9;
        let ide_gb = DriveModel::WdWd200bbIde.geometry().capacity_bytes() as f64 / 1e9;
        assert!((33.0..40.0).contains(&scsi_gb), "scsi {scsi_gb} GB");
        assert!((18.0..22.0).contains(&ide_gb), "ide {ide_gb} GB");
    }

    #[test]
    fn zcav_ratio_near_two_thirds() {
        for m in [DriveModel::IbmDdysScsi, DriveModel::WdWd200bbIde] {
            let g = m.geometry();
            let ratio = g.media_rate(g.cylinders() - 1) / g.media_rate(0);
            assert!(
                (0.55..0.72).contains(&ratio),
                "{}: inner/outer = {ratio}",
                m.label()
            );
        }
    }

    #[test]
    fn media_rates_match_calibration() {
        let scsi = DriveModel::IbmDdysScsi.geometry();
        let ide = DriveModel::WdWd200bbIde.geometry();
        let scsi_outer = scsi.media_rate(0) / 1e6;
        let ide_outer = ide.media_rate(0) / 1e6;
        assert!(
            (33.0..40.0).contains(&scsi_outer),
            "scsi outer {scsi_outer}"
        );
        assert!((38.0..43.0).contains(&ide_outer), "ide outer {ide_outer}");
    }

    #[test]
    fn tcq_defaults() {
        assert!(DriveModel::IbmDdysScsi.default_tcq().enabled);
        assert!(!DriveModel::WdWd200bbIde.default_tcq().enabled);
        assert!(DriveModel::IbmDdysScsi.supports_tcq());
        assert!(!DriveModel::WdWd200bbIde.supports_tcq());
    }

    #[test]
    fn build_produces_working_drive() {
        use crate::types::DiskRequest;
        use simcore::SimTime;
        let mut d = DriveModel::IbmDdysScsi.build(SimRng::new(3));
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t = d.next_completion().expect("busy");
        assert_eq!(d.advance(t).len(), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(DriveModel::IbmDdysScsi.label(), "scsi");
        assert_eq!(DriveModel::WdWd200bbIde.label(), "ide");
    }
}
