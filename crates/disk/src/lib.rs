//! A ZCAV disk drive model.
//!
//! This crate models the two drives of the paper's testbed closely enough
//! to reproduce the benchmarking traps of §5:
//!
//! * **ZCAV** ([`DiskGeometry`]): zoned recording means outer cylinders
//!   transfer ~1.5x faster than inner ones, so *where* a benchmark's files
//!   land dominates small effects (Figure 1).
//! * **Tagged command queues** ([`TcqConfig`], [`Disk`]): with tags the
//!   drive reorders requests with its own (fairer) scheduler, fragmenting
//!   the kernel's carefully sorted sequential runs (Figure 2).
//! * **Segmented prefetch cache** ([`cache`]): the drive reads ahead on its
//!   own whenever the mechanics are idle, one segment per sequential
//!   stream — the hidden effect behind the stride-read numbers of §7.
//!
//! The model is *passive*: all methods take explicit [`simcore::SimTime`]
//! arguments, so it plugs into any event loop and is directly testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod device;
mod disk;
mod fault;
mod geometry;
mod partition;
mod presets;
mod seek;
mod types;

pub use cache::{CacheConfig, CacheOutcome, Replacement, SegmentedCache};
pub use device::{DeviceModel, DeviceReport, ReportBucket, ReportGauge};
pub use disk::{Disk, DiskStats, MechParams, ServiceBreakdown, TcqConfig};
pub use fault::{DiskError, DiskErrorKind, DiskOutcome, FaultDecision, FaultModel};
pub use geometry::{Chs, DiskGeometry, Zone};
pub use partition::{Partition, PartitionTable};
pub use presets::{DriveModel, SsdParams};
pub use seek::SeekModel;
pub use types::{Completion, DiskOp, DiskRequest, Lba, RequestId, SECTOR_BYTES};
