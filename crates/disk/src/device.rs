//! The device abstraction: the submit/poll/advance surface every storage
//! backend presents to the block-I/O layer.
//!
//! [`crate::Disk`] (the 2003 spinning drive) and the `ssd` crate's flash
//! backend both implement [`DeviceModel`]; `ffs::bio`, the `iosched`
//! elevator, and the `diskfault` plans compose against this trait and never
//! name a concrete device. The trait mirrors the passive state-machine
//! style of the rest of the simulator: explicit [`SimTime`] arguments,
//! no event-loop dependency, and strictly deterministic behaviour.
//!
//! [`DeviceReport`] is the device-agnostic statistics surface: a handful
//! of universal counters plus *labelled* service-time buckets and gauges,
//! so an HDD can report seek/rotation and an SSD can report GC-stall and
//! die-conflict time through the same rendering code.

use std::any::Any;

use simcore::{SimDuration, SimTime};

use crate::fault::FaultModel;
use crate::types::{Completion, DiskRequest, Lba, RequestId};

/// A labelled slice of device busy time (`("seek", 1.2ms)`).
pub type ReportBucket = (&'static str, SimDuration);

/// A labelled device-specific counter (`("gc runs", 3)`).
pub type ReportGauge = (&'static str, u64);

/// Device-agnostic statistics snapshot.
///
/// The universal counters are what every layer above needs (commands,
/// busy time, error totals); everything mechanical or flash-specific goes
/// into the labelled `buckets` (durations, rendered as percentages of
/// busy) and `gauges` (plain counts). Buckets need not sum to `busy` —
/// devices may leave overheads unbucketed, exactly as
/// [`crate::DiskStats`] does.
#[derive(Debug, Clone, Default)]
pub struct DeviceReport {
    /// Short device-family label (`"disk"`, `"ssd"`).
    pub kind: &'static str,
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Reads served from a device-internal cache.
    pub cache_hits: u64,
    /// Total time the device spent servicing commands.
    pub busy: SimDuration,
    /// Commands completed with a check condition.
    pub media_errors: u64,
    /// Sectors reallocated to spares by host remap commands.
    pub remapped_sectors: u64,
    /// Labelled decomposition of `busy` (seek/rotation/... for an HDD,
    /// gc-stall/die-wait/... for an SSD).
    pub buckets: Vec<ReportBucket>,
    /// Labelled device-specific counters (seeks, GC runs, pages moved...).
    pub gauges: Vec<ReportGauge>,
}

impl DeviceReport {
    /// Total commands completed.
    pub fn commands(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A storage device: the passive submit/poll/advance state machine the
/// block-I/O layer drives.
///
/// The contract matches [`crate::Disk`]'s historical surface exactly — the
/// spinning drive behind this trait is bit-identical to the pre-trait
/// code, which the fingerprint pins enforce:
///
/// * `submit` accepts a request at an explicit time and returns the
///   device-assigned id; the device may internally queue and reorder.
/// * `next_completion` is the earliest instant `advance` would produce a
///   completion; `advance(now)` retires everything due at or before `now`.
/// * `can_accept` is the host-visible queue-slot gate; integration layers
///   respect it, tests may overqueue.
/// * `set_fault_model`/`remap` compose with `diskfault` plans: decisions
///   must be consulted per command, and remapped ranges stop failing.
pub trait DeviceModel: std::fmt::Debug + Send {
    /// Submits a request at time `now`, returning its device-assigned id.
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> RequestId;

    /// When the next command will finish, if any is in service.
    fn next_completion(&self) -> Option<SimTime>;

    /// Completes every command that finishes at or before `now`.
    fn advance(&mut self, now: SimTime) -> Vec<Completion>;

    /// Whether the host may send another command.
    fn can_accept(&self) -> bool;

    /// Number of requests in the device (queued + in service).
    fn outstanding(&self) -> usize;

    /// Addressable capacity in sectors.
    fn total_sectors(&self) -> u64;

    /// Discards all cached data (benchmark cache-flush discipline, §4.3.1).
    fn flush_cache(&mut self);

    /// Installs (or clears) the device's fault model.
    fn set_fault_model(&mut self, model: Option<Box<dyn FaultModel>>);

    /// Whether a fault model is currently installed.
    fn fault_model_active(&self) -> bool;

    /// Host remap: `[lba, lba + sectors)` is reallocated to spares; faults
    /// covering the range stop firing.
    fn remap(&mut self, lba: Lba, sectors: u64);

    /// Reconfigures tagged queueing. Devices without a host-visible TCQ
    /// knob (an SSD's internal parallelism is not host-configurable)
    /// ignore this.
    fn set_tcq(&mut self, _tcq: crate::TcqConfig) {}

    /// Device-agnostic statistics snapshot.
    fn report(&self) -> DeviceReport;

    /// Downcast support, so HDD-only call sites (geometry probes, TCQ
    /// assertions) can reach the concrete device they constructed.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl DeviceModel for crate::Disk {
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> RequestId {
        crate::Disk::submit(self, now, req)
    }

    fn next_completion(&self) -> Option<SimTime> {
        crate::Disk::next_completion(self)
    }

    fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        crate::Disk::advance(self, now)
    }

    fn can_accept(&self) -> bool {
        crate::Disk::can_accept(self)
    }

    fn outstanding(&self) -> usize {
        crate::Disk::outstanding(self)
    }

    fn total_sectors(&self) -> u64 {
        self.geometry().total_sectors()
    }

    fn flush_cache(&mut self) {
        crate::Disk::flush_cache(self)
    }

    fn set_fault_model(&mut self, model: Option<Box<dyn FaultModel>>) {
        crate::Disk::set_fault_model(self, model)
    }

    fn fault_model_active(&self) -> bool {
        crate::Disk::fault_model_active(self)
    }

    fn remap(&mut self, lba: Lba, sectors: u64) {
        crate::Disk::remap(self, lba, sectors)
    }

    fn set_tcq(&mut self, tcq: crate::TcqConfig) {
        crate::Disk::set_tcq(self, tcq)
    }

    fn report(&self) -> DeviceReport {
        self.stats().report()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl crate::DiskStats {
    /// The spinning drive's counters as a device-agnostic report.
    pub fn report(&self) -> DeviceReport {
        DeviceReport {
            kind: "disk",
            reads: self.reads,
            writes: self.writes,
            cache_hits: self.cache_hits,
            busy: self.busy,
            media_errors: self.media_errors,
            remapped_sectors: self.remapped_sectors,
            buckets: vec![
                ("seek", self.breakdown.seek),
                ("rotation", self.breakdown.rotation),
                ("transfer", self.breakdown.transfer),
                ("fault stall", self.breakdown.fault_stall),
            ],
            gauges: vec![("seeks", self.seeks), ("media reads", self.media_reads)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::{Disk, DiskGeometry, MechParams, SeekModel, TcqConfig};
    use simcore::SimRng;

    fn boxed_disk() -> Box<dyn DeviceModel> {
        let g = DiskGeometry::zoned(1_000, 2, 6_000.0, 200, 100, 4);
        let seek = SeekModel::from_datasheet(1_000, 0.001, 0.005, 0.010);
        let mech = MechParams {
            command_overhead: 0.0001,
            interface_rate: 100e6,
            track_switch: 0.0005,
            write_settle: 0.0005,
        };
        Box::new(Disk::new(
            g,
            seek,
            mech,
            TcqConfig::disabled(),
            CacheConfig::disabled(),
            SimRng::new(9),
        ))
    }

    #[test]
    fn disk_drives_through_the_trait() {
        let mut d = boxed_disk();
        assert!(d.can_accept());
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 7));
        assert!(!d.can_accept());
        assert_eq!(d.outstanding(), 1);
        let t = d.next_completion().expect("in service");
        let done = d.advance(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request.tag, 7);
        let r = d.report();
        assert_eq!(r.kind, "disk");
        assert_eq!(r.commands(), 1);
        assert!(r.buckets.iter().any(|(name, _)| *name == "seek"));
    }

    #[test]
    fn downcast_reaches_the_concrete_disk() {
        let mut d = boxed_disk();
        let disk = d.as_any().downcast_ref::<Disk>().expect("is a Disk");
        assert!(disk.geometry().total_sectors() > 0);
        assert_eq!(d.total_sectors(), {
            let disk = d.as_any().downcast_ref::<Disk>().unwrap();
            disk.geometry().total_sectors()
        });
        let disk = d.as_any_mut().downcast_mut::<Disk>().expect("is a Disk");
        disk.flush_cache();
    }

    #[test]
    fn report_mirrors_disk_stats() {
        let mut d = boxed_disk();
        d.submit(SimTime::ZERO, DiskRequest::read(100_000, 16, 0));
        let t = d.next_completion().unwrap();
        d.advance(t);
        let r = d.report();
        let stats = d.as_any().downcast_ref::<Disk>().unwrap().stats();
        assert_eq!(r.reads, stats.reads);
        assert_eq!(r.busy, stats.busy);
        let seek = r.buckets.iter().find(|(n, _)| *n == "seek").unwrap().1;
        assert_eq!(seek, stats.breakdown.seek);
    }
}
