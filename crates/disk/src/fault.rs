//! Host-visible disk fault interface.
//!
//! The drive model itself stays healthy by default: a [`Disk`] carries an
//! optional boxed [`FaultModel`] and consults it once per command, just
//! before computing service time. The concrete model (latent sector
//! errors, stuck tags, firmware stalls, fail-slow regions) lives in the
//! `diskfault` crate; this module only defines the seam so the dependency
//! points the right way (`diskfault` → `diskmodel`, never back).
//!
//! Determinism contract: [`FaultModel::decide`] must be a pure function of
//! the model's own state and the `(now, req)` arguments — no RNG draws, no
//! wall clock. All randomness belongs in *plan construction*, which runs
//! once up front from a seeded stream. That is what keeps a faulted run
//! bit-identical across worker-thread counts.
//!
//! [`Disk`]: crate::Disk

use simcore::{SimDuration, SimTime};

use crate::types::{DiskRequest, Lba};

/// How a failed command is classified by the drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskErrorKind {
    /// A marginal sector: the drive's internal retries will eventually
    /// recover it, so a host-level retry is worthwhile.
    TransientMedia,
    /// An unrecoverable latent sector error: the drive has already burned
    /// its internal retries. Re-reading cannot help; the host should remap
    /// the range and report the loss.
    HardMedia,
}

/// A failed command's check-condition data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskError {
    /// Transient vs hard classification.
    pub kind: DiskErrorKind,
    /// First LBA of the failed request (real drives report the exact bad
    /// sector; first-of-request is enough for whole-request retry/remap).
    pub lba: Lba,
}

/// The result carried by every [`Completion`](crate::Completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOutcome {
    /// Data transferred.
    Ok,
    /// The command failed; no data moved.
    Error(DiskError),
}

impl DiskOutcome {
    /// Whether the command succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, DiskOutcome::Ok)
    }

    /// The error, if the command failed.
    pub fn error(&self) -> Option<DiskError> {
        match self {
            DiskOutcome::Ok => None,
            DiskOutcome::Error(e) => Some(*e),
        }
    }
}

/// Per-command verdict from a [`FaultModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Service normally.
    Ok,
    /// Service normally, then hold the completion for `stall` (slow tag,
    /// firmware hiccup, degraded-region re-read passes).
    Slow {
        /// Extra time added after normal service.
        stall: SimDuration,
    },
    /// Fail the command: the drive positions, spends `stall` in internal
    /// recovery attempts, then reports a check condition. No data moves.
    Fail {
        /// Transient vs hard classification reported to the host.
        kind: DiskErrorKind,
        /// Time burned in the drive's internal retry loop before giving up.
        stall: SimDuration,
    },
}

/// A pluggable per-command fault policy.
///
/// Implementations must be draw-free in `decide` (see the module docs) and
/// `Send` so a faulted world can still fan out across worker threads.
pub trait FaultModel: std::fmt::Debug + Send {
    /// Verdict for the command starting service at `now`.
    fn decide(&mut self, now: SimTime, req: &DiskRequest) -> FaultDecision;

    /// The host reallocated `[lba, lba + sectors)` to spare sectors; any
    /// fault covering that range must stop firing.
    fn remap(&mut self, _lba: Lba, _sectors: u64) {}
}
