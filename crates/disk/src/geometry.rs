//! Zoned (ZCAV) disk geometry.
//!
//! Modern drives store more sectors on the longer outer tracks than on the
//! inner ones (zoned constant angular velocity, §5.1 of the paper). Because
//! the platter spins at a constant rate, the media transfer rate is
//! proportional to the sectors-per-track of the zone under the head —
//! typically a 2:3 inner:outer ratio, sometimes as much as 1:2.
//!
//! [`DiskGeometry`] models the drive as a sequence of zones, each spanning a
//! contiguous range of cylinders with a constant sectors-per-track count.
//! Logical block addresses are laid out cylinder-major, outermost cylinder
//! first, which is how real drives number their LBAs (and why "partition 1"
//! is the fast partition).

use crate::types::{Lba, SECTOR_BYTES};

/// A contiguous run of cylinders sharing a sectors-per-track count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone (inclusive).
    pub first_cyl: u64,
    /// One past the last cylinder of the zone.
    pub end_cyl: u64,
    /// Sectors on each track of this zone.
    pub sectors_per_track: u64,
}

impl Zone {
    /// Number of cylinders in the zone.
    pub fn cylinders(&self) -> u64 {
        self.end_cyl - self.first_cyl
    }
}

/// Physical position of a sector: cylinder, head (track within cylinder),
/// and sector index within the track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder number, 0 = outermost.
    pub cylinder: u64,
    /// Head (surface) number.
    pub head: u64,
    /// Sector index within the track.
    pub sector: u64,
}

/// Zoned drive geometry.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    heads: u64,
    rpm: f64,
    zones: Vec<Zone>,
    /// `zone_start_lba[i]` is the LBA of the first sector of zone `i`;
    /// a final entry holds the total sector count.
    zone_start_lba: Vec<Lba>,
}

impl DiskGeometry {
    /// Builds a geometry from explicit zones.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is empty, non-contiguous, does not start at
    /// cylinder 0, or if `heads == 0` or `rpm <= 0`.
    pub fn new(heads: u64, rpm: f64, zones: Vec<Zone>) -> Self {
        assert!(!zones.is_empty(), "geometry needs at least one zone");
        assert!(heads > 0, "geometry needs at least one head");
        assert!(rpm > 0.0, "rpm must be positive");
        assert_eq!(zones[0].first_cyl, 0, "zones must start at cylinder 0");
        for w in zones.windows(2) {
            assert_eq!(
                w[0].end_cyl, w[1].first_cyl,
                "zones must be contiguous and ordered"
            );
        }
        let mut zone_start_lba = Vec::with_capacity(zones.len() + 1);
        let mut acc: u64 = 0;
        for z in &zones {
            zone_start_lba.push(acc);
            acc += z.cylinders() * heads * z.sectors_per_track;
        }
        zone_start_lba.push(acc);
        DiskGeometry {
            heads,
            rpm,
            zones,
            zone_start_lba,
        }
    }

    /// Builds a geometry with `num_zones` equal-cylinder zones whose
    /// sectors-per-track interpolate linearly from `outer_spt` (cylinder 0)
    /// to `inner_spt` (last cylinder), the usual ZCAV shape.
    pub fn zoned(
        cylinders: u64,
        heads: u64,
        rpm: f64,
        outer_spt: u64,
        inner_spt: u64,
        num_zones: usize,
    ) -> Self {
        assert!(num_zones > 0 && cylinders >= num_zones as u64);
        let mut zones = Vec::with_capacity(num_zones);
        let per = cylinders / num_zones as u64;
        for i in 0..num_zones as u64 {
            let first_cyl = i * per;
            let end_cyl = if i == num_zones as u64 - 1 {
                cylinders
            } else {
                (i + 1) * per
            };
            // Interpolate at the middle of the zone.
            let frac = if num_zones == 1 {
                0.0
            } else {
                i as f64 / (num_zones - 1) as f64
            };
            let spt = outer_spt as f64 + (inner_spt as f64 - outer_spt as f64) * frac;
            zones.push(Zone {
                first_cyl,
                end_cyl,
                sectors_per_track: spt.round() as u64,
            });
        }
        DiskGeometry::new(heads, rpm, zones)
    }

    /// Number of heads (tracks per cylinder).
    pub fn heads(&self) -> u64 {
        self.heads
    }

    /// Spindle speed in revolutions per minute.
    pub fn rpm(&self) -> f64 {
        self.rpm
    }

    /// Duration of one revolution in seconds.
    pub fn revolution_secs(&self) -> f64 {
        60.0 / self.rpm
    }

    /// The zones, outermost first.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Total number of cylinders.
    pub fn cylinders(&self) -> u64 {
        self.zones.last().expect("non-empty").end_cyl
    }

    /// Total number of sectors on the drive.
    pub fn total_sectors(&self) -> u64 {
        *self.zone_start_lba.last().expect("non-empty")
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * SECTOR_BYTES
    }

    /// Index of the zone containing `cyl`.
    fn zone_of_cyl(&self, cyl: u64) -> usize {
        debug_assert!(cyl < self.cylinders());
        self.zones
            .partition_point(|z| z.end_cyl <= cyl)
            .min(self.zones.len() - 1)
    }

    /// Sectors per track at cylinder `cyl`.
    pub fn sectors_per_track(&self, cyl: u64) -> u64 {
        self.zones[self.zone_of_cyl(cyl)].sectors_per_track
    }

    /// Sectors in one full cylinder at `cyl`.
    pub fn cylinder_sectors(&self, cyl: u64) -> u64 {
        self.sectors_per_track(cyl) * self.heads
    }

    /// Media transfer rate in bytes per second at cylinder `cyl`: one
    /// track's worth of data per revolution. This is the ZCAV effect.
    pub fn media_rate(&self, cyl: u64) -> f64 {
        (self.sectors_per_track(cyl) * SECTOR_BYTES) as f64 / self.revolution_secs()
    }

    /// Maps an LBA to its physical position.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is beyond the end of the drive.
    pub fn lba_to_chs(&self, lba: Lba) -> Chs {
        assert!(
            lba < self.total_sectors(),
            "lba {lba} beyond end of drive ({})",
            self.total_sectors()
        );
        let zi = self
            .zone_start_lba
            .partition_point(|&s| s <= lba)
            .saturating_sub(1)
            .min(self.zones.len() - 1);
        let z = &self.zones[zi];
        let rel = lba - self.zone_start_lba[zi];
        let per_cyl = z.sectors_per_track * self.heads;
        let cylinder = z.first_cyl + rel / per_cyl;
        let in_cyl = rel % per_cyl;
        Chs {
            cylinder,
            head: in_cyl / z.sectors_per_track,
            sector: in_cyl % z.sectors_per_track,
        }
    }

    /// Cylinder containing `lba` (cheaper than full [`lba_to_chs`]).
    ///
    /// [`lba_to_chs`]: DiskGeometry::lba_to_chs
    pub fn cylinder_of(&self, lba: Lba) -> u64 {
        self.lba_to_chs(lba).cylinder
    }

    /// Angular position of `lba` within its track, in `[0, 1)`.
    pub fn angle_of(&self, lba: Lba) -> f64 {
        let chs = self.lba_to_chs(lba);
        chs.sector as f64 / self.sectors_per_track(chs.cylinder) as f64
    }

    /// Time to transfer one sector under the head at cylinder `cyl`.
    pub fn sector_time_secs(&self, cyl: u64) -> f64 {
        self.revolution_secs() / self.sectors_per_track(cyl) as f64
    }

    /// Number of track boundaries crossed by a transfer of `sectors`
    /// starting at `lba` (each costs a head/cylinder switch).
    pub fn track_crossings(&self, lba: Lba, sectors: u64) -> u64 {
        if sectors == 0 {
            return 0;
        }
        let first = self.lba_to_chs(lba);
        let last = self.lba_to_chs(lba + sectors - 1);
        let track_index = |c: Chs| {
            // Tracks are numbered consecutively across zones; approximate by
            // cylinder * heads + head, which is exact for crossing counts.
            c.cylinder * self.heads + c.head
        };
        track_index(last) - track_index(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DiskGeometry {
        // Two zones: cylinders 0-9 with 100 spt, 10-19 with 60 spt; 2 heads.
        DiskGeometry::new(
            2,
            6000.0,
            vec![
                Zone {
                    first_cyl: 0,
                    end_cyl: 10,
                    sectors_per_track: 100,
                },
                Zone {
                    first_cyl: 10,
                    end_cyl: 20,
                    sectors_per_track: 60,
                },
            ],
        )
    }

    #[test]
    fn totals_add_up() {
        let g = tiny();
        assert_eq!(g.total_sectors(), 10 * 2 * 100 + 10 * 2 * 60);
        assert_eq!(g.cylinders(), 20);
        assert_eq!(g.capacity_bytes(), g.total_sectors() * 512);
    }

    #[test]
    fn spt_by_cylinder() {
        let g = tiny();
        assert_eq!(g.sectors_per_track(0), 100);
        assert_eq!(g.sectors_per_track(9), 100);
        assert_eq!(g.sectors_per_track(10), 60);
        assert_eq!(g.sectors_per_track(19), 60);
    }

    #[test]
    fn media_rate_reflects_zcav() {
        let g = tiny();
        // 6000 rpm = 0.01 s/rev. Outer: 100*512/0.01 bytes/s.
        assert!((g.media_rate(0) - 100.0 * 512.0 / 0.01).abs() < 1e-6);
        let ratio = g.media_rate(19) / g.media_rate(0);
        assert!((ratio - 0.6).abs() < 1e-9);
    }

    #[test]
    fn lba_zero_is_outer_edge() {
        let g = tiny();
        assert_eq!(
            g.lba_to_chs(0),
            Chs {
                cylinder: 0,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn lba_walks_sectors_then_heads_then_cylinders() {
        let g = tiny();
        assert_eq!(
            g.lba_to_chs(99),
            Chs {
                cylinder: 0,
                head: 0,
                sector: 99
            }
        );
        assert_eq!(
            g.lba_to_chs(100),
            Chs {
                cylinder: 0,
                head: 1,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(200),
            Chs {
                cylinder: 1,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn lba_in_second_zone() {
        let g = tiny();
        // First zone holds 2000 sectors.
        assert_eq!(
            g.lba_to_chs(2000),
            Chs {
                cylinder: 10,
                head: 0,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(2000 + 60),
            Chs {
                cylinder: 10,
                head: 1,
                sector: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn lba_out_of_range_panics() {
        let g = tiny();
        let _ = g.lba_to_chs(g.total_sectors());
    }

    #[test]
    fn angle_of_positions() {
        let g = tiny();
        assert_eq!(g.angle_of(0), 0.0);
        assert!((g.angle_of(50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn track_crossings_counts_boundaries() {
        let g = tiny();
        assert_eq!(g.track_crossings(0, 50), 0);
        assert_eq!(g.track_crossings(0, 101), 1);
        assert_eq!(g.track_crossings(0, 201), 2);
        assert_eq!(g.track_crossings(95, 10), 1);
        assert_eq!(g.track_crossings(0, 0), 0);
    }

    #[test]
    fn zoned_constructor_interpolates() {
        let g = DiskGeometry::zoned(1000, 4, 7200.0, 600, 400, 8);
        assert_eq!(g.zones().len(), 8);
        assert_eq!(g.sectors_per_track(0), 600);
        assert_eq!(g.sectors_per_track(999), 400);
        // Monotonically non-increasing from outer to inner.
        let spts: Vec<u64> = g.zones().iter().map(|z| z.sectors_per_track).collect();
        let mut sorted = spts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(spts, sorted);
        assert_eq!(g.cylinders(), 1000);
    }

    #[test]
    fn zoned_single_zone() {
        let g = DiskGeometry::zoned(100, 2, 7200.0, 500, 300, 1);
        assert_eq!(g.zones().len(), 1);
        assert_eq!(g.sectors_per_track(0), 500);
    }

    #[test]
    fn sector_time_matches_rate() {
        let g = tiny();
        let t = g.sector_time_secs(0);
        assert!((t * 100.0 - 0.01).abs() < 1e-12, "100 sectors per rev");
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_zones_rejected() {
        let _ = DiskGeometry::new(
            1,
            7200.0,
            vec![
                Zone {
                    first_cyl: 0,
                    end_cyl: 10,
                    sectors_per_track: 10,
                },
                Zone {
                    first_cyl: 11,
                    end_cyl: 20,
                    sectors_per_track: 10,
                },
            ],
        );
    }
}
