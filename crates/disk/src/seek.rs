//! Seek-time model.
//!
//! The classic piecewise model (Ruemmler & Wilkes): short seeks are
//! dominated by acceleration and grow with the square root of the distance;
//! long seeks reach coast velocity and grow linearly. The model is
//! calibrated from three datasheet numbers — track-to-track, average
//! (one-third stroke), and full stroke — which is how drive vendors publish
//! seek behaviour.

/// Piecewise sqrt/linear seek-time model.
#[derive(Debug, Clone, Copy)]
pub struct SeekModel {
    cylinders: u64,
    /// Boundary (in cylinders) between the sqrt and linear regimes.
    cutoff: f64,
    /// sqrt regime: `a1 + b1 * sqrt(d)` seconds.
    a1: f64,
    b1: f64,
    /// linear regime: `a2 + b2 * d` seconds.
    a2: f64,
    b2: f64,
    track_to_track: f64,
}

impl SeekModel {
    /// Calibrates a model from datasheet numbers (all in seconds).
    ///
    /// `avg` is interpreted as the one-third-stroke seek time, the industry
    /// convention for "average seek".
    ///
    /// # Panics
    ///
    /// Panics unless `0 < track_to_track <= avg <= full_stroke` and the
    /// drive has at least four cylinders.
    pub fn from_datasheet(cylinders: u64, track_to_track: f64, avg: f64, full_stroke: f64) -> Self {
        assert!(cylinders >= 4, "need at least 4 cylinders");
        assert!(
            track_to_track > 0.0 && track_to_track <= avg && avg <= full_stroke,
            "datasheet numbers must satisfy 0 < t2t <= avg <= full"
        );
        let cutoff = cylinders as f64 / 3.0;
        // Fit a1 + b1*sqrt(d) through (1, t2t) and (cutoff, avg).
        let b1 = (avg - track_to_track) / (cutoff.sqrt() - 1.0);
        let a1 = track_to_track - b1;
        // Fit a2 + b2*d through (cutoff, avg) and (cylinders, full).
        let b2 = (full_stroke - avg) / (cylinders as f64 - cutoff);
        let a2 = avg - b2 * cutoff;
        SeekModel {
            cylinders,
            cutoff,
            a1,
            b1,
            a2,
            b2,
            track_to_track,
        }
    }

    /// Seek time in seconds to move `distance` cylinders. Zero distance is
    /// free (the head is already there).
    pub fn seek_secs(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let d = (distance.min(self.cylinders)) as f64;
        if d <= self.cutoff {
            self.a1 + self.b1 * d.sqrt()
        } else {
            self.a2 + self.b2 * d
        }
    }

    /// The calibrated track-to-track (single-cylinder) seek time.
    pub fn track_to_track_secs(&self) -> f64 {
        self.track_to_track
    }

    /// Number of cylinders this model was calibrated for.
    pub fn cylinders(&self) -> u64 {
        self.cylinders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SeekModel {
        // 15000 cylinders, 0.6 ms t2t, 4.9 ms avg, 10.5 ms full.
        SeekModel::from_datasheet(15_000, 0.0006, 0.0049, 0.0105)
    }

    #[test]
    fn calibration_points_are_exact() {
        let m = model();
        assert!((m.seek_secs(1) - 0.0006).abs() < 1e-12);
        assert!((m.seek_secs(5_000) - 0.0049).abs() < 1e-4);
        assert!((m.seek_secs(15_000) - 0.0105).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(model().seek_secs(0), 0.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let m = model();
        let mut prev = 0.0;
        for d in [1, 2, 5, 10, 100, 1_000, 4_999, 5_000, 5_001, 10_000, 15_000] {
            let t = m.seek_secs(d);
            assert!(
                t >= prev - 1e-12,
                "seek time decreased at d={d}: {t} < {prev}"
            );
            prev = t;
        }
    }

    #[test]
    fn sqrt_regime_is_concave() {
        let m = model();
        // Doubling a short distance should less-than-double the time delta.
        let t100 = m.seek_secs(100);
        let t400 = m.seek_secs(400);
        assert!(
            t400 < 2.0 * t100,
            "sqrt growth: t(400)={t400}, t(100)={t100}"
        );
    }

    #[test]
    fn distances_beyond_full_stroke_clamp() {
        let m = model();
        assert_eq!(m.seek_secs(20_000), m.seek_secs(15_000));
    }

    #[test]
    #[should_panic(expected = "datasheet")]
    fn bad_datasheet_rejected() {
        let _ = SeekModel::from_datasheet(1_000, 0.005, 0.004, 0.010);
    }

    #[test]
    fn continuous_at_cutoff() {
        let m = model();
        let eps_below = m.seek_secs(4_999);
        let eps_above = m.seek_secs(5_001);
        assert!((eps_above - eps_below).abs() < 2e-4);
    }
}
