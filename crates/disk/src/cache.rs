//! The drive's segmented read cache with background prefetch.
//!
//! Every modern drive keeps a small RAM buffer divided into *segments*,
//! each caching a sliding window of a sequential stream. After a mechanical
//! read the head is already on track, so the drive keeps reading — for free
//! — advancing the segment's *frontier* at the media rate for as long as
//! the mechanics stay idle. The window is a ring: once more than a
//! segment's capacity has been prefetched, the oldest data is overwritten,
//! so a segment can follow an arbitrarily long sequential stream while
//! occupying constant space.
//!
//! This background prefetch is what lets a drive sustain media-rate
//! sequential reads even when the host issues small synchronous requests
//! with think-time between them, and it is the mechanism behind the
//! surprisingly high "default heuristic" stride-read numbers in §7 of the
//! paper: each stride stream monopolizes one cache segment.
//!
//! Key modelled behaviours:
//!
//! * prefetch proceeds at the media rate of the track being read;
//! * prefetch is **truncated** the instant the mechanics start servicing
//!   another request (the head leaves the track);
//! * a hit that lands beyond the current frontier is served when the fill
//!   reaches it (the host cannot outrun the media);
//! * data further than one segment capacity behind the frontier has been
//!   overwritten and misses;
//! * segment replacement is LRU or random, per drive model — drives with
//!   few segments and LRU thrash pathologically on cyclic access patterns.

use simcore::{SimRng, SimTime};

use crate::types::Lba;

/// Replacement policy for cache segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least recently used segment.
    Lru,
    /// Evict a uniformly random segment (models adaptive/unknown firmware).
    Random,
}

/// Configuration of the segmented cache.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of segments (0 disables the cache entirely).
    pub segments: usize,
    /// Capacity of each segment in sectors (the sliding-window size).
    pub segment_sectors: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A disabled cache.
    pub fn disabled() -> Self {
        CacheConfig {
            segments: 0,
            segment_sectors: 0,
            replacement: Replacement::Lru,
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheOutcome {
    /// The full range is (or will be) in the buffer; data is complete at
    /// `ready_at` (equal to `now` if already buffered).
    Hit {
        /// Instant at which the last requested sector is in the buffer.
        ready_at: SimTime,
    },
    /// The range is not covered; the mechanics must service it.
    Miss,
}

#[derive(Debug, Clone)]
struct Segment {
    /// First sector the segment ever held.
    origin: Lba,
    /// Sectors present at `fill_start` (the synchronous part of the read).
    base: u64,
    /// When background fill began.
    fill_start: SimTime,
    /// Fill rate in sectors per second (media rate of the track).
    fill_rate: f64,
    /// If set, fill stopped at this instant (mechanics were taken away).
    truncated_at: Option<SimTime>,
    /// Window capacity in sectors.
    cap: u64,
    /// LRU stamp.
    last_used: u64,
}

impl Segment {
    /// Exclusive upper bound of buffered data as of `t`.
    fn frontier(&self, t: SimTime) -> Lba {
        let effective = match self.truncated_at {
            Some(tr) if tr < t => tr,
            _ => t,
        };
        let filled = if effective <= self.fill_start {
            0
        } else {
            let dt = effective.since(self.fill_start).as_secs_f64();
            (dt * self.fill_rate) as u64
        };
        self.origin + self.base + filled
    }

    /// The frontier the segment will eventually reach (`None` = unbounded,
    /// still filling).
    fn eventual_frontier(&self) -> Option<Lba> {
        self.truncated_at
            .map(|tr| self.frontier(tr.max(self.fill_start)))
    }

    /// Oldest sector still in the window as of `t`.
    fn coverage_lo(&self, t: SimTime) -> Lba {
        self.frontier(t).saturating_sub(self.cap).max(self.origin)
    }

    /// When `[lba, lba + sectors)` is fully buffered and not yet
    /// overwritten, evaluated for a request arriving at `now`.
    fn ready_time(&self, now: SimTime, lba: Lba, sectors: u64) -> Option<SimTime> {
        let end = lba + sectors;
        if lba < self.origin || sectors == 0 || sectors > self.cap {
            return None;
        }
        if let Some(ef) = self.eventual_frontier() {
            if end > ef {
                return None;
            }
        }
        // Instant the frontier reaches `end`.
        let already = self.origin + self.base;
        let t_fill = if end <= already {
            self.fill_start
        } else {
            if self.fill_rate <= 0.0 {
                return None;
            }
            let dt = (end - already) as f64 / self.fill_rate;
            self.fill_start + simcore::SimDuration::from_secs_f64(dt)
        };
        let ready = t_fill.max(now).max(self.fill_start);
        // Overwrite check: the start of the range must still be in the
        // window when the data is consumed.
        if lba < self.coverage_lo(ready) {
            return None;
        }
        Some(ready)
    }
}

/// The segmented prefetch cache.
#[derive(Debug)]
pub struct SegmentedCache {
    config: CacheConfig,
    segments: Vec<Segment>,
    /// Index of the segment currently being filled by the head, if any.
    filling: Option<usize>,
    clock: u64,
    rng: SimRng,
    hits: u64,
    misses: u64,
}

impl SegmentedCache {
    /// Creates a cache; `rng` drives random replacement only.
    pub fn new(config: CacheConfig, rng: SimRng) -> Self {
        SegmentedCache {
            config,
            segments: Vec::with_capacity(config.segments),
            filling: None,
            clock: 0,
            rng,
            hits: 0,
            misses: 0,
        }
    }

    /// Hit/miss counters (reads only).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live segments.
    pub fn live_segments(&self) -> usize {
        self.segments.len()
    }

    /// Non-mutating lookup: returns the instant at which the whole range
    /// will be buffered, or `None` if the range is not covered. Used by the
    /// drive's internal scheduler to score queued requests without
    /// disturbing LRU state or counters.
    pub fn peek(&self, now: SimTime, lba: Lba, sectors: u64) -> Option<SimTime> {
        if self.config.segments == 0 {
            return None;
        }
        self.segments
            .iter()
            .filter_map(|s| s.ready_time(now, lba, sectors))
            .min()
    }

    /// Looks up a read of `sectors` at `lba`, updating LRU and counters.
    pub fn lookup(&mut self, now: SimTime, lba: Lba, sectors: u64) -> CacheOutcome {
        if self.config.segments == 0 || sectors == 0 {
            self.misses += 1;
            return CacheOutcome::Miss;
        }
        self.clock += 1;
        let best = self
            .segments
            .iter_mut()
            .filter_map(|s| s.ready_time(now, lba, sectors).map(|t| (t, s)))
            .min_by_key(|(t, _)| *t);
        match best {
            Some((ready_at, seg)) => {
                seg.last_used = self.clock;
                self.hits += 1;
                CacheOutcome::Hit { ready_at }
            }
            None => {
                self.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Records a miss decided outside [`SegmentedCache::lookup`] (e.g. a
    /// paced hit the firmware rejected in favour of a seek).
    pub fn note_miss(&mut self) {
        self.misses += 1;
    }

    /// Called when the mechanics begin servicing a request: the head leaves
    /// its track, so any in-progress fill stops at `now`.
    pub fn on_mechanical_start(&mut self, now: SimTime) {
        if let Some(i) = self.filling.take() {
            if let Some(seg) = self.segments.get_mut(i) {
                if seg.truncated_at.is_none() {
                    seg.truncated_at = Some(now.max(seg.fill_start));
                }
            }
        }
    }

    /// Installs the result of a mechanical read that finished at `now`,
    /// covering `[lba, lba + sectors)`; the drive then keeps prefetching
    /// beyond it at `fill_rate` sectors/second until truncated.
    ///
    /// A read that lands near an existing segment's window (the stream the
    /// segment was following) reuses that segment, so one sequential stream
    /// occupies exactly one segment no matter how long it runs.
    pub fn insert_after_read(&mut self, now: SimTime, lba: Lba, sectors: u64, fill_rate: f64) {
        if self.config.segments == 0 {
            return;
        }
        self.clock += 1;
        let reuse = self.segments.iter().position(|s| {
            let f = s.frontier(now);
            lba + sectors >= s.coverage_lo(now) && lba <= f.saturating_add(s.cap)
        });
        let idx = match reuse {
            Some(i) => i,
            None => {
                if self.segments.len() < self.config.segments {
                    self.segments.push(Segment {
                        origin: 0,
                        base: 0,
                        fill_start: now,
                        fill_rate: 0.0,
                        truncated_at: Some(now),
                        cap: 0,
                        last_used: 0,
                    });
                    self.segments.len() - 1
                } else {
                    self.victim()
                }
            }
        };
        self.segments[idx] = Segment {
            origin: lba,
            base: sectors.min(self.config.segment_sectors),
            fill_start: now,
            fill_rate,
            truncated_at: None,
            cap: self.config.segment_sectors,
            last_used: self.clock,
        };
        self.filling = Some(idx);
    }

    /// Drops any segment whose window overlaps `[lba, lba + sectors)` as of
    /// `now` (host write).
    pub fn invalidate(&mut self, now: SimTime, lba: Lba, sectors: u64) {
        let end = lba + sectors;
        let filling_origin = self
            .filling
            .and_then(|i| self.segments.get(i))
            .map(|s| s.origin);
        self.segments.retain(|s| {
            let hi = s.eventual_frontier().unwrap_or(Lba::MAX);
            hi <= lba || s.coverage_lo(now) >= end
        });
        // Re-locate the filling segment if it survived.
        self.filling =
            filling_origin.and_then(|o| self.segments.iter().position(|s| s.origin == o));
    }

    /// Empties the cache (host-visible cache flush).
    pub fn flush(&mut self) {
        self.segments.clear();
        self.filling = None;
    }

    fn victim(&mut self) -> usize {
        match self.config.replacement {
            Replacement::Lru => self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .unwrap_or(0),
            Replacement::Random => self.rng.gen_range(0..self.segments.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    fn cache(segments: usize) -> SegmentedCache {
        SegmentedCache::new(
            CacheConfig {
                segments,
                segment_sectors: 1_000,
                replacement: Replacement::Lru,
            },
            SimRng::new(1),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_cache_misses() {
        let mut c = cache(4);
        assert_eq!(c.lookup(t(0), 0, 16), CacheOutcome::Miss);
        assert_eq!(c.hit_miss(), (0, 1));
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = SegmentedCache::new(CacheConfig::disabled(), SimRng::new(1));
        c.insert_after_read(t(0), 0, 16, 1e6);
        assert_eq!(c.lookup(t(10), 0, 16), CacheOutcome::Miss);
    }

    #[test]
    fn base_range_hits_immediately() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 100, 64, 100_000.0);
        match c.lookup(t(1), 100, 64) {
            CacheOutcome::Hit { ready_at } => assert_eq!(ready_at, t(1)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn prefetch_grows_with_time() {
        let mut c = cache(4);
        // Fill rate 100 sectors/ms.
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        // At 1 ms, 16 + 100 sectors are buffered; range 0..116 hits now.
        match c.lookup(t(1), 0, 100) {
            CacheOutcome::Hit { ready_at } => assert_eq!(ready_at, t(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hit_in_future_fill_waits_for_media() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        // Sector 216 needs 200 more sectors = 2 ms of fill.
        match c.lookup(t(1), 200, 16) {
            CacheOutcome::Hit { ready_at } => {
                assert_eq!(ready_at, t(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn window_slides_beyond_capacity() {
        // The defining property of the rewrite: a sequential stream can be
        // followed far past one segment capacity.
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        // Sector 5000 is five capacities ahead; fill reaches it at ~50 ms.
        match c.lookup(t(1), 5_000, 16) {
            CacheOutcome::Hit { ready_at } => {
                let expected_ms = (5_016 - 16) as f64 / 100.0;
                assert!(
                    (ready_at.as_secs_f64() * 1e3 - expected_ms).abs() < 0.5,
                    "ready at {ready_at}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn old_data_is_overwritten_by_the_sliding_window() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        // At 50 ms the frontier is ~5016; the window holds ~[4016, 5016).
        assert_eq!(c.lookup(t(50), 0, 16), CacheOutcome::Miss, "overwritten");
        assert!(matches!(
            c.lookup(t(50), 4_500, 16),
            CacheOutcome::Hit { .. }
        ));
    }

    #[test]
    fn truncation_stops_fill() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        c.on_mechanical_start(t(1));
        // Only 16 + 100 sectors were ever buffered; beyond that misses.
        assert_eq!(c.lookup(t(10), 200, 16), CacheOutcome::Miss);
        // Within the truncated range still hits.
        assert!(matches!(c.lookup(t(10), 0, 116), CacheOutcome::Hit { .. }));
    }

    #[test]
    fn oversized_request_misses() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 1e9);
        // A request larger than the window can never be fully buffered.
        assert_eq!(c.lookup(t(100), 0, 1_001), CacheOutcome::Miss);
    }

    #[test]
    fn sequential_extension_reuses_segment() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        c.on_mechanical_start(t(1));
        // Next sequential read lands at the old segment's frontier.
        c.insert_after_read(t(2), 116, 16, 100_000.0);
        assert_eq!(c.live_segments(), 1);
    }

    #[test]
    fn far_jump_allocates_new_segment() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        c.on_mechanical_start(t(1));
        c.insert_after_read(t(2), 1_000_000, 16, 100_000.0);
        assert_eq!(c.live_segments(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache(2);
        c.insert_after_read(t(0), 0, 16, 0.0);
        c.on_mechanical_start(t(1));
        c.insert_after_read(t(1), 1_000_000, 16, 0.0);
        c.on_mechanical_start(t(2));
        // Touch the first segment so the second becomes LRU.
        let _ = c.lookup(t(2), 0, 16);
        c.insert_after_read(t(3), 2_000_000, 16, 0.0);
        assert!(matches!(c.lookup(t(4), 0, 16), CacheOutcome::Hit { .. }));
        assert_eq!(c.lookup(t(4), 1_000_000, 16), CacheOutcome::Miss);
    }

    #[test]
    fn lru_thrashes_on_cyclic_pattern() {
        // Classic pathology: 3 streams, 2 segments, round-robin access.
        let mut c = cache(2);
        let bases = [0u64, 1_000_000, 2_000_000];
        let mut misses = 0;
        let mut clock = 0;
        for round in 0..10u64 {
            for &b in bases.iter() {
                clock += 1;
                let lba = b + round * 16;
                if c.lookup(t(clock), lba, 16) == CacheOutcome::Miss {
                    misses += 1;
                    c.on_mechanical_start(t(clock));
                    c.insert_after_read(t(clock), lba, 16, 0.0);
                }
            }
        }
        assert_eq!(misses, 30, "every access should miss under LRU cycling");
    }

    #[test]
    fn random_replacement_breaks_cycling() {
        let mut c = SegmentedCache::new(
            CacheConfig {
                segments: 2,
                segment_sectors: 1_000,
                replacement: Replacement::Random,
            },
            SimRng::new(7),
        );
        let bases = [0u64, 1_000_000, 2_000_000];
        let mut hits = 0;
        let mut clock = 0;
        for _round in 0..200u64 {
            for &b in &bases {
                clock += 1;
                match c.lookup(t(clock), b, 16) {
                    CacheOutcome::Hit { .. } => hits += 1,
                    CacheOutcome::Miss => {
                        c.on_mechanical_start(t(clock));
                        c.insert_after_read(t(clock), b, 16, 0.0);
                    }
                }
            }
        }
        assert!(
            hits > 100,
            "random replacement should get some hits: {hits}"
        );
    }

    #[test]
    fn invalidate_drops_overlapping() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 100, 0.0);
        c.on_mechanical_start(t(1));
        c.insert_after_read(t(1), 1_000_000, 100, 0.0);
        c.on_mechanical_start(t(2));
        c.invalidate(t(2), 50, 10);
        assert_eq!(c.lookup(t(2), 0, 16), CacheOutcome::Miss);
        assert!(matches!(
            c.lookup(t(2), 1_000_000, 16),
            CacheOutcome::Hit { .. }
        ));
    }

    #[test]
    fn flush_empties() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 100, 0.0);
        c.flush();
        assert_eq!(c.live_segments(), 0);
        assert_eq!(c.lookup(t(1), 0, 16), CacheOutcome::Miss);
    }

    #[test]
    fn zero_sector_lookup_misses_harmlessly() {
        let mut c = cache(4);
        assert_eq!(c.lookup(t(0), 5, 0), CacheOutcome::Miss);
    }

    #[test]
    fn peek_matches_lookup_without_counting() {
        let mut c = cache(4);
        c.insert_after_read(t(0), 0, 16, 100_000.0);
        let peeked = c.peek(t(1), 0, 16);
        assert!(peeked.is_some());
        let (h, m) = c.hit_miss();
        assert_eq!((h, m), (0, 0), "peek must not count");
    }
}
