//! Property-based tests on the drive model's physical invariants, driven by
//! seeded `SimRng` loops (offline-friendly; the case index reproduces the
//! input together with the fixed seed).

use diskmodel::{Completion, Disk, DiskRequest, DriveModel};
use simcore::{SimRng, SimTime};

fn drain(disk: &mut Disk) -> Vec<Completion> {
    let mut out = Vec::new();
    while let Some(t) = disk.next_completion() {
        out.extend(disk.advance(t));
    }
    out
}

/// Every submitted request completes exactly once, in any configuration,
/// for any request mix.
#[test]
fn conservation_of_requests() {
    let mut rng = SimRng::new(0x00D1_5C01);
    for case in 0..48 {
        let scsi = rng.chance(0.5);
        let tcq_on = rng.chance(0.5);
        let model = if scsi {
            DriveModel::IbmDdysScsi
        } else {
            DriveModel::WdWd200bbIde
        };
        let mut disk = if tcq_on {
            model.build(SimRng::new(1))
        } else {
            model.build_no_tcq(SimRng::new(1))
        };
        let n = rng.gen_range(1usize..60);
        for i in 0..n {
            let lba = rng.gen_range(0u64..30_000_000);
            let sectors = rng.gen_range(1u64..256);
            let req = if rng.chance(0.5) {
                DiskRequest::write(lba, sectors, i as u64)
            } else {
                DiskRequest::read(lba, sectors, i as u64)
            };
            disk.submit(SimTime::from_nanos(i as u64 * 10_000), req);
        }
        let done = drain(&mut disk);
        assert_eq!(done.len(), n, "case {case}");
        let mut seen: Vec<u64> = done.iter().map(|c| c.request.tag).collect();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        assert_eq!(seen, expected, "case {case}");
        assert_eq!(disk.outstanding(), 0, "case {case}");
    }
}

/// Completions never precede submissions, and service takes at least the
/// command overhead.
#[test]
fn causality_and_minimum_service() {
    let mut rng = SimRng::new(0x00D1_5C02);
    for case in 0..48 {
        let mut disk = DriveModel::IbmDdysScsi.build(SimRng::new(2));
        let n = rng.gen_range(1usize..40);
        for i in 0..n {
            let lba = rng.gen_range(0u64..30_000_000);
            let sectors = rng.gen_range(1u64..128);
            disk.submit(
                SimTime::from_nanos(i as u64 * 50_000),
                DiskRequest::read(lba, sectors, i as u64),
            );
        }
        for c in drain(&mut disk) {
            assert!(c.completed_at > c.submitted_at, "case {case}");
            let us = c.latency().as_secs_f64() * 1e6;
            assert!(us >= 100.0, "case {case}: suspiciously fast: {us} us");
        }
    }
}

/// Writes are never cache hits, and a read right after an overlapping write
/// is never a cache hit either (write-through invalidation).
#[test]
fn write_invalidation() {
    let mut rng = SimRng::new(0x00D1_5C03);
    for case in 0..48 {
        let lba = rng.gen_range(0u64..30_000_000);
        let sectors = rng.gen_range(1u64..128);
        let mut disk = DriveModel::IbmDdysScsi.build(SimRng::new(3));
        disk.submit(SimTime::ZERO, DiskRequest::read(lba, sectors, 0));
        let t1 = disk.next_completion().expect("busy");
        disk.advance(t1);
        disk.submit(t1, DiskRequest::write(lba, 1, 1));
        let t2 = disk.next_completion().expect("busy");
        let w = disk.advance(t2);
        assert!(!w[0].cache_hit, "case {case}");
        disk.submit(t2, DiskRequest::read(lba, sectors, 2));
        let t3 = disk.next_completion().expect("busy");
        let r = disk.advance(t3);
        assert!(
            !r[0].cache_hit,
            "case {case}: stale data served after write"
        );
    }
}

/// ZCAV: a long sequential read in the outer half is never slower than the
/// same-length read in the inner half (fresh drives, same seed).
#[test]
fn zcav_monotonicity() {
    let mut rng = SimRng::new(0x00D1_5C04);
    for case in 0..8 {
        let mb = rng.gen_range(1u64..8);
        let sectors = mb * 2_048;
        let time_for = |start_lba: u64| {
            let mut disk = DriveModel::WdWd200bbIde.build(SimRng::new(4));
            let mut at = SimTime::ZERO;
            let mut lba = start_lba;
            let mut left = sectors;
            while left > 0 {
                let n = left.min(128);
                disk.submit(at, DiskRequest::read(lba, n, 0));
                at = disk.next_completion().expect("busy");
                disk.advance(at);
                lba += n;
                left -= n;
            }
            at.as_secs_f64()
        };
        let total = DriveModel::WdWd200bbIde.geometry().total_sectors();
        let outer = time_for(0);
        let inner = time_for(total - sectors - 1_000);
        assert!(
            inner > outer,
            "case {case}: inner {inner} should exceed outer {outer}"
        );
    }
}

/// The drive clock never runs backwards across completions.
#[test]
fn monotone_completions() {
    let mut rng = SimRng::new(0x00D1_5C05);
    for case in 0..48 {
        let tcq_on = rng.chance(0.5);
        let model = DriveModel::IbmDdysScsi;
        let mut disk = if tcq_on {
            model.build(SimRng::new(5))
        } else {
            model.build_no_tcq(SimRng::new(5))
        };
        let n = rng.gen_range(2usize..60);
        for i in 0..n {
            let lba = rng.gen_range(0u64..30_000_000);
            disk.submit(SimTime::ZERO, DiskRequest::read(lba, 16, i as u64));
        }
        let done = drain(&mut disk);
        for w in done.windows(2) {
            assert!(w[1].completed_at >= w[0].completed_at, "case {case}");
        }
    }
}
