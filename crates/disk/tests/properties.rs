//! Property-based tests on the drive model's physical invariants.

use diskmodel::{Completion, Disk, DiskRequest, DriveModel, TcqConfig};
use proptest::prelude::*;
use simcore::{SimRng, SimTime};

fn drain(disk: &mut Disk) -> Vec<Completion> {
    let mut out = Vec::new();
    while let Some(t) = disk.next_completion() {
        out.extend(disk.advance(t));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted request completes exactly once, in any
    /// configuration, for any request mix.
    #[test]
    fn conservation_of_requests(
        reqs in prop::collection::vec((0u64..30_000_000u64, 1u64..256, prop::bool::ANY), 1..60),
        tcq_on in prop::bool::ANY,
        scsi in prop::bool::ANY,
    ) {
        let model = if scsi { DriveModel::IbmDdysScsi } else { DriveModel::WdWd200bbIde };
        let mut disk = if tcq_on {
            model.build(SimRng::new(1))
        } else {
            model.build_no_tcq(SimRng::new(1))
        };
        let mut ids = Vec::new();
        for (i, &(lba, sectors, is_write)) in reqs.iter().enumerate() {
            let req = if is_write {
                DiskRequest::write(lba, sectors, i as u64)
            } else {
                DiskRequest::read(lba, sectors, i as u64)
            };
            ids.push(disk.submit(SimTime::from_nanos(i as u64 * 10_000), req));
        }
        let done = drain(&mut disk);
        prop_assert_eq!(done.len(), reqs.len());
        let mut seen: Vec<u64> = done.iter().map(|c| c.request.tag).collect();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..reqs.len() as u64).collect();
        prop_assert_eq!(seen, expected);
        prop_assert_eq!(disk.outstanding(), 0);
    }

    /// Completions never precede submissions, and service takes at least
    /// the command overhead.
    #[test]
    fn causality_and_minimum_service(
        reqs in prop::collection::vec((0u64..30_000_000u64, 1u64..128), 1..40),
    ) {
        let mut disk = DriveModel::IbmDdysScsi.build(SimRng::new(2));
        for (i, &(lba, sectors)) in reqs.iter().enumerate() {
            disk.submit(
                SimTime::from_nanos(i as u64 * 50_000),
                DiskRequest::read(lba, sectors, i as u64),
            );
        }
        for c in drain(&mut disk) {
            prop_assert!(c.completed_at > c.submitted_at);
            let us = c.latency().as_secs_f64() * 1e6;
            prop_assert!(us >= 100.0, "suspiciously fast: {us} us");
        }
    }

    /// Writes are never cache hits, and a read right after an overlapping
    /// write is never a cache hit either (write-through invalidation).
    #[test]
    fn write_invalidation(lba in 0u64..30_000_000u64, sectors in 1u64..128) {
        let mut disk = DriveModel::IbmDdysScsi.build(SimRng::new(3));
        disk.submit(SimTime::ZERO, DiskRequest::read(lba, sectors, 0));
        let t1 = disk.next_completion().expect("busy");
        disk.advance(t1);
        disk.submit(t1, DiskRequest::write(lba, 1, 1));
        let t2 = disk.next_completion().expect("busy");
        let w = disk.advance(t2);
        prop_assert!(!w[0].cache_hit);
        disk.submit(t2, DiskRequest::read(lba, sectors, 2));
        let t3 = disk.next_completion().expect("busy");
        let r = disk.advance(t3);
        prop_assert!(!r[0].cache_hit, "stale data served after write");
    }

    /// ZCAV: a long sequential read in the outer half is never slower than
    /// the same-length read in the inner half (fresh drives, same seed).
    #[test]
    fn zcav_monotonicity(mb in 1u64..8) {
        let sectors = mb * 2_048;
        let time_for = |start_lba: u64| {
            let mut disk = DriveModel::WdWd200bbIde.build(SimRng::new(4));
            let mut at = SimTime::ZERO;
            let mut lba = start_lba;
            let mut left = sectors;
            while left > 0 {
                let n = left.min(128);
                disk.submit(at, DiskRequest::read(lba, n, 0));
                at = disk.next_completion().expect("busy");
                disk.advance(at);
                lba += n;
                left -= n;
            }
            at.as_secs_f64()
        };
        let total = DriveModel::WdWd200bbIde.geometry().total_sectors();
        let outer = time_for(0);
        let inner = time_for(total - sectors - 1_000);
        prop_assert!(inner > outer, "inner {inner} should exceed outer {outer}");
    }

    /// The drive clock never runs backwards across completions.
    #[test]
    fn monotone_completions(
        reqs in prop::collection::vec(0u64..30_000_000u64, 2..60),
        tcq_on in prop::bool::ANY,
    ) {
        let model = DriveModel::IbmDdysScsi;
        let mut disk = if tcq_on {
            model.build(SimRng::new(5))
        } else {
            model.build_no_tcq(SimRng::new(5))
        };
        for (i, &lba) in reqs.iter().enumerate() {
            disk.submit(SimTime::ZERO, DiskRequest::read(lba, 16, i as u64));
        }
        let done = drain(&mut disk);
        for w in done.windows(2) {
            prop_assert!(w[1].completed_at >= w[0].completed_at);
        }
    }
}
