//! Degraded-disk recovery is scheduler-independent: under every I/O
//! scheduler, transient sector errors recover inside the bio layer's
//! bounded retries, hard errors surface exactly one `EIO` and are
//! remapped to spares, no completion is lost or duplicated, and a second
//! pass over the remapped range reads clean.

use diskfault::{ErrorCluster, FaultPlan, FaultState};
use diskmodel::{DiskErrorKind, DriveModel, PartitionTable};
use ffs::{FileSystem, FsConfig, IoStatus, OpDone, MAX_IO_RETRIES};
use iosched::SchedulerKind;
use simcore::{SimDuration, SimRng, SimTime};

const SCHEDULERS: [SchedulerKind; 5] = [
    SchedulerKind::Fcfs,
    SchedulerKind::Elevator,
    SchedulerKind::NCscan,
    SchedulerKind::Sstf,
    SchedulerKind::Scan,
];

const BLOCKS: u64 = 64;
const BS: u64 = 8_192;

fn make_fs(seed: u64, sched: SchedulerKind) -> FileSystem {
    let disk = DriveModel::WdWd200bbIde.build(SimRng::new(seed));
    let part = PartitionTable::quarters(disk.geometry()).get(1);
    FileSystem::format(disk, part, sched, FsConfig::default())
}

fn drain(fs: &mut FileSystem) -> Vec<OpDone> {
    let mut out = Vec::new();
    while let Some(t) = fs.next_event() {
        out.extend(fs.advance(t));
    }
    out
}

#[test]
fn every_scheduler_recovers_from_degraded_disk() {
    for sched in SCHEDULERS {
        let mut fs = make_fs(11, sched);
        let mut frng = SimRng::new(11);
        let ino = fs.create_file(BLOCKS * BS, &mut frng);
        let transient_lba = fs.inode(ino).expect("created").lba_of(5);
        let hard_lba = fs.inode(ino).expect("created").lba_of(40);
        let plan = FaultPlan {
            sector_errors: vec![
                ErrorCluster {
                    start: transient_lba,
                    sectors: 16,
                    kind: DiskErrorKind::TransientMedia,
                    recovery_reads: 2,
                    stall: SimDuration::from_millis(30),
                },
                ErrorCluster {
                    start: hard_lba,
                    sectors: 16,
                    kind: DiskErrorKind::HardMedia,
                    recovery_reads: 0,
                    stall: SimDuration::from_millis(40),
                },
            ],
            ..FaultPlan::default()
        };
        fs.bio_mut()
            .disk_mut()
            .set_fault_model(Some(Box::new(FaultState::new(plan))));

        for blk in 0..BLOCKS {
            fs.read(SimTime::ZERO, ino, blk * BS, BS, 1, blk);
        }
        let done = drain(&mut fs);
        assert_eq!(
            done.len() as u64,
            BLOCKS,
            "{sched:?}: every read completes exactly once"
        );
        let eios: Vec<u64> = done
            .iter()
            .filter(|d| d.status == IoStatus::Eio)
            .map(|d| d.tag)
            .collect();
        assert!(
            eios.contains(&40),
            "{sched:?}: the hard cluster under block 40 must surface EIO (got {eios:?})"
        );
        assert!(
            !eios.contains(&5),
            "{sched:?}: the transient cluster must recover below the fs"
        );

        let bio = fs.bio().stats();
        assert!(bio.recovered >= 1, "{sched:?}: {bio:?}");
        assert!(bio.retries >= 2, "{sched:?}: {bio:?}");
        assert!(
            bio.max_attempts <= MAX_IO_RETRIES,
            "{sched:?}: retry cap exceeded: {bio:?}"
        );
        assert_eq!(
            bio.error_completions,
            bio.retries + bio.eio,
            "{sched:?}: error books must balance: {bio:?}"
        );
        assert_eq!(
            bio.eio,
            bio.hard_errors + bio.transient_exhausted,
            "{sched:?}: {bio:?}"
        );
        assert_eq!(fs.bio().deferred_retries(), 0, "{sched:?}: retries parked");
        assert!(
            fs.bio().disk().stats().remapped_sectors >= 16,
            "{sched:?}: hard cluster must be remapped"
        );

        // Second pass: the remapped range now reads clean under the same
        // scheduler, and no further errors accrue.
        fs.flush_caches();
        let t1 = done.iter().map(|d| d.done_at).max().expect("non-empty");
        for blk in 0..BLOCKS {
            fs.read(t1, ino, blk * BS, BS, 1, BLOCKS + blk);
        }
        let done2 = drain(&mut fs);
        assert_eq!(done2.len() as u64, BLOCKS, "{sched:?}");
        assert!(
            done2.iter().all(|d| d.status.is_ok()),
            "{sched:?}: remapped disk must read clean on the second pass"
        );
        assert_eq!(
            fs.bio().stats().eio,
            bio.eio,
            "{sched:?}: no new EIOs after remap"
        );
    }
}
