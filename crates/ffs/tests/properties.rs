//! Property-based tests on the file system's invariants, driven by seeded
//! `SimRng` loops (offline-friendly; the case index reproduces the input
//! together with the fixed seed).

use diskmodel::{DriveModel, PartitionTable};
use ffs::{FileSystem, FsConfig, OpDone};
use iosched::SchedulerKind;
use simcore::{SimRng, SimTime};

const SCHEDULERS: [SchedulerKind; 5] = [
    SchedulerKind::Fcfs,
    SchedulerKind::Elevator,
    SchedulerKind::NCscan,
    SchedulerKind::Sstf,
    SchedulerKind::Scan,
];

fn make_fs(seed: u64, sched: SchedulerKind) -> FileSystem {
    let disk = DriveModel::WdWd200bbIde.build(SimRng::new(seed));
    let part = PartitionTable::quarters(disk.geometry()).get(1);
    FileSystem::format(disk, part, sched, FsConfig::default())
}

fn drain(fs: &mut FileSystem) -> Vec<OpDone> {
    let mut out = Vec::new();
    while let Some(t) = fs.next_event() {
        out.extend(fs.advance(t));
    }
    out
}

/// Every read completes exactly once, regardless of pattern, seqcount, or
/// scheduler.
#[test]
fn reads_complete_exactly_once() {
    let mut rng = SimRng::new(0x000F_F501);
    for case in 0..32 {
        let sched = *rng.choose(&SCHEDULERS).expect("non-empty");
        let mut fs = make_fs(7, sched);
        let mut frng = SimRng::new(7);
        let ino = fs.create_file(128 * 8_192, &mut frng);
        let n = rng.gen_range(1usize..80);
        for i in 0..n {
            let blk = rng.gen_range(0u64..128);
            let seq = rng.gen_range(0u32..=127);
            fs.read(SimTime::ZERO, ino, blk * 8_192, 8_192, seq, i as u64);
        }
        let done = drain(&mut fs);
        assert_eq!(done.len(), n, "case {case}: {sched:?}");
        let mut tags: Vec<u64> = done.iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        assert_eq!(tags, expected, "case {case}: {sched:?}");
    }
}

/// Reads and writes interleaved also conserve; writes always hit disk.
#[test]
fn mixed_ops_conserve() {
    let mut rng = SimRng::new(0x000F_F502);
    for case in 0..32 {
        let mut fs = make_fs(8, SchedulerKind::Elevator);
        let mut frng = SimRng::new(8);
        let ino = fs.create_file(64 * 8_192, &mut frng);
        let n = rng.gen_range(1usize..60);
        let mut writes = 0u64;
        for i in 0..n {
            let blk = rng.gen_range(0u64..64);
            if rng.chance(0.5) {
                fs.write(SimTime::ZERO, ino, blk * 8_192, 8_192, i as u64);
                writes += 1;
            } else {
                fs.read(SimTime::ZERO, ino, blk * 8_192, 8_192, 0, i as u64);
            }
        }
        let done = drain(&mut fs);
        assert_eq!(done.len(), n, "case {case}");
        assert_eq!(fs.stats().writes, writes, "case {case}");
    }
}

/// The cache accounting always balances: hits + misses equals the number of
/// blocks requested.
#[test]
fn cache_accounting_balances() {
    let mut rng = SimRng::new(0x000F_F503);
    for case in 0..32 {
        let mut fs = make_fs(9, SchedulerKind::Elevator);
        let mut frng = SimRng::new(9);
        let ino = fs.create_file(64 * 8_192, &mut frng);
        let n = rng.gen_range(1usize..80);
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let blk = rng.gen_range(0u64..64);
            fs.read(now, ino, blk * 8_192, 8_192, 0, i as u64);
            // Serialize so hits are well-defined.
            for d in drain(&mut fs) {
                now = now.max(d.done_at);
            }
        }
        let s = fs.stats();
        assert_eq!(s.cache_hit_blocks + s.miss_blocks, n as u64, "case {case}");
    }
}

/// A read issued after a completed identical read at the same time base
/// completes no later than the first did (cache monotonicity).
#[test]
fn rereads_are_never_slower() {
    let mut rng = SimRng::new(0x000F_F504);
    for case in 0..32 {
        let blk = rng.gen_range(0u64..64);
        let seq = rng.gen_range(0u32..=127);
        let mut fs = make_fs(10, SchedulerKind::Elevator);
        let mut frng = SimRng::new(10);
        let ino = fs.create_file(64 * 8_192, &mut frng);
        fs.read(SimTime::ZERO, ino, blk * 8_192, 8_192, seq, 0);
        let first = drain(&mut fs).pop().expect("completes");
        let d1 = first.done_at.since(first.issued_at);
        fs.read(first.done_at, ino, blk * 8_192, 8_192, seq, 1);
        let second = drain(&mut fs).pop().expect("completes");
        let d2 = second.done_at.since(second.issued_at);
        assert!(d2 <= d1, "case {case}: reread slower: {d2:?} vs {d1:?}");
    }
}
