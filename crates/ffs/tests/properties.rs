//! Property-based tests on the file system's invariants.

use diskmodel::{DriveModel, PartitionTable};
use ffs::{FileSystem, FsConfig, OpDone};
use iosched::SchedulerKind;
use proptest::prelude::*;
use simcore::{SimRng, SimTime};

fn make_fs(seed: u64, sched: SchedulerKind) -> FileSystem {
    let disk = DriveModel::WdWd200bbIde.build(SimRng::new(seed));
    let part = PartitionTable::quarters(disk.geometry()).get(1);
    FileSystem::format(disk, part, sched, FsConfig::default())
}

fn drain(fs: &mut FileSystem) -> Vec<OpDone> {
    let mut out = Vec::new();
    while let Some(t) = fs.next_event() {
        out.extend(fs.advance(t));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every read completes exactly once, regardless of pattern, seqcount,
    /// or scheduler.
    #[test]
    fn reads_complete_exactly_once(
        blocks in prop::collection::vec((0u64..128, 0u32..=127), 1..80),
        sched in prop::sample::select(vec![
            SchedulerKind::Fcfs,
            SchedulerKind::Elevator,
            SchedulerKind::NCscan,
            SchedulerKind::Sstf,
            SchedulerKind::Scan,
        ]),
    ) {
        let mut fs = make_fs(7, sched);
        let mut rng = SimRng::new(7);
        let ino = fs.create_file(128 * 8_192, &mut rng);
        for (i, &(blk, seq)) in blocks.iter().enumerate() {
            fs.read(SimTime::ZERO, ino, blk * 8_192, 8_192, seq, i as u64);
        }
        let done = drain(&mut fs);
        prop_assert_eq!(done.len(), blocks.len(), "{:?}", sched);
        let mut tags: Vec<u64> = done.iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        let expected: Vec<u64> = (0..blocks.len() as u64).collect();
        prop_assert_eq!(tags, expected);
    }

    /// Reads and writes interleaved also conserve; writes always hit disk.
    #[test]
    fn mixed_ops_conserve(ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..60)) {
        let mut fs = make_fs(8, SchedulerKind::Elevator);
        let mut rng = SimRng::new(8);
        let ino = fs.create_file(64 * 8_192, &mut rng);
        for (i, &(blk, is_write)) in ops.iter().enumerate() {
            if is_write {
                fs.write(SimTime::ZERO, ino, blk * 8_192, 8_192, i as u64);
            } else {
                fs.read(SimTime::ZERO, ino, blk * 8_192, 8_192, 0, i as u64);
            }
        }
        let done = drain(&mut fs);
        prop_assert_eq!(done.len(), ops.len());
        let writes = ops.iter().filter(|(_, w)| *w).count() as u64;
        prop_assert_eq!(fs.stats().writes, writes);
    }

    /// The cache accounting always balances: hits + misses equals the
    /// number of blocks requested.
    #[test]
    fn cache_accounting_balances(blocks in prop::collection::vec(0u64..64, 1..80)) {
        let mut fs = make_fs(9, SchedulerKind::Elevator);
        let mut rng = SimRng::new(9);
        let ino = fs.create_file(64 * 8_192, &mut rng);
        let mut now = SimTime::ZERO;
        for (i, &blk) in blocks.iter().enumerate() {
            fs.read(now, ino, blk * 8_192, 8_192, 0, i as u64);
            // Serialize so hits are well-defined.
            for d in drain(&mut fs) {
                now = now.max(d.done_at);
            }
        }
        let s = fs.stats();
        prop_assert_eq!(s.cache_hit_blocks + s.miss_blocks, blocks.len() as u64);
    }

    /// A read issued after a completed identical read at the same time
    /// base completes no later than the first did (cache monotonicity).
    #[test]
    fn rereads_are_never_slower(blk in 0u64..64, seq in 0u32..=127) {
        let mut fs = make_fs(10, SchedulerKind::Elevator);
        let mut rng = SimRng::new(10);
        let ino = fs.create_file(64 * 8_192, &mut rng);
        fs.read(SimTime::ZERO, ino, blk * 8_192, 8_192, seq, 0);
        let first = drain(&mut fs).pop().expect("completes");
        let d1 = first.done_at.since(first.issued_at);
        fs.read(first.done_at, ino, blk * 8_192, 8_192, seq, 1);
        let second = drain(&mut fs).pop().expect("completes");
        let d2 = second.done_at.since(second.issued_at);
        prop_assert!(d2 <= d1, "reread slower: {d2:?} vs {d1:?}");
    }
}
