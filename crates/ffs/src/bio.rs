//! The block-I/O layer: kernel scheduler in front of the drive.
//!
//! The kernel keeps its own request queue (ordered by the configured
//! [`IoScheduler`]) and feeds the drive as many commands as the drive will
//! accept: one at a time with tagged queueing off, up to the tag depth with
//! it on. This split is the crux of §5.2 — with tags on, scheduling
//! decisions migrate from the kernel's elevator into the drive's own
//! (fairer, and for this workload slower) SPTF policy, because the kernel
//! queue drains into the drive before the elevator has anything to sort.

use diskmodel::{Completion, Disk, DiskRequest, Lba, TcqConfig};
use iosched::{AnyScheduler, IoScheduler, QueuedRequest, SchedulerKind};
use simcore::SimTime;

/// Kernel-side block I/O layer wrapping a drive.
#[derive(Debug)]
pub struct BioLayer {
    disk: Disk,
    sched: AnyScheduler,
    /// Kernel's idea of the head position: end of the last dispatched
    /// request (the kernel cannot see the drive's true state).
    head: Lba,
    next_seq: u64,
    dispatched: u64,
}

impl BioLayer {
    /// Wraps `disk` with a kernel scheduler of the given kind.
    pub fn new(disk: Disk, kind: SchedulerKind) -> Self {
        BioLayer {
            disk,
            sched: kind.build(),
            head: 0,
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// Access to the underlying drive.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable access to the underlying drive (cache flushes, TCQ toggles).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Switches the kernel scheduling algorithm at runtime.
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.sched.switch(kind);
    }

    /// The active scheduling algorithm.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.sched.kind()
    }

    /// Reconfigures the drive's tagged command queue.
    pub fn set_tcq(&mut self, tcq: TcqConfig) {
        self.disk.set_tcq(tcq);
    }

    /// Requests queued in the kernel (not yet in the drive).
    pub fn queued(&self) -> usize {
        self.sched.len()
    }

    /// Total requests dispatched to the drive.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Queues a request and pushes work to the drive if it will take it.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) {
        let qr = QueuedRequest {
            req,
            queued_at: now,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.sched.enqueue(qr);
        self.kick(now);
    }

    /// Earliest instant at which the drive will have a completion.
    pub fn next_event(&self) -> Option<SimTime> {
        self.disk.next_completion()
    }

    /// Collects completions up to `now`, refilling the drive as commands
    /// retire.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut out = Vec::new();
        loop {
            let done = self.disk.advance(now);
            if done.is_empty() {
                break;
            }
            out.extend(done);
            self.kick(now);
        }
        // A final kick in case advance() freed queue slots without any new
        // completion (defensive; harmless when redundant).
        self.kick(now);
        out
    }

    fn kick(&mut self, now: SimTime) {
        while self.disk.can_accept() && !self.sched.is_empty() {
            let Some(qr) = self.sched.dispatch(self.head) else {
                break;
            };
            self.head = qr.req.end();
            self.disk.submit(now, qr.req);
            self.dispatched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::{CacheConfig, DiskGeometry, MechParams, SeekModel};
    use simcore::{SimDuration, SimRng};

    fn mkdisk(tcq: TcqConfig) -> Disk {
        let g = DiskGeometry::zoned(2_000, 2, 7_200.0, 300, 200, 4);
        let seek = SeekModel::from_datasheet(2_000, 0.001, 0.005, 0.012);
        let mech = MechParams {
            command_overhead: 0.0002,
            interface_rate: 100e6,
            track_switch: 0.0008,
            write_settle: 0.0005,
        };
        Disk::new(g, seek, mech, tcq, CacheConfig::disabled(), SimRng::new(5))
    }

    fn drain(bio: &mut BioLayer) -> Vec<u64> {
        let mut tags = Vec::new();
        while let Some(t) = bio.next_event() {
            for c in bio.advance(t) {
                tags.push(c.request.tag);
            }
        }
        tags
    }

    #[test]
    fn without_tags_kernel_elevator_orders() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        // Submit out of LBA order while the drive is busy with the first.
        bio.submit(SimTime::ZERO, DiskRequest::read(500_000, 16, 0));
        bio.submit(SimTime::ZERO, DiskRequest::read(900_000, 16, 1));
        bio.submit(SimTime::ZERO, DiskRequest::read(600_000, 16, 2));
        let tags = drain(&mut bio);
        // After tag 0 (dispatched immediately), the elevator sorts 2 < 1.
        assert_eq!(tags, vec![0, 2, 1]);
    }

    #[test]
    fn with_tags_queue_drains_into_drive() {
        let tcq = TcqConfig {
            enabled: true,
            depth: 64,
            aging_factor: 0.0,
        };
        let mut bio = BioLayer::new(mkdisk(tcq), SchedulerKind::Elevator);
        for i in 0..10u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 50_000, 16, i));
        }
        // All ten went straight to the drive; kernel queue is empty.
        assert_eq!(bio.queued(), 0);
        assert_eq!(bio.disk().outstanding(), 10);
        let tags = drain(&mut bio);
        assert_eq!(tags.len(), 10);
    }

    #[test]
    fn without_tags_one_outstanding() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        for i in 0..10u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 50_000, 16, i));
        }
        assert_eq!(bio.disk().outstanding(), 1);
        assert_eq!(bio.queued(), 9);
    }

    #[test]
    fn completions_trigger_refill() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Fcfs);
        for i in 0..5u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 10_000, 16, i));
        }
        let tags = drain(&mut bio);
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        assert_eq!(bio.dispatched(), 5);
    }

    #[test]
    fn scheduler_switch_mid_stream() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        for i in 0..6u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read((6 - i) * 100_000, 16, i));
        }
        bio.set_scheduler(SchedulerKind::NCscan);
        assert_eq!(bio.scheduler_kind(), SchedulerKind::NCscan);
        let tags = drain(&mut bio);
        assert_eq!(tags.len(), 6, "switch must not lose requests");
    }

    #[test]
    fn late_submission_is_serviced() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        bio.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t1 = bio.next_event().unwrap();
        assert_eq!(bio.advance(t1).len(), 1);
        assert!(bio.next_event().is_none());
        let later = t1 + SimDuration::from_millis(10);
        bio.submit(later, DiskRequest::read(16, 16, 1));
        let t2 = bio.next_event().unwrap();
        assert!(t2 > t1);
        assert_eq!(bio.advance(t2).len(), 1);
    }
}
