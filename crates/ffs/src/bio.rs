//! The block-I/O layer: kernel scheduler in front of the drive.
//!
//! The kernel keeps its own request queue (ordered by the configured
//! [`IoScheduler`]) and feeds the drive as many commands as the drive will
//! accept: one at a time with tagged queueing off, up to the tag depth with
//! it on. This split is the crux of §5.2 — with tags on, scheduling
//! decisions migrate from the kernel's elevator into the drive's own
//! (fairer, and for this workload slower) SPTF policy, because the kernel
//! queue drains into the drive before the elevator has anything to sort.
//!
//! ## Error handling
//!
//! A drive completion now carries a [`DiskOutcome`]. The bio layer owns
//! the kernel's recovery policy:
//!
//! * **Transient** media errors are retried with exponential backoff (1,
//!   4, 16 ms) up to [`MAX_IO_RETRIES`] times. Retries re-enter the
//!   scheduler via [`IoScheduler::requeue`], keeping the same tag so the
//!   file system's span routing never sees the intermediate failures.
//! * **Hard** errors are not retried (the drive already exhausted its own
//!   heroics): the failed range is remapped to spares so subsequent I/O
//!   succeeds, and the completion propagates with its error — the caller
//!   gets EIO for this request and clean reads thereafter.
//!
//! Only the *final* completion of each request (success or EIO) leaves
//! this layer; callers never see a request twice.

use diskmodel::{
    Completion, DeviceModel, Disk, DiskErrorKind, DiskOutcome, DiskRequest, Lba, TcqConfig,
};
use iosched::{AnyScheduler, IoScheduler, QueuedRequest, SchedulerKind};
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Most host-level retries of a transient media error before giving up
/// with EIO.
pub const MAX_IO_RETRIES: u32 = 3;

/// Backoff before retry `attempt` (1-based): 1 ms · 4^(attempt−1).
fn retry_backoff(attempt: u32) -> SimDuration {
    SimDuration::from_millis(1).saturating_mul(1u64 << (2 * (attempt - 1)))
}

/// Error-path counters of the block-I/O layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BioStats {
    /// Drive completions that carried an error.
    pub error_completions: u64,
    /// Host-level retries issued (each consumed one error completion).
    pub retries: u64,
    /// Requests that ultimately succeeded after at least one retry.
    pub recovered: u64,
    /// Hard (unrecoverable) errors seen.
    pub hard_errors: u64,
    /// Transient errors that exhausted [`MAX_IO_RETRIES`].
    pub transient_exhausted: u64,
    /// Requests that propagated EIO to the caller.
    pub eio: u64,
    /// Remap commands sent to the drive.
    pub remaps: u64,
    /// Highest retry count any single request reached.
    pub max_attempts: u32,
}

/// Kernel-side block I/O layer wrapping a storage device.
#[derive(Debug)]
pub struct BioLayer {
    device: Box<dyn DeviceModel>,
    sched: AnyScheduler,
    /// Kernel's idea of the head position: end of the last dispatched
    /// request (the kernel cannot see the drive's true state).
    head: Lba,
    next_seq: u64,
    dispatched: u64,
    /// Retry counts per in-error request tag (absent = no error yet).
    attempts: HashMap<u64, u32>,
    /// Retries waiting out their backoff: `(due, request)`.
    deferred: Vec<(SimTime, DiskRequest)>,
    stats: BioStats,
}

impl BioLayer {
    /// Wraps `disk` with a kernel scheduler of the given kind.
    pub fn new(disk: Disk, kind: SchedulerKind) -> Self {
        Self::with_device(Box::new(disk), kind)
    }

    /// Wraps any storage device with a kernel scheduler of the given kind.
    pub fn with_device(device: Box<dyn DeviceModel>, kind: SchedulerKind) -> Self {
        BioLayer {
            device,
            sched: kind.build(),
            head: 0,
            next_seq: 0,
            dispatched: 0,
            attempts: HashMap::new(),
            deferred: Vec::new(),
            stats: BioStats::default(),
        }
    }

    /// Access to the underlying device.
    pub fn device(&self) -> &dyn DeviceModel {
        self.device.as_ref()
    }

    /// Mutable access to the underlying device (cache flushes, fault
    /// models, TCQ toggles).
    pub fn device_mut(&mut self) -> &mut dyn DeviceModel {
        self.device.as_mut()
    }

    /// Access to the underlying spinning drive.
    ///
    /// # Panics
    ///
    /// Panics if the device behind this layer is not a [`Disk`] — HDD-only
    /// probes (geometry, TCQ state) should stay with HDD rigs; generic
    /// code uses [`BioLayer::device`].
    pub fn disk(&self) -> &Disk {
        self.device
            .as_any()
            .downcast_ref::<Disk>()
            .expect("device behind this bio layer is not a spinning disk")
    }

    /// Mutable access to the underlying spinning drive.
    ///
    /// # Panics
    ///
    /// Panics if the device behind this layer is not a [`Disk`].
    pub fn disk_mut(&mut self) -> &mut Disk {
        self.device
            .as_any_mut()
            .downcast_mut::<Disk>()
            .expect("device behind this bio layer is not a spinning disk")
    }

    /// Switches the kernel scheduling algorithm at runtime.
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.sched.switch(kind);
    }

    /// The active scheduling algorithm.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.sched.kind()
    }

    /// Reconfigures the drive's tagged command queue (no-op on devices
    /// without a host-visible TCQ knob).
    pub fn set_tcq(&mut self, tcq: TcqConfig) {
        self.device.set_tcq(tcq);
    }

    /// Requests queued in the kernel (not yet in the drive).
    pub fn queued(&self) -> usize {
        self.sched.len()
    }

    /// Total requests dispatched to the drive.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Queues a request and pushes work to the drive if it will take it.
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) {
        let qr = QueuedRequest {
            req,
            queued_at: now,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.sched.enqueue(qr);
        self.kick(now);
    }

    /// Error-path counters.
    pub fn stats(&self) -> BioStats {
        self.stats
    }

    /// Retries still waiting out their backoff (0 at quiescence).
    pub fn deferred_retries(&self) -> usize {
        self.deferred.len()
    }

    /// Earliest instant at which this layer has work: a drive completion
    /// or a deferred retry coming due.
    pub fn next_event(&self) -> Option<SimTime> {
        let retry = self.deferred.iter().map(|(due, _)| *due).min();
        match (self.device.next_completion(), retry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Collects final completions up to `now`, refilling the drive as
    /// commands retire. Transient errors are consumed here and retried;
    /// only terminal outcomes (success or EIO) are returned.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut out = Vec::new();
        loop {
            let released = self.release_due_retries(now);
            let done = self.device.advance(now);
            if done.is_empty() && !released {
                break;
            }
            for c in done {
                self.retire(c, &mut out);
            }
            self.kick(now);
        }
        // A final kick in case advance() freed queue slots without any new
        // completion (defensive; harmless when redundant).
        self.kick(now);
        out
    }

    /// Moves due retries from the backoff list back into the scheduler.
    fn release_due_retries(&mut self, now: SimTime) -> bool {
        let mut released = false;
        let mut i = 0;
        // The list is appended in completion order, so draining in place
        // preserves a deterministic requeue order.
        while i < self.deferred.len() {
            if self.deferred[i].0 <= now {
                let (due, req) = self.deferred.remove(i);
                let qr = QueuedRequest {
                    req,
                    queued_at: due,
                    seq: self.next_seq,
                };
                self.next_seq += 1;
                self.sched.requeue(qr);
                released = true;
            } else {
                i += 1;
            }
        }
        released
    }

    /// Applies the recovery policy to one drive completion.
    fn retire(&mut self, c: Completion, out: &mut Vec<Completion>) {
        match c.outcome {
            DiskOutcome::Ok => {
                if self.attempts.remove(&c.request.tag).is_some() {
                    self.stats.recovered += 1;
                }
                out.push(c);
            }
            DiskOutcome::Error(e) => {
                self.stats.error_completions += 1;
                let attempts = self.attempts.entry(c.request.tag).or_insert(0);
                match e.kind {
                    DiskErrorKind::TransientMedia if *attempts < MAX_IO_RETRIES => {
                        *attempts += 1;
                        let n = *attempts;
                        self.stats.max_attempts = self.stats.max_attempts.max(n);
                        self.stats.retries += 1;
                        self.deferred
                            .push((c.completed_at + retry_backoff(n), c.request));
                    }
                    DiskErrorKind::TransientMedia => {
                        self.stats.transient_exhausted += 1;
                        self.stats.eio += 1;
                        self.attempts.remove(&c.request.tag);
                        out.push(c);
                    }
                    DiskErrorKind::HardMedia => {
                        // Retrying is pointless; remap the range to spares
                        // so the next access succeeds, and let the EIO
                        // propagate for this one.
                        self.stats.hard_errors += 1;
                        self.stats.eio += 1;
                        self.stats.remaps += 1;
                        self.device.remap(c.request.lba, c.request.sectors);
                        self.attempts.remove(&c.request.tag);
                        out.push(c);
                    }
                }
            }
        }
    }

    fn kick(&mut self, now: SimTime) {
        while self.device.can_accept() && !self.sched.is_empty() {
            let Some(qr) = self.sched.dispatch(self.head) else {
                break;
            };
            self.head = qr.req.end();
            self.device.submit(now, qr.req);
            self.dispatched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::{CacheConfig, DiskGeometry, MechParams, SeekModel};
    use simcore::{SimDuration, SimRng};

    fn mkdisk(tcq: TcqConfig) -> Disk {
        let g = DiskGeometry::zoned(2_000, 2, 7_200.0, 300, 200, 4);
        let seek = SeekModel::from_datasheet(2_000, 0.001, 0.005, 0.012);
        let mech = MechParams {
            command_overhead: 0.0002,
            interface_rate: 100e6,
            track_switch: 0.0008,
            write_settle: 0.0005,
        };
        Disk::new(g, seek, mech, tcq, CacheConfig::disabled(), SimRng::new(5))
    }

    fn drain(bio: &mut BioLayer) -> Vec<u64> {
        let mut tags = Vec::new();
        while let Some(t) = bio.next_event() {
            for c in bio.advance(t) {
                tags.push(c.request.tag);
            }
        }
        tags
    }

    #[test]
    fn without_tags_kernel_elevator_orders() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        // Submit out of LBA order while the drive is busy with the first.
        bio.submit(SimTime::ZERO, DiskRequest::read(500_000, 16, 0));
        bio.submit(SimTime::ZERO, DiskRequest::read(900_000, 16, 1));
        bio.submit(SimTime::ZERO, DiskRequest::read(600_000, 16, 2));
        let tags = drain(&mut bio);
        // After tag 0 (dispatched immediately), the elevator sorts 2 < 1.
        assert_eq!(tags, vec![0, 2, 1]);
    }

    #[test]
    fn with_tags_queue_drains_into_drive() {
        let tcq = TcqConfig {
            enabled: true,
            depth: 64,
            aging_factor: 0.0,
        };
        let mut bio = BioLayer::new(mkdisk(tcq), SchedulerKind::Elevator);
        for i in 0..10u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 50_000, 16, i));
        }
        // All ten went straight to the drive; kernel queue is empty.
        assert_eq!(bio.queued(), 0);
        assert_eq!(bio.disk().outstanding(), 10);
        let tags = drain(&mut bio);
        assert_eq!(tags.len(), 10);
    }

    #[test]
    fn without_tags_one_outstanding() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        for i in 0..10u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 50_000, 16, i));
        }
        assert_eq!(bio.disk().outstanding(), 1);
        assert_eq!(bio.queued(), 9);
    }

    #[test]
    fn completions_trigger_refill() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Fcfs);
        for i in 0..5u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 10_000, 16, i));
        }
        let tags = drain(&mut bio);
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        assert_eq!(bio.dispatched(), 5);
    }

    #[test]
    fn scheduler_switch_mid_stream() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        for i in 0..6u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read((6 - i) * 100_000, 16, i));
        }
        bio.set_scheduler(SchedulerKind::NCscan);
        assert_eq!(bio.scheduler_kind(), SchedulerKind::NCscan);
        let tags = drain(&mut bio);
        assert_eq!(tags.len(), 6, "switch must not lose requests");
    }

    /// A canned per-command verdict list; `Ok` once the script runs out.
    #[derive(Debug)]
    struct ScriptedFault(std::collections::VecDeque<diskmodel::FaultDecision>);

    impl diskmodel::FaultModel for ScriptedFault {
        fn decide(&mut self, _now: SimTime, _req: &DiskRequest) -> diskmodel::FaultDecision {
            self.0.pop_front().unwrap_or(diskmodel::FaultDecision::Ok)
        }
    }

    fn scripted(verdicts: Vec<diskmodel::FaultDecision>) -> Box<ScriptedFault> {
        Box::new(ScriptedFault(verdicts.into_iter().collect()))
    }

    fn fail(kind: DiskErrorKind) -> diskmodel::FaultDecision {
        diskmodel::FaultDecision::Fail {
            kind,
            stall: SimDuration::from_millis(30),
        }
    }

    #[test]
    fn transient_error_recovers_after_retries() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        bio.disk_mut().set_fault_model(Some(scripted(vec![
            fail(DiskErrorKind::TransientMedia),
            fail(DiskErrorKind::TransientMedia),
        ])));
        bio.submit(SimTime::ZERO, DiskRequest::read(1_000, 16, 42));
        let mut done = Vec::new();
        while let Some(t) = bio.next_event() {
            done.extend(bio.advance(t));
        }
        assert_eq!(done.len(), 1, "exactly one final completion");
        assert!(done[0].is_ok());
        assert_eq!(done[0].request.tag, 42);
        let s = bio.stats();
        assert_eq!(s.error_completions, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.eio, 0);
        assert_eq!(s.max_attempts, 2);
        assert_eq!(bio.deferred_retries(), 0);
    }

    #[test]
    fn transient_exhaustion_propagates_eio() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        bio.disk_mut().set_fault_model(Some(scripted(vec![
            fail(DiskErrorKind::TransientMedia);
            (MAX_IO_RETRIES + 1) as usize
        ])));
        bio.submit(SimTime::ZERO, DiskRequest::read(1_000, 16, 7));
        let mut done = Vec::new();
        while let Some(t) = bio.next_event() {
            done.extend(bio.advance(t));
        }
        assert_eq!(done.len(), 1);
        assert!(!done[0].is_ok());
        let s = bio.stats();
        assert_eq!(s.retries, u64::from(MAX_IO_RETRIES));
        assert_eq!(s.transient_exhausted, 1);
        assert_eq!(s.eio, 1);
        assert_eq!(s.error_completions, s.retries + s.eio);
    }

    #[test]
    fn hard_error_remaps_and_propagates_once() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        bio.disk_mut()
            .set_fault_model(Some(scripted(vec![fail(DiskErrorKind::HardMedia)])));
        bio.submit(SimTime::ZERO, DiskRequest::read(1_000, 16, 1));
        let mut done = Vec::new();
        while let Some(t) = bio.next_event() {
            done.extend(bio.advance(t));
        }
        assert_eq!(done.len(), 1);
        assert!(!done[0].is_ok(), "hard errors are not retried");
        let s = bio.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(s.hard_errors, 1);
        assert_eq!(s.remaps, 1);
        assert_eq!(bio.disk().stats().remapped_sectors, 16);
        // The remapped range reads cleanly now.
        let t = done[0].completed_at;
        bio.submit(t, DiskRequest::read(1_000, 16, 2));
        let mut after = Vec::new();
        while let Some(t) = bio.next_event() {
            after.extend(bio.advance(t));
        }
        assert_eq!(after.len(), 1);
        assert!(after[0].is_ok());
    }

    #[test]
    fn retries_interleave_without_losing_healthy_completions() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        // The first two commands serviced each fail once; everything else
        // is healthy.
        bio.disk_mut().set_fault_model(Some(scripted(vec![
            fail(DiskErrorKind::TransientMedia),
            fail(DiskErrorKind::TransientMedia),
        ])));
        for i in 0..6u64 {
            bio.submit(SimTime::ZERO, DiskRequest::read(i * 10_000, 16, i));
        }
        let tags = drain(&mut bio);
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5], "no lost or duplicated tags");
        assert_eq!(bio.stats().recovered, 2);
    }

    #[test]
    fn late_submission_is_serviced() {
        let mut bio = BioLayer::new(mkdisk(TcqConfig::disabled()), SchedulerKind::Elevator);
        bio.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let t1 = bio.next_event().unwrap();
        assert_eq!(bio.advance(t1).len(), 1);
        assert!(bio.next_event().is_none());
        let later = t1 + SimDuration::from_millis(10);
        bio.submit(later, DiskRequest::read(16, 16, 1));
        let t2 = bio.next_event().unwrap();
        assert!(t2 > t1);
        assert_eq!(bio.advance(t2).len(), 1);
    }
}
