//! Block allocation and file layout.
//!
//! A deliberately FFS-flavoured allocator: the partition is divided into
//! cylinder groups, files are laid out as long contiguous runs within a
//! group, and an optional *aging* knob fragments the layout the way months
//! of create/delete traffic would (cf. Smith & Seltzer's file-system aging
//! work, which the paper cites when explaining why it benchmarks fresh file
//! systems). A fresh file system is the worst case for the paper's
//! read-ahead improvements, so aging only ever strengthens its results.

use diskmodel::{Lba, Partition};
use simcore::SimRng;

/// File-system block size in sectors (8 KB blocks of 512-byte sectors).
pub const BLOCK_SECTORS: u64 = 16;

/// File-system block size in bytes.
pub const BLOCK_BYTES: u64 = BLOCK_SECTORS * diskmodel::SECTOR_BYTES;

/// An inode: a file's identity, size, and block map.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number (also used as the NFS file-handle payload).
    pub ino: u64,
    /// File length in bytes.
    pub size: u64,
    /// Absolute disk LBA of each 8 KB file block, in file order.
    pub blocks: Vec<Lba>,
}

impl Inode {
    /// Number of blocks in the file.
    pub fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The disk address of file block `fblk`.
    ///
    /// # Panics
    ///
    /// Panics if `fblk` is beyond the end of the file.
    pub fn lba_of(&self, fblk: u64) -> Lba {
        self.blocks[usize::try_from(fblk).expect("block index fits usize")]
    }

    /// Whether file blocks `a` and `a + 1` are physically adjacent.
    pub fn contiguous(&self, a: u64) -> bool {
        let a = a as usize;
        a + 1 < self.blocks.len() && self.blocks[a + 1] == self.blocks[a] + BLOCK_SECTORS
    }
}

/// Allocator configuration.
#[derive(Debug, Clone, Copy)]
pub struct AllocConfig {
    /// Cylinder-group size in bytes (FFS defaults are tens of MB).
    pub cg_bytes: u64,
    /// Fraction of cluster-sized runs that get displaced, 0.0 = fresh.
    pub aging: f64,
    /// Gap (in blocks) inserted when a run is displaced.
    pub aging_gap_blocks: u64,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            cg_bytes: 32 * 1024 * 1024,
            aging: 0.0,
            aging_gap_blocks: 64,
        }
    }
}

/// A bump allocator with cylinder-group awareness and optional aging.
#[derive(Debug)]
pub struct Allocator {
    partition: Partition,
    config: AllocConfig,
    /// Next free sector, relative to the partition.
    cursor: u64,
    next_ino: u64,
}

impl Allocator {
    /// Creates an allocator over a partition.
    pub fn new(partition: Partition, config: AllocConfig) -> Self {
        Allocator {
            partition,
            config,
            cursor: 0,
            next_ino: 2, // Inode 0 is invalid, 1 is the root, files start at 2.
        }
    }

    /// Bytes still allocatable.
    pub fn free_bytes(&self) -> u64 {
        (self.partition.sectors - self.cursor) * diskmodel::SECTOR_BYTES
    }

    /// The absolute LBA span holding everything allocated so far:
    /// `(first_sector, sectors)`. Fault plans target this span so injected
    /// defects land under live data rather than in free space.
    pub fn allocated_span(&self) -> (Lba, u64) {
        (self.partition.start, self.cursor)
    }

    /// Allocates a file of `size` bytes, returning its inode.
    ///
    /// `rng` drives aging decisions only; a fresh file system (aging 0)
    /// never consults it.
    ///
    /// # Panics
    ///
    /// Panics if the partition has insufficient space.
    pub fn create_file(&mut self, size: u64, rng: &mut SimRng) -> Inode {
        let nblocks = size.div_ceil(BLOCK_BYTES);
        let mut blocks = Vec::with_capacity(usize::try_from(nblocks).expect("fits"));
        // Allocate in cluster-sized runs of 8 blocks so aging displaces
        // realistic units.
        let run = 8u64;
        let mut remaining = nblocks;
        while remaining > 0 {
            let take = remaining.min(run);
            if self.config.aging > 0.0 && rng.chance(self.config.aging) {
                // Displace this run: leave a gap as if intervening files
                // occupied the space.
                self.cursor += self.config.aging_gap_blocks * BLOCK_SECTORS;
            }
            for _ in 0..take {
                let abs = self.partition.abs(self.cursor, BLOCK_SECTORS);
                blocks.push(abs);
                self.cursor += BLOCK_SECTORS;
            }
            remaining -= take;
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        Inode { ino, size, blocks }
    }

    /// Extends an inode to cover at least `new_size` bytes, allocating the
    /// additional blocks at the current frontier (an extending write).
    ///
    /// The new run continues the file contiguously only when nothing else
    /// was allocated since its tail — growing a file after later
    /// allocations leaves a discontinuity, exactly as on a real FFS. A
    /// `new_size` the file already covers allocates nothing (a shrink is
    /// not modelled). `rng` drives aging decisions only; a fresh file
    /// system never consults it.
    ///
    /// # Panics
    ///
    /// Panics if the partition has insufficient space.
    pub fn extend_file(&mut self, inode: &mut Inode, new_size: u64, rng: &mut SimRng) {
        let nblocks = new_size.div_ceil(BLOCK_BYTES);
        let run = 8u64;
        let mut remaining = nblocks.saturating_sub(inode.num_blocks());
        while remaining > 0 {
            let take = remaining.min(run);
            if self.config.aging > 0.0 && rng.chance(self.config.aging) {
                self.cursor += self.config.aging_gap_blocks * BLOCK_SECTORS;
            }
            for _ in 0..take {
                let abs = self.partition.abs(self.cursor, BLOCK_SECTORS);
                inode.blocks.push(abs);
                self.cursor += BLOCK_SECTORS;
            }
            remaining -= take;
        }
        inode.size = inode.size.max(new_size);
    }

    /// Cylinder-group index of a partition-relative byte offset
    /// (diagnostics; layout policy keeps whole files inside few groups).
    pub fn cg_of(&self, rel_bytes: u64) -> u64 {
        rel_bytes / self.config.cg_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> Partition {
        Partition {
            start: 1_000_000,
            sectors: 4_000_000, // ~2 GB
        }
    }

    #[test]
    fn fresh_files_are_contiguous() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let mut rng = SimRng::new(1);
        let f = a.create_file(1024 * 1024, &mut rng); // 128 blocks
        assert_eq!(f.num_blocks(), 128);
        for i in 0..127 {
            assert!(f.contiguous(i), "block {i} not contiguous");
        }
        assert_eq!(f.lba_of(0), 1_000_000);
    }

    #[test]
    fn files_do_not_overlap() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let mut rng = SimRng::new(1);
        let f1 = a.create_file(64 * 1024, &mut rng);
        let f2 = a.create_file(64 * 1024, &mut rng);
        let f1_end = f1.lba_of(f1.num_blocks() - 1) + BLOCK_SECTORS;
        assert!(f2.lba_of(0) >= f1_end);
        assert_ne!(f1.ino, f2.ino);
    }

    #[test]
    fn size_rounds_up_to_blocks() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let mut rng = SimRng::new(1);
        let f = a.create_file(BLOCK_BYTES + 1, &mut rng);
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.size, BLOCK_BYTES + 1);
    }

    #[test]
    fn aging_fragments_layout() {
        let cfg = AllocConfig {
            aging: 0.5,
            ..AllocConfig::default()
        };
        let mut a = Allocator::new(part(), cfg);
        let mut rng = SimRng::new(42);
        let f = a.create_file(4 * 1024 * 1024, &mut rng); // 512 blocks
        let discontinuities = (0..f.num_blocks() - 1)
            .filter(|&i| !f.contiguous(i))
            .count();
        assert!(
            discontinuities >= 10,
            "aging 0.5 should fragment: {discontinuities} breaks"
        );
    }

    #[test]
    fn extend_of_last_file_is_contiguous() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let mut rng = SimRng::new(1);
        let mut f = a.create_file(64 * 1024, &mut rng); // 8 blocks
        a.extend_file(&mut f, 128 * 1024, &mut rng); // +8 blocks
        assert_eq!(f.num_blocks(), 16);
        assert_eq!(f.size, 128 * 1024);
        for i in 0..15 {
            assert!(f.contiguous(i), "block {i} not contiguous after extend");
        }
    }

    #[test]
    fn extend_after_other_allocation_fragments() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let mut rng = SimRng::new(1);
        let mut f1 = a.create_file(64 * 1024, &mut rng);
        let f2 = a.create_file(64 * 1024, &mut rng);
        a.extend_file(&mut f1, 128 * 1024, &mut rng);
        // The extension skipped over f2's blocks: a discontinuity at the
        // old tail, and no overlap with f2.
        assert!(!f1.contiguous(7), "old tail should not touch the extension");
        let f2_lbas: Vec<Lba> = (0..f2.num_blocks()).map(|b| f2.lba_of(b)).collect();
        for b in 0..f1.num_blocks() {
            assert!(!f2_lbas.contains(&f1.lba_of(b)), "extension overlaps f2");
        }
    }

    #[test]
    fn extend_within_current_blocks_allocates_nothing() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let mut rng = SimRng::new(1);
        let mut f = a.create_file(BLOCK_BYTES + 1, &mut rng); // 2 blocks
        let free_before = a.free_bytes();
        a.extend_file(&mut f, 2 * BLOCK_BYTES, &mut rng);
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.size, 2 * BLOCK_BYTES, "size still grows");
        assert_eq!(a.free_bytes(), free_before, "no new blocks");
        // A shrink is a no-op.
        a.extend_file(&mut f, 1, &mut rng);
        assert_eq!(f.size, 2 * BLOCK_BYTES);
    }

    #[test]
    fn fresh_extend_ignores_rng() {
        let mut a1 = Allocator::new(part(), AllocConfig::default());
        let mut a2 = Allocator::new(part(), AllocConfig::default());
        let mut f1 = a1.create_file(64 * 1024, &mut SimRng::new(1));
        let mut f2 = a2.create_file(64 * 1024, &mut SimRng::new(999));
        a1.extend_file(&mut f1, 256 * 1024, &mut SimRng::new(2));
        a2.extend_file(&mut f2, 256 * 1024, &mut SimRng::new(777));
        assert_eq!(f1.blocks, f2.blocks);
    }

    #[test]
    fn fresh_allocation_ignores_rng() {
        let mut a1 = Allocator::new(part(), AllocConfig::default());
        let mut a2 = Allocator::new(part(), AllocConfig::default());
        let f1 = a1.create_file(1024 * 1024, &mut SimRng::new(1));
        let f2 = a2.create_file(1024 * 1024, &mut SimRng::new(999));
        assert_eq!(f1.blocks, f2.blocks);
    }

    #[test]
    fn free_bytes_decreases() {
        let mut a = Allocator::new(part(), AllocConfig::default());
        let before = a.free_bytes();
        a.create_file(1024 * 1024, &mut SimRng::new(1));
        assert_eq!(before - a.free_bytes(), 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "beyond partition")]
    fn overflow_panics() {
        let small = Partition {
            start: 0,
            sectors: 32,
        };
        let mut a = Allocator::new(small, AllocConfig::default());
        a.create_file(1024 * 1024, &mut SimRng::new(1));
    }

    #[test]
    fn cg_index() {
        let a = Allocator::new(part(), AllocConfig::default());
        assert_eq!(a.cg_of(0), 0);
        assert_eq!(a.cg_of(32 * 1024 * 1024), 1);
    }
}
