//! The kernel buffer cache.
//!
//! An LRU cache of (inode, file-block) entries with a *pending* state:
//! a block whose disk read is in flight is pinned in the cache so
//! concurrent readers of the same block share one I/O instead of
//! duplicating it. Capacity is counted in blocks, sized from the machine's
//! RAM (the paper's server has 256 MB, which is why its 1.5 GB benchmark
//! working set defeats caching, §4.3.1).

use std::collections::HashMap;

/// Cache key: inode number and file-block index.
pub type BlockKey = (u64, u64);

/// State of a cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Contents valid.
    Valid,
    /// Disk read in flight; pinned (not evictable).
    Pending,
}

#[derive(Debug)]
struct Entry {
    state: State,
    stamp: u64,
}

/// LRU buffer cache with pending-block pinning.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<BlockKey, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates a cache holding up to `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        BufferCache {
            capacity,
            map: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of resident blocks (valid + pending).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss counters (lookups only).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Approximate heap bytes behind this cache (hash-map backing store,
    /// estimated from its capacity). Used for fleet-scale memory
    /// accounting; excludes `size_of::<BufferCache>()` itself.
    pub fn approx_heap_bytes(&self) -> usize {
        self.map.capacity()
            * (std::mem::size_of::<BlockKey>()
                + std::mem::size_of::<Entry>()
                + std::mem::size_of::<u64>())
    }

    /// Looks up a block for a read, bumping LRU on hit.
    /// Returns `true` if the block is valid in cache.
    pub fn lookup(&mut self, key: BlockKey) -> bool {
        self.clock += 1;
        match self.map.get_mut(&key) {
            Some(e) if e.state == State::Valid => {
                e.stamp = self.clock;
                self.hits += 1;
                true
            }
            _ => {
                self.misses += 1;
                false
            }
        }
    }

    /// Whether a read for this block is already in flight.
    pub fn is_pending(&self, key: BlockKey) -> bool {
        matches!(self.map.get(&key), Some(e) if e.state == State::Pending)
    }

    /// Whether the block is valid, without touching LRU or counters.
    pub fn peek(&self, key: BlockKey) -> bool {
        matches!(self.map.get(&key), Some(e) if e.state == State::Valid)
    }

    /// Marks a block as having a read in flight (pins it).
    pub fn mark_pending(&mut self, key: BlockKey) {
        self.clock += 1;
        self.evict_if_needed();
        self.map.insert(
            key,
            Entry {
                state: State::Pending,
                stamp: self.clock,
            },
        );
    }

    /// Completes a pending read: the block becomes valid.
    /// Inserting a block that was never pending is also allowed (e.g.
    /// read-ahead data arriving for a block nobody asked about yet).
    pub fn fill(&mut self, key: BlockKey) {
        self.clock += 1;
        if !self.map.contains_key(&key) {
            self.evict_if_needed();
        }
        self.map.insert(
            key,
            Entry {
                state: State::Valid,
                stamp: self.clock,
            },
        );
    }

    /// Invalidates one block (e.g. overwritten by a write that bypasses the
    /// cache in our model). Pending blocks stay pending.
    pub fn invalidate(&mut self, key: BlockKey) {
        if let Some(e) = self.map.get(&key) {
            if e.state == State::Valid {
                self.map.remove(&key);
            }
        }
    }

    /// Removes a block regardless of state, releasing a pending mark whose
    /// fill will never come (the fetching RPC timed out). The block can be
    /// requested afresh afterwards.
    pub fn discard(&mut self, key: BlockKey) {
        self.map.remove(&key);
    }

    /// Empties the cache of valid blocks (benchmark flush discipline);
    /// pending blocks survive because their I/O is still in flight.
    pub fn flush(&mut self) {
        self.map.retain(|_, e| e.state == State::Pending);
    }

    fn evict_if_needed(&mut self) {
        while self.map.len() >= self.capacity {
            // Evict the least recently used *valid* entry.
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| e.state == State::Valid)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                }
                // Everything is pending; allow temporary overflow rather
                // than dropping in-flight state.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = BufferCache::new(8);
        assert!(!c.lookup((1, 0)));
        c.fill((1, 0));
        assert!(c.lookup((1, 0)));
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn pending_blocks_are_not_valid_yet() {
        let mut c = BufferCache::new(8);
        c.mark_pending((1, 0));
        assert!(!c.lookup((1, 0)));
        assert!(c.is_pending((1, 0)));
        c.fill((1, 0));
        assert!(c.lookup((1, 0)));
        assert!(!c.is_pending((1, 0)));
    }

    #[test]
    fn lru_evicts_oldest_valid() {
        let mut c = BufferCache::new(2);
        c.fill((1, 0));
        c.fill((1, 1));
        assert!(c.lookup((1, 0))); // Bump block 0.
        c.fill((1, 2)); // Evicts block 1.
        assert!(c.peek((1, 0)));
        assert!(!c.peek((1, 1)));
        assert!(c.peek((1, 2)));
    }

    #[test]
    fn pending_blocks_are_pinned() {
        let mut c = BufferCache::new(2);
        c.mark_pending((1, 0));
        c.mark_pending((1, 1));
        // Cache is full of pending blocks; a new fill overflows rather than
        // dropping in-flight state.
        c.fill((1, 2));
        assert!(c.is_pending((1, 0)));
        assert!(c.is_pending((1, 1)));
        assert!(c.peek((1, 2)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn flush_keeps_pending() {
        let mut c = BufferCache::new(8);
        c.fill((1, 0));
        c.mark_pending((1, 1));
        c.flush();
        assert!(!c.peek((1, 0)));
        assert!(c.is_pending((1, 1)));
    }

    #[test]
    fn invalidate_removes_valid_only() {
        let mut c = BufferCache::new(8);
        c.fill((1, 0));
        c.mark_pending((1, 1));
        c.invalidate((1, 0));
        c.invalidate((1, 1));
        assert!(!c.peek((1, 0)));
        assert!(c.is_pending((1, 1)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = BufferCache::new(0);
    }

    #[test]
    fn distinct_inodes_do_not_collide() {
        let mut c = BufferCache::new(8);
        c.fill((1, 5));
        assert!(!c.lookup((2, 5)));
        assert!(c.lookup((1, 5)));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = BufferCache::new(100);
        // Cyclically touch 150 blocks twice: second pass still misses.
        for pass in 0..2 {
            for b in 0..150u64 {
                if !c.lookup((1, b)) {
                    c.fill((1, b));
                }
            }
            let _ = pass;
        }
        let (hits, misses) = c.hit_miss();
        assert_eq!(hits, 0, "LRU cycling gives zero hits");
        assert_eq!(misses, 300);
    }
}
