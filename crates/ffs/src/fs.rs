//! The file system proper: inodes + buffer cache + cluster read-ahead.
//!
//! The read path mirrors FreeBSD's: a read of file block *b* that misses
//! the buffer cache triggers a *cluster read* — one disk request covering
//! `b` and up to seven physically contiguous following blocks — and, when
//! the caller's sequentiality count (`seqcount`) is high enough,
//! asynchronous read-ahead of further clusters. How much read-ahead is
//! performed scales with `seqcount`, which is exactly the knob the NFS
//! server's `nfsheur` heuristics drive (§6 of the paper): the FreeBSD NFS
//! server passes its per-file-handle sequentiality estimate into `VOP_READ`
//! because stateless NFS has no open file descriptor to carry one.
//!
//! All operations are asynchronous: [`FileSystem::read`] returns a
//! [`ReadId`]; completions surface from [`FileSystem::advance`].

use std::collections::HashMap;

use diskmodel::{DeviceModel, Disk, DiskRequest, TcqConfig};
use iosched::SchedulerKind;
use simcore::{SimRng, SimTime};

use crate::alloc::{AllocConfig, Allocator, Inode, BLOCK_BYTES, BLOCK_SECTORS};
use crate::bcache::{BlockKey, BufferCache};
use crate::bio::BioLayer;

/// The ceiling the OS imposes on sequentiality counts (the paper: "seqCount
/// is never allowed to grow higher than 127, due to the implementation of
/// the lower levels of the operating system").
pub const SEQCOUNT_MAX: u32 = 127;

/// File-system tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct FsConfig {
    /// Blocks per cluster read (FreeBSD: 64 KB / 8 KB = 8).
    pub cluster_blocks: u64,
    /// Ceiling on the read-ahead window, in blocks.
    pub max_readahead_blocks: u64,
    /// Buffer-cache capacity in blocks (sized from machine RAM).
    pub cache_blocks: usize,
    /// Minimum `seqcount` at which read-ahead kicks in.
    pub readahead_threshold: u32,
    /// Allocation policy.
    pub alloc: AllocConfig,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            cluster_blocks: 8,
            max_readahead_blocks: 32,
            cache_blocks: 20_000, // ~160 MB of a 256 MB server
            readahead_threshold: 2,
            alloc: AllocConfig::default(),
        }
    }
}

/// Identifies an outstanding read or write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReadId(pub u64);

/// How an operation's disk I/O ended. The bio layer has already retried
/// transient errors and remapped hard ones; by the time a status reaches
/// here it is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStatus {
    /// Every needed block arrived.
    Ok,
    /// At least one underlying disk request failed unrecoverably.
    Eio,
}

impl IoStatus {
    /// Whether the operation succeeded.
    pub fn is_ok(self) -> bool {
        self == IoStatus::Ok
    }
}

/// A finished operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDone {
    /// The id returned by `read`/`write`.
    pub id: ReadId,
    /// Caller-provided routing tag.
    pub tag: u64,
    /// When the operation was issued.
    pub issued_at: SimTime,
    /// When the last needed block arrived (or the last failure landed).
    pub done_at: SimTime,
    /// Terminal success/EIO status.
    pub status: IoStatus,
}

/// Running counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStats {
    /// Synchronous (demand) disk reads issued.
    pub sync_reads: u64,
    /// Asynchronous read-ahead disk reads issued.
    pub readahead_reads: u64,
    /// Blocks delivered from the buffer cache without disk I/O.
    pub cache_hit_blocks: u64,
    /// Blocks that required disk I/O.
    pub miss_blocks: u64,
    /// Writes issued.
    pub writes: u64,
    /// Operations that completed with [`IoStatus::Eio`].
    pub io_errors: u64,
}

#[derive(Debug, Clone, Copy)]
struct IoSpan {
    ino: u64,
    first_blk: u64,
    nblocks: u64,
}

#[derive(Debug)]
struct Ticket {
    tag: u64,
    issued_at: SimTime,
    outstanding: usize,
    /// Set when any block of the operation came back EIO.
    failed: bool,
}

/// An FFS-like file system on one partition of one drive.
#[derive(Debug)]
pub struct FileSystem {
    config: FsConfig,
    bio: BioLayer,
    alloc: Allocator,
    inodes: HashMap<u64, Inode>,
    cache: BufferCache,
    io_spans: HashMap<u64, IoSpan>,
    next_io_tag: u64,
    waiters: HashMap<BlockKey, Vec<ReadId>>,
    tickets: HashMap<ReadId, Ticket>,
    ready: Vec<OpDone>,
    next_read_id: u64,
    stats: FsStats,
}

impl FileSystem {
    /// Formats a file system on `partition` of `disk`.
    pub fn format(
        disk: Disk,
        partition: diskmodel::Partition,
        sched: SchedulerKind,
        config: FsConfig,
    ) -> Self {
        Self::format_on(Box::new(disk), partition, sched, config)
    }

    /// Formats a file system on `partition` of any storage device.
    pub fn format_on(
        device: Box<dyn DeviceModel>,
        partition: diskmodel::Partition,
        sched: SchedulerKind,
        config: FsConfig,
    ) -> Self {
        FileSystem {
            bio: BioLayer::with_device(device, sched),
            alloc: Allocator::new(partition, config.alloc),
            inodes: HashMap::new(),
            cache: BufferCache::new(config.cache_blocks),
            io_spans: HashMap::new(),
            next_io_tag: 0,
            waiters: HashMap::new(),
            tickets: HashMap::new(),
            ready: Vec::new(),
            next_read_id: 0,
            config,
            stats: FsStats::default(),
        }
    }

    /// Creates a file of `size` bytes and returns its inode number.
    pub fn create_file(&mut self, size: u64, rng: &mut SimRng) -> u64 {
        let inode = self.alloc.create_file(size, rng);
        let ino = inode.ino;
        self.inodes.insert(ino, inode);
        ino
    }

    /// Extends `ino` to cover at least `new_size` bytes (an extending
    /// write): new blocks come from the allocation frontier, so a file
    /// grown after later allocations becomes fragmented, as on a real FFS.
    /// Growing to a size the file already covers is a no-op. `rng` drives
    /// aging decisions only; a fresh file system never consults it.
    ///
    /// # Panics
    ///
    /// Panics if the inode does not exist.
    pub fn extend_file(&mut self, ino: u64, new_size: u64, rng: &mut SimRng) {
        let inode = self.inodes.get_mut(&ino).expect("extend of unknown inode");
        self.alloc.extend_file(inode, new_size, rng);
    }

    /// Looks up an inode.
    pub fn inode(&self, ino: u64) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    /// Counters.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// The absolute LBA span holding this file system's allocated data
    /// (see [`Allocator::allocated_span`]).
    pub fn allocated_span(&self) -> (diskmodel::Lba, u64) {
        self.alloc.allocated_span()
    }

    /// The block-I/O layer (scheduler and drive access).
    pub fn bio(&self) -> &BioLayer {
        &self.bio
    }

    /// Mutable access to the block-I/O layer.
    pub fn bio_mut(&mut self) -> &mut BioLayer {
        &mut self.bio
    }

    /// Switches the kernel disk scheduler at runtime.
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.bio.set_scheduler(kind);
    }

    /// The current tuning parameters.
    pub fn config(&self) -> FsConfig {
        self.config
    }

    /// Adjusts the read-ahead window ceiling at runtime (the `autotune`
    /// controller's server-side knob). In-flight read-ahead is unaffected;
    /// the new ceiling applies from the next read.
    pub fn set_max_readahead_blocks(&mut self, blocks: u64) {
        self.config.max_readahead_blocks = blocks;
    }

    /// Reconfigures the drive's tagged command queue.
    pub fn set_tcq(&mut self, tcq: TcqConfig) {
        self.bio.set_tcq(tcq);
    }

    /// Drops all cached data, in the kernel and in the drive (§4.3.1's
    /// cache-defeating discipline between benchmark runs).
    pub fn flush_caches(&mut self) {
        self.cache.flush();
        self.bio.device_mut().flush_cache();
    }

    /// Starts a read of `bytes` at byte `offset` of `ino`.
    ///
    /// `seqcount` is the caller's sequentiality estimate (0..=127), which
    /// controls how much read-ahead is performed. `tag` is returned in the
    /// completion for routing.
    ///
    /// # Panics
    ///
    /// Panics if the inode does not exist or the range is beyond EOF.
    pub fn read(
        &mut self,
        now: SimTime,
        ino: u64,
        offset: u64,
        bytes: u64,
        seqcount: u32,
        tag: u64,
    ) -> ReadId {
        assert!(bytes > 0, "zero-length read");
        let inode = self
            .inodes
            .get(&ino)
            .expect("read of unknown inode")
            .clone();
        assert!(
            offset + bytes <= inode.size.max(inode.num_blocks() * BLOCK_BYTES),
            "read beyond EOF: {offset}+{bytes} > {}",
            inode.size
        );
        let id = ReadId(self.next_read_id);
        self.next_read_id += 1;
        let first_blk = offset / BLOCK_BYTES;
        let last_blk = (offset + bytes - 1) / BLOCK_BYTES;

        let mut outstanding = 0usize;
        let mut blk = first_blk;
        while blk <= last_blk {
            let key = (ino, blk);
            if self.cache.lookup(key) {
                self.stats.cache_hit_blocks += 1;
                blk += 1;
                continue;
            }
            if self.cache.is_pending(key) {
                self.stats.miss_blocks += 1;
                self.waiters.entry(key).or_default().push(id);
                outstanding += 1;
                blk += 1;
                continue;
            }
            // Demand read. Only a caller that looks sequential earns a
            // cluster read; with no sequentiality evidence FreeBSD reads
            // the one block it was asked for — this is precisely the cost
            // of a collapsed seqcount (§6 of the paper).
            let max_run = if seqcount >= self.config.readahead_threshold {
                self.config.cluster_blocks
            } else {
                1
            };
            let run = self
                .cluster_run(&inode, blk, max_run)
                // Never split a multi-block request into single-block I/Os.
                .max(
                    self.cluster_run(&inode, blk, last_blk - blk + 1)
                        .min(last_blk - blk + 1),
                );
            for b in blk..blk + run {
                self.cache.mark_pending((ino, b));
            }
            self.stats.miss_blocks += 1;
            self.waiters.entry(key).or_default().push(id);
            outstanding += 1;
            // Blocks of this cluster that the read also needs get waiters.
            for b in (blk + 1)..(blk + run).min(last_blk + 1) {
                self.stats.miss_blocks += 1;
                self.waiters.entry((ino, b)).or_default().push(id);
                outstanding += 1;
            }
            self.submit_io(now, &inode, blk, run, false);
            blk += run;
        }

        // Read-ahead beyond the requested range, scaled by seqcount.
        if seqcount >= self.config.readahead_threshold {
            let window =
                u64::from(seqcount.min(SEQCOUNT_MAX)).min(self.config.max_readahead_blocks);
            self.readahead(now, &inode, last_blk + 1, window);
        }

        self.tickets.insert(
            id,
            Ticket {
                tag,
                issued_at: now,
                outstanding,
                failed: false,
            },
        );
        if outstanding == 0 {
            self.complete(id, now);
        }
        id
    }

    /// Starts a write of `bytes` at `offset` (write-through, no delayed
    /// write modelling; used by the mixed-workload extension).
    ///
    /// # Panics
    ///
    /// Panics if the inode does not exist or the range is beyond EOF.
    pub fn write(&mut self, now: SimTime, ino: u64, offset: u64, bytes: u64, tag: u64) -> ReadId {
        assert!(bytes > 0, "zero-length write");
        let inode = self
            .inodes
            .get(&ino)
            .expect("write to unknown inode")
            .clone();
        assert!(
            offset + bytes <= inode.num_blocks() * BLOCK_BYTES,
            "write beyond EOF"
        );
        let id = ReadId(self.next_read_id);
        self.next_read_id += 1;
        let first_blk = offset / BLOCK_BYTES;
        let last_blk = (offset + bytes - 1) / BLOCK_BYTES;
        let mut outstanding = 0;
        let mut blk = first_blk;
        while blk <= last_blk {
            self.cache.invalidate((ino, blk));
            let run = self
                .contiguous_run(&inode, blk)
                .min(last_blk - blk + 1)
                .min(self.config.cluster_blocks);
            let io_tag = self.next_io_tag;
            self.next_io_tag += 1;
            self.io_spans.insert(
                io_tag,
                IoSpan {
                    ino,
                    first_blk: blk,
                    nblocks: run,
                },
            );
            // Writes complete the ticket directly via io_spans; reuse the
            // waiter list on the first block of each span.
            self.waiters.entry((u64::MAX, io_tag)).or_default().push(id);
            outstanding += 1;
            self.bio.submit(
                now,
                DiskRequest::write(inode.lba_of(blk), run * BLOCK_SECTORS, io_tag),
            );
            self.stats.writes += 1;
            blk += run;
        }
        self.tickets.insert(
            id,
            Ticket {
                tag,
                issued_at: now,
                outstanding,
                failed: false,
            },
        );
        if outstanding == 0 {
            self.complete(id, now);
        }
        id
    }

    /// Earliest instant at which `advance` will produce a completion.
    pub fn next_event(&self) -> Option<SimTime> {
        let ready = self.ready.iter().map(|d| d.done_at).min();
        match (ready, self.bio.next_event()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Delivers every operation that finishes at or before `now`.
    pub fn advance(&mut self, now: SimTime) -> Vec<OpDone> {
        for c in self.bio.advance(now) {
            let span = self
                .io_spans
                .remove(&c.request.tag)
                .expect("completion for unknown io tag");
            let failed = !c.is_ok();
            match c.request.op {
                diskmodel::DiskOp::Read => {
                    for b in span.first_blk..span.first_blk + span.nblocks {
                        let key = (span.ino, b);
                        if failed {
                            // No data arrived: release the pending marks so
                            // a later read can retry the disk (which now
                            // succeeds if the range was remapped).
                            self.cache.discard(key);
                        } else {
                            self.cache.fill(key);
                        }
                        if let Some(waiting) = self.waiters.remove(&key) {
                            for id in waiting {
                                self.block_arrived(id, c.completed_at, failed);
                            }
                        }
                    }
                }
                diskmodel::DiskOp::Write => {
                    if let Some(waiting) = self.waiters.remove(&(u64::MAX, c.request.tag)) {
                        for id in waiting {
                            self.block_arrived(id, c.completed_at, failed);
                        }
                    }
                }
            }
        }
        let mut out: Vec<OpDone> = Vec::new();
        let mut keep = Vec::new();
        for d in self.ready.drain(..) {
            if d.done_at <= now {
                out.push(d);
            } else {
                keep.push(d);
            }
        }
        self.ready = keep;
        out.sort_by_key(|d| (d.done_at, d.id));
        out
    }

    /// Length of the physically contiguous, uncached, unpending run starting
    /// at `blk`, capped at `max` blocks and the file end.
    fn cluster_run(&self, inode: &Inode, blk: u64, max: u64) -> u64 {
        let mut run = 1;
        while run < max
            && blk + run < inode.num_blocks()
            && inode.contiguous(blk + run - 1)
            && !self.cache.peek((inode.ino, blk + run))
            && !self.cache.is_pending((inode.ino, blk + run))
        {
            run += 1;
        }
        run
    }

    /// Length of the physically contiguous run starting at `blk` (ignores
    /// cache state; used by the write path).
    fn contiguous_run(&self, inode: &Inode, blk: u64) -> u64 {
        let mut run = 1;
        while blk + run < inode.num_blocks() && inode.contiguous(blk + run - 1) {
            run += 1;
        }
        run
    }

    /// Issues asynchronous read-ahead covering up to `window` blocks
    /// starting at `from`.
    ///
    /// Read-ahead is issued in cluster-aligned chunks (as FreeBSD's
    /// `cluster_read` does): a sliding 8 KB-granular window would otherwise
    /// degenerate into single-block I/Os at the frontier.
    fn readahead(&mut self, now: SimTime, inode: &Inode, from: u64, window: u64) {
        let end = (from + window).min(inode.num_blocks());
        let cluster = self.config.cluster_blocks;
        // First cluster boundary at or after `from`.
        let mut blk = from.div_ceil(cluster) * cluster;
        while blk < end {
            let key = (inode.ino, blk);
            if self.cache.peek(key) || self.cache.is_pending(key) {
                blk += cluster;
                continue;
            }
            let run = self.cluster_run(inode, blk, cluster);
            for b in blk..blk + run {
                self.cache.mark_pending((inode.ino, b));
            }
            self.submit_io(now, inode, blk, run, true);
            blk += cluster;
        }
    }

    fn submit_io(&mut self, now: SimTime, inode: &Inode, first_blk: u64, nblocks: u64, ra: bool) {
        let io_tag = self.next_io_tag;
        self.next_io_tag += 1;
        self.io_spans.insert(
            io_tag,
            IoSpan {
                ino: inode.ino,
                first_blk,
                nblocks,
            },
        );
        if ra {
            self.stats.readahead_reads += 1;
        } else {
            self.stats.sync_reads += 1;
        }
        self.bio.submit(
            now,
            DiskRequest::read(inode.lba_of(first_blk), nblocks * BLOCK_SECTORS, io_tag),
        );
    }

    fn block_arrived(&mut self, id: ReadId, at: SimTime, failed: bool) {
        let Some(t) = self.tickets.get_mut(&id) else {
            return;
        };
        if failed {
            t.failed = true;
        }
        t.outstanding = t.outstanding.saturating_sub(1);
        if t.outstanding == 0 {
            self.complete(id, at);
        }
    }

    fn complete(&mut self, id: ReadId, at: SimTime) {
        let t = self.tickets.remove(&id).expect("double completion");
        let status = if t.failed {
            self.stats.io_errors += 1;
            IoStatus::Eio
        } else {
            IoStatus::Ok
        };
        self.ready.push(OpDone {
            id,
            tag: t.tag,
            issued_at: t.issued_at,
            done_at: at,
            status,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::{DriveModel, PartitionTable};

    fn make_fs() -> FileSystem {
        let model = DriveModel::WdWd200bbIde;
        let disk = model.build(SimRng::new(11));
        let part = PartitionTable::quarters(disk.geometry()).get(1);
        FileSystem::format(disk, part, SchedulerKind::Elevator, FsConfig::default())
    }

    fn run_until(fs: &mut FileSystem, mut pending: usize) -> Vec<OpDone> {
        let mut done = Vec::new();
        let mut guard = 0;
        while pending > 0 {
            guard += 1;
            assert!(guard < 1_000_000, "event loop stuck");
            let t = fs.next_event().expect("no events while reads pending");
            for d in fs.advance(t) {
                pending -= 1;
                done.push(d);
            }
        }
        done
    }

    #[test]
    fn read_of_uncached_block_hits_disk() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 7);
        let done = run_until(&mut fs, 1);
        assert_eq!(done[0].tag, 7);
        assert!(done[0].done_at > SimTime::ZERO);
        assert_eq!(fs.stats().sync_reads, 1);
    }

    #[test]
    fn cached_read_completes_at_issue_time() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 0);
        let done = run_until(&mut fs, 1);
        let t1 = done[0].done_at;
        // Same block again: served from the buffer cache instantly.
        fs.read(t1, ino, 0, 8192, 0, 1);
        let done2 = run_until(&mut fs, 1);
        assert_eq!(done2[0].done_at, t1);
        assert_eq!(fs.stats().cache_hit_blocks, 1);
    }

    #[test]
    fn cluster_read_covers_following_blocks() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        // seqcount 2 = sequential evidence, so the demand read clusters.
        fs.read(SimTime::ZERO, ino, 0, 8192, 2, 0);
        let done = run_until(&mut fs, 1);
        // Blocks 1..8 arrived with the cluster; reading them is free.
        fs.read(done[0].done_at, ino, 7 * 8192, 8192, 0, 1);
        let done2 = run_until(&mut fs, 1);
        assert_eq!(done2[0].done_at, done[0].done_at);
        assert_eq!(fs.stats().sync_reads, 1, "no second disk read");
    }

    #[test]
    fn high_seqcount_triggers_readahead() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(4 * 1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 127, 0);
        run_until(&mut fs, 1);
        assert!(
            fs.stats().readahead_reads >= 3,
            "window of 32 blocks should issue several RA clusters: {:?}",
            fs.stats()
        );
        // Drain the read-ahead I/O.
        while let Some(t) = fs.next_event() {
            fs.advance(t);
        }
        // Block 31 must now be cached.
        let t = SimTime::from_nanos(u64::MAX / 2);
        fs.read(t, ino, 31 * 8192, 8192, 0, 1);
        let done = run_until(&mut fs, 1);
        assert_eq!(done[0].done_at, t, "read-ahead data should be resident");
    }

    #[test]
    fn zero_seqcount_reads_no_ahead() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 0);
        run_until(&mut fs, 1);
        assert_eq!(fs.stats().readahead_reads, 0);
    }

    #[test]
    fn concurrent_readers_of_same_block_share_one_io() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 0);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 1);
        let done = run_until(&mut fs, 2);
        assert_eq!(done.len(), 2);
        assert_eq!(fs.stats().sync_reads, 1, "second read piggybacks");
        assert_eq!(done[0].done_at, done[1].done_at);
    }

    #[test]
    fn multi_block_read_waits_for_all() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        // 64 KB read spanning 8 blocks.
        fs.read(SimTime::ZERO, ino, 0, 65_536, 0, 0);
        let done = run_until(&mut fs, 1);
        assert_eq!(done.len(), 1);
        assert_eq!(fs.stats().miss_blocks, 8);
    }

    #[test]
    fn flush_caches_forces_disk_again() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 0);
        let done = run_until(&mut fs, 1);
        fs.flush_caches();
        fs.read(done[0].done_at, ino, 0, 8192, 0, 1);
        let done2 = run_until(&mut fs, 1);
        assert!(done2[0].done_at > done[0].done_at);
        assert_eq!(fs.stats().sync_reads, 2);
    }

    #[test]
    fn write_completes_and_invalidates() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(1024 * 1024, &mut rng);
        fs.read(SimTime::ZERO, ino, 0, 8192, 0, 0);
        let done = run_until(&mut fs, 1);
        fs.write(done[0].done_at, ino, 0, 8192, 1);
        let done2 = run_until(&mut fs, 1);
        assert!(done2[0].done_at > done[0].done_at);
        // Read after write goes to disk again (write-through invalidation).
        fs.read(done2[0].done_at, ino, 0, 8192, 0, 2);
        let done3 = run_until(&mut fs, 1);
        assert!(done3[0].done_at > done2[0].done_at);
    }

    #[test]
    fn write_into_extended_region_succeeds() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(64 * 1024, &mut rng); // 8 blocks
        fs.extend_file(ino, 128 * 1024, &mut rng);
        assert_eq!(fs.inode(ino).unwrap().size, 128 * 1024);
        // A write past the old EOF lands on the newly allocated blocks.
        fs.write(SimTime::ZERO, ino, 64 * 1024, 16_384, 1);
        let done = run_until(&mut fs, 1);
        assert_eq!(done[0].status, IoStatus::Ok);
        assert!(fs.stats().writes >= 1);
    }

    #[test]
    #[should_panic(expected = "beyond EOF")]
    fn write_past_eof_without_extend_panics() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(8192, &mut rng);
        fs.write(SimTime::ZERO, ino, 16_384, 8192, 0);
    }

    #[test]
    #[should_panic(expected = "beyond EOF")]
    fn read_past_eof_panics() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(8192, &mut rng);
        fs.read(SimTime::ZERO, ino, 16_384, 8192, 0, 0);
    }

    #[test]
    fn sequential_stream_is_mostly_cache_hits() {
        let mut fs = make_fs();
        let mut rng = SimRng::new(1);
        let ino = fs.create_file(2 * 1024 * 1024, &mut rng); // 256 blocks
        let mut now = SimTime::ZERO;
        let mut seq: u32 = 1;
        for b in 0..256u64 {
            fs.read(now, ino, b * 8192, 8192, seq, b);
            let done = run_until(&mut fs, 1);
            now = done[0].done_at;
            seq = (seq + 1).min(SEQCOUNT_MAX);
        }
        let s = fs.stats();
        let total_ios = s.sync_reads + s.readahead_reads;
        assert!(
            total_ios <= 45,
            "sequential stream should cluster into ~32 I/Os: {s:?}"
        );
        assert_eq!(s.cache_hit_blocks + s.miss_blocks, 256, "stats: {s:?}");
    }
}
