//! An FFS-like file system substrate.
//!
//! Provides what the paper's NFS server sits on: cylinder-group file
//! layout ([`Allocator`]), an LRU buffer cache with shared in-flight reads
//! ([`BufferCache`]), a kernel block-I/O layer that marries an
//! [`iosched`] scheduler to a [`diskmodel`] drive ([`BioLayer`]), and the
//! cluster read / read-ahead read path ([`FileSystem`]) whose aggressiveness
//! is driven by a caller-supplied sequentiality count — the integration
//! point for the `nfsheur` heuristics in `readahead-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod bcache;
mod bio;
mod fs;

pub use alloc::{AllocConfig, Allocator, Inode, BLOCK_BYTES, BLOCK_SECTORS};
pub use bcache::{BlockKey, BufferCache};
pub use bio::{BioLayer, BioStats, MAX_IO_RETRIES};
pub use fs::{FileSystem, FsConfig, FsStats, IoStatus, OpDone, ReadId, SEQCOUNT_MAX};

/// The classic per-descriptor sequentiality heuristic used for *local*
/// reads (the NFS server replaces this with `nfsheur`, which is the paper's
/// subject). Mirrors `sequential_heuristic()` in FreeBSD's `vfs_vnops.c`:
/// consecutive offsets grow the count, anything else collapses it.
#[derive(Debug, Clone, Copy)]
pub struct LocalFd {
    next_offset: u64,
    seqcount: u32,
}

impl Default for LocalFd {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalFd {
    /// A freshly opened descriptor (initial sequentiality of 1).
    pub fn new() -> Self {
        LocalFd {
            next_offset: 0,
            seqcount: 1,
        }
    }

    /// Records a read at `offset` of `len` bytes and returns the
    /// sequentiality count to pass to [`FileSystem::read`].
    pub fn observe(&mut self, offset: u64, len: u64) -> u32 {
        if offset == self.next_offset {
            self.seqcount = (self.seqcount + 1).min(SEQCOUNT_MAX);
        } else {
            // A single out-of-order request drops the score to its floor —
            // the fragility SlowDown fixes on the NFS side.
            self.seqcount = 1;
        }
        self.next_offset = offset + len;
        self.seqcount
    }

    /// The current count without observing a new access.
    pub fn seqcount(&self) -> u32 {
        self.seqcount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fd_grows_on_sequential() {
        let mut fd = LocalFd::new();
        assert_eq!(fd.observe(0, 8192), 2);
        assert_eq!(fd.observe(8192, 8192), 3);
        assert_eq!(fd.observe(16_384, 8192), 4);
    }

    #[test]
    fn local_fd_resets_on_jump() {
        let mut fd = LocalFd::new();
        fd.observe(0, 8192);
        fd.observe(8192, 8192);
        assert_eq!(fd.observe(100 * 8192, 8192), 1, "jump resets to floor");
        assert_eq!(fd.observe(101 * 8192, 8192), 2, "then regrows");
    }

    #[test]
    fn local_fd_caps_at_127() {
        let mut fd = LocalFd::new();
        for i in 0..200u64 {
            fd.observe(i * 8192, 8192);
        }
        assert_eq!(fd.seqcount(), SEQCOUNT_MAX);
    }
}
