//! Disk fault plans compose with the SSD backend exactly as with the
//! spinning drive: the same `FaultPlan` installed behind `ffs::BioLayer`
//! recovers transient clusters inside bounded retries, surfaces exactly
//! one `EIO` for the hard cluster, remaps it, and reads clean afterward —
//! with flash-scale service times underneath.

use diskfault::{ErrorCluster, FaultPlan, FaultState};
use diskmodel::{DeviceModel, DiskErrorKind, PartitionTable, SsdParams};
use ffs::{FileSystem, FsConfig, IoStatus, OpDone, MAX_IO_RETRIES};
use iosched::SchedulerKind;
use simcore::{SimDuration, SimRng, SimTime};
use ssd::Ssd;

const BLOCKS: u64 = 64;
const BS: u64 = 8_192;

fn small_ssd() -> SsdParams {
    SsdParams {
        channels: 2,
        dies_per_channel: 2,
        page_sectors: 16,
        pages_per_block: 16,
        total_sectors: 64 * 1024, // 32 MB
        overprovision: 0.25,
        read_us: 60.0,
        program_us: 600.0,
        erase_ms: 3.0,
        channel_mb_s: 400.0,
        gc_low_water_blocks: 2,
        gc_jitter_us: 100.0,
        queue_depth: 32,
    }
}

fn make_fs(seed: u64, sched: SchedulerKind) -> FileSystem {
    let ssd = Ssd::new(small_ssd(), SimRng::new(seed));
    let part = PartitionTable::quarters_of(ssd.total_sectors()).get(1);
    FileSystem::format_on(Box::new(ssd), part, sched, FsConfig::default())
}

fn drain(fs: &mut FileSystem) -> Vec<OpDone> {
    let mut out = Vec::new();
    while let Some(t) = fs.next_event() {
        out.extend(fs.advance(t));
    }
    out
}

#[test]
fn sector_error_plan_composes_on_flash() {
    for sched in [SchedulerKind::Fcfs, SchedulerKind::NCscan] {
        let mut fs = make_fs(17, sched);
        let mut frng = SimRng::new(17);
        let ino = fs.create_file(BLOCKS * BS, &mut frng);
        let transient_lba = fs.inode(ino).expect("created").lba_of(5);
        let hard_lba = fs.inode(ino).expect("created").lba_of(40);
        let plan = FaultPlan {
            sector_errors: vec![
                ErrorCluster {
                    start: transient_lba,
                    sectors: 16,
                    kind: DiskErrorKind::TransientMedia,
                    recovery_reads: 2,
                    stall: SimDuration::from_millis(30),
                },
                ErrorCluster {
                    start: hard_lba,
                    sectors: 16,
                    kind: DiskErrorKind::HardMedia,
                    recovery_reads: 0,
                    stall: SimDuration::from_millis(40),
                },
            ],
            ..FaultPlan::default()
        };
        fs.bio_mut()
            .device_mut()
            .set_fault_model(Some(Box::new(FaultState::new(plan))));

        for blk in 0..BLOCKS {
            fs.read(SimTime::ZERO, ino, blk * BS, BS, 1, blk);
        }
        let done = drain(&mut fs);
        assert_eq!(done.len() as u64, BLOCKS, "{sched:?}: all reads complete");
        let eios: Vec<u64> = done
            .iter()
            .filter(|d| d.status == IoStatus::Eio)
            .map(|d| d.tag)
            .collect();
        assert!(
            eios.contains(&40),
            "{sched:?}: hard cluster surfaces EIO (got {eios:?})"
        );
        assert!(
            !eios.contains(&5),
            "{sched:?}: transient cluster recovers below the fs"
        );
        let bio = fs.bio().stats();
        assert!(bio.recovered >= 1, "{sched:?}: {bio:?}");
        assert!(bio.max_attempts <= MAX_IO_RETRIES, "{sched:?}: {bio:?}");

        let rep = fs.bio().device().report();
        assert_eq!(rep.kind, "ssd", "{sched:?}: the device really is flash");
        assert!(rep.media_errors >= 1, "{sched:?}: {rep:?}");
        assert!(
            rep.remapped_sectors >= 16,
            "{sched:?}: hard cluster remapped"
        );

        // Second pass over the remapped range reads clean.
        fs.flush_caches();
        let t1 = done.iter().map(|d| d.done_at).max().expect("non-empty");
        for blk in 0..BLOCKS {
            fs.read(t1, ino, blk * BS, BS, 1, BLOCKS + blk);
        }
        let done2 = drain(&mut fs);
        assert_eq!(done2.len() as u64, BLOCKS, "{sched:?}");
        assert!(
            done2.iter().all(|d| d.status.is_ok()),
            "{sched:?}: remapped flash reads clean on the second pass"
        );
    }
}

#[test]
fn flash_reads_are_much_faster_than_a_seeking_disk_would_be() {
    // Not a comparison against the HDD (that's the grid bin's job) —
    // just a sanity bound: 64 scattered 8 KB reads through the full fs
    // stack finish in well under a second of simulated time.
    let mut fs = make_fs(23, SchedulerKind::NCscan);
    let mut frng = SimRng::new(23);
    let ino = fs.create_file(BLOCKS * BS, &mut frng);
    let mut order: Vec<u64> = (0..BLOCKS).collect();
    frng.shuffle(&mut order);
    for (i, blk) in order.iter().enumerate() {
        fs.read(SimTime::ZERO, ino, blk * BS, BS, 1, i as u64);
    }
    let done = drain(&mut fs);
    assert_eq!(done.len() as u64, BLOCKS);
    let last = done.iter().map(|d| d.done_at).max().expect("non-empty");
    assert!(
        last.since(SimTime::ZERO) < SimDuration::from_millis(100),
        "random flash reads took {:?}",
        last.since(SimTime::ZERO)
    );
}
