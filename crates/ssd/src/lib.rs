//! A flash (SSD) storage backend behind [`diskmodel::DeviceModel`].
//!
//! Where the 2003 spinning drive pays seek and rotation, flash pays a
//! completely different set of costs — the exact effects measured in the
//! HDFS-on-SSD study (PAPERS.md):
//!
//! * **Channel × die parallelism.** The controller stripes pages across
//!   `channels × dies_per_channel` NAND dies. Independent dies service
//!   pages concurrently; pages on the *same* die serialize, and every
//!   transfer shares its channel bus. Big sequential requests therefore
//!   scale with parallelism, while pile-ups on one die inflate latency.
//! * **FTL with write-amplification-driven GC.** Host overwrites
//!   invalidate previously programmed pages; when a die's free pool sinks
//!   below the low-water mark, garbage collection erases victim blocks and
//!   relocates their still-live pages — opening a *pause window* (erase +
//!   relocation, plus a seeded firmware jitter) during which the die
//!   serves nothing.
//! * **Read-on-die-busy inflation.** A read landing on a die that is
//!   programming or collecting garbage waits out the window; the wait is
//!   attributed to the `gc stall` / `die wait` report buckets, so
//!   experiments can see *why* p99 moved, not just that it did.
//!
//! The device is a passive, deterministic state machine like
//! [`diskmodel::Disk`]: all service times are computed at submit from
//! explicit [`SimTime`]s, the only randomness is the seeded GC jitter, and
//! [`diskmodel::FaultModel`] plans compose exactly as on the spinning
//! drive (decide per command, remap silences a range).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::HashSet;

use diskmodel::{
    Completion, DeviceModel, DeviceReport, DiskError, DiskOp, DiskOutcome, DiskRequest, DriveModel,
    FaultDecision, FaultModel, Lba, RequestId, SsdParams,
};
use simcore::{SimDuration, SimRng, SimTime};

/// Fixed controller/firmware overhead per command, seconds (command
/// decode, FTL lookup). Far below NAND latencies; kept out of
/// [`SsdParams`] because no experiment tunes it.
const CMD_OVERHEAD_SECS: f64 = 10e-6;

/// Cumulative decomposition of command service time, the flash analogue
/// of [`diskmodel::ServiceBreakdown`]. Buckets need not sum to
/// [`SsdStats::busy`] — command overhead is unbucketed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdBreakdown {
    /// NAND array read time (tR).
    pub flash_read: SimDuration,
    /// NAND program time (tProg).
    pub program: SimDuration,
    /// Channel bus transfer time.
    pub transfer: SimDuration,
    /// Time spent waiting for dies busy with garbage collection.
    pub gc_stall: SimDuration,
    /// Time spent waiting for dies busy with other host commands.
    pub die_wait: SimDuration,
    /// Time injected by the fault model.
    pub fault_stall: SimDuration,
}

/// Running counters exposed for instrumentation and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsdStats {
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Flash pages read from the NAND array.
    pub pages_read: u64,
    /// Flash pages programmed (host writes only, not GC relocation).
    pub pages_programmed: u64,
    /// Garbage-collection runs (each one pause window on one die).
    pub gc_runs: u64,
    /// Erase-block erasures performed by GC.
    pub gc_erases: u64,
    /// Still-live pages relocated by GC (the write-amplification cost).
    pub gc_pages_moved: u64,
    /// Commands that waited on a busy die at all.
    pub die_conflicts: u64,
    /// Total time the device spent servicing commands.
    pub busy: SimDuration,
    /// Where the service time went.
    pub breakdown: SsdBreakdown,
    /// Commands completed with a check condition.
    pub media_errors: u64,
    /// Sectors reallocated to spares by host remap commands.
    pub remapped_sectors: u64,
}

impl SsdStats {
    /// Host pages written vs pages physically programmed including GC
    /// relocation — the classic write-amplification factor (1.0 = none).
    pub fn write_amplification(&self) -> f64 {
        if self.pages_programmed == 0 {
            1.0
        } else {
            (self.pages_programmed + self.gc_pages_moved) as f64 / self.pages_programmed as f64
        }
    }
}

#[derive(Debug)]
struct Die {
    /// Instant the die finishes its current program/read/GC work.
    free_at: SimTime,
    /// End of the die's current GC pause window (≤ `free_at`); waits that
    /// fall before this instant are attributed to GC.
    gc_until: SimTime,
    /// Physical pages not holding live or stale data.
    free_pages: u64,
    /// Stale (invalidated, not yet erased) physical pages.
    garbage_pages: u64,
    /// Logical pages currently mapped on this die.
    live: HashSet<u64>,
    /// Total physical pages (logical share × (1 + over-provisioning)).
    physical_pages: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: RequestId,
    req: DiskRequest,
    arrived: SimTime,
    completes: SimTime,
    error: Option<DiskError>,
    seq: u64,
}

/// A flash drive: FTL + dies + channel buses behind [`DeviceModel`].
#[derive(Debug)]
pub struct Ssd {
    p: SsdParams,
    dies: Vec<Die>,
    chan_free: Vec<SimTime>,
    in_flight: Vec<InFlight>,
    next_id: u64,
    next_seq: u64,
    stats: SsdStats,
    fault: Option<Box<dyn FaultModel>>,
    rng: SimRng,
}

impl Ssd {
    /// Assembles a drive from a parameter set. `rng` drives only the
    /// seeded GC pause jitter, so two drives built from the same seed
    /// behave identically.
    pub fn new(p: SsdParams, rng: SimRng) -> Self {
        assert!(p.channels >= 1 && p.dies_per_channel >= 1, "need dies");
        assert!(p.page_sectors >= 1 && p.pages_per_block >= 1, "need pages");
        assert!(p.total_sectors >= p.page_sectors, "need capacity");
        let ndies = (p.channels * p.dies_per_channel) as u64;
        let logical_pages = p.total_sectors.div_ceil(p.page_sectors);
        let logical_per_die = logical_pages.div_ceil(ndies);
        let physical_per_die = (logical_per_die as f64 * (1.0 + p.overprovision)).ceil() as u64;
        let dies = (0..ndies)
            .map(|_| Die {
                free_at: SimTime::ZERO,
                gc_until: SimTime::ZERO,
                free_pages: physical_per_die,
                garbage_pages: 0,
                live: HashSet::new(),
                physical_pages: physical_per_die,
            })
            .collect();
        Ssd {
            chan_free: vec![SimTime::ZERO; p.channels as usize],
            dies,
            in_flight: Vec::new(),
            next_id: 0,
            next_seq: 0,
            stats: SsdStats::default(),
            fault: None,
            rng,
            p,
        }
    }

    /// Builds one of the preset SSD models.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not an SSD preset.
    pub fn from_model(model: DriveModel, rng: SimRng) -> Self {
        let p = model
            .ssd_params()
            .unwrap_or_else(|| panic!("{} is not an SSD model", model.label()));
        Ssd::new(p, rng)
    }

    /// The parameter set this drive was built from.
    pub fn params(&self) -> SsdParams {
        self.p
    }

    /// Counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Number of NAND dies.
    pub fn die_count(&self) -> usize {
        self.dies.len()
    }

    fn die_of(&self, page: u64) -> usize {
        (page % self.dies.len() as u64) as usize
    }

    fn channel_of(&self, die: usize) -> usize {
        die % self.p.channels as usize
    }

    fn bus_secs(&self) -> f64 {
        (self.p.page_sectors * diskmodel::SECTOR_BYTES) as f64 / (self.p.channel_mb_s * 1e6)
    }

    /// Attributes `ready → start` wait time on `die` to GC or plain die
    /// contention.
    fn attribute_wait(stats: &mut SsdStats, die: &Die, ready: SimTime, start: SimTime) {
        if start <= ready {
            return;
        }
        stats.die_conflicts += 1;
        let gc_end = die.gc_until.min(start).max(ready);
        stats.breakdown.gc_stall += gc_end.since(ready);
        stats.breakdown.die_wait += start.since(gc_end);
    }

    /// Services one page read; returns when its data is on the host bus.
    fn service_read_page(&mut self, arrival: SimTime, page: u64) -> SimTime {
        let die_i = self.die_of(page);
        let ch = self.channel_of(die_i);
        let bus = SimDuration::from_secs_f64(self.bus_secs());
        let read = SimDuration::from_micros_f64(self.p.read_us);
        let die = &mut self.dies[die_i];
        let start = arrival.max(die.free_at);
        Self::attribute_wait(&mut self.stats, die, arrival, start);
        let flash_end = start + read;
        die.free_at = flash_end;
        let bus_start = flash_end.max(self.chan_free[ch]);
        self.chan_free[ch] = bus_start + bus;
        self.stats.pages_read += 1;
        self.stats.breakdown.flash_read += read;
        self.stats.breakdown.transfer += bus;
        bus_start + bus
    }

    /// Services one page program; returns when the program completes.
    fn service_write_page(&mut self, arrival: SimTime, page: u64) -> SimTime {
        let die_i = self.die_of(page);
        let ch = self.channel_of(die_i);
        let bus = SimDuration::from_secs_f64(self.bus_secs());
        let prog = SimDuration::from_micros_f64(self.p.program_us);
        // Data crosses the channel first, then the die programs it.
        let bus_start = arrival.max(self.chan_free[ch]);
        self.chan_free[ch] = bus_start + bus;
        let ready = bus_start + bus;
        let die = &mut self.dies[die_i];
        let start = ready.max(die.free_at);
        Self::attribute_wait(&mut self.stats, die, ready, start);
        die.free_at = start + prog;
        self.stats.pages_programmed += 1;
        self.stats.breakdown.program += prog;
        self.stats.breakdown.transfer += bus;
        let done = die.free_at;
        self.ftl_write(die_i, page);
        done
    }

    /// FTL bookkeeping for a host page program, running GC if the die's
    /// free pool sank below the low-water mark.
    fn ftl_write(&mut self, die_i: usize, page: u64) {
        let low_water = self.p.gc_low_water_blocks * self.p.pages_per_block;
        let die = &mut self.dies[die_i];
        if !die.live.insert(page) {
            // Overwrite: the previous physical copy is now garbage.
            die.garbage_pages += 1;
        }
        die.free_pages = die.free_pages.saturating_sub(1);
        // GC: reclaim blocks until back above twice the low-water mark.
        // Victim blocks carry the die-average share of live data, so the
        // relocation cost (write amplification) grows as utilization does.
        while die.free_pages < 2 * low_water && die.garbage_pages > 0 {
            let used = die.physical_pages - die.free_pages;
            let live_frac = if used == 0 {
                0.0
            } else {
                (used - die.garbage_pages) as f64 / used as f64
            };
            let moved = ((self.p.pages_per_block as f64 * live_frac).round() as u64)
                .min(self.p.pages_per_block);
            let reclaimed = (self.p.pages_per_block - moved).min(die.garbage_pages);
            if reclaimed == 0 {
                break; // victim would be all-live; nothing to gain
            }
            let jitter = self.rng.uniform01() * self.p.gc_jitter_us;
            let pause = SimDuration::from_secs_f64(
                self.p.erase_ms * 1e-3
                    + moved as f64 * (self.p.read_us + self.p.program_us) * 1e-6
                    + jitter * 1e-6,
            );
            let gc_start = die.free_at;
            die.free_at = gc_start + pause;
            die.gc_until = die.free_at;
            die.free_pages += reclaimed;
            die.garbage_pages -= reclaimed;
            self.stats.gc_runs += 1;
            self.stats.gc_erases += 1;
            self.stats.gc_pages_moved += moved;
        }
    }

    /// Computes the completion time of a request arriving at `t0`.
    fn service(&mut self, t0: SimTime, req: &DiskRequest) -> SimTime {
        let arrival = t0 + SimDuration::from_secs_f64(CMD_OVERHEAD_SECS);
        let first = req.lba / self.p.page_sectors;
        let last = (req.end() - 1) / self.p.page_sectors;
        let mut done = arrival;
        for page in first..=last {
            let page_done = match req.op {
                DiskOp::Read => self.service_read_page(arrival, page),
                DiskOp::Write => self.service_write_page(arrival, page),
            };
            done = done.max(page_done);
        }
        done
    }

    /// An errored command: the target die still burns its retry loop, the
    /// host sees a check condition, no data moves.
    fn fail_service(&mut self, t0: SimTime, req: &DiskRequest, stall: SimDuration) -> SimTime {
        let arrival = t0 + SimDuration::from_secs_f64(CMD_OVERHEAD_SECS);
        let die_i = self.die_of(req.lba / self.p.page_sectors);
        let die = &mut self.dies[die_i];
        let start = arrival.max(die.free_at);
        Self::attribute_wait(&mut self.stats, die, arrival, start);
        let done = start + SimDuration::from_micros_f64(self.p.read_us) + stall;
        die.free_at = done;
        self.stats.breakdown.fault_stall += stall;
        done
    }
}

impl DeviceModel for Ssd {
    fn submit(&mut self, now: SimTime, req: DiskRequest) -> RequestId {
        assert!(req.sectors > 0, "zero-length ssd request");
        assert!(
            req.end() <= self.p.total_sectors,
            "request beyond end of drive"
        );
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let decision = match self.fault.as_mut() {
            Some(f) => f.decide(now, &req),
            None => FaultDecision::Ok,
        };
        let (completes, error) = match decision {
            FaultDecision::Ok => (self.service(now, &req), None),
            FaultDecision::Slow { stall } => {
                let done = self.service(now, &req);
                self.stats.breakdown.fault_stall += stall;
                (done + stall, None)
            }
            FaultDecision::Fail { kind, stall } => {
                let done = self.fail_service(now, &req, stall);
                (done, Some(DiskError { kind, lba: req.lba }))
            }
        };
        self.stats.busy += completes.since(now);
        self.in_flight.push(InFlight {
            id,
            req,
            arrived: now,
            completes,
            error,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        id
    }

    fn next_completion(&self) -> Option<SimTime> {
        self.in_flight.iter().map(|f| f.completes).min()
    }

    fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut due: Vec<InFlight> = Vec::new();
        self.in_flight.retain(|f| {
            if f.completes <= now {
                due.push(*f);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|f| (f.completes, f.seq));
        due.into_iter()
            .map(|f| {
                match f.req.op {
                    DiskOp::Read => self.stats.reads += 1,
                    DiskOp::Write => self.stats.writes += 1,
                }
                if f.error.is_some() {
                    self.stats.media_errors += 1;
                }
                Completion {
                    id: f.id,
                    request: f.req,
                    submitted_at: f.arrived,
                    completed_at: f.completes,
                    cache_hit: false,
                    outcome: match f.error {
                        None => DiskOutcome::Ok,
                        Some(e) => DiskOutcome::Error(e),
                    },
                }
            })
            .collect()
    }

    fn can_accept(&self) -> bool {
        self.in_flight.len() < self.p.queue_depth
    }

    fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    fn total_sectors(&self) -> u64 {
        self.p.total_sectors
    }

    fn flush_cache(&mut self) {
        // No volatile read cache is modelled; flash reads are already
        // microseconds. Nothing to discard.
    }

    fn set_fault_model(&mut self, model: Option<Box<dyn FaultModel>>) {
        self.fault = model;
    }

    fn fault_model_active(&self) -> bool {
        self.fault.is_some()
    }

    fn remap(&mut self, lba: Lba, sectors: u64) {
        self.stats.remapped_sectors += sectors;
        if let Some(f) = self.fault.as_mut() {
            f.remap(lba, sectors);
        }
    }

    fn report(&self) -> DeviceReport {
        let s = &self.stats;
        DeviceReport {
            kind: "ssd",
            reads: s.reads,
            writes: s.writes,
            cache_hits: 0,
            busy: s.busy,
            media_errors: s.media_errors,
            remapped_sectors: s.remapped_sectors,
            buckets: vec![
                ("flash read", s.breakdown.flash_read),
                ("program", s.breakdown.program),
                ("transfer", s.breakdown.transfer),
                ("gc stall", s.breakdown.gc_stall),
                ("die wait", s.breakdown.die_wait),
                ("fault stall", s.breakdown.fault_stall),
            ],
            gauges: vec![
                ("gc runs", s.gc_runs),
                ("gc pages moved", s.gc_pages_moved),
                ("die conflicts", s.die_conflicts),
            ],
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small drive that can be filled quickly: 8 MB logical, 1 channel
    /// × 1 die unless overridden, 8 KB pages, 16-page blocks.
    fn tiny_params() -> SsdParams {
        SsdParams {
            channels: 1,
            dies_per_channel: 1,
            page_sectors: 16,
            pages_per_block: 16,
            total_sectors: 16 * 1024, // 8 MB
            overprovision: 0.25,
            read_us: 60.0,
            program_us: 600.0,
            erase_ms: 3.0,
            channel_mb_s: 400.0,
            gc_low_water_blocks: 2,
            gc_jitter_us: 100.0,
            queue_depth: 32,
        }
    }

    fn drain(d: &mut Ssd) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = d.next_completion() {
            out.extend(d.advance(t));
        }
        out
    }

    #[test]
    fn single_read_pays_flash_and_bus_latency() {
        let mut d = Ssd::new(tiny_params(), SimRng::new(1));
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 7));
        let t = d.next_completion().expect("in service");
        let us = t.since(SimTime::ZERO).as_secs_f64() * 1e6;
        // cmd overhead + tR + bus: ~10 + 60 + ~20 us; far below any HDD seek.
        assert!((80.0..200.0).contains(&us), "read took {us} us");
        let done = d.advance(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request.tag, 7);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().pages_read, 1);
    }

    #[test]
    fn multi_die_reads_run_in_parallel() {
        let mut four = tiny_params();
        four.channels = 4;
        four.dies_per_channel = 1;
        let mut d4 = Ssd::new(four, SimRng::new(1));
        let mut d1 = Ssd::new(tiny_params(), SimRng::new(1));
        // 8 pages: striped over 4 dies vs serialized on 1.
        d4.submit(SimTime::ZERO, DiskRequest::read(0, 128, 0));
        d1.submit(SimTime::ZERO, DiskRequest::read(0, 128, 0));
        let t4 = d4.next_completion().unwrap().since(SimTime::ZERO);
        let t1 = d1.next_completion().unwrap().since(SimTime::ZERO);
        assert!(
            t4.as_secs_f64() * 2.0 < t1.as_secs_f64(),
            "4-die {t4} should be well under half of 1-die {t1}"
        );
    }

    #[test]
    fn same_die_requests_serialize_and_count_conflicts() {
        let mut d = Ssd::new(tiny_params(), SimRng::new(1));
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        d.submit(SimTime::ZERO, DiskRequest::read(256, 16, 1));
        let done = drain(&mut d);
        assert_eq!(done.len(), 2);
        assert!(done[1].completed_at > done[0].completed_at);
        assert!(d.stats().die_conflicts >= 1);
        assert!(d.stats().breakdown.die_wait > SimDuration::ZERO);
    }

    #[test]
    fn overwrites_trigger_gc_pauses() {
        let mut d = Ssd::new(tiny_params(), SimRng::new(1));
        let total = tiny_params().total_sectors;
        let mut now = SimTime::ZERO;
        // Write the whole drive twice over: the second pass invalidates
        // the first and must push the die through garbage collection.
        for pass in 0..2u64 {
            let mut lba = 0;
            while lba < total {
                d.submit(now, DiskRequest::write(lba, 16, pass << 32 | lba));
                now = d.next_completion().unwrap();
                d.advance(now);
                lba += 16;
            }
        }
        let s = d.stats();
        assert!(s.gc_runs > 0, "two full overwrites must GC: {s:?}");
        assert!(s.gc_pages_moved > 0, "utilized die must relocate pages");
        assert!(s.breakdown.gc_stall == SimDuration::ZERO || s.gc_runs > 0);
        assert!(
            s.write_amplification() > 1.0,
            "WA {}",
            s.write_amplification()
        );
    }

    #[test]
    fn reads_behind_gc_wait_out_the_pause() {
        let mut d = Ssd::new(tiny_params(), SimRng::new(1));
        let total = tiny_params().total_sectors;
        // Fill the drive twice without draining between writes is fine —
        // but here we drain so `now` tracks real completion times.
        let mut now = SimTime::ZERO;
        for pass in 0..2u64 {
            let mut lba = 0;
            while lba < total {
                d.submit(now, DiskRequest::write(lba, 16, pass << 32 | lba));
                now = d.next_completion().unwrap();
                d.advance(now);
                if d.stats().gc_runs > 0 {
                    break;
                }
                lba += 16;
            }
            if d.stats().gc_runs > 0 {
                break;
            }
        }
        assert!(d.stats().gc_runs > 0, "setup must reach a GC window");
        // The die's free_at now sits at the end of a GC pause; a read
        // arriving *now* (inside the window) must be inflated and the
        // wait attributed to the gc bucket.
        let before = d.stats().breakdown.gc_stall;
        d.submit(now, DiskRequest::read(0, 16, 999));
        let t = d.next_completion().unwrap();
        drain(&mut d);
        assert!(
            t.since(now) > SimDuration::from_micros_f64(500.0),
            "read during GC finished in {:?}",
            t.since(now)
        );
        assert!(
            d.stats().breakdown.gc_stall > before,
            "wait goes to gc bucket"
        );
    }

    #[test]
    fn queue_depth_gates_can_accept() {
        let mut p = tiny_params();
        p.queue_depth = 2;
        let mut d = Ssd::new(p, SimRng::new(1));
        assert!(d.can_accept());
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        assert!(d.can_accept());
        d.submit(SimTime::ZERO, DiskRequest::read(16, 16, 1));
        assert!(!d.can_accept());
        assert_eq!(d.outstanding(), 2);
        drain(&mut d);
        assert!(d.can_accept());
    }

    #[test]
    fn fault_model_composes_like_on_the_disk() {
        #[derive(Debug)]
        struct FailFirst(bool);
        impl FaultModel for FailFirst {
            fn decide(&mut self, _now: SimTime, _req: &DiskRequest) -> FaultDecision {
                if self.0 {
                    self.0 = false;
                    FaultDecision::Fail {
                        kind: diskmodel::DiskErrorKind::HardMedia,
                        stall: SimDuration::from_millis(20),
                    }
                } else {
                    FaultDecision::Ok
                }
            }
        }
        let mut d = Ssd::new(tiny_params(), SimRng::new(1));
        d.set_fault_model(Some(Box::new(FailFirst(true))));
        assert!(d.fault_model_active());
        d.submit(SimTime::ZERO, DiskRequest::read(0, 16, 0));
        let done = drain(&mut d);
        assert_eq!(done.len(), 1);
        assert!(!done[0].is_ok(), "first command fails");
        assert!(
            done[0].completed_at.since(SimTime::ZERO) >= SimDuration::from_millis(20),
            "stall is paid"
        );
        assert_eq!(d.stats().media_errors, 1);
        d.remap(0, 16);
        assert_eq!(d.stats().remapped_sectors, 16);
        d.submit(done[0].completed_at, DiskRequest::read(0, 16, 1));
        let done = drain(&mut d);
        assert!(done[0].is_ok(), "after remap the range reads cleanly");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| -> Vec<(u64, u64)> {
            let mut d = Ssd::new(tiny_params(), SimRng::new(seed));
            let total = tiny_params().total_sectors;
            let mut now = SimTime::ZERO;
            let mut trace = Vec::new();
            for pass in 0..2u64 {
                let mut lba = 0;
                while lba < total {
                    d.submit(now, DiskRequest::write(lba, 16, pass << 32 | lba));
                    now = d.next_completion().unwrap();
                    for c in d.advance(now) {
                        trace.push((c.request.tag, c.completed_at.as_nanos()));
                    }
                    lba += 16;
                }
            }
            trace
        };
        assert_eq!(run(42), run(42), "same seed, same completion trace");
        assert_ne!(
            run(42),
            run(43),
            "different seed shifts GC jitter somewhere"
        );
    }

    #[test]
    fn preset_models_build_and_serve() {
        for m in [DriveModel::ConsumerTlcSsd, DriveModel::DatacenterSsd] {
            let mut d = Ssd::from_model(m, SimRng::new(3));
            assert_eq!(d.total_sectors(), m.total_sectors());
            d.submit(SimTime::ZERO, DiskRequest::read(0, 128, 0));
            let t = d.next_completion().expect("busy");
            assert_eq!(d.advance(t).len(), 1);
            let r = d.report();
            assert_eq!(r.kind, "ssd");
            assert!(r.buckets.iter().any(|(n, _)| *n == "gc stall"));
        }
    }

    #[test]
    #[should_panic(expected = "beyond end")]
    fn oversized_request_rejected() {
        let mut d = Ssd::new(tiny_params(), SimRng::new(1));
        let total = d.total_sectors();
        d.submit(SimTime::ZERO, DiskRequest::read(total - 8, 16, 0));
    }
}
