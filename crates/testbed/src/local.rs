//! The §4.2 benchmark against the *local* file system (Figures 1–3).
//!
//! "For each n in (1, 2, 4, 8, 16, 32): for each file of size 256/n MB,
//! create a reader process to read that file ... The number of MB read
//! divided by the time required for the last reader to finish gives the
//! effective throughput."
//!
//! The file population is created once, up front, exactly as §4.3
//! describes (one 256 MB file, two 128 MB files, ... thirty-two 8 MB
//! files), and every run flushes all caches first (§4.3.1).

use std::collections::HashMap;

use ffs::{FileSystem, LocalFd, BLOCK_BYTES};
use simcore::{SimDuration, SimRng, SimTime};

use crate::rig::Rig;

/// Per-read CPU cost charged to a reader process (syscall + copyout).
const PROC_READ_CPU: SimDuration = SimDuration::from_micros(15);

/// The reader counts the paper sweeps.
pub const READER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total MB read divided by the time the *last* reader needed.
    pub throughput_mbs: f64,
    /// Per-process completion times in seconds, sorted ascending
    /// (Figure 3's distribution).
    pub completion_secs: Vec<f64>,
}

/// A populated local-benchmark instance on one rig.
#[derive(Debug)]
pub struct LocalBench {
    fs: FileSystem,
    /// For each reader count, the inodes of its file set.
    file_sets: HashMap<usize, Vec<u64>>,
    total_bytes: u64,
}

impl LocalBench {
    /// Builds the rig, formats the file system, and populates every file
    /// set. `total_mb` is the per-iteration volume (256 in the paper;
    /// smaller for quick runs).
    pub fn new(rig: Rig, reader_counts: &[usize], total_mb: u64, seed: u64) -> Self {
        let mut fs = rig.build_fs(seed);
        let mut rng = SimRng::from_seed_and_stream(seed, 0xF11E);
        let mut file_sets = HashMap::new();
        for &n in reader_counts {
            assert!(
                n > 0 && total_mb.is_multiple_of(n as u64),
                "reader count {n} must divide {total_mb}"
            );
            let per = total_mb / n as u64 * 1024 * 1024;
            let inos: Vec<u64> = (0..n).map(|_| fs.create_file(per, &mut rng)).collect();
            file_sets.insert(n, inos);
        }
        LocalBench {
            fs,
            file_sets,
            total_bytes: total_mb * 1024 * 1024,
        }
    }

    /// Access to the underlying file system (scheduler/TCQ toggles and
    /// statistics between runs).
    pub fn fs_mut(&mut self) -> &mut FileSystem {
        &mut self.fs
    }

    /// Runs one iteration with `readers` concurrent processes, flushing
    /// caches first. Returns per-run metrics.
    ///
    /// # Panics
    ///
    /// Panics if `readers` was not in the populated reader counts.
    pub fn run(&mut self, readers: usize) -> RunResult {
        let inos = self
            .file_sets
            .get(&readers)
            .unwrap_or_else(|| panic!("no file set for {readers} readers"))
            .clone();
        self.fs.flush_caches();

        struct Proc {
            ino: u64,
            size: u64,
            offset: u64,
            fd: LocalFd,
            finished: Option<SimTime>,
        }
        let per = self.total_bytes / readers as u64;
        let mut procs: Vec<Proc> = inos
            .iter()
            .map(|&ino| Proc {
                ino,
                size: per,
                offset: 0,
                fd: LocalFd::new(),
                finished: None,
            })
            .collect();

        // All processes start at the same instant.
        for (i, p) in procs.iter_mut().enumerate() {
            let seq = p.fd.observe(0, BLOCK_BYTES);
            self.fs
                .read(SimTime::ZERO, p.ino, 0, BLOCK_BYTES, seq, i as u64);
            p.offset = BLOCK_BYTES;
        }
        let mut pending = readers;
        let mut guard: u64 = 0;
        while pending > 0 {
            guard += 1;
            assert!(guard < 200_000_000, "benchmark event loop stuck");
            let t = self.fs.next_event().expect("readers pending but no events");
            for done in self.fs.advance(t) {
                let i = done.tag as usize;
                let p = &mut procs[i];
                if p.offset >= p.size {
                    p.finished = Some(done.done_at);
                    pending -= 1;
                    continue;
                }
                let issue_at = done.done_at + PROC_READ_CPU;
                let seq = p.fd.observe(p.offset, BLOCK_BYTES);
                self.fs
                    .read(issue_at, p.ino, p.offset, BLOCK_BYTES, seq, i as u64);
                p.offset += BLOCK_BYTES;
            }
        }
        let mut completion_secs: Vec<f64> = procs
            .iter()
            .map(|p| p.finished.expect("all finished").as_secs_f64())
            .collect();
        completion_secs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let elapsed = *completion_secs.last().expect("non-empty");
        RunResult {
            throughput_mbs: self.total_bytes as f64 / 1e6 / elapsed,
            completion_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosched::SchedulerKind;

    #[test]
    fn single_local_reader_near_media_rate() {
        let mut b = LocalBench::new(Rig::ide(1), &[1], 16, 42);
        let r = b.run(1);
        assert!(
            (25.0..45.0).contains(&r.throughput_mbs),
            "local sequential read {} MB/s",
            r.throughput_mbs
        );
    }

    #[test]
    fn zcav_outer_beats_inner_locally() {
        let mut outer = LocalBench::new(Rig::ide(1), &[1], 16, 42);
        let mut inner = LocalBench::new(Rig::ide(4), &[1], 16, 42);
        let o = outer.run(1).throughput_mbs;
        let i = inner.run(1).throughput_mbs;
        assert!(o > i * 1.2, "ZCAV: ide1 {o:.1} vs ide4 {i:.1}");
    }

    #[test]
    fn elevator_is_unfair_for_concurrent_readers() {
        let mut b = LocalBench::new(Rig::ide(1), &[8], 32, 42);
        let r = b.run(8);
        let first = r.completion_secs[0];
        let last = r.completion_secs[7];
        assert!(
            last / first > 3.0,
            "elevator should finish readers one after another: {:?}",
            r.completion_secs
        );
    }

    #[test]
    fn ncscan_is_fair_but_slower() {
        let mut elev = LocalBench::new(Rig::ide(1), &[8], 32, 42);
        let fair = Rig::ide(1).with_scheduler(SchedulerKind::NCscan);
        let mut ncs = LocalBench::new(fair, &[8], 32, 42);
        let re = elev.run(8);
        let rn = ncs.run(8);
        let spread_n = rn.completion_secs[7] / rn.completion_secs[0];
        assert!(
            spread_n < 1.5,
            "N-CSCAN spread should be small: {:?}",
            rn.completion_secs
        );
        assert!(
            re.throughput_mbs > rn.throughput_mbs * 1.5,
            "fairness costs throughput: elevator {:.1} vs n-cscan {:.1}",
            re.throughput_mbs,
            rn.throughput_mbs
        );
    }

    #[test]
    fn tagged_queues_hurt_concurrent_scsi_readers() {
        let mut tags = LocalBench::new(Rig::scsi(1), &[8], 32, 42);
        let mut notags = LocalBench::new(Rig::scsi(1).no_tags(), &[8], 32, 42);
        let t = tags.run(8).throughput_mbs;
        let n = notags.run(8).throughput_mbs;
        assert!(
            n > t * 1.3,
            "disabling tags should help: tags {t:.1} vs no-tags {n:.1} MB/s"
        );
    }

    #[test]
    fn reruns_on_same_bench_are_consistent() {
        let mut b = LocalBench::new(Rig::scsi(1).no_tags(), &[2], 16, 42);
        let a = b.run(2).throughput_mbs;
        let c = b.run(2).throughput_mbs;
        let ratio = (a - c).abs() / a;
        assert!(
            ratio < 0.05,
            "cache flush makes reruns comparable: {a} vs {c}"
        );
    }

    #[test]
    #[should_panic(expected = "no file set")]
    fn unpopulated_reader_count_panics() {
        let mut b = LocalBench::new(Rig::ide(1), &[1], 16, 42);
        b.run(2);
    }
}
