//! Open-loop trace replay against the full NFS world.
//!
//! Where `nfstrace::analyze` scores heuristics on a request stream in
//! isolation, this module replays a trace through the whole simulated
//! installation — client, wire, nfsds, heuristics, disk — issuing each
//! operation at its trace timestamp (open loop) and measuring per-request
//! latency. This is how one would evaluate the paper's heuristics against
//! a production trace rather than a synthetic benchmark.

use std::collections::HashMap;

use nfsproto::FileHandle;
use nfssim::{NfsWorld, WorldConfig};
use nfstrace::{Trace, TraceOp};
use simcore::{quantile, SimDuration, SimTime};

use crate::rig::Rig;

/// Latency statistics from a replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Operations replayed.
    pub ops: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Wall-clock (simulated) duration of the replay in seconds.
    pub elapsed_secs: f64,
    /// GETATTR RPCs that went to the wire (with the attribute cache
    /// armed: cold misses + revalidations; disarmed: every getattr op).
    pub getattr_rpcs: u64,
    /// Getattr-class ops the client attribute cache answered locally.
    pub attr_cache_hits: u64,
    /// LOOKUP RPCs sent.
    pub lookup_rpcs: u64,
    /// READDIR RPCs sent.
    pub readdir_rpcs: u64,
}

/// Replays `trace` on a fresh world built from `rig` + `config`.
///
/// Files are sized to cover the trace's largest offset per handle.
/// Operations are issued open-loop at `time_us` from the trace; the world
/// may fall behind under overload, in which case later operations queue
/// (their latency includes the backlog, as it would in reality).
pub fn replay(rig: Rig, config: WorldConfig, trace: &Trace, seed: u64) -> ReplayResult {
    let fs = rig.build_fs(seed);
    let mut world = NfsWorld::new(config, fs, seed);

    // Create each file big enough for its largest access.
    let mut max_end: HashMap<u64, u64> = HashMap::new();
    for r in &trace.records {
        let end = r.offset + u64::from(r.len).max(1);
        let e = max_end.entry(r.fh).or_insert(0);
        *e = (*e).max(end);
    }
    let mut handles: HashMap<u64, FileHandle> = HashMap::new();
    for (&fh, &end) in &max_end {
        // Round up to a whole number of 64 KB clusters.
        let size = end.div_ceil(65_536) * 65_536;
        handles.insert(fh, world.create_file(size));
    }

    let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
    let mut outstanding = 0u64;
    let mut end_time = SimTime::ZERO;
    for (i, r) in trace.records.iter().enumerate() {
        let at = SimTime::ZERO + SimDuration::from_micros(r.time_us);
        // Drain everything scheduled before this arrival.
        while let Some(t) = world.next_event() {
            if t > at {
                break;
            }
            for d in world.advance(t) {
                latencies.push(d.done_at.since(d.issued_at).as_millis_f64());
                end_time = end_time.max(d.done_at);
                outstanding -= 1;
            }
        }
        let fh = handles[&r.fh];
        match r.op {
            TraceOp::Read => {
                world.read(at, fh, r.offset, u64::from(r.len).max(1), i as u64);
            }
            TraceOp::Write => {
                world.write(at, fh, r.offset, u64::from(r.len).max(1), i as u64);
            }
            TraceOp::Getattr => {
                world.getattr(at, fh, i as u64);
            }
            TraceOp::Lookup => {
                world.lookup_from(0, at, fh, r.len.max(1), i as u64);
            }
            TraceOp::Readdir => {
                // The record's len is the entries requested; a standalone
                // chunk is its directory's last from the replay's view.
                world.readdir_from(0, at, fh, r.offset, r.len.max(1), true, i as u64);
            }
        }
        outstanding += 1;
    }
    while outstanding > 0 {
        let t = world.next_event().expect("ops outstanding");
        for d in world.advance(t) {
            latencies.push(d.done_at.since(d.issued_at).as_millis_f64());
            end_time = end_time.max(d.done_at);
            outstanding -= 1;
        }
    }
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let cs = world.client_stats_for(0);
    ReplayResult {
        ops: latencies.len() as u64,
        mean_ms: mean,
        p50_ms: quantile(&latencies, 0.5).unwrap_or(0.0),
        p99_ms: quantile(&latencies, 0.99).unwrap_or(0.0),
        elapsed_secs: end_time.as_secs_f64(),
        getattr_rpcs: cs.getattr_rpcs,
        attr_cache_hits: cs.attr_cache_hits,
        lookup_rpcs: cs.lookup_rpcs,
        readdir_rpcs: cs.readdir_rpcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfstrace::synth;
    use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
    use simcore::SimRng;

    fn cfg(policy: ReadaheadPolicy) -> WorldConfig {
        WorldConfig {
            policy,
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        }
    }

    #[test]
    fn replay_completes_every_operation() {
        let mut rng = SimRng::new(1);
        let trace = synth::with_metadata_noise(
            synth::sequential(
                synth::SequentialSpec {
                    files: 4,
                    blocks_per_file: 64,
                    ..synth::SequentialSpec::default()
                },
                &mut rng,
            ),
            0.2,
            &mut rng,
        );
        let total = trace.len() as u64;
        let r = replay(Rig::ide(1), cfg(ReadaheadPolicy::slowdown()), &trace, 1);
        assert_eq!(r.ops, total);
        assert!(r.mean_ms > 0.0);
        assert!(r.p99_ms >= r.p50_ms);
    }

    #[test]
    fn cursor_replay_beats_default_on_stride_traces() {
        let mut rng = SimRng::new(2);
        let trace = synth::stride(4, 1_024, 8_192, 400.0, &mut rng);
        let d = replay(Rig::scsi(1), cfg(ReadaheadPolicy::Default), &trace, 2);
        let c = replay(Rig::scsi(1), cfg(ReadaheadPolicy::cursor()), &trace, 2);
        assert!(
            c.mean_ms < d.mean_ms * 0.8,
            "cursor mean {:.2}ms vs default {:.2}ms",
            c.mean_ms,
            d.mean_ms
        );
    }

    #[test]
    fn overload_shows_up_as_latency_not_loss() {
        // A trace issued far faster than the server can serve: everything
        // still completes, with queueing latency.
        let mut rng = SimRng::new(3);
        let mut trace = synth::random(512, 400, 8_192, &mut rng);
        for r in &mut trace.records {
            r.time_us /= 50; // Compress arrival times brutally.
        }
        let total = trace.len() as u64;
        let r = replay(Rig::ide(1), cfg(ReadaheadPolicy::Default), &trace, 3);
        assert_eq!(r.ops, total);
        assert!(r.p99_ms > r.p50_ms, "{r:?}");
    }
}
