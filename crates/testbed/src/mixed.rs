//! The §8 future-work workload: reads mixed with writes and metadata.
//!
//! "We plan to investigate the effect of SlowDown and the cursor-based
//! read-ahead heuristics on a more complex and realistic workload (for
//! example, adding a large number of metadata and write requests to the
//! workload)." This module is that experiment: each client process mostly
//! reads sequentially but intersperses WRITEs and GETATTRs, and we measure
//! whether the heuristics still pay off when the request stream is noisy.

use nfsproto::FileHandle;
use nfssim::{NfsWorld, WorldConfig};
use simcore::{SimDuration, SimRng, SimTime};

use crate::rig::Rig;

const READ_BYTES: u64 = 8_192;
const PROC_CPU: SimDuration = SimDuration::from_micros(15);

/// Operation mix (percentages must sum to <= 100; remainder is reads).
#[derive(Debug, Clone, Copy)]
pub struct MixRatios {
    /// Percent of operations that are 8 KB writes at random offsets.
    pub write_pct: u32,
    /// Percent of operations that are GETATTRs.
    pub getattr_pct: u32,
}

impl Default for MixRatios {
    fn default() -> Self {
        MixRatios {
            write_pct: 10,
            getattr_pct: 20,
        }
    }
}

/// Result of one mixed run.
#[derive(Debug, Clone, Copy)]
pub struct MixedResult {
    /// Total operations per second.
    pub ops_per_sec: f64,
    /// Read throughput in MB/s over elapsed time.
    pub read_mbs: f64,
}

/// Runs `readers` processes over one file each, `ops_per_proc` operations
/// per process, with the given mix, returning aggregate rates.
pub fn run_mixed(
    rig: Rig,
    config: WorldConfig,
    readers: usize,
    file_mb: u64,
    ops_per_proc: u64,
    mix: MixRatios,
    seed: u64,
) -> MixedResult {
    assert!(mix.write_pct + mix.getattr_pct <= 100);
    let fs = rig.build_fs(seed);
    let mut world = NfsWorld::new(config, fs, seed);
    let size = file_mb * 1024 * 1024;
    let fhs: Vec<FileHandle> = (0..readers).map(|_| world.create_file(size)).collect();
    let mut rng = SimRng::from_seed_and_stream(seed, 0x3B1D);

    struct Proc {
        fh: FileHandle,
        read_offset: u64,
        remaining: u64,
        finished: Option<SimTime>,
    }
    let mut procs: Vec<Proc> = fhs
        .iter()
        .map(|&fh| Proc {
            fh,
            read_offset: 0,
            remaining: ops_per_proc,
            finished: None,
        })
        .collect();
    let nblocks = size / READ_BYTES;

    let mut bytes_read = 0u64;
    let issue = |world: &mut NfsWorld,
                 p: &mut Proc,
                 rng: &mut SimRng,
                 now: SimTime,
                 i: usize,
                 bytes_read: &mut u64| {
        let roll = rng.gen_range(0u32..100);
        if roll < mix.write_pct {
            let blk = rng.gen_range(0..nblocks);
            world.write(now, p.fh, blk * READ_BYTES, READ_BYTES, i as u64);
        } else if roll < mix.write_pct + mix.getattr_pct {
            world.getattr(now, p.fh, i as u64);
        } else {
            if p.read_offset >= size {
                p.read_offset = 0;
            }
            world.read(now, p.fh, p.read_offset, READ_BYTES, i as u64);
            p.read_offset += READ_BYTES;
            *bytes_read += READ_BYTES;
        }
        p.remaining -= 1;
    };

    let start = world.now();
    for (i, p) in procs.iter_mut().enumerate() {
        issue(&mut world, p, &mut rng, start, i, &mut bytes_read);
    }
    let mut pending = readers;
    let mut guard = 0u64;
    while pending > 0 {
        guard += 1;
        assert!(guard < 200_000_000, "mixed workload stuck");
        let t = world.next_event().expect("ops pending");
        for done in world.advance(t) {
            let i = done.tag as usize;
            let p = &mut procs[i];
            if p.remaining == 0 {
                if p.finished.is_none() {
                    p.finished = Some(done.done_at);
                    pending -= 1;
                }
                continue;
            }
            issue(
                &mut world,
                p,
                &mut rng,
                done.done_at + PROC_CPU,
                i,
                &mut bytes_read,
            );
        }
    }
    let elapsed = procs
        .iter()
        .map(|p| p.finished.expect("finished"))
        .max()
        .expect("non-empty")
        .saturating_since(start)
        .as_secs_f64();
    MixedResult {
        ops_per_sec: (readers as u64 * ops_per_proc) as f64 / elapsed,
        read_mbs: bytes_read as f64 / 1e6 / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readahead_core::{NfsHeurConfig, ReadaheadPolicy};

    fn cfg(policy: ReadaheadPolicy) -> WorldConfig {
        WorldConfig {
            policy,
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        }
    }

    #[test]
    fn mixed_workload_completes_and_reports_rates() {
        let r = run_mixed(
            Rig::ide(1),
            cfg(ReadaheadPolicy::slowdown()),
            4,
            8,
            200,
            MixRatios::default(),
            3,
        );
        assert!(r.ops_per_sec > 100.0, "{r:?}");
        assert!(r.read_mbs > 1.0, "{r:?}");
    }

    #[test]
    fn slowdown_survives_metadata_noise() {
        // The §8 question: do writes/GETATTRs interleaved into the stream
        // destroy the sequential read-ahead? SlowDown should stay close to
        // Always even with 30% non-read traffic.
        let always = run_mixed(
            Rig::ide(1),
            cfg(ReadaheadPolicy::Always),
            4,
            8,
            300,
            MixRatios::default(),
            4,
        );
        let slowdown = run_mixed(
            Rig::ide(1),
            cfg(ReadaheadPolicy::slowdown()),
            4,
            8,
            300,
            MixRatios::default(),
            4,
        );
        assert!(
            slowdown.ops_per_sec > always.ops_per_sec * 0.7,
            "slowdown {:?} vs always {:?}",
            slowdown,
            always
        );
    }

    #[test]
    fn pure_reads_degenerate_to_plain_benchmark() {
        let r = run_mixed(
            Rig::ide(1),
            cfg(ReadaheadPolicy::slowdown()),
            1,
            8,
            256,
            MixRatios {
                write_pct: 0,
                getattr_pct: 0,
            },
            5,
        );
        // 256 sequential 8 KB reads at NFS speeds: >= 10 MB/s.
        assert!(r.read_mbs > 10.0, "{r:?}");
    }

    #[test]
    #[should_panic]
    fn overfull_mix_rejected() {
        let _ = run_mixed(
            Rig::ide(1),
            cfg(ReadaheadPolicy::Default),
            1,
            8,
            10,
            MixRatios {
                write_pct: 60,
                getattr_pct: 60,
            },
            6,
        );
    }
}
