//! The paper's testbed, reassembled.
//!
//! This crate drives the substrate crates through the exact experiments of
//! the paper's evaluation: the §4.2 concurrent-reader benchmark against
//! the local file system ([`LocalBench`]) and over NFS ([`NfsBench`]), the
//! §7 stride benchmark ([`StrideBench`]), and one function per published
//! figure/table in [`experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod local;
mod mixed;
mod nfs;
mod replay;
mod report;
mod rig;
mod stride;

pub use local::{LocalBench, RunResult, READER_COUNTS};
pub use mixed::{run_mixed, MixRatios, MixedResult};
pub use nfs::NfsBench;
pub use replay::{replay, ReplayResult};
pub use report::{
    render_device_line, render_disk_line, render_endpoint_line, render_heur_line, render_tcp_line,
    Figure, Series,
};
pub use rig::Rig;
pub use stride::{stride_order, StrideBench};
