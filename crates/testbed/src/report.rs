//! Result containers and plain-text rendering for the regenerated
//! figures and tables.

use diskmodel::{DeviceReport, DiskStats};
use netsim::TcpStats;
use nfssim::ServerStats;
use simcore::{LogHist, Summary};

/// One curve of a figure: throughput (or time) against reader count.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label as in the paper's legend (`ide1`, `scsi1 / no tags`...).
    pub label: String,
    /// `(x, summary-over-runs)` points.
    pub points: Vec<(u64, Summary)>,
}

/// A regenerated figure: several series over a common x-axis.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// Axis label for x.
    pub x_label: String,
    /// Axis label for y.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the figure as an aligned text table, one row per x value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!(
            "y: {} (mean over runs, stddev in parens)\n",
            self.y_label
        ));
        let mut xs: Vec<u64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" | {:>22}", s.label));
        }
        out.push('\n');
        for x in xs {
            out.push_str(&format!("{x:>12}"));
            for s in &self.series {
                match s.points.iter().find(|(px, _)| *px == x) {
                    Some((_, sum)) => {
                        out.push_str(&format!(" | {:>14.2} ({:>5.2})", sum.mean, sum.stddev))
                    }
                    None => out.push_str(&format!(" | {:>22}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// The mean of a given series at a given x (for tests and
    /// EXPERIMENTS.md assertions).
    pub fn mean_at(&self, label: &str, x: u64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == label)?
            .points
            .iter()
            .find(|(px, _)| *px == x)
            .map(|(_, s)| s.mean)
    }
}

/// Renders the server's `nfsheur` table counters as a one-line summary
/// for experiment reports: lookup hit rate, ejections per READ (the §6.3
/// thrash signal), and live occupancy.
pub fn render_heur_line(stats: &ServerStats) -> String {
    let lookups = stats.heur_hits + stats.heur_misses;
    let hit_pct = if lookups == 0 {
        0.0
    } else {
        stats.heur_hits as f64 / lookups as f64 * 100.0
    };
    let ej_per_read = if stats.reads == 0 {
        0.0
    } else {
        stats.heur_ejections as f64 / stats.reads as f64
    };
    format!(
        "nfsheur: {lookups} lookups, {hit_pct:.1}% hits, {} ejections ({ej_per_read:.4}/READ), {} live entries",
        stats.heur_ejections, stats.heur_occupancy
    )
}

/// Renders any storage device's per-op service-time breakdown as a
/// one-line summary: where the busy time went, as percentages of busy,
/// with the device's own vocabulary — seek/rotation for a spinning
/// drive, GC-stall/die-wait for flash — plus media errors and remapped
/// sectors when the device was degraded, and any nonzero device gauges
/// (seeks, GC runs, die conflicts...). Buckets need not sum to 100% —
/// command overhead and write settle are not bucketed.
pub fn render_device_line(report: &DeviceReport) -> String {
    let busy = report.busy.as_secs_f64();
    let pct = |d: simcore::SimDuration| {
        if busy == 0.0 {
            0.0
        } else {
            d.as_secs_f64() / busy * 100.0
        }
    };
    let buckets: Vec<String> = report
        .buckets
        .iter()
        .map(|(name, d)| format!("{name} {:.1}%", pct(*d)))
        .collect();
    let mut line = format!(
        "{}: {} cmds, busy {busy:.3}s ({})",
        report.kind,
        report.commands(),
        buckets.join(", "),
    );
    if report.media_errors > 0 || report.remapped_sectors > 0 {
        line.push_str(&format!(
            ", {} media errors, {} sectors remapped",
            report.media_errors, report.remapped_sectors
        ));
    }
    for (name, v) in &report.gauges {
        if *v > 0 {
            line.push_str(&format!(", {name} {v}"));
        }
    }
    line
}

/// Renders a spinning drive's breakdown line. Kept as the HDD-typed
/// entry point; delegates to the device-agnostic [`render_device_line`].
pub fn render_disk_line(stats: &DiskStats) -> String {
    render_device_line(&stats.report())
}

/// Renders one operation class of a real-socket endpoint replay as a
/// one-line summary: call volume and the wall-clock latency quantiles
/// the client measured ([`LogHist`] in microseconds, the same histogram
/// the simulator's latency books use). Quiet classes (no calls) render
/// as an explicit "idle" so reports show what was *not* exercised.
pub fn render_endpoint_line(op: &str, h: &LogHist) -> String {
    if h.total() == 0 {
        return format!("endpoint {op}: idle");
    }
    format!(
        "endpoint {op}: {} calls, p50 {}us, p99 {}us, max {}us",
        h.total(),
        h.quantile(0.50).unwrap_or(0),
        h.quantile(0.99).unwrap_or(0),
        h.max().unwrap_or(0),
    )
}

/// Renders one direction of a client's TCP segment-engine counters as a
/// one-line summary: segment volume, retransmission rate, timeout/backoff
/// activity, and the estimator's view of the path (SRTT, worst RTO).
/// Degraded-run extras (fast retransmits, abandoned segments, reordering)
/// appear only when nonzero.
pub fn render_tcp_line(dir: &str, stats: &TcpStats) -> String {
    let retx_pct = if stats.segments_sent == 0 {
        0.0
    } else {
        stats.retransmits as f64 / stats.segments_sent as f64 * 100.0
    };
    let mut line = format!(
        "tcp {dir}: {} segments, {} retransmits ({retx_pct:.1}%), {} timeouts, {} backoffs, srtt {}, max rto {}",
        stats.segments_sent, stats.retransmits, stats.timeouts, stats.rto_backoffs, stats.srtt, stats.max_rto
    );
    if stats.fast_retransmits > 0 {
        line.push_str(&format!(", {} fast retx", stats.fast_retransmits));
    }
    if stats.lost_tracked > 0 {
        line.push_str(&format!(", {} abandoned", stats.lost_tracked));
    }
    if stats.order_violations > 0 {
        line.push_str(&format!(", {} ORDER VIOLATIONS", stats.order_violations));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            title: "Test".into(),
            x_label: "readers".into(),
            y_label: "MB/s".into(),
            series: vec![Series {
                label: "ide1".into(),
                points: vec![(1, Summary::of(&[10.0, 12.0])), (2, Summary::of(&[8.0]))],
            }],
        }
    }

    #[test]
    fn render_contains_labels_and_values() {
        let s = fig().render();
        assert!(s.contains("ide1"));
        assert!(s.contains("11.00"));
        assert!(s.contains("readers"));
    }

    #[test]
    fn mean_at_finds_points() {
        let f = fig();
        assert_eq!(f.mean_at("ide1", 1), Some(11.0));
        assert_eq!(f.mean_at("ide1", 2), Some(8.0));
        assert_eq!(f.mean_at("ide1", 99), None);
        assert_eq!(f.mean_at("nope", 1), None);
    }

    #[test]
    fn heur_line_reports_rates_and_occupancy() {
        let s = ServerStats {
            reads: 200,
            heur_hits: 150,
            heur_misses: 50,
            heur_ejections: 10,
            heur_occupancy: 7,
            ..ServerStats::default()
        };
        let line = render_heur_line(&s);
        assert!(line.contains("200 lookups"), "{line}");
        assert!(line.contains("75.0% hits"), "{line}");
        assert!(line.contains("10 ejections (0.0500/READ)"), "{line}");
        assert!(line.contains("7 live entries"), "{line}");
        assert!(
            render_heur_line(&ServerStats::default()).contains("0.0% hits"),
            "zero-lookup stats must not divide by zero"
        );
    }

    #[test]
    fn disk_line_reports_breakdown_and_faults() {
        use simcore::SimDuration;
        let mut s = DiskStats {
            reads: 90,
            writes: 10,
            busy: SimDuration::from_millis(1000),
            ..DiskStats::default()
        };
        s.breakdown.seek = SimDuration::from_millis(250);
        s.breakdown.rotation = SimDuration::from_millis(100);
        s.breakdown.transfer = SimDuration::from_millis(500);
        s.breakdown.fault_stall = SimDuration::from_millis(50);
        let line = render_disk_line(&s);
        assert!(line.contains("100 cmds"), "{line}");
        assert!(line.contains("seek 25.0%"), "{line}");
        assert!(line.contains("transfer 50.0%"), "{line}");
        assert!(line.contains("fault stall 5.0%"), "{line}");
        assert!(!line.contains("media errors"), "healthy drive: {line}");
        s.media_errors = 3;
        s.remapped_sectors = 16;
        let line = render_disk_line(&s);
        assert!(
            line.contains("3 media errors, 16 sectors remapped"),
            "{line}"
        );
        assert!(
            !render_disk_line(&DiskStats::default()).contains("NaN"),
            "idle drive must not divide by zero"
        );
    }

    #[test]
    fn device_line_speaks_the_device_vocabulary() {
        use simcore::SimDuration;
        let flash = DeviceReport {
            kind: "ssd",
            reads: 900,
            writes: 100,
            cache_hits: 0,
            busy: SimDuration::from_millis(1_000),
            media_errors: 0,
            remapped_sectors: 0,
            buckets: vec![
                ("flash read", SimDuration::from_millis(400)),
                ("gc stall", SimDuration::from_millis(250)),
                ("die wait", SimDuration::from_millis(100)),
            ],
            gauges: vec![("gc runs", 7), ("die conflicts", 0)],
        };
        let line = render_device_line(&flash);
        assert!(line.starts_with("ssd: 1000 cmds"), "{line}");
        assert!(line.contains("gc stall 25.0%"), "{line}");
        assert!(line.contains("die wait 10.0%"), "{line}");
        assert!(line.contains("gc runs 7"), "{line}");
        assert!(
            !line.contains("die conflicts"),
            "zero gauges stay quiet: {line}"
        );
        assert!(!line.contains("seek"), "no HDD vocabulary on flash: {line}");
    }

    #[test]
    fn tcp_line_reports_retransmission_and_estimator_state() {
        use simcore::SimDuration;
        let mut s = TcpStats {
            segments_sent: 200,
            delivered: 198,
            acked: 198,
            retransmits: 10,
            timeouts: 12,
            rto_backoffs: 4,
            srtt: SimDuration::from_micros(350),
            max_rto: SimDuration::from_millis(800),
            ..TcpStats::default()
        };
        let line = render_tcp_line("c2s", &s);
        assert!(line.contains("tcp c2s: 200 segments"), "{line}");
        assert!(line.contains("10 retransmits (5.0%)"), "{line}");
        assert!(line.contains("12 timeouts"), "{line}");
        assert!(line.contains("4 backoffs"), "{line}");
        assert!(!line.contains("fast retx"), "clean run: {line}");
        assert!(!line.contains("abandoned"), "clean run: {line}");
        s.fast_retransmits = 2;
        s.lost_tracked = 1;
        s.order_violations = 3;
        let line = render_tcp_line("s2c", &s);
        assert!(line.contains("2 fast retx"), "{line}");
        assert!(line.contains("1 abandoned"), "{line}");
        assert!(line.contains("3 ORDER VIOLATIONS"), "{line}");
        assert!(
            render_tcp_line("c2s", &TcpStats::default()).contains("(0.0%)"),
            "idle stream must not divide by zero"
        );
    }

    #[test]
    fn endpoint_line_reports_quantiles_and_idle_classes() {
        let mut h = LogHist::default();
        assert_eq!(render_endpoint_line("write", &h), "endpoint write: idle");
        for us in [100u64, 200, 400, 12_000] {
            h.add(us);
        }
        let line = render_endpoint_line("read", &h);
        assert!(line.contains("endpoint read: 4 calls"), "{line}");
        assert!(line.contains("p50"), "{line}");
        assert!(line.contains("p99"), "{line}");
        assert!(!line.contains("NaN"), "{line}");
    }

    #[test]
    fn render_marks_missing_points() {
        let mut f = fig();
        f.series.push(Series {
            label: "scsi1".into(),
            points: vec![(1, Summary::of(&[5.0]))],
        });
        let s = f.render();
        assert!(s.contains('-'), "missing x=2 for scsi1 rendered as dash");
    }
}
