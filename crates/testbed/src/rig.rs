//! Assembling the paper's testbed (§4.1) out of the substrate crates.
//!
//! A [`Rig`] names one server storage configuration: which drive, which of
//! its four partitions, whether tagged queueing is on, and which kernel
//! disk scheduler is loaded. `scsi1`, `ide4`, etc. in the figures are
//! exactly these rigs.

use diskmodel::{DriveModel, PartitionTable, TcqConfig};
use ffs::{FileSystem, FsConfig};
use iosched::SchedulerKind;
use simcore::SimRng;

/// One server storage configuration.
#[derive(Debug, Clone, Copy)]
pub struct Rig {
    /// Which drive model.
    pub drive: DriveModel,
    /// Partition 1 (outermost) through 4 (innermost).
    pub partition: usize,
    /// Tagged command queues enabled (ignored for drives without TCQ).
    pub tagged_queues: bool,
    /// Kernel disk scheduler.
    pub scheduler: SchedulerKind,
}

impl Rig {
    /// `scsi<partition>` with default (tags on) configuration.
    pub fn scsi(partition: usize) -> Self {
        Rig {
            drive: DriveModel::IbmDdysScsi,
            partition,
            tagged_queues: true,
            scheduler: SchedulerKind::Elevator,
        }
    }

    /// `ide<partition>` (the WD drive has no TCQ).
    pub fn ide(partition: usize) -> Self {
        Rig {
            drive: DriveModel::WdWd200bbIde,
            partition,
            tagged_queues: false,
            scheduler: SchedulerKind::Elevator,
        }
    }

    /// `tlc<partition>`: the consumer TLC flash drive. (Queueing lives in
    /// the SSD controller, not SCSI TCQ; `tagged_queues` is ignored.)
    pub fn ssd(partition: usize) -> Self {
        Rig {
            drive: DriveModel::ConsumerTlcSsd,
            partition,
            tagged_queues: false,
            scheduler: SchedulerKind::Elevator,
        }
    }

    /// `dcssd<partition>`: the datacenter flash drive.
    pub fn dcssd(partition: usize) -> Self {
        Rig {
            drive: DriveModel::DatacenterSsd,
            partition,
            tagged_queues: false,
            scheduler: SchedulerKind::Elevator,
        }
    }

    /// Returns the rig with tagged queueing disabled.
    pub fn no_tags(mut self) -> Self {
        self.tagged_queues = false;
        self
    }

    /// Returns the rig with a different kernel scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Label as used in the paper's figures (`scsi1`, `ide4`, ...).
    pub fn label(&self) -> String {
        format!("{}{}", self.drive.label(), self.partition)
    }

    /// Builds a freshly formatted file system on this rig.
    ///
    /// The server machine has 256 MB of RAM, most of it buffer cache —
    /// which the benchmark's 1.5 GB working set defeats by design.
    pub fn build_fs(&self, seed: u64) -> FileSystem {
        let rng = SimRng::from_seed_and_stream(seed, 0xD15C);
        if let Some(params) = self.drive.ssd_params() {
            let device = ssd::Ssd::new(params, rng);
            let part = PartitionTable::quarters_of(params.total_sectors).get(self.partition);
            return FileSystem::format_on(
                Box::new(device),
                part,
                self.scheduler,
                FsConfig::default(),
            );
        }
        let tcq = if self.tagged_queues && self.drive.supports_tcq() {
            self.drive.default_tcq()
        } else {
            TcqConfig::disabled()
        };
        let disk = diskmodel::Disk::new(
            self.drive.geometry(),
            self.drive.seek(),
            self.drive.mech(),
            tcq,
            self.drive.cache(),
            rng,
        );
        let part = PartitionTable::quarters(disk.geometry()).get(self.partition);
        FileSystem::format(disk, part, self.scheduler, FsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Rig::scsi(1).label(), "scsi1");
        assert_eq!(Rig::ide(4).label(), "ide4");
    }

    #[test]
    fn no_tags_disables_tcq() {
        let rig = Rig::scsi(1).no_tags();
        let fs = rig.build_fs(1);
        assert!(!fs.bio().disk().tcq().enabled);
        let rig_default = Rig::scsi(1);
        let fs2 = rig_default.build_fs(1);
        assert!(fs2.bio().disk().tcq().enabled);
    }

    #[test]
    fn ide_never_has_tcq() {
        let rig = Rig {
            tagged_queues: true,
            ..Rig::ide(1)
        };
        let fs = rig.build_fs(1);
        assert!(!fs.bio().disk().tcq().enabled, "WD200BB has no TCQ");
    }

    #[test]
    fn ssd_rigs_build_flash_backed_filesystems() {
        for rig in [Rig::ssd(1), Rig::dcssd(2)] {
            let fs = rig.build_fs(1);
            let report = fs.bio().device().report();
            assert_eq!(report.kind, "ssd", "{}", rig.label());
            assert!(report.buckets.iter().any(|(n, _)| *n == "gc stall"));
        }
        assert_eq!(Rig::ssd(1).label(), "tlc1");
        assert_eq!(Rig::dcssd(2).label(), "dcssd2");
    }

    #[test]
    fn partition_one_is_outer() {
        // Build on partitions 1 and 4 and compare first-file media rates.
        let f1 = Rig::ide(1).build_fs(1);
        let f4 = Rig::ide(4).build_fs(1);
        let g1 = f1.bio().disk().geometry().clone();
        let mut fs1 = f1;
        let mut fs4 = f4;
        let mut rng = SimRng::new(1);
        let i1 = fs1.create_file(8_192, &mut rng);
        let i4 = fs4.create_file(8_192, &mut rng);
        let lba1 = fs1.inode(i1).unwrap().lba_of(0);
        let lba4 = fs4.inode(i4).unwrap().lba_of(0);
        let r1 = g1.media_rate(g1.cylinder_of(lba1));
        let r4 = g1.media_rate(g1.cylinder_of(lba4));
        assert!(r1 > r4, "partition 1 must be on faster cylinders");
    }
}
