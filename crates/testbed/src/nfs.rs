//! The §4.2 benchmark over NFS (Figures 4–7).
//!
//! Identical to the local benchmark, but the reader processes run on the
//! client machine and every read crosses the simulated network into the
//! `nfsd` pool. The interesting knobs are the transport (UDP vs TCP), the
//! server's read-ahead policy and `nfsheur` geometry, tagged queueing, and
//! the busy-client switch.

use std::collections::HashMap;

use nfsproto::FileHandle;
use nfssim::{NfsWorld, WorldConfig};
use simcore::{SimDuration, SimTime};

use crate::local::RunResult;
use crate::rig::Rig;

/// Per-read CPU cost charged to a client reader process.
const PROC_READ_CPU: SimDuration = SimDuration::from_micros(15);

/// NFS read size used by the reader processes (= rsize).
const READ_BYTES: u64 = 8_192;

/// A populated NFS benchmark: client + network + server + files.
#[derive(Debug)]
pub struct NfsBench {
    world: NfsWorld,
    file_sets: HashMap<usize, Vec<FileHandle>>,
    total_bytes: u64,
}

impl NfsBench {
    /// Builds a world on `rig` with `config` and populates the file sets.
    pub fn new(
        rig: Rig,
        config: WorldConfig,
        reader_counts: &[usize],
        total_mb: u64,
        seed: u64,
    ) -> Self {
        let fs = rig.build_fs(seed);
        let mut world = NfsWorld::new(config, fs, seed);
        let mut file_sets = HashMap::new();
        for &n in reader_counts {
            assert!(n > 0 && total_mb.is_multiple_of(n as u64));
            let per = total_mb / n as u64 * 1024 * 1024;
            let fhs: Vec<FileHandle> = (0..n).map(|_| world.create_file(per)).collect();
            file_sets.insert(n, fhs);
        }
        NfsBench {
            world,
            file_sets,
            total_bytes: total_mb * 1024 * 1024,
        }
    }

    /// The world, for inspecting statistics after runs.
    pub fn world(&self) -> &NfsWorld {
        &self.world
    }

    /// Runs one iteration with `readers` concurrent client processes.
    pub fn run(&mut self, readers: usize) -> RunResult {
        let fhs = self
            .file_sets
            .get(&readers)
            .unwrap_or_else(|| panic!("no file set for {readers} readers"))
            .clone();
        self.world.flush_all_caches();
        self.world.reset_client_heuristics();
        let start = self.world.now();

        struct Proc {
            fh: FileHandle,
            size: u64,
            offset: u64,
            finished: Option<SimTime>,
        }
        let per = self.total_bytes / readers as u64;
        let mut procs: Vec<Proc> = fhs
            .iter()
            .map(|&fh| Proc {
                fh,
                size: per,
                offset: 0,
                finished: None,
            })
            .collect();

        for (i, p) in procs.iter_mut().enumerate() {
            self.world.read(start, p.fh, 0, READ_BYTES, i as u64);
            p.offset = READ_BYTES;
        }
        let mut pending = readers;
        let mut guard: u64 = 0;
        while pending > 0 {
            guard += 1;
            assert!(guard < 200_000_000, "NFS benchmark event loop stuck");
            let t = self
                .world
                .next_event()
                .expect("readers pending but no events");
            for done in self.world.advance(t) {
                let i = done.tag as usize;
                let p = &mut procs[i];
                if p.offset >= p.size {
                    p.finished = Some(done.done_at);
                    pending -= 1;
                    continue;
                }
                let issue_at = done.done_at + PROC_READ_CPU;
                self.world
                    .read(issue_at, p.fh, p.offset, READ_BYTES, i as u64);
                p.offset += READ_BYTES;
            }
        }
        let mut completion_secs: Vec<f64> = procs
            .iter()
            .map(|p| {
                p.finished
                    .expect("all finished")
                    .saturating_since(start)
                    .as_secs_f64()
            })
            .collect();
        completion_secs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let elapsed = *completion_secs.last().expect("non-empty");
        RunResult {
            throughput_mbs: self.total_bytes as f64 / 1e6 / elapsed,
            completion_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::TransportKind;
    use readahead_core::{NfsHeurConfig, ReadaheadPolicy};

    fn quick(cfg: WorldConfig, rig: Rig, readers: usize) -> f64 {
        let mut b = NfsBench::new(rig, cfg, &[readers], 16, 7);
        b.run(readers).throughput_mbs
    }

    #[test]
    fn nfs_is_slower_than_local() {
        let nfs = quick(WorldConfig::default(), Rig::ide(1), 1);
        let mut local = crate::local::LocalBench::new(Rig::ide(1), &[1], 16, 7);
        let loc = local.run(1).throughput_mbs;
        assert!(
            loc > nfs * 1.3,
            "RPC overhead halves throughput: local {loc:.1} vs NFS {nfs:.1}"
        );
    }

    #[test]
    fn udp_beats_tcp_for_one_reader() {
        let udp = quick(WorldConfig::default(), Rig::ide(1), 1);
        let tcp = quick(
            WorldConfig {
                transport: TransportKind::Tcp,
                ..WorldConfig::default()
            },
            Rig::ide(1),
            1,
        );
        assert!(udp > tcp * 1.3, "udp {udp:.1} vs tcp {tcp:.1}");
    }

    #[test]
    fn always_readahead_with_big_table_beats_default_at_many_readers() {
        let default = quick(WorldConfig::default(), Rig::ide(1), 16);
        let always = quick(
            WorldConfig {
                policy: ReadaheadPolicy::Always,
                heur: NfsHeurConfig::improved(),
                ..WorldConfig::default()
            },
            Rig::ide(1),
            16,
        );
        assert!(
            always > default * 1.1,
            "always {always:.1} vs default {default:.1} at 16 readers"
        );
    }

    #[test]
    fn busy_client_lowers_throughput() {
        let idle = quick(WorldConfig::default(), Rig::ide(1), 4);
        let busy = quick(
            WorldConfig {
                busy_loops: 4,
                ..WorldConfig::default()
            },
            Rig::ide(1),
            4,
        );
        assert!(busy < idle, "busy {busy:.1} vs idle {idle:.1}");
    }
}
