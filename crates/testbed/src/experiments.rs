//! One function per figure/table of the paper's evaluation.
//!
//! Every experiment averages over `scale.runs` runs (the paper uses at
//! least ten; Figure 3 uses 34) with run index folded into the seed, and
//! returns a [`Figure`] whose series carry means and standard deviations.
//! [`Scale::paper`] reproduces the published workload sizes;
//! [`Scale::quick`] is an 8x-reduced variant for smoke tests and CI.

use netsim::TransportKind;
use nfssim::WorldConfig;
use readahead_core::{NfsHeurConfig, ReadaheadPolicy};
use simcore::{OnlineStats, Summary};

use crate::local::LocalBench;
use crate::nfs::NfsBench;
use crate::report::{Figure, Series};
use crate::rig::Rig;
use crate::stride::StrideBench;
use iosched::SchedulerKind;

/// Workload sizing for an experiment batch.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Total MB read per iteration of the §4 benchmark (paper: 256).
    pub total_mb: u64,
    /// Per-process MB in the Figure 3 fairness experiment (paper: 32).
    pub fig3_proc_mb: u64,
    /// Stride file size in MB (paper: 256).
    pub stride_mb: u64,
    /// Runs per point (paper: >= 10; 34 for Figure 3).
    pub runs: u64,
    /// Reader counts to sweep.
    pub readers: &'static [usize],
}

impl Scale {
    /// The paper's published workload.
    pub fn paper() -> Self {
        Scale {
            total_mb: 256,
            fig3_proc_mb: 32,
            stride_mb: 256,
            runs: 10,
            readers: &[1, 2, 4, 8, 16, 32],
        }
    }

    /// An 8x-reduced workload for smoke tests.
    pub fn quick() -> Self {
        Scale {
            total_mb: 32,
            fig3_proc_mb: 4,
            stride_mb: 32,
            runs: 3,
            readers: &[1, 4, 16],
        }
    }

    /// A half-size workload with the full reader sweep: the shapes of the
    /// paper-scale figures at roughly a twentieth of the wall-clock cost.
    pub fn report() -> Self {
        Scale {
            total_mb: 128,
            fig3_proc_mb: 16,
            stride_mb: 128,
            runs: 5,
            readers: &[1, 2, 4, 8, 16, 32],
        }
    }

    /// Selects the scale from the `NFS_BENCH_SCALE` environment variable:
    /// `quick`, `report`, or anything else (paper scale).
    pub fn from_env() -> Self {
        match std::env::var("NFS_BENCH_SCALE") {
            Ok(v) if v == "quick" => Scale::quick(),
            Ok(v) if v == "report" => Scale::report(),
            _ => Scale::paper(),
        }
    }
}

/// Runs every (config, reader-count, run) cell of a throughput figure
/// through the `simfleet` pool and folds the results into one [`Series`]
/// per config.
///
/// Cells are keyed by a flat index (config-major, then reader, then run)
/// and folded in exactly the order the old serial loops used — per
/// config, per reader count, runs ascending — so the float accumulation
/// in [`OnlineStats`] sees the same values in the same order and every
/// figure byte is identical at any `NFS_BENCH_JOBS` width.
fn throughput_matrix<C: Sync>(
    scale: Scale,
    configs: &[(C, String)],
    run: impl Fn(&C, usize, u64) -> f64 + Sync,
) -> Vec<Series> {
    let readers = scale.readers;
    let runs = scale.runs as usize;
    let per_cfg = readers.len() * runs;
    let cells = simfleet::run_indexed(configs.len() * per_cfg, |idx| {
        let ci = idx / per_cfg;
        let rem = idx % per_cfg;
        run(&configs[ci].0, readers[rem / runs], (rem % runs) as u64)
    });
    configs
        .iter()
        .enumerate()
        .map(|(ci, (_, label))| {
            let points = readers
                .iter()
                .enumerate()
                .map(|(ri, &n)| {
                    let mut stats = OnlineStats::new();
                    for r in 0..runs {
                        stats.add(cells[ci * per_cfg + ri * runs + r]);
                    }
                    (n as u64, stats.summary())
                })
                .collect();
            Series {
                label: label.clone(),
                points,
            }
        })
        .collect()
}

/// Figure 1: the ZCAV effect on local drives.
pub fn fig1_zcav(scale: Scale, seed: u64) -> Figure {
    let rigs = [Rig::ide(1), Rig::ide(4), Rig::scsi(1), Rig::scsi(4)];
    let configs: Vec<(Rig, String)> = rigs.iter().map(|r| (*r, r.label())).collect();
    let series = throughput_matrix(scale, &configs, |rig, n, r| {
        let mut b = LocalBench::new(*rig, scale.readers, scale.total_mb, seed + r);
        b.run(n).throughput_mbs
    });
    Figure {
        title: "Figure 1: The ZCAV Effect on Local Drives".into(),
        x_label: "readers".into(),
        y_label: "Throughput (MB/s)".into(),
        series,
    }
}

/// Figure 2: tagged command queues and ZCAV on the SCSI drive.
pub fn fig2_tagged_queues(scale: Scale, seed: u64) -> Figure {
    let configs: Vec<(Rig, String)> = [
        (Rig::scsi(1).no_tags(), "scsi1 / no tags"),
        (Rig::scsi(4).no_tags(), "scsi4 / no tags"),
        (Rig::scsi(1), "scsi1 / tags"),
        (Rig::scsi(4), "scsi4 / tags"),
    ]
    .map(|(r, l)| (r, l.to_string()))
    .into();
    let series = throughput_matrix(scale, &configs, |rig, n, r| {
        let mut b = LocalBench::new(*rig, scale.readers, scale.total_mb, seed + r);
        b.run(n).throughput_mbs
    });
    Figure {
        title: "Figure 2: Tagged Queues and ZCAV - Local SCSI Drive".into(),
        x_label: "readers".into(),
        y_label: "Throughput (MB/s)".into(),
        series,
    }
}

/// Figure 3: per-process completion-time distribution, 8 concurrent
/// readers, Elevator vs N-CSCAN (x = k-th process to finish).
pub fn fig3_fairness(scale: Scale, seed: u64) -> Figure {
    let readers = 8usize;
    let configs = [
        (Rig::scsi(1).no_tags(), "scsi1 / Elevator / no tags"),
        (Rig::ide(1), "ide1 / Elevator"),
        (Rig::scsi(1), "scsi1 / Elevator / tags"),
        (
            Rig::scsi(1).with_scheduler(SchedulerKind::NCscan),
            "scsi1 / N-CSCAN / tags",
        ),
        (
            Rig::scsi(1).no_tags().with_scheduler(SchedulerKind::NCscan),
            "scsi1 / N-CSCAN / no tags",
        ),
        (
            Rig::ide(1).with_scheduler(SchedulerKind::NCscan),
            "ide1 / N-CSCAN",
        ),
    ];
    let total_mb = scale.fig3_proc_mb * readers as u64;
    // Cells are (config, run) pairs, each yielding the full per-rank
    // completion vector; folded config-major in run order, as before.
    let runs = scale.runs as usize;
    let cells = simfleet::run_indexed(configs.len() * runs, |idx| {
        let (rig, _) = &configs[idx / runs];
        let r = (idx % runs) as u64;
        let mut b = LocalBench::new(*rig, &[readers], total_mb, seed + r);
        b.run(readers).completion_secs
    });
    let series = configs
        .iter()
        .enumerate()
        .map(|(ci, (_, label))| {
            let mut per_rank: Vec<OnlineStats> = (0..readers).map(|_| OnlineStats::new()).collect();
            for r in 0..runs {
                for (k, &t) in cells[ci * runs + r].iter().enumerate() {
                    per_rank[k].add(t);
                }
            }
            Series {
                label: label.to_string(),
                points: per_rank
                    .iter()
                    .enumerate()
                    .map(|(k, s)| (k as u64 + 1, s.summary()))
                    .collect(),
            }
        })
        .collect();
    Figure {
        title: "Figure 3: Time to Completion by Processes Completed (8 readers)".into(),
        x_label: "kth done".into(),
        y_label: "Time to Completion (s)".into(),
        series,
    }
}

fn nfs_figure(scale: Scale, seed: u64, title: &str, transport: TransportKind) -> Figure {
    let base = WorldConfig {
        transport,
        ..WorldConfig::default()
    };
    let configs: Vec<((Rig, WorldConfig), String)> = [
        (Rig::ide(1), base, "ide1"),
        (Rig::ide(4), base, "ide4"),
        (Rig::scsi(1), base, "scsi1"),
        (Rig::scsi(4), base, "scsi4"),
        (Rig::ide(1), base, "ide1 / no tags"), // ide has no tags anyway; kept for parity
        (Rig::scsi(1).no_tags(), base, "scsi1 / no tags"),
    ]
    .map(|(rig, cfg, l)| ((rig, cfg), l.to_string()))
    .into();
    let series = throughput_matrix(scale, &configs, |(rig, cfg), n, r| {
        let mut b = NfsBench::new(*rig, *cfg, scale.readers, scale.total_mb, seed + r);
        b.run(n).throughput_mbs
    });
    Figure {
        title: title.into(),
        x_label: "readers".into(),
        y_label: "Throughput (MB/s)".into(),
        series,
    }
}

/// Figure 4: NFS over UDP (default settings and no tagged queues).
pub fn fig4_nfs_udp(scale: Scale, seed: u64) -> Figure {
    nfs_figure(scale, seed, "Figure 4: NFS over UDP", TransportKind::Udp)
}

/// Figure 5: NFS over TCP (default settings and no tagged queues).
pub fn fig5_nfs_tcp(scale: Scale, seed: u64) -> Figure {
    nfs_figure(scale, seed, "Figure 5: NFS over TCP", TransportKind::Tcp)
}

/// Figure 6: Always vs Default read-ahead, idle and busy client
/// (`ide1` via NFS over UDP).
pub fn fig6_readahead_potential(scale: Scale, seed: u64) -> Figure {
    let mk = |policy, busy| WorldConfig {
        policy,
        busy_loops: busy,
        ..WorldConfig::default()
    };
    let configs: Vec<(WorldConfig, String)> = [
        (mk(ReadaheadPolicy::Always, 0), "Always RA / idle"),
        (mk(ReadaheadPolicy::Default, 0), "Default RA / idle"),
        (mk(ReadaheadPolicy::Always, 4), "Always RA / busy"),
        (mk(ReadaheadPolicy::Default, 4), "Default RA / busy"),
    ]
    .map(|(c, l)| (c, l.to_string()))
    .into();
    let series = throughput_matrix(scale, &configs, |cfg, n, r| {
        let mut b = NfsBench::new(Rig::ide(1), *cfg, scale.readers, scale.total_mb, seed + r);
        b.run(n).throughput_mbs
    });
    Figure {
        title: "Figure 6: Always vs Default Read-Ahead (ide1, NFS/UDP)".into(),
        x_label: "readers".into(),
        y_label: "Throughput (MB/s)".into(),
        series,
    }
}

/// Figure 7: SlowDown and the new nfsheur table (`ide1`, UDP, busy client).
pub fn fig7_slowdown_nfsheur(scale: Scale, seed: u64) -> Figure {
    let mk = |policy, heur| WorldConfig {
        policy,
        heur,
        busy_loops: 4,
        ..WorldConfig::default()
    };
    let configs: Vec<(WorldConfig, String)> = [
        (
            mk(ReadaheadPolicy::Always, NfsHeurConfig::improved()),
            "Always Read-ahead",
        ),
        (
            mk(ReadaheadPolicy::slowdown(), NfsHeurConfig::improved()),
            "SlowDown / New nfsheur",
        ),
        (
            mk(ReadaheadPolicy::Default, NfsHeurConfig::improved()),
            "Default / New nfsheur",
        ),
        (
            mk(ReadaheadPolicy::Default, NfsHeurConfig::freebsd_default()),
            "Default / Default nfsheur",
        ),
    ]
    .map(|(c, l)| (c, l.to_string()))
    .into();
    let series = throughput_matrix(scale, &configs, |cfg, n, r| {
        let mut b = NfsBench::new(Rig::ide(1), *cfg, scale.readers, scale.total_mb, seed + r);
        b.run(n).throughput_mbs
    });
    Figure {
        title: "Figure 7: SlowDown and the New nfsheur Table (ide1, UDP, busy client)".into(),
        x_label: "readers".into(),
        y_label: "Throughput (MB/s)".into(),
        series,
    }
}

/// Figure 8 / Table 1: stride-read throughput, default vs cursor
/// read-ahead, on `scsi1` and `ide1` over UDP.
pub fn fig8_table1_stride(scale: Scale, seed: u64) -> Figure {
    let strides = [2u64, 4, 8];
    let mk = |policy| WorldConfig {
        policy,
        heur: NfsHeurConfig::improved(),
        ..WorldConfig::default()
    };
    let configs = [
        (
            Rig::scsi(1),
            mk(ReadaheadPolicy::cursor()),
            "scsi1 / Cursor",
        ),
        (Rig::ide(1), mk(ReadaheadPolicy::cursor()), "ide1 / Cursor"),
        (
            Rig::scsi(1),
            mk(ReadaheadPolicy::Default),
            "scsi1 / default",
        ),
        (Rig::ide(1), mk(ReadaheadPolicy::Default), "ide1 / default"),
    ];
    // Cells are (config, stride, run) triples, flattened config-major.
    let runs = scale.runs as usize;
    let per_cfg = strides.len() * runs;
    let cells = simfleet::run_indexed(configs.len() * per_cfg, |idx| {
        let (rig, cfg, _) = &configs[idx / per_cfg];
        let rem = idx % per_cfg;
        let s = strides[rem / runs];
        let r = (rem % runs) as u64;
        let mut b = StrideBench::new(*rig, *cfg, scale.stride_mb, seed + r);
        b.run(s)
    });
    let series = configs
        .iter()
        .enumerate()
        .map(|(ci, (_, _, label))| {
            let points = strides
                .iter()
                .enumerate()
                .map(|(si, &s)| {
                    let mut stats = OnlineStats::new();
                    for r in 0..runs {
                        stats.add(cells[ci * per_cfg + si * runs + r]);
                    }
                    (s, stats.summary())
                })
                .collect();
            Series {
                label: label.to_string(),
                points,
            }
        })
        .collect();
    Figure {
        title: "Figure 8 / Table 1: Throughput for Stride Readers using UDP".into(),
        x_label: "strides".into(),
        y_label: "Throughput (MB/s)".into(),
        series,
    }
}

/// Renders Table 1 in the paper's layout from the Figure 8 data.
pub fn render_table1(fig8: &Figure) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Mean throughput (MB/s) of stride reads of a 256 MB file\n");
    out.push_str(&format!(
        "{:<10} {:<14} {:>14} {:>14} {:>14}\n",
        "File Sys", "Heuristic", "s = 2", "s = 4", "s = 8"
    ));
    for (rig, heuristics) in [
        ("ide1", ["ide1 / default", "ide1 / Cursor"]),
        ("scsi1", ["scsi1 / default", "scsi1 / Cursor"]),
    ] {
        for label in heuristics {
            let kind = if label.contains("Cursor") {
                "UDP/Cursor"
            } else {
                "UDP/Default"
            };
            out.push_str(&format!("{rig:<10} {kind:<14}"));
            for s in [2u64, 4, 8] {
                let cell: Option<Summary> = fig8
                    .series
                    .iter()
                    .find(|se| se.label == label)
                    .and_then(|se| se.points.iter().find(|(x, _)| *x == s))
                    .map(|(_, su)| *su);
                match cell {
                    Some(su) => out.push_str(&format!(" {:>7.2} ({:.2})", su.mean, su.stddev)),
                    None => out.push_str(&format!(" {:>14}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            total_mb: 16,
            fig3_proc_mb: 2,
            stride_mb: 16,
            runs: 1,
            readers: &[1, 4],
        }
    }

    #[test]
    fn fig1_has_four_series_with_zcav_ordering() {
        let f = fig1_zcav(tiny(), 5);
        assert_eq!(f.series.len(), 4);
        let ide1 = f.mean_at("ide1", 1).unwrap();
        let ide4 = f.mean_at("ide4", 1).unwrap();
        assert!(ide1 > ide4, "ZCAV: ide1 {ide1:.1} > ide4 {ide4:.1}");
    }

    #[test]
    fn fig2_no_tags_beats_tags_at_concurrency() {
        let f = fig2_tagged_queues(tiny(), 5);
        let no_tags = f.mean_at("scsi1 / no tags", 4).unwrap();
        let tags = f.mean_at("scsi1 / tags", 4).unwrap();
        assert!(no_tags > tags, "no-tags {no_tags:.1} vs tags {tags:.1}");
    }

    #[test]
    fn fig8_cursor_wins() {
        let f = fig8_table1_stride(tiny(), 5);
        let cur = f.mean_at("scsi1 / Cursor", 4).unwrap();
        let def = f.mean_at("scsi1 / default", 4).unwrap();
        assert!(cur > def * 1.4, "cursor {cur:.2} vs default {def:.2}");
        let t = render_table1(&f);
        assert!(t.contains("UDP/Cursor"));
        assert!(t.contains("ide1"));
    }

    #[test]
    fn scale_from_env_defaults_to_paper() {
        let s = Scale::paper();
        assert_eq!(s.total_mb, 256);
        assert_eq!(s.readers.len(), 6);
    }
}
