//! The §7 stride-read benchmark (Figure 8 / Table 1).
//!
//! A single process reads one 256 MB file in an `s`-stride pattern: the
//! interleaving of `s` sequential subcomponents. For `s = 2` the block
//! order is `0, N/2, 1, N/2+1, 2, N/2+2, ...`; the generalization visits
//! block `k*N/s + i` for `i = 0..N/s`, `k = 0..s`. To the default
//! heuristic this looks random; the cursor heuristic recognizes all `s`
//! subcomponents.

use nfsproto::FileHandle;
use nfssim::{NfsWorld, WorldConfig};
use simcore::SimDuration;

use crate::rig::Rig;

const READ_BYTES: u64 = 8_192;
const PROC_READ_CPU: SimDuration = SimDuration::from_micros(15);

/// Generates the block visit order for an `s`-stride over `nblocks`.
///
/// # Panics
///
/// Panics unless `s` divides `nblocks` evenly and `s > 0`.
pub fn stride_order(nblocks: u64, s: u64) -> Vec<u64> {
    assert!(
        s > 0 && nblocks.is_multiple_of(s),
        "s={s} must divide nblocks={nblocks}"
    );
    let per = nblocks / s;
    let mut order = Vec::with_capacity(nblocks as usize);
    for i in 0..per {
        for k in 0..s {
            order.push(k * per + i);
        }
    }
    order
}

/// One stride benchmark world: a single file on one rig.
#[derive(Debug)]
pub struct StrideBench {
    world: NfsWorld,
    fh: FileHandle,
    size: u64,
}

impl StrideBench {
    /// Builds the world and creates the file (`file_mb` = 256 in the paper).
    pub fn new(rig: Rig, config: WorldConfig, file_mb: u64, seed: u64) -> Self {
        let fs = rig.build_fs(seed);
        let mut world = NfsWorld::new(config, fs, seed);
        let size = file_mb * 1024 * 1024;
        let fh = world.create_file(size);
        StrideBench { world, fh, size }
    }

    /// The world, for statistics.
    pub fn world(&self) -> &NfsWorld {
        &self.world
    }

    /// Reads the whole file in an `s`-stride pattern; returns MB/s.
    /// "The cache is flushed before each run" (Table 1).
    pub fn run(&mut self, s: u64) -> f64 {
        self.world.flush_all_caches();
        self.world.reset_client_heuristics();
        let nblocks = self.size / READ_BYTES;
        let order = stride_order(nblocks, s);
        let start = self.world.now();
        let mut now = start;
        for &blk in &order {
            self.world
                .read(now, self.fh, blk * READ_BYTES, READ_BYTES, blk);
            // The stride reader is strictly serial: wait for this read.
            loop {
                let t = self.world.next_event().expect("read pending but no events");
                let done = self.world.advance(t);
                now = now.max(t);
                if let Some(d) = done.iter().find(|d| d.tag == blk) {
                    now = d.done_at + PROC_READ_CPU;
                    break;
                }
            }
        }
        self.size as f64 / 1e6 / now.saturating_since(start).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readahead_core::{NfsHeurConfig, ReadaheadPolicy};

    #[test]
    fn stride_order_is_a_permutation() {
        for s in [1, 2, 4, 8] {
            let mut o = stride_order(64, s);
            o.sort_unstable();
            assert_eq!(o, (0..64).collect::<Vec<_>>(), "s={s}");
        }
    }

    #[test]
    fn stride_order_interleaves() {
        let o = stride_order(8, 2);
        assert_eq!(o, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn stride_order_rejects_ragged() {
        let _ = stride_order(10, 4);
    }

    fn run(policy: ReadaheadPolicy, s: u64) -> f64 {
        let cfg = WorldConfig {
            policy,
            heur: NfsHeurConfig::improved(),
            ..WorldConfig::default()
        };
        let mut b = StrideBench::new(Rig::scsi(1), cfg, 32, 11);
        b.run(s)
    }

    #[test]
    fn cursor_beats_default_on_stride() {
        let default = run(ReadaheadPolicy::Default, 4);
        let cursor = run(ReadaheadPolicy::cursor(), 4);
        assert!(
            cursor > default * 1.4,
            "Table 1's headline: cursor {cursor:.2} vs default {default:.2} MB/s"
        );
    }

    #[test]
    fn stride_throughput_is_latency_bound_not_seek_bound() {
        // Even the default heuristic rides the drive's prefetch segments:
        // §7's numbers are MB/s, not KB/s.
        let default = run(ReadaheadPolicy::Default, 2);
        assert!(
            default > 3.0,
            "drive cache must save the default case: {default:.2} MB/s"
        );
    }
}
