//! XDR (RFC 1832) primitive encoding.
//!
//! SUN RPC and NFS encode everything as big-endian 32-bit aligned items.
//! This is a faithful subset: integers, booleans, fixed and
//! variable-length opaques, and strings, with 4-byte padding.

use std::fmt;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The buffer ended before the item was complete.
    Truncated {
        /// Bytes needed beyond what was available.
        needed: usize,
    },
    /// A boolean was neither 0 nor 1.
    BadBool(u32),
    /// A variable-length item declared an unreasonable size.
    BadLength(u32),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A discriminant (message type, procedure number, enum code…) had a
    /// value outside its legal set. `what` names the field.
    BadEnum {
        /// The field whose discriminant was illegal.
        what: &'static str,
        /// The offending wire value.
        value: u32,
    },
    /// The peer sent an RPC reply with `reply_stat` MSG_DENIED (auth
    /// failure or RPC version mismatch); the payload carries no result.
    RpcDenied {
        /// The `rejected_reply` discriminant (0 = RPC_MISMATCH, 1 =
        /// AUTH_ERROR).
        reason: u32,
    },
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated { needed } => {
                write!(f, "XDR buffer truncated ({needed} more bytes needed)")
            }
            XdrError::BadBool(v) => write!(f, "XDR boolean with value {v}"),
            XdrError::BadLength(v) => write!(f, "XDR length {v} exceeds limit"),
            XdrError::BadUtf8 => write!(f, "XDR string is not UTF-8"),
            XdrError::BadEnum { what, value } => {
                write!(f, "XDR {what} discriminant {value} is illegal")
            }
            XdrError::RpcDenied { reason } => {
                write!(f, "RPC reply was MSG_DENIED (rejected_reply {reason})")
            }
        }
    }
}

impl std::error::Error for XdrError {}

/// Largest variable-length item we accept (matches typical NFS rsize caps).
pub const MAX_OPAQUE: u32 = 1 << 20;

/// Append-only XDR encoder.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        XdrEncoder::default()
    }

    /// Creates an encoder that appends into `buf`, reusing its capacity.
    ///
    /// The buffer is cleared first; its allocation is kept, so encoding a
    /// message into a recycled buffer does no heap allocation once the
    /// buffer has grown to the message size.
    pub fn into_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        XdrEncoder { buf }
    }

    /// Finishes encoding, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Encodes an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes an unsigned 64-bit integer (two XDR words).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Encodes a boolean.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u32(u32::from(v))
    }

    /// Encodes a fixed-length opaque (padded to 4 bytes).
    pub fn put_opaque_fixed(&mut self, data: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(data);
        self.pad();
        self
    }

    /// Encodes a variable-length opaque (length + data + padding).
    pub fn put_opaque(&mut self, data: &[u8]) -> &mut Self {
        self.put_u32(u32::try_from(data.len()).expect("opaque too large"));
        self.put_opaque_fixed(data)
    }

    /// Encodes a string.
    pub fn put_string(&mut self, s: &str) -> &mut Self {
        self.put_opaque(s.as_bytes())
    }

    fn pad(&mut self) {
        while !self.buf.len().is_multiple_of(4) {
            self.buf.push(0);
        }
    }
}

/// Cursor-based XDR decoder.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Creates a decoder over a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        XdrDecoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::Truncated {
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decodes a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Decodes an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Decodes a boolean (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::BadBool(v)),
        }
    }

    /// Decodes a fixed-length opaque of `n` bytes (consuming padding).
    pub fn get_opaque_fixed(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(n)?;
        let pad = (4 - n % 4) % 4;
        self.take(pad)?;
        Ok(data)
    }

    /// Decodes a variable-length opaque.
    pub fn get_opaque(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()?;
        if len > MAX_OPAQUE {
            return Err(XdrError::BadLength(len));
        }
        self.get_opaque_fixed(len as usize)
    }

    /// Decodes a string.
    pub fn get_string(&mut self) -> Result<&'a str, XdrError> {
        std::str::from_utf8(self.get_opaque()?).map_err(|_| XdrError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_is_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x0102_0304);
        let buf = e.finish();
        assert_eq!(buf, vec![1, 2, 3, 4]);
        assert_eq!(XdrDecoder::new(&buf).get_u32().unwrap(), 0x0102_0304);
    }

    #[test]
    fn u64_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_u64(u64::MAX - 5);
        let buf = e.finish();
        assert_eq!(buf.len(), 8);
        assert_eq!(XdrDecoder::new(&buf).get_u64().unwrap(), u64::MAX - 5);
    }

    #[test]
    fn i32_negative_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_i32(-7);
        let buf = e.finish();
        assert_eq!(XdrDecoder::new(&buf).get_i32().unwrap(), -7);
    }

    #[test]
    fn bool_roundtrip_and_validation() {
        let mut e = XdrEncoder::new();
        e.put_bool(true).put_bool(false);
        let buf = e.finish();
        let mut d = XdrDecoder::new(&buf);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        let bad = 7u32.to_be_bytes();
        assert_eq!(XdrDecoder::new(&bad).get_bool(), Err(XdrError::BadBool(7)));
    }

    #[test]
    fn opaque_pads_to_four() {
        let mut e = XdrEncoder::new();
        e.put_opaque(b"abcde");
        let buf = e.finish();
        assert_eq!(buf.len(), 4 + 8, "length word + 5 bytes padded to 8");
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_opaque().unwrap(), b"abcde");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn string_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_string("nfsheur");
        let buf = e.finish();
        assert_eq!(XdrDecoder::new(&buf).get_string().unwrap(), "nfsheur");
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let buf = [0u8; 2];
        assert_eq!(
            XdrDecoder::new(&buf).get_u32(),
            Err(XdrError::Truncated { needed: 2 })
        );
    }

    #[test]
    fn oversized_opaque_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(MAX_OPAQUE + 1);
        let buf = e.finish();
        assert_eq!(
            XdrDecoder::new(&buf).get_opaque(),
            Err(XdrError::BadLength(MAX_OPAQUE + 1))
        );
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[0xff, 0xfe]);
        let buf = e.finish();
        assert_eq!(XdrDecoder::new(&buf).get_string(), Err(XdrError::BadUtf8));
    }

    #[test]
    fn mixed_sequence_roundtrip() {
        let mut e = XdrEncoder::new();
        e.put_u32(1)
            .put_string("file")
            .put_u64(1 << 40)
            .put_bool(true)
            .put_opaque(&[9; 13]);
        let buf = e.finish();
        assert_eq!(buf.len() % 4, 0, "always word aligned");
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(d.get_u32().unwrap(), 1);
        assert_eq!(d.get_string().unwrap(), "file");
        assert_eq!(d.get_u64().unwrap(), 1 << 40);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_opaque().unwrap(), &[9; 13]);
        assert_eq!(d.remaining(), 0);
    }
}
