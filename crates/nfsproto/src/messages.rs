//! NFS v3 message subset (RFC 1813) over SUN RPC (RFC 1831) headers.
//!
//! Only what the paper's workloads exercise: READ (the star of the show),
//! WRITE and GETATTR/LOOKUP (for the mixed-workload extension), and
//! READDIR/READDIRPLUS (for the metadata-heavy tree-walk workloads). Data
//! payloads — write bytes, read bytes, directory entry lists — are carried
//! as *lengths*, not bytes: the simulator transfers time, not content. But
//! every header field is really encoded and decoded, and
//! `wire_bytes() == encode().len() + elided payload` holds for every
//! variant (a property test pins it), so wire sizes are honest.

use crate::rpc::{AcceptStat, CallHeader, ReplyHeader};
use crate::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// The NFS program number.
pub const NFS_PROGRAM: u32 = 100_003;
/// Protocol version modelled (v3; v2 differs only in widths we don't rely on).
pub const NFS_VERSION: u32 = 3;
/// Size of a SUN RPC call header with AUTH_UNIX, as we encode it.
pub const RPC_CALL_HEADER_BYTES: u64 = 40;
/// Size of a SUN RPC accepted-reply header.
pub const RPC_REPLY_HEADER_BYTES: u64 = 24;

/// An NFS file handle: opaque to clients, meaningful to the server.
///
/// Ours carries the file-system id and inode number — enough for the
/// `nfsheur` hash, which in FreeBSD is computed from exactly these fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle {
    /// File-system identifier.
    pub fsid: u32,
    /// Inode number.
    pub ino: u64,
    /// Generation number (guards against stale handles).
    pub generation: u32,
}

impl FileHandle {
    /// Encodes as a fixed 16-byte NFS3 handle.
    pub fn encode(&self, e: &mut XdrEncoder) {
        let mut bytes = [0u8; 16];
        bytes[0..4].copy_from_slice(&self.fsid.to_be_bytes());
        bytes[4..12].copy_from_slice(&self.ino.to_be_bytes());
        bytes[12..16].copy_from_slice(&self.generation.to_be_bytes());
        e.put_opaque(&bytes);
    }

    /// Decodes a handle encoded by [`FileHandle::encode`].
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let raw = d.get_opaque()?;
        if raw.len() != 16 {
            return Err(XdrError::BadLength(raw.len() as u32));
        }
        Ok(FileHandle {
            fsid: u32::from_be_bytes(raw[0..4].try_into().expect("len checked")),
            ino: u64::from_be_bytes(raw[4..12].try_into().expect("len checked")),
            generation: u32::from_be_bytes(raw[12..16].try_into().expect("len checked")),
        })
    }
}

/// NFS procedure numbers (RFC 1813 §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NfsProc {
    /// Fetch attributes.
    Getattr,
    /// Name lookup.
    Lookup,
    /// Read file data.
    Read,
    /// Write file data.
    Write,
    /// Read directory entries.
    Readdir,
    /// Read directory entries with attributes and handles.
    Readdirplus,
    /// Commit cached writes to stable storage.
    Commit,
}

impl NfsProc {
    /// RFC 1813 procedure number.
    pub fn number(self) -> u32 {
        match self {
            NfsProc::Getattr => 1,
            NfsProc::Lookup => 3,
            NfsProc::Read => 6,
            NfsProc::Write => 7,
            NfsProc::Readdir => 16,
            NfsProc::Readdirplus => 17,
            NfsProc::Commit => 21,
        }
    }

    /// Inverse of [`NfsProc::number`].
    pub fn from_number(n: u32) -> Option<Self> {
        match n {
            1 => Some(NfsProc::Getattr),
            3 => Some(NfsProc::Lookup),
            6 => Some(NfsProc::Read),
            7 => Some(NfsProc::Write),
            16 => Some(NfsProc::Readdir),
            17 => Some(NfsProc::Readdirplus),
            21 => Some(NfsProc::Commit),
            _ => None,
        }
    }
}

/// WRITE stability level (RFC 1813 §3.3.7 `stable_how`).
///
/// `Unstable` is the async-write trap: the server may reply before the
/// data reaches stable storage, and the client must hold the data for
/// rewrite until a COMMIT whose verifier matches the WRITE replies'.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StableHow {
    /// Server may cache the data and reply immediately.
    Unstable,
    /// Data (not necessarily metadata) on stable storage before reply.
    DataSync,
    /// Data and metadata on stable storage before reply.
    FileSync,
}

impl StableHow {
    /// RFC 1813 enum value.
    pub fn code(self) -> u32 {
        match self {
            StableHow::Unstable => 0,
            StableHow::DataSync => 1,
            StableHow::FileSync => 2,
        }
    }

    /// Inverse of [`StableHow::code`].
    pub fn from_code(c: u32) -> Option<Self> {
        match c {
            0 => Some(StableHow::Unstable),
            1 => Some(StableHow::DataSync),
            2 => Some(StableHow::FileSync),
            _ => None,
        }
    }
}

/// Derives a server write verifier (RFC 1813 `writeverf3`) from a server
/// instance id and its boot epoch (restart count).
///
/// The verifier is an opaque 8-byte cookie that must change whenever the
/// server may have lost cached-but-uncommitted write data — in practice,
/// on every reboot. A client comparing the verifier in a COMMIT (or
/// later WRITE) reply against the one it saw at WRITE time detects the
/// crash window and rewrites. splitmix64 finalization makes distinct
/// epochs map to distinct cookies for any fixed instance.
pub fn write_verf(instance: u64, boot_epoch: u64) -> u64 {
    let mut z = instance
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(boot_epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// NFS status codes we use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsStatus {
    /// Success.
    Ok,
    /// No such file.
    NoEnt,
    /// Stale file handle.
    Stale,
    /// I/O error.
    Io,
}

impl NfsStatus {
    fn code(self) -> u32 {
        match self {
            NfsStatus::Ok => 0,
            NfsStatus::NoEnt => 2,
            NfsStatus::Io => 5,
            NfsStatus::Stale => 70,
        }
    }

    fn from_code(c: u32) -> Option<Self> {
        match c {
            0 => Some(NfsStatus::Ok),
            2 => Some(NfsStatus::NoEnt),
            5 => Some(NfsStatus::Io),
            70 => Some(NfsStatus::Stale),
            _ => None,
        }
    }
}

/// An NFS call (client to server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsCall {
    /// GETATTR.
    Getattr {
        /// Target file.
        fh: FileHandle,
    },
    /// LOOKUP of `name` in directory `dir`.
    Lookup {
        /// Directory handle.
        dir: FileHandle,
        /// Component name.
        name: String,
    },
    /// READ of `count` bytes at `offset`.
    Read {
        /// Target file.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Bytes requested.
        count: u32,
    },
    /// WRITE of `count` bytes at `offset` (payload carried as length only).
    Write {
        /// Target file.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Bytes written.
        count: u32,
        /// Requested stability level.
        stable: StableHow,
    },
    /// READDIR of `dir`, continuing from `cookie`.
    Readdir {
        /// Directory handle.
        dir: FileHandle,
        /// Resume cookie (0 = start of directory).
        cookie: u64,
        /// Cookie verifier from the previous reply (0 on the first call).
        cookieverf: u64,
        /// Maximum reply bytes the client will accept.
        count: u32,
    },
    /// READDIRPLUS of `dir`: entries plus attributes and handles.
    Readdirplus {
        /// Directory handle.
        dir: FileHandle,
        /// Resume cookie (0 = start of directory).
        cookie: u64,
        /// Cookie verifier from the previous reply (0 on the first call).
        cookieverf: u64,
        /// Maximum bytes of directory information (names and cookies).
        dircount: u32,
        /// Maximum total reply bytes, attributes included.
        maxcount: u32,
    },
    /// COMMIT of the byte range `[offset, offset + count)` (`count` 0 =
    /// everything) to stable storage.
    Commit {
        /// Target file.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Bytes to commit (0 means to EOF).
        count: u32,
    },
}

impl NfsCall {
    /// The procedure this call invokes.
    pub fn proc(&self) -> NfsProc {
        match self {
            NfsCall::Getattr { .. } => NfsProc::Getattr,
            NfsCall::Lookup { .. } => NfsProc::Lookup,
            NfsCall::Read { .. } => NfsProc::Read,
            NfsCall::Write { .. } => NfsProc::Write,
            NfsCall::Readdir { .. } => NfsProc::Readdir,
            NfsCall::Readdirplus { .. } => NfsProc::Readdirplus,
            NfsCall::Commit { .. } => NfsProc::Commit,
        }
    }

    /// The file handle the call targets.
    pub fn fh(&self) -> FileHandle {
        match self {
            NfsCall::Getattr { fh }
            | NfsCall::Read { fh, .. }
            | NfsCall::Write { fh, .. }
            | NfsCall::Commit { fh, .. } => *fh,
            NfsCall::Lookup { dir, .. }
            | NfsCall::Readdir { dir, .. }
            | NfsCall::Readdirplus { dir, .. } => *dir,
        }
    }

    /// Encodes the call with its RPC header.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        self.encode_into(xid, Vec::new())
    }

    /// Encodes the call into a recycled buffer, reusing its capacity.
    ///
    /// The buffer is cleared first. This is the allocation-free path the
    /// simulator's hot loop uses: once a buffer has grown to the size of
    /// the largest message, re-encoding into it touches no allocator.
    pub fn encode_into(&self, xid: u32, buf: Vec<u8>) -> Vec<u8> {
        let mut e = XdrEncoder::into_buf(buf);
        CallHeader {
            xid,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc_num: self.proc().number(),
        }
        .encode(&mut e);
        debug_assert_eq!(e.len() as u64, RPC_CALL_HEADER_BYTES + 8);
        match self {
            NfsCall::Getattr { fh } => fh.encode(&mut e),
            NfsCall::Lookup { dir, name } => {
                dir.encode(&mut e);
                e.put_string(name);
            }
            NfsCall::Read { fh, offset, count } => {
                fh.encode(&mut e);
                e.put_u64(*offset);
                e.put_u32(*count);
            }
            NfsCall::Write {
                fh,
                offset,
                count,
                stable,
            } => {
                fh.encode(&mut e);
                e.put_u64(*offset);
                e.put_u32(*count);
                e.put_u32(stable.code());
                e.put_u32(*count); // opaque data length (bytes elided)
            }
            NfsCall::Readdir {
                dir,
                cookie,
                cookieverf,
                count,
            } => {
                dir.encode(&mut e);
                e.put_u64(*cookie);
                e.put_u64(*cookieverf);
                e.put_u32(*count);
            }
            NfsCall::Readdirplus {
                dir,
                cookie,
                cookieverf,
                dircount,
                maxcount,
            } => {
                dir.encode(&mut e);
                e.put_u64(*cookie);
                e.put_u64(*cookieverf);
                e.put_u32(*dircount);
                e.put_u32(*maxcount);
            }
            NfsCall::Commit { fh, offset, count } => {
                fh.encode(&mut e);
                e.put_u64(*offset);
                e.put_u32(*count);
            }
        }
        e.finish()
    }

    /// Decodes a call, returning `(xid, call)`.
    pub fn decode(buf: &[u8]) -> Result<(u32, NfsCall), XdrError> {
        let mut d = XdrDecoder::new(buf);
        let hdr = CallHeader::decode(&mut d)?;
        let proc_ = NfsProc::from_number(hdr.proc_num).ok_or(XdrError::BadEnum {
            what: "NFS procedure",
            value: hdr.proc_num,
        })?;
        let call = NfsCall::decode_args(proc_, &mut d)?;
        Ok((hdr.xid, call))
    }

    /// Decodes just the procedure arguments, the decoder already
    /// positioned past an RPC call header.
    ///
    /// This is the piece the real-socket endpoint shares: it decodes the
    /// [`CallHeader`] itself (it must route on program/version before
    /// trusting the body), then hands the argument bytes here. The WRITE
    /// arm reads the payload's declared length and skips any carried
    /// bytes, so both the simulator's length-only encoding and a real
    /// client's full payload parse identically.
    pub fn decode_args(proc_: NfsProc, d: &mut XdrDecoder<'_>) -> Result<NfsCall, XdrError> {
        let call = match proc_ {
            NfsProc::Getattr => NfsCall::Getattr {
                fh: FileHandle::decode(d)?,
            },
            NfsProc::Lookup => {
                let dir = FileHandle::decode(d)?;
                let name = d.get_string()?.to_string();
                NfsCall::Lookup { dir, name }
            }
            NfsProc::Read => NfsCall::Read {
                fh: FileHandle::decode(d)?,
                offset: d.get_u64()?,
                count: d.get_u32()?,
            },
            NfsProc::Write => {
                let fh = FileHandle::decode(d)?;
                let offset = d.get_u64()?;
                let count = d.get_u32()?;
                let stable_code = d.get_u32()?;
                let stable = StableHow::from_code(stable_code).ok_or(XdrError::BadEnum {
                    what: "stable_how",
                    value: stable_code,
                })?;
                // Payload: the simulator encodes the length word only; a
                // real client's WRITE3args carries the bytes too. Accept
                // both by skipping whatever of the declared payload is
                // actually present.
                let len = d.get_u32()?;
                if len > crate::xdr::MAX_OPAQUE {
                    return Err(XdrError::BadLength(len));
                }
                let carried = (len as usize).min(d.remaining());
                d.get_opaque_fixed(carried).ok();
                NfsCall::Write {
                    fh,
                    offset,
                    count,
                    stable,
                }
            }
            NfsProc::Readdir => NfsCall::Readdir {
                dir: FileHandle::decode(d)?,
                cookie: d.get_u64()?,
                cookieverf: d.get_u64()?,
                count: d.get_u32()?,
            },
            NfsProc::Readdirplus => NfsCall::Readdirplus {
                dir: FileHandle::decode(d)?,
                cookie: d.get_u64()?,
                cookieverf: d.get_u64()?,
                dircount: d.get_u32()?,
                maxcount: d.get_u32()?,
            },
            NfsProc::Commit => NfsCall::Commit {
                fh: FileHandle::decode(d)?,
                offset: d.get_u64()?,
                count: d.get_u32()?,
            },
        };
        Ok(call)
    }

    /// Wire size in bytes, data payload included for writes.
    pub fn wire_bytes(&self) -> u64 {
        let body = match self {
            NfsCall::Getattr { .. } => 20,
            NfsCall::Lookup { name, .. } => 20 + 4 + name.len().div_ceil(4) as u64 * 4,
            NfsCall::Read { .. } => 20 + 12,
            NfsCall::Write { count, .. } => 20 + 20 + u64::from(*count),
            NfsCall::Readdir { .. } => 20 + 20,
            NfsCall::Readdirplus { .. } => 20 + 24,
            NfsCall::Commit { .. } => 20 + 12,
        };
        RPC_CALL_HEADER_BYTES + 8 + body
    }
}

/// Minimal file attributes (enough for GETATTR and post-op attrs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr3 {
    /// File size in bytes.
    pub size: u64,
    /// File id (inode number).
    pub fileid: u64,
}

/// An NFS reply (server to client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsReply {
    /// Reply to GETATTR.
    Getattr {
        /// Status.
        status: NfsStatus,
        /// Attributes when `status` is `Ok`.
        attrs: Option<Fattr3>,
    },
    /// Reply to LOOKUP.
    Lookup {
        /// Status.
        status: NfsStatus,
        /// Resolved handle when `status` is `Ok`.
        fh: Option<FileHandle>,
    },
    /// Reply to READ; data carried as a length.
    Read {
        /// Status.
        status: NfsStatus,
        /// Bytes returned.
        count: u32,
        /// Whether EOF was reached.
        eof: bool,
    },
    /// Reply to WRITE.
    Write {
        /// Status.
        status: NfsStatus,
        /// Bytes accepted.
        count: u32,
        /// Stability actually achieved (a server may commit harder than
        /// asked, never softer).
        committed: StableHow,
        /// Write verifier: changes iff the server rebooted and may have
        /// lost unstable data (RFC 1813 §3.3.7).
        verf: u64,
    },
    /// Reply to READDIR or READDIRPLUS; the entry list is carried as a
    /// count and a byte length, the way READ carries its data.
    Readdir {
        /// Status.
        status: NfsStatus,
        /// Whether this reply answers READDIRPLUS (entries carried
        /// attributes and handles) rather than plain READDIR.
        plus: bool,
        /// Cookie verifier to present on the next continuation call.
        cookieverf: u64,
        /// Directory entries returned.
        entries: u32,
        /// Encoded size of the entry list (names, cookies, and — for
        /// READDIRPLUS — attributes and handles), carried as a length.
        bytes: u32,
        /// Whether the end of the directory was reached.
        eof: bool,
    },
    /// Reply to COMMIT.
    Commit {
        /// Status.
        status: NfsStatus,
        /// Write verifier, compared against the WRITE-time one.
        verf: u64,
    },
}

impl NfsReply {
    /// Encodes the reply with its RPC header.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        self.encode_into(xid, Vec::new())
    }

    /// Encodes the reply into a recycled buffer, reusing its capacity.
    ///
    /// See [`NfsCall::encode_into`]; same contract.
    pub fn encode_into(&self, xid: u32, buf: Vec<u8>) -> Vec<u8> {
        let mut e = XdrEncoder::into_buf(buf);
        ReplyHeader::success(xid).encode(&mut e);
        debug_assert_eq!(e.len() as u64, RPC_REPLY_HEADER_BYTES);
        match self {
            NfsReply::Getattr { status, attrs } => {
                e.put_u32(status.code());
                if let Some(a) = attrs {
                    e.put_u64(a.size);
                    e.put_u64(a.fileid);
                }
            }
            NfsReply::Lookup { status, fh } => {
                e.put_u32(status.code());
                if let Some(fh) = fh {
                    fh.encode(&mut e);
                }
            }
            NfsReply::Read { status, count, eof } => {
                e.put_u32(status.code());
                e.put_u32(*count);
                e.put_bool(*eof);
                e.put_u32(*count); // opaque data length (bytes elided)
            }
            NfsReply::Write {
                status,
                count,
                committed,
                verf,
            } => {
                e.put_u32(status.code());
                e.put_u32(*count);
                e.put_u32(committed.code());
                e.put_u64(*verf);
            }
            NfsReply::Readdir {
                status,
                plus: _, // implied by the procedure, not encoded
                cookieverf,
                entries,
                bytes,
                eof,
            } => {
                e.put_u32(status.code());
                e.put_u64(*cookieverf);
                e.put_u32(*entries);
                e.put_bool(*eof);
                e.put_u32(*bytes); // entry-list length (bytes elided)
            }
            NfsReply::Commit { status, verf } => {
                e.put_u32(status.code());
                e.put_u64(*verf);
            }
        }
        e.finish()
    }

    /// Decodes a reply to the given procedure, returning `(xid, reply)`.
    pub fn decode(proc_: NfsProc, buf: &[u8]) -> Result<(u32, NfsReply), XdrError> {
        let mut d = XdrDecoder::new(buf);
        let hdr = ReplyHeader::decode(&mut d)?;
        if hdr.stat != AcceptStat::Success {
            return Err(XdrError::BadEnum {
                what: "accept_stat (expected SUCCESS)",
                value: hdr.stat.code(),
            });
        }
        let xid = hdr.xid;
        let status_code = d.get_u32()?;
        let status = NfsStatus::from_code(status_code).ok_or(XdrError::BadEnum {
            what: "nfsstat3",
            value: status_code,
        })?;
        let reply = match proc_ {
            NfsProc::Getattr => NfsReply::Getattr {
                status,
                attrs: if status == NfsStatus::Ok {
                    Some(Fattr3 {
                        size: d.get_u64()?,
                        fileid: d.get_u64()?,
                    })
                } else {
                    None
                },
            },
            NfsProc::Lookup => NfsReply::Lookup {
                status,
                fh: if status == NfsStatus::Ok {
                    Some(FileHandle::decode(&mut d)?)
                } else {
                    None
                },
            },
            NfsProc::Read => {
                let count = d.get_u32()?;
                let eof = d.get_bool()?;
                let _len = d.get_u32()?;
                NfsReply::Read { status, count, eof }
            }
            NfsProc::Write => {
                let count = d.get_u32()?;
                let committed_code = d.get_u32()?;
                let committed = StableHow::from_code(committed_code).ok_or(XdrError::BadEnum {
                    what: "stable_how (committed)",
                    value: committed_code,
                })?;
                let verf = d.get_u64()?;
                NfsReply::Write {
                    status,
                    count,
                    committed,
                    verf,
                }
            }
            NfsProc::Readdir | NfsProc::Readdirplus => {
                let cookieverf = d.get_u64()?;
                let entries = d.get_u32()?;
                let eof = d.get_bool()?;
                let bytes = d.get_u32()?;
                NfsReply::Readdir {
                    status,
                    plus: proc_ == NfsProc::Readdirplus,
                    cookieverf,
                    entries,
                    bytes,
                    eof,
                }
            }
            NfsProc::Commit => NfsReply::Commit {
                status,
                verf: d.get_u64()?,
            },
        };
        Ok((xid, reply))
    }

    /// Wire size in bytes, elided payloads included: read data for READ,
    /// the encoded entry list for READDIR(PLUS). For every variant this
    /// equals `encode().len()` plus the elided payload — the honesty
    /// contract the codec property tests pin. (Real replies also carry
    /// post-op attributes / `wcc_data` this model elides entirely, on
    /// call and reply alike, so both directions are consistently lean.)
    pub fn wire_bytes(&self) -> u64 {
        let body = match self {
            NfsReply::Getattr { attrs, .. } => 4 + if attrs.is_some() { 16 } else { 0 },
            NfsReply::Lookup { fh, .. } => 4 + if fh.is_some() { 20 } else { 0 },
            NfsReply::Read { count, .. } => 4 + 12 + u64::from(*count),
            NfsReply::Write { .. } => 20,
            NfsReply::Readdir { bytes, .. } => 4 + 20 + u64::from(*bytes),
            NfsReply::Commit { .. } => 4 + 8,
        };
        RPC_REPLY_HEADER_BYTES + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh() -> FileHandle {
        FileHandle {
            fsid: 7,
            ino: 123_456,
            generation: 9,
        }
    }

    #[test]
    fn file_handle_roundtrip() {
        let mut e = XdrEncoder::new();
        fh().encode(&mut e);
        let buf = e.finish();
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(FileHandle::decode(&mut d).unwrap(), fh());
    }

    #[test]
    fn read_call_roundtrip() {
        let call = NfsCall::Read {
            fh: fh(),
            offset: 65_536,
            count: 8_192,
        };
        let buf = call.encode(0xdead_beef);
        let (xid, decoded) = NfsCall::decode(&buf).unwrap();
        assert_eq!(xid, 0xdead_beef);
        assert_eq!(decoded, call);
    }

    #[test]
    fn lookup_call_roundtrip() {
        let call = NfsCall::Lookup {
            dir: fh(),
            name: "bench-256MB".to_string(),
        };
        let buf = call.encode(1);
        let (_, decoded) = NfsCall::decode(&buf).unwrap();
        assert_eq!(decoded, call);
    }

    #[test]
    fn write_call_roundtrip() {
        for stable in [
            StableHow::Unstable,
            StableHow::DataSync,
            StableHow::FileSync,
        ] {
            let call = NfsCall::Write {
                fh: fh(),
                offset: 0,
                count: 8_192,
                stable,
            };
            let (_, decoded) = NfsCall::decode(&call.encode(2)).unwrap();
            assert_eq!(decoded, call);
        }
    }

    #[test]
    fn commit_roundtrip_both_directions() {
        let call = NfsCall::Commit {
            fh: fh(),
            offset: 8_192,
            count: 65_536,
        };
        let (xid, dec) = NfsCall::decode(&call.encode(21)).unwrap();
        assert_eq!(xid, 21);
        assert_eq!(dec, call);
        let reply = NfsReply::Commit {
            status: NfsStatus::Ok,
            verf: 0xfeed_f00d_dead_beef,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Commit, &reply.encode(21)).unwrap();
        assert_eq!(dec, reply);
        // COMMIT is a small metadata round trip either way.
        assert!(call.wire_bytes() < 120, "{}", call.wire_bytes());
        assert!(reply.wire_bytes() < 64, "{}", reply.wire_bytes());
    }

    #[test]
    fn write_verf_changes_iff_boot_epoch_changes() {
        for instance in [0u64, 1, 42, u64::MAX] {
            for epoch in 0u64..8 {
                assert_eq!(
                    write_verf(instance, epoch),
                    write_verf(instance, epoch),
                    "verifier must be a pure function"
                );
                assert_ne!(
                    write_verf(instance, epoch),
                    write_verf(instance, epoch + 1),
                    "a restart must change the verifier"
                );
            }
        }
    }

    #[test]
    fn getattr_roundtrip_both_directions() {
        let call = NfsCall::Getattr { fh: fh() };
        let (_, dec) = NfsCall::decode(&call.encode(3)).unwrap();
        assert_eq!(dec, call);
        let reply = NfsReply::Getattr {
            status: NfsStatus::Ok,
            attrs: Some(Fattr3 {
                size: 268_435_456,
                fileid: 42,
            }),
        };
        let (xid, dec) = NfsReply::decode(NfsProc::Getattr, &reply.encode(3)).unwrap();
        assert_eq!(xid, 3);
        assert_eq!(dec, reply);
    }

    #[test]
    fn read_reply_roundtrip() {
        let reply = NfsReply::Read {
            status: NfsStatus::Ok,
            count: 8_192,
            eof: false,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Read, &reply.encode(9)).unwrap();
        assert_eq!(dec, reply);
    }

    #[test]
    fn error_reply_roundtrip() {
        let reply = NfsReply::Lookup {
            status: NfsStatus::NoEnt,
            fh: None,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Lookup, &reply.encode(4)).unwrap();
        assert_eq!(dec, reply);
    }

    #[test]
    fn wire_bytes_match_an_8k_read() {
        // An 8 KB READ reply should be a little over 8 KB on the wire.
        let reply = NfsReply::Read {
            status: NfsStatus::Ok,
            count: 8_192,
            eof: false,
        };
        let wb = reply.wire_bytes();
        assert!((8_192..8_400).contains(&wb), "wire bytes {wb}");
        let call = NfsCall::Read {
            fh: fh(),
            offset: 0,
            count: 8_192,
        };
        assert!(
            call.wire_bytes() < 120,
            "READ call is small: {}",
            call.wire_bytes()
        );
    }

    #[test]
    fn write_wire_bytes_include_payload() {
        let call = NfsCall::Write {
            fh: fh(),
            offset: 0,
            count: 8_192,
            stable: StableHow::Unstable,
        };
        assert!(call.wire_bytes() > 8_192);
        // The stability level is content, not size: all three encode to
        // the same number of wire bytes.
        let sync = NfsCall::Write {
            fh: fh(),
            offset: 0,
            count: 8_192,
            stable: StableHow::FileSync,
        };
        assert_eq!(call.wire_bytes(), sync.wire_bytes());
        assert_eq!(call.encode(1).len(), sync.encode(1).len());
    }

    #[test]
    fn decode_rejects_reply_as_call() {
        let reply = NfsReply::Write {
            status: NfsStatus::Ok,
            count: 1,
            committed: StableHow::FileSync,
            verf: 7,
        };
        assert!(NfsCall::decode(&reply.encode(5)).is_err());
    }

    #[test]
    fn truncated_call_fails_cleanly() {
        let call = NfsCall::Read {
            fh: fh(),
            offset: 0,
            count: 8_192,
        };
        let buf = call.encode(6);
        assert!(NfsCall::decode(&buf[..buf.len() - 4]).is_err());
    }

    #[test]
    fn encode_into_recycled_buffer_matches_fresh_encode() {
        let call = NfsCall::Read {
            fh: fh(),
            offset: 65_536,
            count: 8_192,
        };
        let reply = NfsReply::Read {
            status: NfsStatus::Ok,
            count: 8_192,
            eof: true,
        };
        // Recycle one buffer through several encodes; each must be
        // byte-identical to a fresh encode and must not grow capacity
        // after the first pass.
        let mut buf = Vec::new();
        for xid in [1u32, 77, 0xdead_beef] {
            buf = call.encode_into(xid, buf);
            assert_eq!(buf, call.encode(xid));
            let cap = buf.capacity();
            buf = reply.encode_into(xid, buf);
            assert_eq!(buf, reply.encode(xid));
            assert!(buf.capacity() <= cap.max(buf.len()));
        }
    }

    #[test]
    fn proc_numbers_are_rfc1813() {
        assert_eq!(NfsProc::Getattr.number(), 1);
        assert_eq!(NfsProc::Lookup.number(), 3);
        assert_eq!(NfsProc::Read.number(), 6);
        assert_eq!(NfsProc::Write.number(), 7);
        assert_eq!(NfsProc::Readdir.number(), 16);
        assert_eq!(NfsProc::Readdirplus.number(), 17);
        assert_eq!(NfsProc::Commit.number(), 21);
        for p in [
            NfsProc::Getattr,
            NfsProc::Lookup,
            NfsProc::Read,
            NfsProc::Write,
            NfsProc::Readdir,
            NfsProc::Readdirplus,
            NfsProc::Commit,
        ] {
            assert_eq!(NfsProc::from_number(p.number()), Some(p));
        }
        assert_eq!(NfsProc::from_number(99), None);
    }

    #[test]
    fn readdir_roundtrip_both_directions() {
        let call = NfsCall::Readdir {
            dir: fh(),
            cookie: 128,
            cookieverf: 0xabad_cafe,
            count: 4_096,
        };
        let (xid, dec) = NfsCall::decode(&call.encode(16)).unwrap();
        assert_eq!(xid, 16);
        assert_eq!(dec, call);
        let reply = NfsReply::Readdir {
            status: NfsStatus::Ok,
            plus: false,
            cookieverf: 0xabad_cafe,
            entries: 93,
            bytes: 3_720,
            eof: false,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Readdir, &reply.encode(16)).unwrap();
        assert_eq!(dec, reply);
        // The entry list rides in the wire size, elided from the encoding.
        assert_eq!(reply.wire_bytes(), reply.encode(16).len() as u64 + 3_720);
    }

    #[test]
    fn readdirplus_roundtrip_sets_plus() {
        let call = NfsCall::Readdirplus {
            dir: fh(),
            cookie: 0,
            cookieverf: 0,
            dircount: 1_024,
            maxcount: 8_192,
        };
        let (_, dec) = NfsCall::decode(&call.encode(17)).unwrap();
        assert_eq!(dec, call);
        let reply = NfsReply::Readdir {
            status: NfsStatus::Ok,
            plus: true,
            cookieverf: 7,
            entries: 20,
            bytes: 4_480,
            eof: true,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Readdirplus, &reply.encode(17)).unwrap();
        assert_eq!(dec, reply, "plus flag is implied by the procedure");
    }

    #[test]
    fn write_reply_wire_bytes_match_the_encoding() {
        // Regression: the WRITE reply used to claim 8 body bytes on the
        // wire while encoding 20 (status + count + committed + verf).
        let reply = NfsReply::Write {
            status: NfsStatus::Ok,
            count: 8_192,
            committed: StableHow::FileSync,
            verf: 0xfeed_f00d,
        };
        assert_eq!(reply.wire_bytes(), reply.encode(1).len() as u64);
    }

    #[test]
    fn stable_how_codes_are_rfc1813() {
        assert_eq!(StableHow::Unstable.code(), 0);
        assert_eq!(StableHow::DataSync.code(), 1);
        assert_eq!(StableHow::FileSync.code(), 2);
        for s in [
            StableHow::Unstable,
            StableHow::DataSync,
            StableHow::FileSync,
        ] {
            assert_eq!(StableHow::from_code(s.code()), Some(s));
        }
        assert_eq!(StableHow::from_code(3), None);
    }
}
