//! Shared ONC RPC (RFC 5531 / RFC 1831) call and reply headers.
//!
//! Both halves of the repo speak these: the simulated transport encodes
//! calls and replies through [`crate::NfsCall`]/[`crate::NfsReply`], and
//! the real-socket `nfsd` endpoint decodes whatever arrives off a TCP
//! stream.  Factoring the header handling here means there is exactly one
//! definition of what a call header and an accepted reply look like on
//! the wire — accept-state and verifier handling included — and the two
//! paths cannot drift apart.
//!
//! The encodings are byte-compatible with what `messages.rs` has always
//! produced: an AUTH_UNIX credential stub (8-byte body carrying uid and
//! gid) with an AUTH_NONE verifier on calls, and an AUTH_NONE verifier on
//! accepted replies.  Real AUTH_UNIX credentials from an OS client carry
//! a longer counted body; the decoder skips it by length, so both forms
//! parse.

use crate::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// The RPC protocol version both RFC 1831 and RFC 5531 define.
pub const RPC_VERSION: u32 = 2;

/// `msg_type` CALL.
pub const MSG_CALL: u32 = 0;
/// `msg_type` REPLY.
pub const MSG_REPLY: u32 = 1;

/// `auth_flavor` AUTH_NONE.
pub const AUTH_NONE: u32 = 0;
/// `auth_flavor` AUTH_UNIX (AUTH_SYS in RFC 5531).
pub const AUTH_UNIX: u32 = 1;

/// How an accepted RPC call was disposed of (RFC 5531 `accept_stat`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStat {
    /// The call succeeded; results follow the header.
    Success,
    /// The server does not export the requested program.
    ProgUnavail,
    /// The program exists but not at the requested version; the reply
    /// carries the supported `(low, high)` version range.
    ProgMismatch {
        /// Lowest supported program version.
        low: u32,
        /// Highest supported program version.
        high: u32,
    },
    /// The program does not implement the requested procedure.
    ProcUnavail,
    /// The arguments could not be decoded.
    GarbageArgs,
    /// The server failed internally.
    SystemErr,
}

impl AcceptStat {
    /// RFC 5531 discriminant.
    pub fn code(self) -> u32 {
        match self {
            AcceptStat::Success => 0,
            AcceptStat::ProgUnavail => 1,
            AcceptStat::ProgMismatch { .. } => 2,
            AcceptStat::ProcUnavail => 3,
            AcceptStat::GarbageArgs => 4,
            AcceptStat::SystemErr => 5,
        }
    }
}

/// An RPC call header: transaction id plus the program routing triple.
///
/// The credential is modelled, not carried: encoding always writes the
/// historical AUTH_UNIX stub (uid 0, gid 0) with an AUTH_NONE verifier;
/// decoding accepts any counted credential/verifier body and skips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallHeader {
    /// Transaction id.
    pub xid: u32,
    /// Remote program number.
    pub prog: u32,
    /// Remote program version.
    pub vers: u32,
    /// Procedure within the program.
    pub proc_num: u32,
}

impl CallHeader {
    /// Encodes the header (12 XDR words, 48 bytes — the layout
    /// [`crate::RPC_CALL_HEADER_BYTES`]` + 8` has always described).
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.xid)
            .put_u32(MSG_CALL)
            .put_u32(RPC_VERSION)
            .put_u32(self.prog)
            .put_u32(self.vers)
            .put_u32(self.proc_num)
            .put_u32(AUTH_UNIX)
            .put_u32(8)
            .put_u32(0) // uid
            .put_u32(0) // gid
            .put_u32(AUTH_NONE) // verf flavor
            .put_u32(0); // verf length
    }

    /// Decodes a call header, leaving the decoder positioned at the
    /// procedure arguments.
    ///
    /// Returns a typed error for anything that is not a version-2 RPC
    /// call; never panics, whatever the bytes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let xid = d.get_u32()?;
        let mtype = d.get_u32()?;
        if mtype != MSG_CALL {
            return Err(XdrError::BadEnum {
                what: "msg_type (expected CALL)",
                value: mtype,
            });
        }
        let rpcvers = d.get_u32()?;
        if rpcvers != RPC_VERSION {
            return Err(XdrError::BadEnum {
                what: "rpc version",
                value: rpcvers,
            });
        }
        let prog = d.get_u32()?;
        let vers = d.get_u32()?;
        let proc_num = d.get_u32()?;
        // Credential and verifier: flavor + counted body, twice. Length
        // validation (and therefore truncation detection) lives in
        // `get_opaque`; a short body is a typed error, not a quiet parse.
        let _cred_flavor = d.get_u32()?;
        let _cred_body = d.get_opaque()?;
        let _verf_flavor = d.get_u32()?;
        let _verf_body = d.get_opaque()?;
        Ok(CallHeader {
            xid,
            prog,
            vers,
            proc_num,
        })
    }
}

/// An accepted RPC reply header: transaction id plus accept state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyHeader {
    /// Transaction id echoed from the call.
    pub xid: u32,
    /// How the call was disposed of.
    pub stat: AcceptStat,
}

impl ReplyHeader {
    /// A successful reply to `xid`.
    pub fn success(xid: u32) -> Self {
        ReplyHeader {
            xid,
            stat: AcceptStat::Success,
        }
    }

    /// Encodes the header (6 XDR words for SUCCESS — the 24-byte layout
    /// [`crate::RPC_REPLY_HEADER_BYTES`] describes; PROG_MISMATCH adds
    /// its version range).
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.xid)
            .put_u32(MSG_REPLY)
            .put_u32(0) // reply_stat MSG_ACCEPTED
            .put_u32(AUTH_NONE) // verf flavor
            .put_u32(0) // verf length
            .put_u32(self.stat.code());
        if let AcceptStat::ProgMismatch { low, high } = self.stat {
            e.put_u32(low).put_u32(high);
        }
    }

    /// Decodes a reply header, leaving the decoder positioned at the
    /// results (present only when `stat` is [`AcceptStat::Success`]).
    ///
    /// A MSG_DENIED reply surfaces as [`XdrError::RpcDenied`]; all other
    /// malformations are typed errors too. Never panics.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let xid = d.get_u32()?;
        let mtype = d.get_u32()?;
        if mtype != MSG_REPLY {
            return Err(XdrError::BadEnum {
                what: "msg_type (expected REPLY)",
                value: mtype,
            });
        }
        let reply_stat = d.get_u32()?;
        if reply_stat == 1 {
            let reason = d.get_u32().unwrap_or(u32::MAX);
            return Err(XdrError::RpcDenied { reason });
        }
        if reply_stat != 0 {
            return Err(XdrError::BadEnum {
                what: "reply_stat",
                value: reply_stat,
            });
        }
        let _verf_flavor = d.get_u32()?;
        let _verf_body = d.get_opaque()?;
        let code = d.get_u32()?;
        let stat = match code {
            0 => AcceptStat::Success,
            1 => AcceptStat::ProgUnavail,
            2 => AcceptStat::ProgMismatch {
                low: d.get_u32()?,
                high: d.get_u32()?,
            },
            3 => AcceptStat::ProcUnavail,
            4 => AcceptStat::GarbageArgs,
            5 => AcceptStat::SystemErr,
            v => {
                return Err(XdrError::BadEnum {
                    what: "accept_stat",
                    value: v,
                })
            }
        };
        Ok(ReplyHeader { xid, stat })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_header_roundtrip() {
        let h = CallHeader {
            xid: 0xdead_beef,
            prog: 100_003,
            vers: 3,
            proc_num: 6,
        };
        let mut e = XdrEncoder::new();
        h.encode(&mut e);
        let buf = e.finish();
        assert_eq!(buf.len(), 48, "AUTH_UNIX-stub call header is 12 words");
        let mut d = XdrDecoder::new(&buf);
        assert_eq!(CallHeader::decode(&mut d).unwrap(), h);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn reply_header_roundtrip_all_states() {
        for stat in [
            AcceptStat::Success,
            AcceptStat::ProgUnavail,
            AcceptStat::ProgMismatch { low: 3, high: 3 },
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemErr,
        ] {
            let h = ReplyHeader { xid: 7, stat };
            let mut e = XdrEncoder::new();
            h.encode(&mut e);
            let buf = e.finish();
            let mut d = XdrDecoder::new(&buf);
            assert_eq!(ReplyHeader::decode(&mut d).unwrap(), h);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn call_decode_accepts_real_auth_unix_credential() {
        // A realistic AUTH_UNIX body: stamp, machinename "cl", uid, gid,
        // one supplementary gid — longer than our 8-byte stub.
        let mut e = XdrEncoder::new();
        e.put_u32(42).put_u32(MSG_CALL).put_u32(RPC_VERSION);
        e.put_u32(100_005).put_u32(3).put_u32(1);
        let mut body = XdrEncoder::new();
        body.put_u32(0x1111_2222)
            .put_string("cl")
            .put_u32(1000)
            .put_u32(1000)
            .put_u32(1)
            .put_u32(20);
        let body = body.finish();
        e.put_u32(AUTH_UNIX).put_opaque(&body);
        e.put_u32(AUTH_NONE).put_u32(0);
        let buf = e.finish();
        let mut d = XdrDecoder::new(&buf);
        let h = CallHeader::decode(&mut d).unwrap();
        assert_eq!((h.xid, h.prog, h.vers, h.proc_num), (42, 100_005, 3, 1));
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn reply_decode_reports_denied() {
        let mut e = XdrEncoder::new();
        e.put_u32(9).put_u32(MSG_REPLY).put_u32(1).put_u32(0);
        let buf = e.finish();
        assert_eq!(
            ReplyHeader::decode(&mut XdrDecoder::new(&buf)),
            Err(XdrError::RpcDenied { reason: 0 })
        );
    }

    #[test]
    fn truncated_credential_is_a_typed_error() {
        let mut e = XdrEncoder::new();
        e.put_u32(1).put_u32(MSG_CALL).put_u32(RPC_VERSION);
        e.put_u32(100_003).put_u32(3).put_u32(0);
        e.put_u32(AUTH_UNIX).put_u32(64); // declares 64 bytes, provides none
        let buf = e.finish();
        assert_eq!(
            CallHeader::decode(&mut XdrDecoder::new(&buf)),
            Err(XdrError::Truncated { needed: 64 })
        );
    }
}
