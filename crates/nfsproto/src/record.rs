//! XDR record marking over a byte stream (RFC 5531 §11).
//!
//! TCP is a byte stream; RPC messages are records. Record marking frames
//! each record as a sequence of fragments, each preceded by a 4-byte
//! marker whose high bit flags the last fragment and whose low 31 bits
//! give the fragment length. A sender may split a record anywhere
//! (including 1-byte fragments); a receiver must reassemble the fragments
//! bit-identically regardless of how the stream was chopped up by the
//! network.
//!
//! [`frame_record`] produces the common single-fragment form,
//! [`frame_record_split`] exercises arbitrary fragmentation (for tests
//! and for senders with small buffers), and [`RecordReader`] is the
//! receive-side state machine: feed it raw stream bytes as they arrive,
//! pull complete records out.

/// High bit of the record marker: set on the final fragment of a record.
pub const LAST_FRAGMENT: u32 = 0x8000_0000;

/// Largest single fragment we accept (31-bit length field notwithstanding).
///
/// Bounds memory committed per fragment before its bytes arrive. Big
/// enough for a 1 MiB opaque plus headers.
pub const MAX_FRAGMENT: u32 = (1 << 20) + 4096;

/// Largest reassembled record we accept across all fragments.
pub const MAX_RECORD: usize = (1 << 21) as usize;

/// Receive-side framing error. All conditions are typed; the reader
/// never panics on hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// A fragment declared a length above [`MAX_FRAGMENT`].
    FragmentTooLarge {
        /// Declared fragment length.
        len: u32,
    },
    /// Accumulated fragments exceeded [`MAX_RECORD`].
    RecordTooLarge {
        /// Total bytes the record would have reached.
        len: usize,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::FragmentTooLarge { len } => {
                write!(f, "record-mark fragment of {len} bytes exceeds limit")
            }
            RecordError::RecordTooLarge { len } => {
                write!(f, "reassembled record of {len} bytes exceeds limit")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Frames `msg` as a single-fragment record (marker + bytes appended to
/// `out`). This is what every practical sender does for messages that
/// fit in one fragment.
pub fn frame_record(msg: &[u8], out: &mut Vec<u8>) {
    debug_assert!(msg.len() as u64 <= u64::from(u32::MAX >> 1));
    out.extend_from_slice(&(LAST_FRAGMENT | msg.len() as u32).to_be_bytes());
    out.extend_from_slice(msg);
}

/// Frames `msg` split into fragments of at most `max_frag` bytes each.
///
/// A zero-length message still emits one empty final fragment so the
/// receiver sees a record at all. `max_frag` of 0 is treated as 1.
pub fn frame_record_split(msg: &[u8], max_frag: usize, out: &mut Vec<u8>) {
    let max_frag = max_frag.max(1);
    if msg.is_empty() {
        out.extend_from_slice(&LAST_FRAGMENT.to_be_bytes());
        return;
    }
    let mut rest = msg;
    while !rest.is_empty() {
        let take = rest.len().min(max_frag);
        let (frag, tail) = rest.split_at(take);
        let mut marker = frag.len() as u32;
        if tail.is_empty() {
            marker |= LAST_FRAGMENT;
        }
        out.extend_from_slice(&marker.to_be_bytes());
        out.extend_from_slice(frag);
        rest = tail;
    }
}

/// Receive-side reassembly state machine.
///
/// Feed stream bytes in with [`RecordReader::push`] (any chop: one byte
/// at a time, a whole socket read, markers split across pushes — framing
/// keeps no alignment assumptions), then drain complete records with
/// [`RecordReader::next_record`]. After an error the reader is poisoned:
/// the connection cannot be resynchronised, so further pushes keep
/// returning the error and the caller should drop the stream.
#[derive(Debug, Default)]
pub struct RecordReader {
    /// Raw bytes not yet consumed into `record`.
    pending: Vec<u8>,
    /// Reassembled fragments of the record under construction.
    record: Vec<u8>,
    /// Completed records awaiting `next_record`.
    ready: Vec<Vec<u8>>,
    /// Remaining byte count of the fragment being copied, if mid-fragment.
    frag_left: usize,
    /// Whether the fragment being copied is the record's last.
    frag_last: bool,
    /// Sticky error.
    failed: Option<RecordError>,
}

impl RecordReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        RecordReader::default()
    }

    /// Feeds raw stream bytes; returns an error if framing is (or
    /// previously was) violated.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), RecordError> {
        if let Some(e) = self.failed {
            return Err(e);
        }
        self.pending.extend_from_slice(bytes);
        let r = self.drain_pending();
        if let Err(e) = r {
            self.failed = Some(e);
        }
        r
    }

    /// Pops the next complete record, oldest first.
    pub fn next_record(&mut self) -> Option<Vec<u8>> {
        if self.ready.is_empty() {
            None
        } else {
            Some(self.ready.remove(0))
        }
    }

    /// Whether a partial fragment or record is buffered (useful for
    /// detecting a peer that hung up mid-record).
    pub fn mid_record(&self) -> bool {
        self.frag_left > 0 || !self.record.is_empty() || !self.pending.is_empty()
    }

    fn drain_pending(&mut self) -> Result<(), RecordError> {
        let mut pos = 0;
        loop {
            if self.frag_left > 0 {
                let avail = self.pending.len() - pos;
                let take = self.frag_left.min(avail);
                self.record
                    .extend_from_slice(&self.pending[pos..pos + take]);
                pos += take;
                self.frag_left -= take;
                if self.record.len() > MAX_RECORD {
                    return Err(RecordError::RecordTooLarge {
                        len: self.record.len(),
                    });
                }
                if self.frag_left > 0 {
                    break; // need more stream bytes
                }
                if self.frag_last {
                    self.ready.push(std::mem::take(&mut self.record));
                }
                continue;
            }
            // At a marker boundary.
            if self.pending.len() - pos < 4 {
                break;
            }
            let m = u32::from_be_bytes(
                self.pending[pos..pos + 4]
                    .try_into()
                    .expect("length checked"),
            );
            pos += 4;
            let len = m & !LAST_FRAGMENT;
            if len > MAX_FRAGMENT {
                return Err(RecordError::FragmentTooLarge { len });
            }
            self.frag_last = m & LAST_FRAGMENT != 0;
            self.frag_left = len as usize;
            if self.frag_left == 0 && self.frag_last {
                // Empty final fragment: completes the record as-is.
                self.ready.push(std::mem::take(&mut self.record));
            }
        }
        self.pending.drain(..pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fragment_roundtrip() {
        let msg = b"hello record marking".to_vec();
        let mut wire = Vec::new();
        frame_record(&msg, &mut wire);
        assert_eq!(wire.len(), 4 + msg.len());
        let mut r = RecordReader::new();
        r.push(&wire).unwrap();
        assert_eq!(r.next_record(), Some(msg));
        assert_eq!(r.next_record(), None);
        assert!(!r.mid_record());
    }

    #[test]
    fn empty_record_roundtrip() {
        let mut wire = Vec::new();
        frame_record_split(&[], 8, &mut wire);
        let mut r = RecordReader::new();
        r.push(&wire).unwrap();
        assert_eq!(r.next_record(), Some(Vec::new()));
    }

    #[test]
    fn oversized_fragment_is_typed_error_and_sticky() {
        let marker = (LAST_FRAGMENT | (MAX_FRAGMENT + 1)).to_be_bytes();
        let mut r = RecordReader::new();
        assert_eq!(
            r.push(&marker),
            Err(RecordError::FragmentTooLarge {
                len: MAX_FRAGMENT + 1
            })
        );
        // Poisoned: even innocent bytes keep failing.
        assert!(r.push(&[0; 4]).is_err());
    }

    #[test]
    fn oversized_record_across_fragments_rejected() {
        let mut r = RecordReader::new();
        let frag = vec![0u8; 1 << 20];
        let mut wire = Vec::new();
        // Non-final max-size fragments until the record cap trips.
        let mut pushed = 0usize;
        loop {
            wire.clear();
            wire.extend_from_slice(&(frag.len() as u32).to_be_bytes());
            wire.extend_from_slice(&frag);
            pushed += frag.len();
            match r.push(&wire) {
                Ok(()) => assert!(pushed <= MAX_RECORD),
                Err(e) => {
                    assert_eq!(e, RecordError::RecordTooLarge { len: pushed });
                    break;
                }
            }
        }
    }
}
