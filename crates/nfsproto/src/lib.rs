//! NFS v2/v3 protocol subset with real XDR encoding.
//!
//! "When we refer to NFS, we are referring only to versions 2 (RFC 1094)
//! and 3 (RFC 1813) of the NFS protocol" — the paper. This crate provides
//! the stateless call/reply vocabulary the simulated server and client
//! speak: file handles, GETATTR/LOOKUP/READ/WRITE messages, and the XDR
//! wire format underneath, so message sizes on the simulated network are
//! the real ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod messages;
mod record;
mod rpc;
mod xdr;

pub use messages::{
    write_verf, Fattr3, FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus, StableHow, NFS_PROGRAM,
    NFS_VERSION, RPC_CALL_HEADER_BYTES, RPC_REPLY_HEADER_BYTES,
};
pub use record::{
    frame_record, frame_record_split, RecordError, RecordReader, LAST_FRAGMENT, MAX_FRAGMENT,
    MAX_RECORD,
};
pub use rpc::{
    AcceptStat, CallHeader, ReplyHeader, AUTH_NONE, AUTH_UNIX, MSG_CALL, MSG_REPLY, RPC_VERSION,
};
pub use xdr::{XdrDecoder, XdrEncoder, XdrError, MAX_OPAQUE};
