//! Seed-driven decoder fuzzing: a corpus of valid messages is mutated —
//! truncations, bit flips, length-field inflation, random splices — and
//! every decoder entry point must return a typed `XdrError` or a decoded
//! value, never panic and never silently misparse a short opaque.
//!
//! Pure-random garbage is also thrown at the record reader and both RPC
//! header decoders. The loops are seeded `SimRng`, so any failure is
//! reproducible from the case index printed in the panic message.

use nfsproto::{
    CallHeader, FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus, RecordReader, ReplyHeader,
    StableHow, XdrDecoder, XdrError,
};
use simcore::SimRng;

fn corpus(rng: &mut SimRng) -> Vec<Vec<u8>> {
    let fh = FileHandle {
        fsid: rng.next_u64() as u32,
        ino: rng.next_u64(),
        generation: rng.next_u64() as u32,
    };
    let xid = rng.next_u64() as u32;
    vec![
        NfsCall::Getattr { fh }.encode(xid),
        NfsCall::Lookup {
            dir: fh,
            name: "fuzzed-name".into(),
        }
        .encode(xid),
        NfsCall::Read {
            fh,
            offset: rng.next_u64(),
            count: rng.gen_range(1u32..65_536),
        }
        .encode(xid),
        NfsCall::Write {
            fh,
            offset: rng.next_u64(),
            count: rng.gen_range(1u32..65_536),
            stable: StableHow::Unstable,
        }
        .encode(xid),
        NfsCall::Commit {
            fh,
            offset: 0,
            count: 0,
        }
        .encode(xid),
        NfsCall::Readdir {
            dir: fh,
            cookie: rng.next_u64(),
            cookieverf: rng.next_u64(),
            count: rng.gen_range(1u32..65_536),
        }
        .encode(xid),
        NfsCall::Readdirplus {
            dir: fh,
            cookie: rng.next_u64(),
            cookieverf: rng.next_u64(),
            dircount: rng.gen_range(1u32..8_192),
            maxcount: rng.gen_range(1u32..65_536),
        }
        .encode(xid),
        NfsReply::Getattr {
            status: NfsStatus::Ok,
            attrs: Some(nfsproto::Fattr3 {
                size: rng.next_u64(),
                fileid: rng.next_u64(),
            }),
        }
        .encode(xid),
        NfsReply::Read {
            status: NfsStatus::Ok,
            count: 8192,
            eof: false,
        }
        .encode(xid),
        NfsReply::Write {
            status: NfsStatus::Ok,
            count: 8192,
            committed: StableHow::FileSync,
            verf: rng.next_u64(),
        }
        .encode(xid),
        NfsReply::Commit {
            status: NfsStatus::Ok,
            verf: rng.next_u64(),
        }
        .encode(xid),
        NfsReply::Readdir {
            status: NfsStatus::Ok,
            plus: false,
            cookieverf: rng.next_u64(),
            entries: rng.gen_range(0u32..200),
            bytes: rng.gen_range(0u32..65_536),
            eof: rng.chance(0.5),
        }
        .encode(xid),
        NfsReply::Readdir {
            status: NfsStatus::Ok,
            plus: true,
            cookieverf: rng.next_u64(),
            entries: rng.gen_range(0u32..200),
            bytes: rng.gen_range(0u32..65_536),
            eof: rng.chance(0.5),
        }
        .encode(xid),
    ]
}

/// A captured-style text trace (the `nfstrace` import format) whose
/// records are lowered to wire messages and folded into the fuzz corpus —
/// the decoders must hold up against exactly the op mix an imported
/// production trace replays.
const IMPORTED_TRACE: &str = "\
# time_us client op fh offset len
0 1 readdir d10000 0 64
40 1 lookup d10000 0 11
55 1 getattr f10000 0 0
90 1 read f10000 0 8192
130 2 lookup d10001 3 7
150 2 readdir d10001 64 64
170 2 write f10003 8192 4096
";

/// Lowers one imported trace record to an encoded call message.
fn trace_record_to_call(r: &nfstrace::TraceRecord, xid: u32) -> Vec<u8> {
    let fh = FileHandle {
        fsid: 1,
        ino: r.fh,
        generation: 1,
    };
    let call = match r.op {
        nfstrace::TraceOp::Read => NfsCall::Read {
            fh,
            offset: r.offset,
            count: r.len,
        },
        nfstrace::TraceOp::Write => NfsCall::Write {
            fh,
            offset: r.offset,
            count: r.len,
            stable: StableHow::Unstable,
        },
        nfstrace::TraceOp::Getattr => NfsCall::Getattr { fh },
        nfstrace::TraceOp::Lookup => NfsCall::Lookup {
            dir: fh,
            name: "x".repeat(r.len.max(1) as usize),
        },
        nfstrace::TraceOp::Readdir => NfsCall::Readdir {
            dir: fh,
            cookie: r.offset,
            cookieverf: 0,
            count: r.len,
        },
    };
    call.encode(xid)
}

fn imported_corpus() -> Vec<Vec<u8>> {
    let trace = nfstrace::from_text(IMPORTED_TRACE).expect("embedded trace parses");
    trace
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| trace_record_to_call(r, i as u32))
        .collect()
}

/// Applies one random mutation to `buf`.
fn mutate(buf: &mut Vec<u8>, rng: &mut SimRng) {
    if buf.is_empty() {
        return;
    }
    match rng.gen_range(0u32..5) {
        // Truncate to an arbitrary prefix.
        0 => {
            let cut = rng.gen_range(0usize..buf.len());
            buf.truncate(cut);
        }
        // Flip a random bit.
        1 => {
            let i = rng.gen_range(0usize..buf.len());
            buf[i] ^= 1 << rng.gen_range(0u32..8);
        }
        // Overwrite an aligned word with an extreme length-like value.
        2 => {
            let words = buf.len() / 4;
            if words > 0 {
                let w = rng.gen_range(0usize..words) * 4;
                let v = *rng
                    .choose(&[u32::MAX, u32::MAX - 1, 1 << 31, 1 << 20, 0x7fff_ffff])
                    .expect("non-empty");
                buf[w..w + 4].copy_from_slice(&v.to_be_bytes());
            }
        }
        // Splice random garbage into the middle.
        3 => {
            let at = rng.gen_range(0usize..=buf.len());
            let n = rng.gen_range(1usize..16);
            let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            buf.splice(at..at, junk);
        }
        // Duplicate a tail fragment (stutter).
        _ => {
            let from = rng.gen_range(0usize..buf.len());
            let tail = buf[from..].to_vec();
            buf.extend_from_slice(&tail);
        }
    }
}

const ALL_PROCS: [NfsProc; 7] = [
    NfsProc::Getattr,
    NfsProc::Lookup,
    NfsProc::Read,
    NfsProc::Write,
    NfsProc::Commit,
    NfsProc::Readdir,
    NfsProc::Readdirplus,
];

#[test]
fn mutated_corpus_never_panics_any_decoder() {
    let mut rng = SimRng::new(0xF022);
    for case in 0..500u64 {
        let mut seeds = corpus(&mut rng);
        seeds.extend(imported_corpus());
        for mut buf in seeds {
            for _ in 0..rng.gen_range(1u32..4) {
                mutate(&mut buf, &mut rng);
            }
            // Every entry point; results only need to be non-panicking.
            let _ = NfsCall::decode(&buf);
            for p in ALL_PROCS {
                let _ = NfsReply::decode(p, &buf);
            }
            let _ = CallHeader::decode(&mut XdrDecoder::new(&buf));
            let _ = ReplyHeader::decode(&mut XdrDecoder::new(&buf));
            let _ = FileHandle::decode(&mut XdrDecoder::new(&buf));
            let _ = case;
        }
    }
}

#[test]
fn pure_garbage_never_panics() {
    let mut rng = SimRng::new(0x6A21);
    for _ in 0..3_000 {
        let len = rng.gen_range(0usize..512);
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = NfsCall::decode(&buf);
        for p in ALL_PROCS {
            let _ = NfsReply::decode(p, &buf);
        }
        let _ = CallHeader::decode(&mut XdrDecoder::new(&buf));
        let _ = ReplyHeader::decode(&mut XdrDecoder::new(&buf));
        let mut reader = RecordReader::new();
        let _ = reader.push(&buf);
        while reader.next_record().is_some() {}
    }
}

/// Short opaque reads must surface as typed `Truncated` errors, not
/// silently parse. This pins the fix: a declared length larger than the
/// remaining buffer is an error everywhere a counted item is read.
#[test]
fn short_opaques_are_typed_errors_not_silent_truncation() {
    let mut rng = SimRng::new(0x5047);
    for case in 0..200u64 {
        // A LOOKUP whose name length field claims more than is present.
        let call = NfsCall::Lookup {
            dir: FileHandle {
                fsid: 1,
                ino: rng.next_u64(),
                generation: 2,
            },
            name: "a-name-of-some-length".into(),
        };
        let mut buf = call.encode(9);
        let name_len_at = buf.len() - 4 - 24; // length word of the 21-byte name
        let claimed = rng.gen_range(22u32..4096);
        buf[name_len_at..name_len_at + 4].copy_from_slice(&claimed.to_be_bytes());
        match NfsCall::decode(&buf) {
            Err(XdrError::Truncated { .. }) | Err(XdrError::BadUtf8) => {}
            other => panic!("case {case}: short opaque produced {other:?}"),
        }

        // A file handle whose opaque claims 16 bytes but the buffer ends.
        let mut e = nfsproto::XdrEncoder::new();
        e.put_u32(16);
        e.put_u32(0xdead_beef); // only 4 of the 16 bytes present
        let buf = e.finish();
        assert!(
            matches!(
                FileHandle::decode(&mut XdrDecoder::new(&buf)),
                Err(XdrError::Truncated { .. })
            ),
            "case {case}: truncated handle accepted"
        );
    }
}

/// Imported-trace records lower to calls that decode back to the same
/// procedure with the trace's own offsets and counts intact.
#[test]
fn imported_trace_records_decode_to_matching_calls() {
    let trace = nfstrace::from_text(IMPORTED_TRACE).expect("embedded trace parses");
    let bufs = imported_corpus();
    assert_eq!(bufs.len(), trace.len());
    for (i, (r, buf)) in trace.records.iter().zip(&bufs).enumerate() {
        let (xid, call) = NfsCall::decode(buf).unwrap_or_else(|e| panic!("record {i}: {e}"));
        assert_eq!(xid, i as u32);
        match (r.op, &call) {
            (nfstrace::TraceOp::Read, NfsCall::Read { offset, count, .. }) => {
                assert_eq!((*offset, *count), (r.offset, r.len));
            }
            (nfstrace::TraceOp::Write, NfsCall::Write { offset, count, .. }) => {
                assert_eq!((*offset, *count), (r.offset, r.len));
            }
            (nfstrace::TraceOp::Getattr, NfsCall::Getattr { fh }) => {
                assert_eq!(fh.ino, r.fh);
            }
            (nfstrace::TraceOp::Lookup, NfsCall::Lookup { dir, name }) => {
                assert_eq!(dir.ino, r.fh);
                assert_eq!(name.len(), r.len.max(1) as usize);
            }
            (nfstrace::TraceOp::Readdir, NfsCall::Readdir { cookie, count, .. }) => {
                assert_eq!((*cookie, *count), (r.offset, r.len));
            }
            other => panic!("record {i}: op/call mismatch {other:?}"),
        }
    }
}

/// Mutations that leave a message well-formed must decode to *something*
/// (possibly different field values) — and decoding the re-encoded
/// result must be stable. Guards against decoders that read past their
/// arguments into trailing bytes.
#[test]
fn decode_is_prefix_stable_with_trailing_junk() {
    let mut rng = SimRng::new(0x7A11);
    for case in 0..200u64 {
        for buf in corpus(&mut rng) {
            let mut extended = buf.clone();
            let junk: Vec<u8> = (0..rng.gen_range(1usize..64))
                .map(|_| rng.next_u64() as u8)
                .collect();
            extended.extend_from_slice(&junk);
            // Calls carry their own framing; trailing bytes (e.g. from a
            // coalesced TCP read handed over un-framed) must not change
            // the decoded value when the prefix decodes.
            if let Ok((xid, call)) = NfsCall::decode(&buf) {
                let (xid2, call2) =
                    NfsCall::decode(&extended).unwrap_or_else(|e| panic!("case {case}: {e}"));
                assert_eq!((xid, &call), (xid2, &call2), "case {case}");
            }
        }
    }
}
