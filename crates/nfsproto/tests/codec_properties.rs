//! Property tests: encode/decode are exact inverses for every message
//! variant, and malformed buffers (truncated or corrupted) are rejected
//! without panicking.
//!
//! Driven by seeded `SimRng` loops rather than a property-testing crate so
//! the workspace builds offline; every failure message carries the case
//! index, which together with the fixed seed reproduces the input.

use nfsproto::{write_verf, Fattr3, FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus, StableHow};
use simcore::SimRng;

const CASES: u64 = 300;

fn arb_fh(rng: &mut SimRng) -> FileHandle {
    FileHandle {
        fsid: rng.next_u64() as u32,
        ino: rng.next_u64(),
        generation: rng.next_u64() as u32,
    }
}

fn arb_name(rng: &mut SimRng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    let len = rng.gen_range(1usize..=64);
    (0..len)
        .map(|_| *rng.choose(ALPHABET).expect("non-empty") as char)
        .collect()
}

fn arb_stable(rng: &mut SimRng) -> StableHow {
    *rng.choose(&[
        StableHow::Unstable,
        StableHow::DataSync,
        StableHow::FileSync,
    ])
    .expect("non-empty")
}

/// One call of each variant, fields randomized.
fn arb_calls(rng: &mut SimRng) -> Vec<NfsCall> {
    vec![
        NfsCall::Getattr { fh: arb_fh(rng) },
        NfsCall::Lookup {
            dir: arb_fh(rng),
            name: arb_name(rng),
        },
        NfsCall::Read {
            fh: arb_fh(rng),
            offset: rng.next_u64(),
            count: rng.gen_range(1u32..65_536),
        },
        NfsCall::Write {
            fh: arb_fh(rng),
            offset: rng.next_u64(),
            count: rng.gen_range(1u32..65_536),
            stable: arb_stable(rng),
        },
        NfsCall::Readdir {
            dir: arb_fh(rng),
            cookie: rng.next_u64(),
            cookieverf: rng.next_u64(),
            count: rng.gen_range(512u32..65_536),
        },
        NfsCall::Readdirplus {
            dir: arb_fh(rng),
            cookie: rng.next_u64(),
            cookieverf: rng.next_u64(),
            dircount: rng.gen_range(512u32..16_384),
            maxcount: rng.gen_range(512u32..65_536),
        },
        NfsCall::Commit {
            fh: arb_fh(rng),
            offset: rng.next_u64(),
            count: rng.gen_range(0u32..65_536),
        },
    ]
}

/// Bytes `wire_bytes()` counts that `encode()` elides: data payloads
/// travel as lengths, so the wire size exceeds the encoding by exactly
/// the payload.
fn call_elided_payload(call: &NfsCall) -> u64 {
    match call {
        NfsCall::Write { count, .. } => u64::from(*count),
        _ => 0,
    }
}

/// Reply-side elided payload: READ data and READDIR(PLUS) entry lists.
fn reply_elided_payload(reply: &NfsReply) -> u64 {
    match reply {
        NfsReply::Read { count, .. } => u64::from(*count),
        NfsReply::Readdir { bytes, .. } => u64::from(*bytes),
        _ => 0,
    }
}

/// One reply of each variant (success and error forms), fields randomized.
fn arb_replies(rng: &mut SimRng) -> Vec<(NfsProc, NfsReply)> {
    vec![
        (
            NfsProc::Getattr,
            NfsReply::Getattr {
                status: NfsStatus::Ok,
                attrs: Some(Fattr3 {
                    size: rng.next_u64(),
                    fileid: rng.next_u64(),
                }),
            },
        ),
        (
            NfsProc::Getattr,
            NfsReply::Getattr {
                status: NfsStatus::Stale,
                attrs: None,
            },
        ),
        (
            NfsProc::Lookup,
            NfsReply::Lookup {
                status: NfsStatus::Ok,
                fh: Some(arb_fh(rng)),
            },
        ),
        (
            NfsProc::Lookup,
            NfsReply::Lookup {
                status: NfsStatus::NoEnt,
                fh: None,
            },
        ),
        (
            NfsProc::Read,
            NfsReply::Read {
                status: NfsStatus::Ok,
                count: rng.gen_range(0u32..1_048_576),
                eof: rng.chance(0.5),
            },
        ),
        (
            NfsProc::Write,
            NfsReply::Write {
                status: NfsStatus::Ok,
                count: rng.gen_range(0u32..1_048_576),
                committed: arb_stable(rng),
                verf: rng.next_u64(),
            },
        ),
        (
            NfsProc::Write,
            NfsReply::Write {
                status: NfsStatus::Io,
                count: 0,
                committed: StableHow::FileSync,
                verf: rng.next_u64(),
            },
        ),
        (
            NfsProc::Readdir,
            NfsReply::Readdir {
                status: NfsStatus::Ok,
                plus: false,
                cookieverf: rng.next_u64(),
                entries: rng.gen_range(0u32..512),
                bytes: rng.gen_range(0u32..65_536),
                eof: rng.chance(0.5),
            },
        ),
        (
            NfsProc::Readdirplus,
            NfsReply::Readdir {
                status: NfsStatus::Ok,
                plus: true,
                cookieverf: rng.next_u64(),
                entries: rng.gen_range(0u32..512),
                bytes: rng.gen_range(0u32..131_072),
                eof: rng.chance(0.5),
            },
        ),
        (
            NfsProc::Commit,
            NfsReply::Commit {
                status: NfsStatus::Ok,
                verf: rng.next_u64(),
            },
        ),
        (
            NfsProc::Commit,
            NfsReply::Commit {
                status: NfsStatus::Io,
                verf: rng.next_u64(),
            },
        ),
    ]
}

/// The wire-size honesty contract: for every call and reply variant,
/// `wire_bytes()` equals the actual encoded length plus the elided data
/// payload (zero for everything except WRITE calls, READ replies, and
/// READDIR(PLUS) replies). This is the estimate the transport timing
/// model runs on, so a drifting variant silently distorts every figure.
#[test]
fn wire_bytes_equal_encoded_length_plus_elided_payload() {
    let mut rng = SimRng::new(0x3172E);
    for case in 0..CASES {
        let xid = rng.next_u64() as u32;
        for call in arb_calls(&mut rng) {
            assert_eq!(
                call.wire_bytes(),
                call.encode(xid).len() as u64 + call_elided_payload(&call),
                "case {case}: {call:?}"
            );
        }
        for (_, reply) in arb_replies(&mut rng) {
            assert_eq!(
                reply.wire_bytes(),
                reply.encode(xid).len() as u64 + reply_elided_payload(&reply),
                "case {case}: {reply:?}"
            );
        }
    }
}

#[test]
fn every_call_variant_roundtrips() {
    let mut rng = SimRng::new(0xC0DEC);
    for case in 0..CASES {
        let xid = rng.next_u64() as u32;
        for call in arb_calls(&mut rng) {
            let buf = call.encode(xid);
            let (got_xid, got) = NfsCall::decode(&buf)
                .unwrap_or_else(|e| panic!("case {case}: decode {call:?}: {e}"));
            assert_eq!(got_xid, xid, "case {case}");
            assert_eq!(got, call, "case {case}");
        }
    }
}

#[test]
fn every_reply_variant_roundtrips() {
    let mut rng = SimRng::new(0xC0DED);
    for case in 0..CASES {
        let xid = rng.next_u64() as u32;
        for (proc_, reply) in arb_replies(&mut rng) {
            let buf = reply.encode(xid);
            let (got_xid, got) = NfsReply::decode(proc_, &buf)
                .unwrap_or_else(|e| panic!("case {case}: decode {reply:?}: {e}"));
            assert_eq!(got_xid, xid, "case {case}");
            assert_eq!(got, reply, "case {case}");
        }
    }
}

#[test]
fn truncated_calls_error_and_never_panic() {
    let mut rng = SimRng::new(0x7A0C);
    for case in 0..CASES {
        for call in arb_calls(&mut rng) {
            let buf = call.encode(1);
            // Every strict prefix must fail to decode (the full header alone
            // is not a complete call for any variant we encode).
            let cut = rng.gen_range(0usize..buf.len());
            assert!(
                NfsCall::decode(&buf[..cut]).is_err(),
                "case {case}: prefix of {} bytes of {call:?} decoded",
                cut
            );
        }
    }
}

#[test]
fn truncated_replies_error_and_never_panic() {
    let mut rng = SimRng::new(0x7A0D);
    for _case in 0..CASES {
        for (proc_, reply) in arb_replies(&mut rng) {
            let buf = reply.encode(1);
            let min_ok = buf.len();
            let cut = rng.gen_range(0usize..min_ok);
            // Prefixes may decode only if the dropped tail carried no
            // required data; decoding must never panic either way.
            let _ = NfsReply::decode(proc_, &buf[..cut]);
        }
    }
}

#[test]
fn corrupted_headers_are_rejected() {
    let mut rng = SimRng::new(0xBADC0DE);
    for case in 0..CASES {
        for call in arb_calls(&mut rng) {
            let mut buf = call.encode(7);
            // Flip the message-type word (offset 4): no longer a CALL.
            buf[4..8].copy_from_slice(&rng.gen_range(1u32..u32::MAX).to_be_bytes());
            assert!(
                NfsCall::decode(&buf).is_err(),
                "case {case}: corrupted mtype accepted for {call:?}"
            );
            // Corrupt the procedure number to an unknown value.
            let mut buf2 = call.encode(7);
            buf2[20..24].copy_from_slice(&999u32.to_be_bytes());
            assert!(
                NfsCall::decode(&buf2).is_err(),
                "case {case}: unknown procedure accepted"
            );
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SimRng::new(0x6A26A2E);
    for _ in 0..2_000 {
        let len = rng.gen_range(0usize..256);
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = NfsCall::decode(&buf);
        let _ = NfsReply::decode(NfsProc::Read, &buf);
        let _ = NfsReply::decode(NfsProc::Getattr, &buf);
    }
}

/// Verifier semantics: the RFC 1813 cookie is a pure function of the
/// server instance and its boot epoch, changes on every restart, and
/// survives a WRITE-reply → COMMIT-reply wire round trip bit-exactly (a
/// client can only detect a crash window if the cookie it compares is
/// the one the server sent).
#[test]
fn commit_verifier_changes_iff_server_restart() {
    let mut rng = SimRng::new(0x5E12F);
    for case in 0..CASES {
        let instance = rng.next_u64();
        let epoch = rng.gen_range(0u64..1_000);
        let v = write_verf(instance, epoch);
        assert_eq!(
            v,
            write_verf(instance, epoch),
            "case {case}: same boot must reuse the same verifier"
        );
        let restarts = rng.gen_range(1u64..16);
        assert_ne!(
            v,
            write_verf(instance, epoch + restarts),
            "case {case}: {restarts} restart(s) must change the verifier"
        );
        // The cookie travels opaquely through both reply forms.
        let wr = NfsReply::Write {
            status: NfsStatus::Ok,
            count: rng.gen_range(0u32..1_048_576),
            committed: arb_stable(&mut rng),
            verf: v,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Write, &wr.encode(1)).expect("well-formed");
        assert_eq!(dec, wr, "case {case}");
        let cr = NfsReply::Commit {
            status: NfsStatus::Ok,
            verf: v,
        };
        let (_, dec) = NfsReply::decode(NfsProc::Commit, &cr.encode(2)).expect("well-formed");
        assert_eq!(dec, cr, "case {case}");
    }
}

#[test]
fn encoded_length_is_word_aligned() {
    let mut rng = SimRng::new(0xA116);
    for case in 0..CASES {
        for call in arb_calls(&mut rng) {
            assert_eq!(call.encode(1).len() % 4, 0, "case {case}: {call:?}");
        }
        for (_, reply) in arb_replies(&mut rng) {
            assert_eq!(reply.encode(1).len() % 4, 0, "case {case}: {reply:?}");
        }
    }
}
