//! Property tests: encode/decode are exact inverses for every message.

use nfsproto::{Fattr3, FileHandle, NfsCall, NfsProc, NfsReply, NfsStatus};
use proptest::prelude::*;

fn arb_fh() -> impl Strategy<Value = FileHandle> {
    (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(fsid, ino, generation)| FileHandle {
        fsid,
        ino,
        generation,
    })
}

fn arb_call() -> impl Strategy<Value = NfsCall> {
    prop_oneof![
        arb_fh().prop_map(|fh| NfsCall::Getattr { fh }),
        (arb_fh(), "[a-zA-Z0-9._-]{1,64}")
            .prop_map(|(dir, name)| NfsCall::Lookup { dir, name }),
        (arb_fh(), any::<u64>(), 1u32..65_536)
            .prop_map(|(fh, offset, count)| NfsCall::Read { fh, offset, count }),
        (arb_fh(), any::<u64>(), 1u32..65_536)
            .prop_map(|(fh, offset, count)| NfsCall::Write { fh, offset, count }),
    ]
}

proptest! {
    #[test]
    fn call_roundtrip(xid in any::<u32>(), call in arb_call()) {
        let buf = call.encode(xid);
        let (got_xid, got) = NfsCall::decode(&buf).expect("decode");
        prop_assert_eq!(got_xid, xid);
        prop_assert_eq!(got, call);
    }

    #[test]
    fn read_reply_roundtrip(xid in any::<u32>(), count in 0u32..1_048_576, eof in any::<bool>()) {
        let reply = NfsReply::Read { status: NfsStatus::Ok, count, eof };
        let (got_xid, got) = NfsReply::decode(NfsProc::Read, &reply.encode(xid)).expect("decode");
        prop_assert_eq!(got_xid, xid);
        prop_assert_eq!(got, reply);
    }

    #[test]
    fn getattr_reply_roundtrip(xid in any::<u32>(), size in any::<u64>(), fileid in any::<u64>()) {
        let reply = NfsReply::Getattr {
            status: NfsStatus::Ok,
            attrs: Some(Fattr3 { size, fileid }),
        };
        let (_, got) = NfsReply::decode(NfsProc::Getattr, &reply.encode(xid)).expect("decode");
        prop_assert_eq!(got, reply);
    }

    #[test]
    fn truncated_calls_never_panic(call in arb_call(), cut in 0usize..64) {
        let buf = call.encode(1);
        let keep = buf.len().saturating_sub(cut + 1);
        let _ = NfsCall::decode(&buf[..keep]); // Must not panic.
    }

    #[test]
    fn encoded_len_is_word_aligned(call in arb_call()) {
        prop_assert_eq!(call.encode(1).len() % 4, 0);
    }
}
