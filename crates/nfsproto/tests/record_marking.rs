//! Property tests for XDR record marking: arbitrary messages split
//! across arbitrary fragment boundaries — including 1-byte fragments and
//! multi-fragment records — reassemble bit-identically however the
//! resulting byte stream is chopped up for delivery, and oversized
//! fragments are rejected with a typed error.

use nfsproto::{
    frame_record, frame_record_split, RecordError, RecordReader, LAST_FRAGMENT, MAX_FRAGMENT,
    MAX_RECORD,
};
use simcore::SimRng;

const CASES: u64 = 200;

fn arb_msg(rng: &mut SimRng) -> Vec<u8> {
    let len = match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0usize..8),
        1 => rng.gen_range(8usize..256),
        2 => rng.gen_range(256usize..4096),
        _ => rng.gen_range(4096usize..32_768),
    };
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Delivers `wire` to `reader` in random-size chunks, mimicking how TCP
/// hands bytes to the application with no respect for message framing.
fn deliver_chopped(reader: &mut RecordReader, wire: &[u8], rng: &mut SimRng) {
    let mut pos = 0;
    while pos < wire.len() {
        let take = rng.gen_range(1usize..=(wire.len() - pos).min(1500));
        reader.push(&wire[pos..pos + take]).expect("legal framing");
        pos += take;
    }
}

#[test]
fn arbitrary_fragmentation_reassembles_bit_identically() {
    let mut rng = SimRng::new(0xF2A6);
    for case in 0..CASES {
        let msg = arb_msg(&mut rng);
        // Fragment size from pathological (1 byte) to "whole message".
        let max_frag = match rng.gen_range(0u32..4) {
            0 => 1,
            1 => rng.gen_range(2usize..16),
            2 => rng.gen_range(16usize..1024),
            _ => msg.len().max(1),
        };
        let mut wire = Vec::new();
        frame_record_split(&msg, max_frag, &mut wire);
        let mut reader = RecordReader::new();
        deliver_chopped(&mut reader, &wire, &mut rng);
        assert_eq!(
            reader.next_record(),
            Some(msg),
            "case {case}: max_frag {max_frag}"
        );
        assert_eq!(reader.next_record(), None, "case {case}: phantom record");
        assert!(!reader.mid_record(), "case {case}: residue");
    }
}

#[test]
fn one_byte_fragments_and_one_byte_delivery() {
    // The double-pathological case: every fragment is 1 byte AND every
    // socket read is 1 byte, so each marker arrives across 4 pushes.
    let msg: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
    let mut wire = Vec::new();
    frame_record_split(&msg, 1, &mut wire);
    assert_eq!(wire.len(), msg.len() * 5, "4-byte marker per 1-byte frag");
    let mut reader = RecordReader::new();
    for b in &wire {
        reader.push(std::slice::from_ref(b)).expect("legal framing");
    }
    assert_eq!(reader.next_record(), Some(msg));
}

#[test]
fn back_to_back_records_on_one_stream_stay_ordered() {
    let mut rng = SimRng::new(0xF2A7);
    for case in 0..CASES {
        let msgs: Vec<Vec<u8>> = (0..rng.gen_range(2usize..8))
            .map(|_| arb_msg(&mut rng))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            if rng.chance(0.5) {
                frame_record(m, &mut wire);
            } else {
                let frag = rng.gen_range(1usize..=m.len().max(1));
                frame_record_split(m, frag, &mut wire);
            }
        }
        let mut reader = RecordReader::new();
        deliver_chopped(&mut reader, &wire, &mut rng);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(
                reader.next_record().as_ref(),
                Some(m),
                "case {case}: record {i} out of order or corrupted"
            );
        }
        assert_eq!(reader.next_record(), None, "case {case}");
    }
}

#[test]
fn single_and_split_framings_decode_identically() {
    let mut rng = SimRng::new(0xF2A8);
    for case in 0..CASES {
        let msg = arb_msg(&mut rng);
        let mut single = Vec::new();
        frame_record(&msg, &mut single);
        let mut split = Vec::new();
        frame_record_split(&msg, rng.gen_range(1usize..64), &mut split);

        let mut ra = RecordReader::new();
        ra.push(&single).unwrap();
        let mut rb = RecordReader::new();
        rb.push(&split).unwrap();
        assert_eq!(ra.next_record(), rb.next_record(), "case {case}");
    }
}

#[test]
fn oversized_fragment_rejected_with_typed_error() {
    let mut rng = SimRng::new(0xF2A9);
    for case in 0..64 {
        let len = rng.gen_range(MAX_FRAGMENT + 1..=!LAST_FRAGMENT);
        let last = rng.chance(0.5);
        let marker = (if last { LAST_FRAGMENT } else { 0 } | len).to_be_bytes();
        let mut reader = RecordReader::new();
        assert_eq!(
            reader.push(&marker),
            Err(RecordError::FragmentTooLarge { len }),
            "case {case}"
        );
        // The reader is poisoned after a framing violation — the stream
        // cannot be resynchronised, so subsequent pushes keep failing.
        assert!(reader.push(&[0u8; 8]).is_err(), "case {case}: unpoisoned");
        assert_eq!(reader.next_record(), None, "case {case}");
    }
}

#[test]
fn record_cap_applies_across_fragments_not_just_per_fragment() {
    // Each fragment is individually legal; their sum is not.
    let frag_len = MAX_FRAGMENT as usize;
    let frags_needed = MAX_RECORD / frag_len + 2;
    let mut reader = RecordReader::new();
    let frag = vec![0u8; frag_len];
    let mut tripped = false;
    for i in 0..frags_needed {
        let mut wire = Vec::with_capacity(4 + frag_len);
        wire.extend_from_slice(&(frag_len as u32).to_be_bytes());
        wire.extend_from_slice(&frag);
        match reader.push(&wire) {
            Ok(()) => assert!((i + 1) * frag_len <= MAX_RECORD),
            Err(RecordError::RecordTooLarge { len }) => {
                assert!(len > MAX_RECORD);
                tripped = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(tripped, "record cap never enforced");
}

#[test]
fn empty_record_framings() {
    // An empty message still forms a record: one empty final fragment.
    let mut wire = Vec::new();
    frame_record(&[], &mut wire);
    assert_eq!(wire, LAST_FRAGMENT.to_be_bytes());
    let mut reader = RecordReader::new();
    reader.push(&wire).unwrap();
    assert_eq!(reader.next_record(), Some(Vec::new()));

    // Empty final fragment terminating a non-empty record.
    let mut wire = Vec::new();
    wire.extend_from_slice(&3u32.to_be_bytes());
    wire.extend_from_slice(b"abc");
    wire.extend_from_slice(&LAST_FRAGMENT.to_be_bytes());
    let mut reader = RecordReader::new();
    reader.push(&wire).unwrap();
    assert_eq!(reader.next_record(), Some(b"abc".to_vec()));
}
