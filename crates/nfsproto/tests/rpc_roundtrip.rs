//! Property tests for the shared ONC RPC header module: call and reply
//! headers round-trip for arbitrary field values, the refactored
//! encoders are byte-identical to the historical hand-rolled layouts,
//! and accept-state/verifier handling is exact.

use nfsproto::{
    AcceptStat, CallHeader, NfsCall, NfsReply, NfsStatus, ReplyHeader, XdrDecoder, XdrEncoder,
    XdrError, AUTH_NONE, AUTH_UNIX, MSG_CALL, MSG_REPLY, NFS_PROGRAM, NFS_VERSION, RPC_VERSION,
};
use simcore::SimRng;

const CASES: u64 = 400;

fn arb_accept(rng: &mut SimRng) -> AcceptStat {
    match rng.gen_range(0u32..6) {
        0 => AcceptStat::Success,
        1 => AcceptStat::ProgUnavail,
        2 => AcceptStat::ProgMismatch {
            low: rng.next_u64() as u32,
            high: rng.next_u64() as u32,
        },
        3 => AcceptStat::ProcUnavail,
        4 => AcceptStat::GarbageArgs,
        _ => AcceptStat::SystemErr,
    }
}

#[test]
fn call_headers_roundtrip_for_arbitrary_fields() {
    let mut rng = SimRng::new(0x29C0);
    for case in 0..CASES {
        let h = CallHeader {
            xid: rng.next_u64() as u32,
            prog: rng.next_u64() as u32,
            vers: rng.next_u64() as u32,
            proc_num: rng.next_u64() as u32,
        };
        let mut e = XdrEncoder::new();
        h.encode(&mut e);
        let buf = e.finish();
        let mut d = XdrDecoder::new(&buf);
        let got = CallHeader::decode(&mut d).unwrap_or_else(|err| panic!("case {case}: {err}"));
        assert_eq!(got, h, "case {case}");
        assert_eq!(d.remaining(), 0, "case {case}: trailing bytes");
    }
}

#[test]
fn reply_headers_roundtrip_every_accept_state() {
    let mut rng = SimRng::new(0x29C1);
    for case in 0..CASES {
        let h = ReplyHeader {
            xid: rng.next_u64() as u32,
            stat: arb_accept(&mut rng),
        };
        let mut e = XdrEncoder::new();
        h.encode(&mut e);
        let buf = e.finish();
        let mut d = XdrDecoder::new(&buf);
        let got = ReplyHeader::decode(&mut d).unwrap_or_else(|err| panic!("case {case}: {err}"));
        assert_eq!(got, h, "case {case}");
        assert_eq!(d.remaining(), 0, "case {case}");
    }
}

/// The shared module must reproduce, byte for byte, the header layout
/// `NfsCall::encode`/`NfsReply::encode` have emitted since the first
/// commit — the simulator's wire-size accounting and every fingerprint
/// pin in the workspace depend on it.
#[test]
fn shared_headers_are_byte_identical_to_historical_layout() {
    let mut rng = SimRng::new(0x29C2);
    for _ in 0..CASES {
        let xid = rng.next_u64() as u32;
        let proc_num = *rng.choose(&[1u32, 3, 6, 7, 21]).expect("non-empty");

        let mut e = XdrEncoder::new();
        CallHeader {
            xid,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc_num,
        }
        .encode(&mut e);
        let shared = e.finish();

        // The historical inline encoding, verbatim.
        let mut e = XdrEncoder::new();
        e.put_u32(xid)
            .put_u32(0)
            .put_u32(2)
            .put_u32(NFS_PROGRAM)
            .put_u32(NFS_VERSION)
            .put_u32(proc_num)
            .put_u32(1)
            .put_u32(8)
            .put_u32(0)
            .put_u32(0)
            .put_u32(0)
            .put_u32(0);
        assert_eq!(shared, e.finish(), "call header layout drifted");

        let mut e = XdrEncoder::new();
        ReplyHeader::success(xid).encode(&mut e);
        let shared = e.finish();
        let mut e = XdrEncoder::new();
        e.put_u32(xid)
            .put_u32(1)
            .put_u32(0)
            .put_u32(0)
            .put_u32(0)
            .put_u32(0);
        assert_eq!(shared, e.finish(), "reply header layout drifted");
    }
}

/// Whole-message check: NfsCall/NfsReply (which now delegate to the
/// shared module) decode through the shared header path and round-trip.
#[test]
fn messages_still_roundtrip_through_shared_headers() {
    let mut rng = SimRng::new(0x29C3);
    for case in 0..CASES {
        let xid = rng.next_u64() as u32;
        let call = NfsCall::Read {
            fh: nfsproto::FileHandle {
                fsid: rng.next_u64() as u32,
                ino: rng.next_u64(),
                generation: rng.next_u64() as u32,
            },
            offset: rng.next_u64(),
            count: rng.gen_range(1u32..65_536),
        };
        let buf = call.encode(xid);
        let mut d = XdrDecoder::new(&buf);
        let hdr = CallHeader::decode(&mut d).unwrap();
        assert_eq!(
            (hdr.xid, hdr.prog, hdr.vers, hdr.proc_num),
            (xid, NFS_PROGRAM, NFS_VERSION, 6),
            "case {case}"
        );
        let reply = NfsReply::Commit {
            status: NfsStatus::Ok,
            verf: rng.next_u64(),
        };
        let buf = reply.encode(xid);
        let mut d = XdrDecoder::new(&buf);
        let hdr = ReplyHeader::decode(&mut d).unwrap();
        assert_eq!(hdr, ReplyHeader::success(xid), "case {case}");
    }
}

#[test]
fn verifier_bodies_of_any_length_are_consumed() {
    let mut rng = SimRng::new(0x29C4);
    for case in 0..CASES {
        // Hand-build a reply whose verifier carries a body (e.g. a real
        // server echoing AUTH_UNIX short-hand); decode must skip it and
        // land exactly on the accept_stat word.
        let body_len = rng.gen_range(0usize..32);
        let body: Vec<u8> = (0..body_len).map(|_| rng.next_u64() as u8).collect();
        let mut e = XdrEncoder::new();
        e.put_u32(11).put_u32(MSG_REPLY).put_u32(0);
        e.put_u32(AUTH_UNIX).put_opaque(&body);
        e.put_u32(0); // accept_stat SUCCESS
        e.put_u32(0xAAAA_BBBB); // first results word
        let buf = e.finish();
        let mut d = XdrDecoder::new(&buf);
        let hdr = ReplyHeader::decode(&mut d).unwrap_or_else(|err| panic!("case {case}: {err}"));
        assert_eq!(hdr.stat, AcceptStat::Success, "case {case}");
        assert_eq!(d.get_u32().unwrap(), 0xAAAA_BBBB, "case {case}");
    }
}

#[test]
fn denied_and_malformed_replies_are_typed_errors() {
    // MSG_DENIED with both rejection reasons.
    for reason in [0u32, 1] {
        let mut e = XdrEncoder::new();
        e.put_u32(3).put_u32(MSG_REPLY).put_u32(1).put_u32(reason);
        let buf = e.finish();
        assert_eq!(
            ReplyHeader::decode(&mut XdrDecoder::new(&buf)),
            Err(XdrError::RpcDenied { reason })
        );
    }
    // A call where a reply is expected.
    let mut e = XdrEncoder::new();
    e.put_u32(3).put_u32(MSG_CALL);
    let buf = e.finish();
    assert!(matches!(
        ReplyHeader::decode(&mut XdrDecoder::new(&buf)),
        Err(XdrError::BadEnum {
            value: MSG_CALL,
            ..
        })
    ));
    // Wrong RPC version on a call.
    let mut e = XdrEncoder::new();
    e.put_u32(3).put_u32(MSG_CALL).put_u32(RPC_VERSION + 1);
    let buf = e.finish();
    assert!(matches!(
        CallHeader::decode(&mut XdrDecoder::new(&buf)),
        Err(XdrError::BadEnum { .. })
    ));
    // Unknown accept_stat.
    let mut e = XdrEncoder::new();
    e.put_u32(3)
        .put_u32(MSG_REPLY)
        .put_u32(0)
        .put_u32(AUTH_NONE)
        .put_u32(0)
        .put_u32(17);
    let buf = e.finish();
    assert!(matches!(
        ReplyHeader::decode(&mut XdrDecoder::new(&buf)),
        Err(XdrError::BadEnum { value: 17, .. })
    ));
}
