//! Statistics helpers for benchmark reporting.
//!
//! The paper reports each point as the mean of at least ten runs with the
//! standard deviation (Table 1 prints it in parentheses). [`OnlineStats`]
//! accumulates those moments in one pass (Welford's algorithm);
//! [`Summary`] is the frozen result. [`Histogram`] supports the
//! completion-time distributions of Figure 3.

use std::fmt;

/// One-pass accumulator of count/mean/variance/min/max (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation with Bessel's correction (0 if n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Freezes into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            stddev: self.stddev(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Frozen summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice in one pass.
    pub fn of(xs: &[f64]) -> Summary {
        xs.iter().copied().collect::<OnlineStats>().summary()
    }

    /// Half-width of the ~95 % confidence interval of the mean
    /// (normal approximation; fine for the n >= 10 runs used here).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.count as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ({:.2})", self.mean, self.stddev)
    }
}

/// Returns the `q`-quantile (0 <= q <= 1) of a sample by linear
/// interpolation, or `None` for an empty sample.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Total number of observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Counts that fell below `lo` / at or above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn mean_and_stddev_match_hand_computation() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of that classic set is sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_observation_has_zero_stddev() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many = Summary::of(&[1.0, 2.0, 3.0, 4.0].repeat(25));
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn display_matches_paper_table_format() {
        let s = Summary::of(&[7.66, 7.66, 7.66]);
        assert_eq!(format!("{s}"), "7.66 (0.00)");
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_is_order_insensitive() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.out_of_range(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let s = Summary::of(&[4.0; 10]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let s: OnlineStats = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }
}
