//! Statistics helpers for benchmark reporting.
//!
//! The paper reports each point as the mean of at least ten runs with the
//! standard deviation (Table 1 prints it in parentheses). [`OnlineStats`]
//! accumulates those moments in one pass (Welford's algorithm);
//! [`Summary`] is the frozen result. [`Histogram`] supports the
//! completion-time distributions of Figure 3.

use std::fmt;

/// One-pass accumulator of count/mean/variance/min/max (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation with Bessel's correction (0 if n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Freezes into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            stddev: self.stddev(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Frozen summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice in one pass.
    pub fn of(xs: &[f64]) -> Summary {
        xs.iter().copied().collect::<OnlineStats>().summary()
    }

    /// Half-width of the ~95 % confidence interval of the mean
    /// (normal approximation; fine for the n >= 10 runs used here).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.count as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ({:.2})", self.mean, self.stddev)
    }
}

/// Returns the `q`-quantile (0 <= q <= 1) of a sample by linear
/// interpolation, or `None` for an empty sample.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Total number of observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Counts that fell below `lo` / at or above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }
}

/// Number of linear sub-buckets per octave in [`LogHist`] (power of two).
const LOG_SUB: u32 = 6;
const SUB: u64 = 1 << LOG_SUB;
/// Octaves with msb in `LOG_SUB..=63`, plus the exact low range `[0, SUB)`.
const LOG_BUCKETS: usize = (SUB as usize) * (64 - LOG_SUB as usize + 1);

/// A streaming log-bucketed histogram over `u64` values (e.g. latency in
/// nanoseconds) with bounded memory and exact, order-independent merging.
///
/// Values below [`SUB`] are counted exactly; every octave `[2^m, 2^(m+1))`
/// above that is split into [`SUB`] linear sub-buckets, so the bucket width
/// never exceeds `value / SUB` — quantiles carry a relative error of at
/// most `1/SUB` (~1.6 %). All state is integer counters: merging shard
/// histograms is element-wise addition, which makes `merge` commutative and
/// associative and a merged histogram bit-identical to one built
/// sequentially from the same observations in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHist {
    /// Creates an empty histogram (~30 KB of bucket counters).
    pub fn new() -> Self {
        LogHist {
            counts: vec![0; LOG_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - LOG_SUB;
            let sub = (v >> shift) - SUB;
            (SUB as usize) + (msb - LOG_SUB) as usize * SUB as usize + sub as usize
        }
    }

    /// Lower bound of bucket `i` (the representative value reported for it
    /// is the bucket midpoint).
    fn bucket_lo(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            i
        } else {
            let octave = (i - SUB) / SUB;
            let sub = (i - SUB) % SUB;
            (SUB + sub) << octave
        }
    }

    fn bucket_width(i: usize) -> u64 {
        if (i as u64) < SUB {
            1
        } else {
            1u64 << ((i as u64 - SUB) / SUB)
        }
    }

    /// Records one observation.
    pub fn add(&mut self, v: u64) {
        self.add_n(v, 1);
    }

    /// Records `n` identical observations.
    pub fn add_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(v)] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (element-wise counter addition).
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (exact; u128 to survive 100k × hour-scale
    /// nanosecond latencies).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest observation (exact), or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest observation (exact), or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the midpoint of the bucket holding
    /// the rank-`⌊q·(n-1)⌋` observation, clamped to the observed min/max.
    /// Relative error vs. the exact order statistic is bounded by `1/SUB`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.total - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let mid = Self::bucket_lo(i) + Self::bucket_width(i) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Heap bytes held by the bucket array (the memory-footprint story).
    pub fn bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u64>()
    }

    /// Order-stable FNV-1a fingerprint over the non-empty buckets; equal
    /// histograms (however built) fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        fold(self.total);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                fold(i as u64);
                fold(c);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn mean_and_stddev_match_hand_computation() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of that classic set is sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_observation_has_zero_stddev() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many = Summary::of(&[1.0, 2.0, 3.0, 4.0].repeat(25));
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn display_matches_paper_table_format() {
        let s = Summary::of(&[7.66, 7.66, 7.66]);
        assert_eq!(format!("{s}"), "7.66 (0.00)");
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_is_order_insensitive() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(1), 2);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.out_of_range(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let s = Summary::of(&[4.0; 10]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn loghist_small_values_are_exact() {
        let mut h = LogHist::new();
        for v in 0..128u64 {
            h.add(v);
        }
        assert_eq!(h.total(), 128);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(127));
        // Values below two octaves of SUB land in width-1 buckets.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(127));
        assert_eq!(h.quantile(0.5), Some(63));
    }

    #[test]
    fn loghist_relative_error_bound() {
        let mut h = LogHist::new();
        let v = 1_000_000_007u64;
        h.add(v);
        let got = h.quantile(0.5).unwrap();
        let err = got.abs_diff(v) as f64 / v as f64;
        assert!(err <= 1.0 / 64.0, "relative error {err} too large");
    }

    #[test]
    fn loghist_merge_is_elementwise() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut seq = LogHist::new();
        for v in [3u64, 70, 9_000, 1 << 40] {
            a.add(v);
            seq.add(v);
        }
        for v in [5u64, 70, 123_456] {
            b.add(v);
            seq.add(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab, seq, "merged == sequential");
        assert_eq!(ab.fingerprint(), seq.fingerprint());
    }

    #[test]
    fn loghist_empty_quantile_is_none() {
        assert_eq!(LogHist::new().quantile(0.5), None);
        assert_eq!(LogHist::new().min(), None);
    }

    #[test]
    fn from_iterator_collects() {
        let s: OnlineStats = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }
}
