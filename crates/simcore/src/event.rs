//! The discrete-event core: a time-ordered event queue and an executor loop.
//!
//! The engine is deliberately minimal. Components in the other crates are
//! written as *passive* models (given a request and the current state, they
//! compute a service time); integration crates drive them by scheduling
//! events of their own enum type `E` on an [`EventQueue`], or by running a
//! full [`Executor`] loop with a handler callback.
//!
//! Two events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO tie-breaking via a sequence number), which keeps runs
//! bit-reproducible.

use crate::time::{SimDuration, SimTime};

/// An event queued for delivery at a specific simulated instant.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// Total order: earliest time first, FIFO (sequence number) on ties.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A flat-array 4-ary min-heap.
///
/// The event queue is the hottest structure in the simulator: every RPC,
/// disk completion, and retransmission check passes through it. A 4-ary
/// heap halves the tree depth of a binary heap, so `pop` does half the
/// sift-down levels, and the four children of a node share one or two
/// cache lines instead of being spread across levels. Ordering is by
/// `(at, seq)` — identical to the previous `BinaryHeap<Scheduled>`
/// semantics, pinned by property tests in `tests/heap_properties.rs`.
#[derive(Debug, Clone)]
struct QuadHeap<E> {
    items: Vec<Scheduled<E>>,
}

impl<E> QuadHeap<E> {
    const ARITY: usize = 4;

    fn new() -> Self {
        QuadHeap { items: Vec::new() }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn peek(&self) -> Option<&Scheduled<E>> {
        self.items.first()
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn push(&mut self, s: Scheduled<E>) {
        self.items.push(s);
        self.sift_up(self.items.len() - 1);
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let s = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        s
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.items[i].key() < self.items[parent].key() {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.items.len();
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + Self::ARITY).min(len);
            let mut min = first_child;
            let mut min_key = self.items[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.items[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key < self.items[i].key() {
                self.items.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(20), "late");
/// q.schedule_at(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: QuadHeap<E>,
    now: SimTime,
    next_seq: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: QuadHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            delivered: 0,
        }
    }

    /// Returns the current simulated time (the timestamp of the most
    /// recently popped event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// Scheduling into the past is a logic error and clamps to `now`; the
    /// event will be delivered immediately after any events already pending
    /// at `now`.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` for delivery `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Returns the timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.delivered += 1;
        Some((s.at, s.payload))
    }

    /// Removes all pending events and resets the delivered counter, keeping
    /// the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.delivered = 0;
    }
}

/// Outcome of handling one event in an [`Executor`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Stop the loop; `Executor::run` returns.
    Stop,
}

/// A minimal executor that drains an [`EventQueue`] through a handler.
///
/// The handler receives mutable access to shared state `S` and to the queue
/// itself (to schedule follow-up events). A step budget guards against
/// accidental infinite event loops in tests.
pub struct Executor<E, S> {
    queue: EventQueue<E>,
    state: S,
    max_steps: u64,
}

impl<E, S> Executor<E, S> {
    /// Creates an executor around `state` with a default budget of one
    /// billion events.
    pub fn new(state: S) -> Self {
        Executor {
            queue: EventQueue::new(),
            state,
            max_steps: 1_000_000_000,
        }
    }

    /// Overrides the maximum number of events to deliver in one `run`.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Returns a mutable reference to the event queue for seeding events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Returns a shared reference to the wrapped state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Returns a mutable reference to the wrapped state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the executor, returning the final state and clock value.
    pub fn into_state(self) -> (S, SimTime) {
        let now = self.queue.now();
        (self.state, now)
    }

    /// Runs until the queue drains, the handler returns [`Control::Stop`],
    /// or the step budget is exhausted.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E) -> Control,
    {
        let mut steps = 0;
        while steps < self.max_steps {
            let Some((at, ev)) = self.queue.pop() else {
                break;
            };
            steps += 1;
            if handler(&mut self.state, &mut self.queue, at, ev) == Control::Stop {
                break;
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_millis(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), "a");
        q.pop();
        q.schedule_at(SimTime::from_nanos(10), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1_000), ());
        q.pop();
        q.schedule_after(SimDuration::from_nanos(500), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1_500)));
    }

    #[test]
    fn delivered_counts_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        q.pop();
        q.pop();
        assert_eq!(q.delivered(), 2);
        assert_eq!(q.len(), 8);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 0);
    }

    #[test]
    fn executor_runs_chained_events() {
        // A ping-pong that counts down: each event schedules the next.
        let mut ex: Executor<u32, Vec<u32>> = Executor::new(Vec::new());
        ex.queue_mut().schedule_at(SimTime::ZERO, 5);
        let steps = ex.run(|log, q, _, n| {
            log.push(n);
            if n > 0 {
                q.schedule_after(SimDuration::from_millis(1), n - 1);
            }
            Control::Continue
        });
        assert_eq!(steps, 6);
        assert_eq!(ex.state(), &vec![5, 4, 3, 2, 1, 0]);
        let (_, end) = ex.into_state();
        assert_eq!(end, SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn executor_stop_halts_early() {
        let mut ex: Executor<u32, u32> = Executor::new(0);
        for i in 0..10 {
            ex.queue_mut().schedule_at(SimTime::from_nanos(i), i as u32);
        }
        ex.run(|count, _, _, _| {
            *count += 1;
            if *count == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(*ex.state(), 3);
    }

    #[test]
    fn executor_step_budget_bounds_runaway_loops() {
        let mut ex: Executor<(), ()> = Executor::new(()).with_max_steps(100);
        ex.queue_mut().schedule_at(SimTime::ZERO, ());
        let steps = ex.run(|_, q, _, _| {
            q.schedule_after(SimDuration::from_nanos(1), ());
            Control::Continue
        });
        assert_eq!(steps, 100);
    }
}
