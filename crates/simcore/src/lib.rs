//! Deterministic discrete-event simulation core.
//!
//! `simcore` is the substrate under every other crate in this workspace. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time;
//! * [`EventQueue`] / [`Executor`] — a time-ordered event queue with FIFO
//!   tie-breaking and a minimal run loop;
//! * [`SimRng`] — seedable, stream-splittable randomness so that every
//!   experiment is bit-reproducible from a single `u64` seed;
//! * [`OnlineStats`] / [`Summary`] / [`Histogram`] — the statistics used to
//!   report benchmark results the way the paper does (mean over >= 10 runs
//!   with standard deviation);
//! * [`LogHist`] — a streaming log-bucketed latency histogram with bounded
//!   memory and exact shard merging, for tail quantiles at fleet scale;
//! * [`Trace`] — diagnostic counters that can be switched off for timed
//!   runs, mirroring the paper's instrumentation discipline.
//!
//! Nothing here knows about disks, networks, or NFS; those live in the
//! `diskmodel`, `netsim`, and `nfssim` crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod rng;
mod stats;
mod time;
mod trace;

pub use event::{Control, EventQueue, Executor};
pub use rng::{SampleRange, SimRng, UniformSample};
pub use stats::{quantile, Histogram, LogHist, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceLevel};
