//! Simulated time.
//!
//! All simulation components share a single notion of time: a monotonically
//! non-decreasing count of nanoseconds since the start of the run, wrapped in
//! [`SimTime`]. Durations between instants are [`SimDuration`]. Both are thin
//! newtypes over `u64` so that arithmetic is cheap and `Copy`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative inputs clamp to zero: physical service times are never
    /// negative, and clamping keeps jittered-model arithmetic total.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Creates a duration from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales the duration by a non-negative floating-point factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        Self::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.4}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_nanos() {
        let t = SimTime::from_nanos(123_456_789);
        assert_eq!(t.as_nanos(), 123_456_789);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn negative_float_duration_clamps_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
    }

    #[test]
    fn since_computes_difference() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        assert_eq!(b.since(a).as_nanos(), 250);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_backwards() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        let _ = a.since(b);
    }

    #[test]
    fn saturating_arithmetic_never_overflows() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration::from_nanos(u64::MAX).saturating_mul(2);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d.as_nanos(), 25_000_000);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats_are_humane() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_micros(10)), "10.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "10.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(10)), "10.0000s");
    }
}
