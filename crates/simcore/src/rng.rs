//! Deterministic, stream-splittable random number generation.
//!
//! Every experiment takes a single `u64` seed. Components derive independent
//! [`SimRng`] streams from that seed plus a stream label, so adding a new
//! consumer of randomness in one component does not perturb the sequence seen
//! by any other component (a classic source of accidental non-reproducibility
//! in simulators).
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) seeded
//! through a SplitMix64 finalizer — no external crates, so the whole
//! workspace builds offline and the byte-for-byte output of a seed is pinned
//! by this file alone, not by a dependency's minor version.

/// Mixes a seed and a stream label into a 64-bit state (SplitMix64 finalizer).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One SplitMix64 step: advances `state` and returns the next output.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types [`SimRng::gen_range`] can sample uniformly.
///
/// Implemented for the integer types the simulator uses and for `f64`;
/// half-open (`a..b`) and inclusive (`a..=b`) ranges both work.
pub trait UniformSample: Sized {
    /// Samples uniformly from `[low, high]` (inclusive bounds).
    fn sample_inclusive(rng: &mut SimRng, low: Self, high: Self) -> Self;
}

/// Ranges accepted by [`SimRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from this range using `rng`.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive(rng: &mut SimRng, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(rng.bounded(span + 1) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                <$t>::sample_inclusive(rng, lo, hi)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformSample for f64 {
    fn sample_inclusive(rng: &mut SimRng, low: Self, high: Self) -> Self {
        low + rng.uniform01() * (high - low)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.uniform01() * (self.end - self.start);
        // Guard the open upper bound against floating-point round-up.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// A seedable deterministic RNG stream (xoshiro256++).
///
/// # Examples
///
/// ```
/// use simcore::SimRng;
///
/// let mut a = SimRng::from_seed_and_stream(42, 0);
/// let mut b = SimRng::from_seed_and_stream(42, 0);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a bare seed (stream label 0).
    pub fn new(seed: u64) -> Self {
        Self::from_seed_and_stream(seed, 0)
    }

    /// Creates an independent stream identified by `(seed, stream)`.
    pub fn from_seed_and_stream(seed: u64, stream: u64) -> Self {
        let mut sm = mix(seed, stream);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix_next(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce four zeros from any input, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SimRng { s }
    }

    /// Derives a child stream; deterministic in the label.
    pub fn derive(&mut self, label: u64) -> SimRng {
        let s = self.next_u64();
        SimRng::from_seed_and_stream(s, label)
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform sample in `[0, bound)` via rejection (no modulo bias).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Samples uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        // 53 random mantissa bits: uniform over [0, 1) on the dyadic grid.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a uniform `f64` in `(0, 1]` (safe to take `ln` of).
    fn uniform01_open_low(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples an exponentially distributed value with the given mean.
    ///
    /// Used for jittered service times (e.g. nfsiod marshalling); an
    /// exponential keeps the model memoryless and easy to reason about.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean >= 0.0, "exponential mean must be non-negative");
        if mean == 0.0 {
            return 0.0;
        }
        -mean * self.uniform01_open_low().ln()
    }

    /// Samples a normal value via Box-Muller.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1 = self.uniform01_open_low();
        let u2 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + stddev * z
    }

    /// Samples a normal value clamped to be non-negative.
    pub fn normal_pos(&mut self, mean: f64, stddev: f64) -> f64 {
        self.normal(mean, stddev).max(0.0)
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.bounded(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_identical() {
        let mut a = SimRng::from_seed_and_stream(7, 3);
        let mut b = SimRng::from_seed_and_stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::from_seed_and_stream(7, 0);
        let mut b = SimRng::from_seed_and_stream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(2);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.8..5.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = SimRng::new(4);
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn normal_pos_never_negative() {
        let mut r = SimRng::new(5);
        for _ in 0..1_000 {
            assert!(r.normal_pos(0.1, 1.0) >= 0.0);
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((9.9..10.1).contains(&mean), "mean={mean}");
        assert!((3.6..4.4).contains(&var), "var={var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(7);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = SimRng::new(8);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn derive_is_deterministic() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut da = a.derive(1);
        let mut db = b.derive(1);
        assert_eq!(da.next_u64(), db.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SimRng::new(10);
        for _ in 0..1_000 {
            let x: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut r = SimRng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match r.gen_range(0u64..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_f64_stays_in_range() {
        let mut r = SimRng::new(12);
        for _ in 0..1_000 {
            let x: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x), "{x}");
        }
    }

    #[test]
    fn uniform01_is_half_open() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            let u = r.uniform01();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
