//! Lightweight diagnostic tracing.
//!
//! The paper stresses that "the diagnostic instrumentation we added to
//! monitor our algorithms confirmed that they were working as intended" —
//! and that this instrumentation must be *disabled during timed runs*.
//! [`Trace`] reproduces that workflow: components emit structured counter
//! bumps and optional messages; a disabled trace compiles down to a branch.

use std::collections::BTreeMap;

/// Severity/category of a trace message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// High-volume per-event detail.
    #[default]
    Debug,
    /// Notable state transitions.
    Info,
    /// Model anomalies worth surfacing.
    Warn,
}

/// A counter-and-message sink that can be switched off for timed runs.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    min_level: TraceLevel,
    counters: BTreeMap<&'static str, u64>,
    messages: Vec<(TraceLevel, String)>,
    max_messages: usize,
}

impl Trace {
    /// Creates a disabled trace (the timed-benchmark configuration).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            min_level: TraceLevel::Debug,
            counters: BTreeMap::new(),
            messages: Vec::new(),
            max_messages: 0,
        }
    }

    /// Creates an enabled trace retaining up to `max_messages` messages.
    pub fn enabled(max_messages: usize) -> Self {
        Trace {
            enabled: true,
            min_level: TraceLevel::Debug,
            counters: BTreeMap::new(),
            messages: Vec::new(),
            max_messages,
        }
    }

    /// Raises the minimum retained message level.
    pub fn with_min_level(mut self, level: TraceLevel) -> Self {
        self.min_level = level;
        self
    }

    /// Returns whether the trace is collecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increments a named counter (counters are always collected; they are
    /// O(log n) map bumps and do not allocate per event).
    pub fn bump(&mut self, counter: &'static str) {
        self.add(counter, 1);
    }

    /// Adds `k` to a named counter.
    pub fn add(&mut self, counter: &'static str, k: u64) {
        if self.enabled {
            *self.counters.entry(counter).or_insert(0) += k;
        }
    }

    /// Records a message if enabled and at or above the minimum level.
    pub fn msg(&mut self, level: TraceLevel, text: impl FnOnce() -> String) {
        if self.enabled && level >= self.min_level && self.messages.len() < self.max_messages {
            self.messages.push((level, text()));
        }
    }

    /// Reads a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Returns the retained messages.
    pub fn messages(&self) -> &[(TraceLevel, String)] {
        &self.messages
    }

    /// Clears counters and messages.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.messages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_collects_nothing() {
        let mut t = Trace::disabled();
        t.bump("x");
        t.msg(TraceLevel::Warn, || "hello".to_string());
        assert_eq!(t.counter("x"), 0);
        assert!(t.messages().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_counts() {
        let mut t = Trace::enabled(10);
        t.bump("reorder");
        t.bump("reorder");
        t.add("bytes", 100);
        assert_eq!(t.counter("reorder"), 2);
        assert_eq!(t.counter("bytes"), 100);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn message_cap_is_enforced() {
        let mut t = Trace::enabled(2);
        for i in 0..5 {
            t.msg(TraceLevel::Info, || format!("m{i}"));
        }
        assert_eq!(t.messages().len(), 2);
    }

    #[test]
    fn min_level_filters() {
        let mut t = Trace::enabled(10).with_min_level(TraceLevel::Warn);
        t.msg(TraceLevel::Debug, || "drop".into());
        t.msg(TraceLevel::Warn, || "keep".into());
        assert_eq!(t.messages().len(), 1);
        assert_eq!(t.messages()[0].1, "keep");
    }

    #[test]
    fn reset_clears_state() {
        let mut t = Trace::enabled(10);
        t.bump("a");
        t.msg(TraceLevel::Info, || "m".into());
        t.reset();
        assert_eq!(t.counter("a"), 0);
        assert!(t.messages().is_empty());
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut t = Trace::enabled(0);
        t.bump("zeta");
        t.bump("alpha");
        let names: Vec<_> = t.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
