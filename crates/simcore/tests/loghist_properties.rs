//! Property tests for the streaming log-bucketed histogram.
//!
//! Pins the two contracts the fleet engine depends on:
//!
//! 1. **Quantile relative-error bound** — for any sample, every reported
//!    quantile is within `1/64` (one sub-bucket) of the exact order
//!    statistic, across uniform, exponential, and bimodal shapes.
//! 2. **Shard-merge algebra** — `merge(a, b) == merge(b, a)`, merging is
//!    associative, and a histogram merged from arbitrary shard splits is
//!    bit-identical (PartialEq *and* fingerprint) to one built
//!    sequentially. This is what makes per-shard tail accounting safe.

use simcore::{LogHist, SimRng};

/// Exact lower empirical quantile: `sorted[floor(q * (n-1))]`, matching
/// the rank LogHist::quantile targets.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

fn check_error_bound(samples: &[u64], label: &str) {
    let mut h = LogHist::new();
    for &v in samples {
        h.add(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for &q in &[0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let got = h.quantile(q).unwrap();
        let want = exact_quantile(&sorted, q);
        // The reported value is the midpoint of the bucket containing the
        // exact order statistic; buckets are at most `value/64` wide, so
        // allow one bucket of relative error (plus 1 for integer rounding
        // near zero).
        let tol = want / 64 + 1;
        assert!(
            got.abs_diff(want) <= tol,
            "{label}: q={q} got={got} want={want} tol={tol}"
        );
    }
}

#[test]
fn quantile_error_bounded_uniform() {
    let mut rng = SimRng::from_seed_and_stream(0xA11CE, 1);
    for trial in 0..20 {
        let n = 100 + trial * 217;
        let samples: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50_000_000u64)).collect();
        check_error_bound(&samples, "uniform");
    }
}

#[test]
fn quantile_error_bounded_exponential_tail() {
    let mut rng = SimRng::from_seed_and_stream(0xB0B, 2);
    for _ in 0..20 {
        let samples: Vec<u64> = (0..5_000)
            .map(|_| (rng.exponential(1.0) * 2_000_000.0) as u64)
            .collect();
        check_error_bound(&samples, "exponential");
    }
}

#[test]
fn quantile_error_bounded_bimodal() {
    // The fleet's actual shape: a fast mode (healthy groups) plus a slow
    // mode (fail-slow groups) three orders of magnitude out.
    let mut rng = SimRng::from_seed_and_stream(0xCAFE, 3);
    for _ in 0..20 {
        let samples: Vec<u64> = (0..4_000)
            .map(|_| {
                if rng.chance(0.05) {
                    1_000_000_000 + rng.gen_range(0..500_000_000u64)
                } else {
                    800_000 + rng.gen_range(0..400_000u64)
                }
            })
            .collect();
        check_error_bound(&samples, "bimodal");
    }
}

#[test]
fn merge_commutes_and_associates() {
    let mut rng = SimRng::from_seed_and_stream(0xD00D, 4);
    for _ in 0..50 {
        let mk = |rng: &mut SimRng| {
            let mut h = LogHist::new();
            for _ in 0..rng.gen_range(0..200usize) {
                let shift = rng.gen_range(0..40u32);
                h.add(rng.gen_range(0..u64::MAX >> shift));
            }
            h
        };
        let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must associate");
        assert_eq!(ab_c.fingerprint(), a_bc.fingerprint());
    }
}

#[test]
fn sharded_build_is_bit_identical_to_sequential() {
    let mut rng = SimRng::from_seed_and_stream(0x5EED, 5);
    for shards in [1usize, 2, 3, 4, 7, 16] {
        let samples: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..10_000_000_000u64))
            .collect();

        let mut sequential = LogHist::new();
        for &v in &samples {
            sequential.add(v);
        }

        let mut parts = vec![LogHist::new(); shards];
        for (i, &v) in samples.iter().enumerate() {
            parts[i % shards].add(v);
        }
        let mut merged = LogHist::new();
        for p in &parts {
            merged.merge(p);
        }

        assert_eq!(merged, sequential, "shards={shards}");
        assert_eq!(merged.fingerprint(), sequential.fingerprint());
        assert_eq!(merged.total(), 10_000);
        assert_eq!(merged.sum(), sequential.sum());
        assert_eq!(merged.quantile(0.99), sequential.quantile(0.99));
    }
}

#[test]
fn add_n_equals_repeated_add() {
    let mut a = LogHist::new();
    let mut b = LogHist::new();
    a.add_n(12_345, 1_000);
    for _ in 0..1_000 {
        b.add(12_345);
    }
    assert_eq!(a, b);
    assert_eq!(a.bytes(), b.bytes());
}
