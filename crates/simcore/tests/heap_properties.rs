//! Property tests pinning the 4-ary event-queue heap to the semantics of
//! the original `BinaryHeap` implementation: min-ordering on time with
//! FIFO tie-breaking, under arbitrary interleavings of schedule and pop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use simcore::{EventQueue, SimRng, SimTime};

/// Reference model: the exact structure the event queue used before the
/// 4-ary heap — `BinaryHeap` over `Reverse<(at, seq)>` — with the same
/// clamp-to-now rule for events scheduled into the past.
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    now: u64,
    next_seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
        }
    }

    fn schedule_at(&mut self, at: u64, payload: u32) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((at, _, payload)) = self.heap.pop()?;
        self.now = at;
        Some((at, payload))
    }
}

#[test]
fn same_instant_events_pop_fifo() {
    let mut q = EventQueue::new();
    let t = SimTime::from_nanos(42);
    for i in 0..1_000u32 {
        q.schedule_at(t, i);
    }
    let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
    assert_eq!(order, (0..1_000).collect::<Vec<_>>());
}

#[test]
fn mixed_times_with_tie_clusters_pop_in_schedule_order_within_instant() {
    // Several bursts at the same instants, scheduled out of instant order:
    // within each instant the payloads must come back in schedule order.
    let mut q = EventQueue::new();
    let instants = [30u64, 10, 20, 10, 30, 20, 10];
    let mut expected: Vec<(u64, u32)> = Vec::new();
    for (i, &t) in instants.iter().enumerate() {
        q.schedule_at(SimTime::from_nanos(t), i as u32);
        expected.push((t, i as u32));
    }
    // Stable sort on time preserves schedule order inside each instant,
    // which is exactly the FIFO tie-break contract.
    expected.sort_by_key(|&(t, _)| t);
    let got: Vec<(u64, u32)> =
        std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
    assert_eq!(got, expected);
}

#[test]
fn interleaved_schedule_pop_matches_binary_heap_reference() {
    // Random interleavings of schedule/pop, with times drawn from a small
    // window (lots of ties) and occasionally from the past (exercises the
    // clamp-to-now rule). The 4-ary heap must produce the identical pop
    // stream as the BinaryHeap reference for every seed.
    for seed in 0..32u64 {
        let mut rng = SimRng::new(seed);
        let mut q = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut next_payload = 0u32;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..4_000 {
            let do_pop = rng.gen_range(0u32..100) < 40;
            if do_pop {
                popped.push(q.pop().map(|(t, e)| (t.as_nanos(), e)));
                expected.push(reference.pop());
            } else {
                // Base around "now" so past-clamping actually triggers.
                let base = q.now().as_nanos();
                let at = base.saturating_sub(8) + rng.gen_range(0u64..32);
                q.schedule_at(SimTime::from_nanos(at), next_payload);
                reference.schedule_at(at, next_payload);
                next_payload += 1;
            }
        }
        // Drain both completely.
        loop {
            let a = q.pop().map(|(t, e)| (t.as_nanos(), e));
            let b = reference.pop();
            let done = a.is_none() && b.is_none();
            popped.push(a);
            expected.push(b);
            if done {
                break;
            }
        }
        assert_eq!(popped, expected, "divergence from reference at seed {seed}");
    }
}

#[test]
fn pop_stream_is_sorted_and_heap_survives_large_random_load() {
    let mut rng = SimRng::new(0xfeed);
    let mut q = EventQueue::new();
    for i in 0..20_000u32 {
        q.schedule_at(SimTime::from_nanos(rng.gen_range(0u64..5_000)), i);
    }
    let mut last = (0u64, 0u64);
    let mut count = 0usize;
    let mut seen_seq_at_time: Option<(u64, u32)> = None;
    while let Some((t, e)) = q.pop() {
        let t = t.as_nanos();
        assert!(t >= last.0, "time went backwards");
        if let Some((pt, pe)) = seen_seq_at_time {
            if pt == t {
                assert!(e > pe, "FIFO violated at t={t}: {pe} then {e}");
            }
        }
        seen_seq_at_time = Some((t, e));
        last = (t, 0);
        count += 1;
    }
    assert_eq!(count, 20_000);
}
