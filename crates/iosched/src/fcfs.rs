//! First-come first-served scheduling.

use std::collections::VecDeque;

use diskmodel::Lba;

use crate::{IoScheduler, QueuedRequest};

/// FIFO dispatch; the baseline every textbook starts from.
#[derive(Debug, Default)]
pub struct Fcfs {
    queue: VecDeque<QueuedRequest>,
}

impl Fcfs {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl IoScheduler for Fcfs {
    fn enqueue(&mut self, qr: QueuedRequest) {
        self.queue.push_back(qr);
    }

    fn dispatch(&mut self, _head: Lba) -> Option<QueuedRequest> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        self.queue.drain(..).collect()
    }

    fn name(&self) -> &'static str {
        "fcfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr;

    #[test]
    fn dispatches_in_arrival_order() {
        let mut s = Fcfs::new();
        s.enqueue(qr(500, 0));
        s.enqueue(qr(5, 1));
        s.enqueue(qr(900, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch(0).map(|q| q.seq)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_dispatch_is_none() {
        let mut s = Fcfs::new();
        assert!(s.dispatch(0).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn drain_returns_everything() {
        let mut s = Fcfs::new();
        for i in 0..3 {
            s.enqueue(qr(i, i));
        }
        assert_eq!(s.drain().len(), 3);
        assert_eq!(s.len(), 0);
    }
}
