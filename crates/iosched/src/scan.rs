//! True bidirectional SCAN (the textbook elevator).
//!
//! Unlike the cyclical C-LOOK variant FreeBSD ships ([`crate::Elevator`]),
//! SCAN reverses direction at the ends of the request span instead of
//! sweeping one way and warping back. Included as an ablation baseline:
//! it shares the cyclical elevator's unfairness (a stream feeding requests
//! just ahead of the head still monopolizes the sweep) but halves the
//! worst-case wait for requests near the reversal points.

use std::collections::BTreeMap;

use diskmodel::Lba;

use crate::{IoScheduler, QueuedRequest};

/// Sweep direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// Bidirectional elevator scan.
#[derive(Debug)]
pub struct Scan {
    queue: BTreeMap<(Lba, u64), QueuedRequest>,
    direction: Direction,
}

impl Default for Scan {
    fn default() -> Self {
        Scan {
            queue: BTreeMap::new(),
            direction: Direction::Up,
        }
    }
}

impl Scan {
    /// Creates an empty queue sweeping upward.
    pub fn new() -> Self {
        Scan::default()
    }
}

impl IoScheduler for Scan {
    fn enqueue(&mut self, qr: QueuedRequest) {
        self.queue.insert((qr.req.lba, qr.seq), qr);
    }

    fn dispatch(&mut self, head: Lba) -> Option<QueuedRequest> {
        if self.queue.is_empty() {
            return None;
        }
        let key = match self.direction {
            Direction::Up => self
                .queue
                .range((head, 0)..)
                .map(|(k, _)| *k)
                .next()
                .or_else(|| {
                    // Nothing above the head: reverse.
                    self.direction = Direction::Down;
                    self.queue.keys().next_back().copied()
                }),
            Direction::Down => self
                .queue
                .range(..(head, u64::MAX))
                .map(|(k, _)| *k)
                .next_back()
                .or_else(|| {
                    self.direction = Direction::Up;
                    self.queue.keys().next().copied()
                }),
        }?;
        self.queue.remove(&key)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        let out = self.queue.values().copied().collect();
        self.queue.clear();
        out
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr;

    #[test]
    fn sweeps_up_then_reverses() {
        let mut s = Scan::new();
        for lba in [100u64, 300, 500] {
            s.enqueue(qr(lba, lba));
        }
        // Head at 200: take 300, then 500 (up), then reverse to 100.
        let mut head = 200;
        let mut order = Vec::new();
        while let Some(q) = s.dispatch(head) {
            head = q.req.lba;
            order.push(q.req.lba);
        }
        assert_eq!(order, vec![300, 500, 100]);
    }

    #[test]
    fn sweeps_down_after_reversal() {
        let mut s = Scan::new();
        s.enqueue(qr(500, 0));
        s.enqueue(qr(100, 1));
        s.enqueue(qr(50, 2));
        let mut head = 600;
        // Nothing above 600: reverse and walk down.
        let mut order = Vec::new();
        while let Some(q) = s.dispatch(head) {
            head = q.req.lba;
            order.push(q.req.lba);
        }
        assert_eq!(order, vec![500, 100, 50]);
    }

    #[test]
    fn empty_queue_dispatches_none() {
        let mut s = Scan::new();
        assert!(s.dispatch(0).is_none());
        assert_eq!(s.name(), "scan");
    }

    #[test]
    fn drain_conserves() {
        let mut s = Scan::new();
        for i in 0..5u64 {
            s.enqueue(qr(i * 10, i));
        }
        assert_eq!(s.drain().len(), 5);
        assert!(s.is_empty());
    }
}
