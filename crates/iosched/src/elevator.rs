//! The cyclical elevator scan — a clone of FreeBSD's `bufqdisksort`.
//!
//! The queue is kept sorted by LBA. A dispatch takes the first request at
//! or beyond the head's position; if none exists the scan wraps to the
//! lowest LBA (one-directional, "C-LOOK" style, as described in the 4.4BSD
//! book). Arrivals are inserted into sort position immediately, so a
//! request that lands just ahead of the head joins the sweep in progress —
//! the mechanism behind the unfair-but-fast behaviour of Figure 3.

use std::collections::BTreeMap;

use diskmodel::Lba;

use crate::{IoScheduler, QueuedRequest};

/// Cyclical elevator (C-LOOK), the FreeBSD 4.x default policy.
#[derive(Debug, Default)]
pub struct Elevator {
    /// Sorted by (LBA, arrival seq) so equal-LBA requests stay FIFO.
    queue: BTreeMap<(Lba, u64), QueuedRequest>,
}

impl Elevator {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Elevator::default()
    }
}

impl IoScheduler for Elevator {
    fn enqueue(&mut self, qr: QueuedRequest) {
        self.queue.insert((qr.req.lba, qr.seq), qr);
    }

    fn dispatch(&mut self, head: Lba) -> Option<QueuedRequest> {
        let key = self
            .queue
            .range((head, 0)..)
            .map(|(k, _)| *k)
            .next()
            .or_else(|| self.queue.keys().next().copied())?;
        self.queue.remove(&key)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        let out = self.queue.values().copied().collect();
        self.queue.clear();
        out
    }

    fn name(&self) -> &'static str {
        "elevator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr;

    #[test]
    fn dispatches_in_scan_order_from_head() {
        let mut s = Elevator::new();
        s.enqueue(qr(100, 0));
        s.enqueue(qr(900, 1));
        s.enqueue(qr(500, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch(450).map(|q| q.req.lba)).collect();
        assert_eq!(order, vec![500, 900, 100]);
    }

    #[test]
    fn wraps_to_lowest_when_past_everything() {
        let mut s = Elevator::new();
        s.enqueue(qr(10, 0));
        s.enqueue(qr(20, 1));
        let first = s.dispatch(500).unwrap();
        assert_eq!(first.req.lba, 10);
    }

    #[test]
    fn new_arrival_ahead_of_head_joins_current_sweep() {
        // The unfairness mechanism: B waits at LBA 9000 while A keeps
        // feeding sequential requests just ahead of the head.
        let mut s = Elevator::new();
        s.enqueue(qr(9_000, 0)); // process B
        s.enqueue(qr(100, 1)); // process A
        let mut head = 0;
        let mut dispatched = Vec::new();
        for round in 0..5u64 {
            let q = s.dispatch(head).unwrap();
            head = q.req.end();
            dispatched.push(q.req.lba);
            if q.req.lba != 9_000 {
                // A immediately asks for the next sequential block.
                s.enqueue(qr(q.req.end(), 2 + round));
            }
        }
        // B has still not been served after 5 rounds.
        assert!(!dispatched.contains(&9_000), "{dispatched:?}");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn equal_lba_requests_stay_fifo() {
        let mut s = Elevator::new();
        s.enqueue(qr(50, 0));
        s.enqueue(qr(50, 1));
        assert_eq!(s.dispatch(0).unwrap().seq, 0);
        assert_eq!(s.dispatch(0).unwrap().seq, 1);
    }

    #[test]
    fn drain_empties_in_lba_order() {
        let mut s = Elevator::new();
        s.enqueue(qr(30, 0));
        s.enqueue(qr(10, 1));
        s.enqueue(qr(20, 2));
        let lbas: Vec<_> = s.drain().iter().map(|q| q.req.lba).collect();
        assert_eq!(lbas, vec![10, 20, 30]);
        assert!(s.is_empty());
    }

    #[test]
    fn dispatch_exactly_at_head_position() {
        let mut s = Elevator::new();
        s.enqueue(qr(100, 0));
        assert_eq!(s.dispatch(100).unwrap().req.lba, 100);
    }
}
