//! Shortest-seek-time-first (by LBA distance).
//!
//! Included as an ablation baseline: greedier than the elevator, with even
//! worse starvation properties. The kernel does not know rotational
//! position, so "seek time" is approximated by LBA distance — exactly the
//! information asymmetry (§5.2) that lets the drive's own SPTF scheduler
//! beat the kernel when the advertised geometry diverges from reality.

use diskmodel::Lba;

use crate::{IoScheduler, QueuedRequest};

/// Greedy nearest-request-first scheduling.
#[derive(Debug, Default)]
pub struct Sstf {
    queue: Vec<QueuedRequest>,
}

impl Sstf {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Sstf::default()
    }
}

impl IoScheduler for Sstf {
    fn enqueue(&mut self, qr: QueuedRequest) {
        self.queue.push(qr);
    }

    fn dispatch(&mut self, head: Lba) -> Option<QueuedRequest> {
        if self.queue.is_empty() {
            return None;
        }
        let (idx, _) = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.req.lba.abs_diff(head), q.seq))?;
        Some(self.queue.swap_remove(idx))
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        std::mem::take(&mut self.queue)
    }

    fn name(&self) -> &'static str {
        "sstf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr;

    #[test]
    fn picks_nearest_to_head() {
        let mut s = Sstf::new();
        s.enqueue(qr(100, 0));
        s.enqueue(qr(500, 1));
        s.enqueue(qr(480, 2));
        assert_eq!(s.dispatch(485).unwrap().req.lba, 480);
        assert_eq!(s.dispatch(480).unwrap().req.lba, 500);
        assert_eq!(s.dispatch(500).unwrap().req.lba, 100);
    }

    #[test]
    fn tie_breaks_by_arrival() {
        let mut s = Sstf::new();
        s.enqueue(qr(110, 0));
        s.enqueue(qr(90, 1));
        // Both are 10 away from head=100; the earlier arrival wins.
        assert_eq!(s.dispatch(100).unwrap().seq, 0);
    }

    #[test]
    fn starves_distant_requests_under_load() {
        let mut s = Sstf::new();
        s.enqueue(qr(1_000_000, 99)); // far away
        let mut head = 0;
        for i in 0..50u64 {
            s.enqueue(qr(head + 16, i));
            let q = s.dispatch(head).unwrap();
            head = q.req.end();
            assert_ne!(q.seq, 99, "distant request must starve under stream");
        }
    }

    #[test]
    fn drain_and_len() {
        let mut s = Sstf::new();
        s.enqueue(qr(1, 0));
        s.enqueue(qr(2, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.drain().len(), 2);
        assert!(s.dispatch(0).is_none());
    }
}
