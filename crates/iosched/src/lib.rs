//! Kernel disk-request schedulers.
//!
//! The FreeBSD scheduler of the era (`bufqdisksort`) is a cyclical variant
//! of the elevator scan: requests are kept sorted by block number in the
//! direction of the current sweep, and — crucially — a newly arrived request
//! that sorts *ahead* of the head joins the **current** sweep. A process
//! reading sequentially can therefore keep inserting its next request in
//! front of everyone else and monopolize the disk (§5.3 of the paper): great
//! throughput, terrible fairness (Figure 3, left).
//!
//! N-step CSCAN freezes the schedule for the sweep in progress; arrivals go
//! to the *next* sweep. Every waiting process is served once per sweep:
//! fair, but the head now moves across the whole request span every sweep,
//! and throughput halves (Figure 3, right).
//!
//! All schedulers implement [`IoScheduler`] and can be swapped at runtime
//! via [`AnyScheduler`], mirroring the sysctl switch the authors patched
//! into FreeBSD.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elevator;
mod fcfs;
mod ncscan;
mod scan;
mod sstf;

pub use elevator::Elevator;
pub use fcfs::Fcfs;
pub use ncscan::NCscan;
pub use scan::Scan;
pub use sstf::Sstf;

use diskmodel::{DiskRequest, Lba};
use simcore::SimTime;

/// A request waiting in the kernel's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The request to be sent to the drive.
    pub req: DiskRequest,
    /// When it entered the queue.
    pub queued_at: SimTime,
    /// Monotone arrival sequence number (assigned by the caller).
    pub seq: u64,
}

/// A kernel disk scheduler: requests go in, dispatch order comes out.
pub trait IoScheduler {
    /// Adds a request to the queue.
    fn enqueue(&mut self, qr: QueuedRequest);

    /// Re-queues a request whose dispatch failed downstream (a drive error
    /// being retried by the bio layer). Defaults to a fresh [`enqueue`];
    /// sweep-frozen schedulers override it to admit the retry into the
    /// current sweep — it already waited its turn once and must not stand
    /// a full sweep behind new arrivals.
    ///
    /// [`enqueue`]: IoScheduler::enqueue
    fn requeue(&mut self, qr: QueuedRequest) {
        self.enqueue(qr);
    }

    /// Removes and returns the next request to send to the drive, given the
    /// head's most recent position.
    fn dispatch(&mut self, head: Lba) -> Option<QueuedRequest>;

    /// Number of queued requests.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every queued request (used when switching algorithms).
    fn drain(&mut self) -> Vec<QueuedRequest>;

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;
}

/// Selects one of the provided scheduling algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// First-come first-served.
    Fcfs,
    /// Cyclical elevator scan (`bufqdisksort` clone) — the FreeBSD default.
    Elevator,
    /// N-step CSCAN: the current sweep's schedule is frozen.
    NCscan,
    /// Shortest seek (LBA distance) first.
    Sstf,
    /// True bidirectional SCAN (reverses at the ends of the span).
    Scan,
}

impl SchedulerKind {
    /// Instantiates the algorithm.
    pub fn build(self) -> AnyScheduler {
        match self {
            SchedulerKind::Fcfs => AnyScheduler::Fcfs(Fcfs::new()),
            SchedulerKind::Elevator => AnyScheduler::Elevator(Elevator::new()),
            SchedulerKind::NCscan => AnyScheduler::NCscan(NCscan::new()),
            SchedulerKind::Sstf => AnyScheduler::Sstf(Sstf::new()),
            SchedulerKind::Scan => AnyScheduler::Scan(Scan::new()),
        }
    }
}

/// An enum-dispatched scheduler supporting runtime switching.
///
/// The paper's patch adds "a switch that can be used to toggle at runtime
/// which disk scheduling algorithm is in use"; [`AnyScheduler::switch`]
/// re-queues all pending requests into the new algorithm.
#[derive(Debug)]
pub enum AnyScheduler {
    /// See [`Fcfs`].
    Fcfs(Fcfs),
    /// See [`Elevator`].
    Elevator(Elevator),
    /// See [`NCscan`].
    NCscan(NCscan),
    /// See [`Sstf`].
    Sstf(Sstf),
    /// See [`Scan`].
    Scan(Scan),
}

impl AnyScheduler {
    /// Which algorithm is currently active.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            AnyScheduler::Fcfs(_) => SchedulerKind::Fcfs,
            AnyScheduler::Elevator(_) => SchedulerKind::Elevator,
            AnyScheduler::NCscan(_) => SchedulerKind::NCscan,
            AnyScheduler::Sstf(_) => SchedulerKind::Sstf,
            AnyScheduler::Scan(_) => SchedulerKind::Scan,
        }
    }

    /// Switches algorithms at runtime, carrying queued requests over.
    pub fn switch(&mut self, kind: SchedulerKind) {
        if kind == self.kind() {
            return;
        }
        let pending = self.drain();
        let mut fresh = kind.build();
        for qr in pending {
            fresh.enqueue(qr);
        }
        *self = fresh;
    }

    fn inner(&self) -> &dyn IoScheduler {
        match self {
            AnyScheduler::Fcfs(s) => s,
            AnyScheduler::Elevator(s) => s,
            AnyScheduler::NCscan(s) => s,
            AnyScheduler::Sstf(s) => s,
            AnyScheduler::Scan(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn IoScheduler {
        match self {
            AnyScheduler::Fcfs(s) => s,
            AnyScheduler::Elevator(s) => s,
            AnyScheduler::NCscan(s) => s,
            AnyScheduler::Sstf(s) => s,
            AnyScheduler::Scan(s) => s,
        }
    }
}

impl IoScheduler for AnyScheduler {
    fn enqueue(&mut self, qr: QueuedRequest) {
        self.inner_mut().enqueue(qr);
    }

    fn requeue(&mut self, qr: QueuedRequest) {
        self.inner_mut().requeue(qr);
    }

    fn dispatch(&mut self, head: Lba) -> Option<QueuedRequest> {
        self.inner_mut().dispatch(head)
    }

    fn len(&self) -> usize {
        self.inner().len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        self.inner_mut().drain()
    }

    fn name(&self) -> &'static str {
        self.inner().name()
    }
}

#[cfg(test)]
pub(crate) fn qr(lba: Lba, seq: u64) -> QueuedRequest {
    QueuedRequest {
        req: DiskRequest::read(lba, 16, seq),
        queued_at: SimTime::ZERO,
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_preserves_requests() {
        let mut s = SchedulerKind::Elevator.build();
        for i in 0..5 {
            s.enqueue(qr(i * 1_000, i));
        }
        s.switch(SchedulerKind::NCscan);
        assert_eq!(s.kind(), SchedulerKind::NCscan);
        assert_eq!(s.len(), 5);
        let mut seen = Vec::new();
        while let Some(q) = s.dispatch(0) {
            seen.push(q.seq);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn switch_to_same_kind_is_noop() {
        let mut s = SchedulerKind::Fcfs.build();
        s.enqueue(qr(5, 0));
        s.switch(SchedulerKind::Fcfs);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            SchedulerKind::Fcfs,
            SchedulerKind::Elevator,
            SchedulerKind::NCscan,
            SchedulerKind::Sstf,
            SchedulerKind::Scan,
        ]
        .into_iter()
        .map(|k| k.build().name())
        .collect();
        assert_eq!(names.len(), 5);
    }
}
