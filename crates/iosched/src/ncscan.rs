//! N-step CSCAN — the fair scheduler of §5.3.
//!
//! The schedule for the sweep in progress is frozen: requests that arrive
//! while a sweep is being serviced are collected in a staging list and only
//! become eligible when the current sweep completes, at which point they are
//! sorted into the next sweep. "In effect, it is always planning the
//! schedule for the next scan" (Deitel, via the paper). The expected latency
//! of each request is bounded by the length of one sweep, which makes the
//! completion-time distribution of Figure 3 nearly flat — at roughly half
//! the elevator's aggregate throughput.

use std::collections::BTreeMap;

use diskmodel::Lba;

use crate::{IoScheduler, QueuedRequest};

/// N-step CSCAN: sweeps are planned a batch at a time.
#[derive(Debug, Default)]
pub struct NCscan {
    /// The frozen, currently-serviced sweep (ascending LBA).
    current: BTreeMap<(Lba, u64), QueuedRequest>,
    /// Arrivals staged for the next sweep.
    next: BTreeMap<(Lba, u64), QueuedRequest>,
}

impl NCscan {
    /// Creates an empty queue.
    pub fn new() -> Self {
        NCscan::default()
    }

    /// Number of requests in the frozen sweep (diagnostics).
    pub fn current_sweep_len(&self) -> usize {
        self.current.len()
    }
}

impl IoScheduler for NCscan {
    fn enqueue(&mut self, qr: QueuedRequest) {
        self.next.insert((qr.req.lba, qr.seq), qr);
    }

    fn requeue(&mut self, qr: QueuedRequest) {
        // An error retry already waited out one sweep; admitting it to the
        // frozen sweep keeps retry latency bounded by a single pass instead
        // of compounding a full rotation of the queue per attempt.
        self.current.insert((qr.req.lba, qr.seq), qr);
    }

    fn dispatch(&mut self, _head: Lba) -> Option<QueuedRequest> {
        if self.current.is_empty() {
            std::mem::swap(&mut self.current, &mut self.next);
        }
        let key = self.current.keys().next().copied()?;
        self.current.remove(&key)
    }

    fn len(&self) -> usize {
        self.current.len() + self.next.len()
    }

    fn drain(&mut self) -> Vec<QueuedRequest> {
        let mut out: Vec<QueuedRequest> = self.current.values().copied().collect();
        out.extend(self.next.values().copied());
        self.current.clear();
        self.next.clear();
        out
    }

    fn name(&self) -> &'static str {
        "n-cscan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr;

    #[test]
    fn sweep_services_in_ascending_lba() {
        let mut s = NCscan::new();
        s.enqueue(qr(300, 0));
        s.enqueue(qr(100, 1));
        s.enqueue(qr(200, 2));
        let order: Vec<Lba> = std::iter::from_fn(|| s.dispatch(0).map(|q| q.req.lba)).collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn arrivals_do_not_join_current_sweep() {
        // The defining property: a sequential reader cannot cut the line.
        let mut s = NCscan::new();
        s.enqueue(qr(100, 0)); // process A
        s.enqueue(qr(9_000, 1)); // process B
                                 // Start the sweep.
        let first = s.dispatch(0).unwrap();
        assert_eq!(first.req.lba, 100);
        // A's follow-up arrives ahead of B in LBA terms...
        s.enqueue(qr(116, 2));
        // ...but B is served first because the sweep was frozen.
        assert_eq!(s.dispatch(first.req.end()).unwrap().req.lba, 9_000);
        assert_eq!(s.dispatch(0).unwrap().req.lba, 116);
    }

    #[test]
    fn every_waiter_served_once_per_sweep() {
        let mut s = NCscan::new();
        // 8 processes, one request each.
        for i in 0..8u64 {
            s.enqueue(qr(i * 1_000, i));
        }
        // Each dispatch triggers a sequential follow-up from that process.
        let mut served_first_sweep = Vec::new();
        for _ in 0..8 {
            let q = s.dispatch(0).unwrap();
            served_first_sweep.push(q.seq);
            s.enqueue(qr(q.req.end(), 100 + q.seq));
        }
        let mut sorted = served_first_sweep.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "all 8 in one sweep");
        // Second sweep serves all 8 follow-ups.
        let mut second = Vec::new();
        for _ in 0..8 {
            second.push(s.dispatch(0).unwrap().seq);
        }
        assert!(second.iter().all(|&x| x >= 100));
    }

    #[test]
    fn requeue_joins_current_sweep() {
        let mut s = NCscan::new();
        s.enqueue(qr(100, 0));
        s.enqueue(qr(9_000, 1));
        let first = s.dispatch(0).unwrap(); // Freeze the sweep.
        assert_eq!(first.req.lba, 100);
        // The dispatched request errors and comes back; unlike a fresh
        // arrival it goes ahead of the staged next sweep.
        s.enqueue(qr(200, 2)); // fresh arrival → next sweep
        s.requeue(qr(100, 3)); // retry → current sweep
        assert_eq!(s.dispatch(0).unwrap().seq, 3);
        assert_eq!(s.dispatch(0).unwrap().seq, 1);
        assert_eq!(s.dispatch(0).unwrap().seq, 2);
    }

    #[test]
    fn empty_dispatch_is_none() {
        let mut s = NCscan::new();
        assert!(s.dispatch(0).is_none());
    }

    #[test]
    fn len_counts_both_sweeps() {
        let mut s = NCscan::new();
        s.enqueue(qr(10, 0));
        let _ = s.dispatch(0);
        s.enqueue(qr(20, 1));
        s.enqueue(qr(30, 2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn drain_returns_both_sweeps() {
        let mut s = NCscan::new();
        s.enqueue(qr(10, 0));
        s.enqueue(qr(20, 1));
        let _ = s.dispatch(0); // Freeze a sweep containing seq 1.
        s.enqueue(qr(30, 2));
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }
}
