//! Property-based tests: every scheduler must be a permutation machine —
//! whatever goes in comes out exactly once, regardless of interleaving.
//! Driven by seeded `SimRng` loops (offline-friendly).

use diskmodel::DiskRequest;
use iosched::{AnyScheduler, IoScheduler, QueuedRequest, SchedulerKind};
use simcore::SimRng;

fn qr(lba: u64, seq: u64) -> QueuedRequest {
    QueuedRequest {
        req: DiskRequest::read(lba, 16, seq),
        queued_at: simcore::SimTime::ZERO,
        seq,
    }
}

fn kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Fcfs,
        SchedulerKind::Elevator,
        SchedulerKind::NCscan,
        SchedulerKind::Sstf,
        SchedulerKind::Scan,
    ]
}

/// Enqueue a batch then drain via dispatch: conservation holds.
#[test]
fn dispatch_is_a_permutation() {
    let mut rng = SimRng::new(0x0001_0501);
    for case in 0..64 {
        let n = rng.gen_range(1usize..64);
        let lbas: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000_000)).collect();
        for kind in kinds() {
            let mut s = kind.build();
            for (i, &lba) in lbas.iter().enumerate() {
                s.enqueue(qr(lba, i as u64));
            }
            let mut seen: Vec<u64> = std::iter::from_fn(|| s.dispatch(0).map(|q| q.seq)).collect();
            seen.sort_unstable();
            let expected: Vec<u64> = (0..n as u64).collect();
            assert_eq!(seen, expected, "case {case}: kind {kind:?}");
        }
    }
}

/// Interleaved enqueue/dispatch with arbitrary head positions also
/// conserves requests.
#[test]
fn interleaved_operations_conserve() {
    let mut rng = SimRng::new(0x0001_0502);
    for case in 0..64 {
        let n = rng.gen_range(1usize..128);
        let ops: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.gen_range(0u64..1_000_000), rng.chance(0.5)))
            .collect();
        for kind in kinds() {
            let mut s = kind.build();
            let mut enqueued = 0u64;
            let mut dispatched = Vec::new();
            let mut head = 0;
            for (lba, do_dispatch) in &ops {
                if *do_dispatch {
                    if let Some(q) = s.dispatch(head) {
                        head = q.req.end();
                        dispatched.push(q.seq);
                    }
                } else {
                    s.enqueue(qr(*lba, enqueued));
                    enqueued += 1;
                }
            }
            while let Some(q) = s.dispatch(head) {
                head = q.req.end();
                dispatched.push(q.seq);
            }
            dispatched.sort_unstable();
            let expected: Vec<u64> = (0..enqueued).collect();
            assert_eq!(dispatched, expected, "case {case}: kind {kind:?}");
        }
    }
}

/// Switching algorithms mid-stream never loses or duplicates requests.
#[test]
fn runtime_switch_conserves() {
    let mut rng = SimRng::new(0x0001_0503);
    for case in 0..64 {
        let n = rng.gen_range(1usize..64);
        let switch_at = rng.gen_range(0usize..64);
        let mut s: AnyScheduler = SchedulerKind::Elevator.build();
        for i in 0..n {
            if i == switch_at {
                s.switch(SchedulerKind::NCscan);
            }
            s.enqueue(qr(rng.gen_range(0u64..1_000_000), i as u64));
        }
        s.switch(SchedulerKind::Sstf);
        let mut seen: Vec<u64> = std::iter::from_fn(|| s.dispatch(0).map(|q| q.seq)).collect();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        assert_eq!(seen, expected, "case {case}");
    }
}

/// The elevator always dispatches the nearest request at-or-after the head
/// (wrapping), i.e. it really is a cyclic scan.
#[test]
fn elevator_respects_scan_order() {
    let mut rng = SimRng::new(0x0001_0504);
    for case in 0..64 {
        let n = rng.gen_range(2usize..64);
        let lbas: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000_000)).collect();
        let head = rng.gen_range(0u64..1_000_000);
        let mut s = SchedulerKind::Elevator.build();
        for (i, &lba) in lbas.iter().enumerate() {
            s.enqueue(qr(lba, i as u64));
        }
        let picked = s.dispatch(head).unwrap().req.lba;
        let ge: Vec<u64> = lbas.iter().copied().filter(|&l| l >= head).collect();
        let expected = if ge.is_empty() {
            *lbas.iter().min().unwrap()
        } else {
            *ge.iter().min().unwrap()
        };
        assert_eq!(picked, expected, "case {case}");
    }
}
