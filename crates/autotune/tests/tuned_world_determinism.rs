//! The tuned world is deterministic: the controller's decision log (and
//! the world's completion stream under it) is bit-identical run-to-run
//! and at any worker-thread count — jobs=1 ≡ jobs=4. The tuner's
//! decisions are folded into the fingerprint, so a single divergent
//! mutation draw or mis-ordered window would trip this suite.

use autotune::{Controller, Knobs, TuneConfig, WindowedTuner};
use diskmodel::{DeviceModel, PartitionTable, SsdParams};
use ffs::{FileSystem, FsConfig};
use nfssim::{NfsWorld, WorldConfig};
use simcore::{SimRng, SimTime};
use ssd::Ssd;

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn small_ssd() -> SsdParams {
    SsdParams {
        channels: 2,
        dies_per_channel: 2,
        page_sectors: 16,
        pages_per_block: 16,
        total_sectors: 64 * 1024, // 32 MB
        overprovision: 0.25,
        read_us: 60.0,
        program_us: 600.0,
        erase_ms: 3.0,
        channel_mb_s: 400.0,
        gc_low_water_blocks: 2,
        gc_jitter_us: 100.0,
        queue_depth: 32,
    }
}

/// Runs a mixed sequential-read workload over an SSD-backed world with
/// the tuner in the loop; returns (world fingerprint, tuner fingerprint,
/// decision count).
fn tuned_trace(seed: u64) -> (u64, u64, usize) {
    let ssd = Ssd::new(small_ssd(), SimRng::new(seed));
    let part = PartitionTable::quarters_of(ssd.total_sectors()).get(1);
    let fs = FileSystem::format_on(
        Box::new(ssd),
        part,
        iosched::SchedulerKind::Elevator,
        FsConfig::default(),
    );
    let mut w = NfsWorld::new(WorldConfig::default(), fs, seed);
    let size = 512 * 1024u64;
    let fhs: Vec<_> = (0..4).map(|_| w.create_file(size)).collect();

    // Short windows so a sub-second simulated run still closes dozens of
    // them and the climber gets real accept/revert traffic.
    let cfg = TuneConfig {
        window: simcore::SimDuration::from_millis(2),
        min_ops: 4,
        ..TuneConfig::default()
    };
    let controller = Controller::new(cfg, Knobs::stock(), SimRng::from_seed_and_stream(seed, 0x7));
    let mut tuner = WindowedTuner::new(controller);

    let mut world_fp = 0xcbf2_9ce4_8422_2325u64;
    let mut now = SimTime::ZERO;
    let block = 8_192u64;
    // Interleave the four streams block-by-block so the nfsheur table and
    // scheduler both have real work to do.
    for blk in 0..(size / block) {
        for (i, fh) in fhs.iter().enumerate() {
            w.read(now, *fh, blk * block, block, (i as u64) << 32 | blk);
            while let Some(t) = w.next_event() {
                let done = w.advance(t);
                now = now.max(t);
                let mut empty = done.is_empty();
                for d in &done {
                    tuner.record(d);
                    fnv(&mut world_fp, d.tag);
                    fnv(&mut world_fp, d.done_at.as_nanos());
                    empty = false;
                }
                tuner.poll(now, &mut w);
                if !empty {
                    break;
                }
            }
        }
    }
    (
        world_fp,
        tuner.controller().fingerprint(),
        tuner.controller().decisions().len(),
    )
}

#[test]
fn tuner_changes_knobs_and_stays_deterministic() {
    let (w1, t1, n1) = tuned_trace(42);
    let (w2, t2, _) = tuned_trace(42);
    assert_eq!(w1, w2, "world trace must be seed-deterministic");
    assert_eq!(t1, t2, "decision log must be seed-deterministic");
    assert!(n1 > 4, "the run must close enough windows to tune ({n1})");
    let (w3, t3, _) = tuned_trace(43);
    assert!(w3 != w1 || t3 != t1, "a different seed must move something");
}

#[test]
fn jobs_1_equals_jobs_4() {
    let seeds: Vec<u64> = (0..6).collect();
    simfleet::set_jobs_override(Some(1));
    let serial = simfleet::map_indexed(&seeds, |&s| tuned_trace(s));
    simfleet::set_jobs_override(Some(4));
    let parallel = simfleet::map_indexed(&seeds, |&s| tuned_trace(s));
    simfleet::set_jobs_override(None);
    assert_eq!(serial, parallel, "tuned runs must not see thread count");
}
