//! Online auto-tuning of the server's I/O-path knobs.
//!
//! The paper's §5 "tricks" — a bigger `nfsheur` table, a different disk
//! scheduler, deeper read-ahead — are *static*: an administrator measures,
//! patches a constant, reboots. This crate closes the loop at runtime, in
//! the style of IOPathTune-like controllers (PAPERS.md): a seeded
//! hill-climber observes each fixed-length window of completed operations
//! through a [`simcore::LogHist`] latency histogram, scores the window
//! (throughput discounted by tail latency), and proposes one knob mutation
//! at a time — accepted if the next window scores better, reverted if not.
//!
//! Three knobs, the same three the paper tunes by hand:
//!
//! * server file-system read-ahead ceiling (blocks),
//! * kernel disk scheduler ([`iosched::SchedulerKind`]),
//! * `nfsheur` table geometry ([`readahead_core::NfsHeurConfig`] —
//!   resizing loses table state, exactly like the reboot it models).
//!
//! Everything is deterministic: the only randomness is the controller's
//! own [`SimRng`], scores are pure `f64` arithmetic over histogram
//! counters, and the full decision sequence folds into an FNV-1a
//! [`Controller::fingerprint`] so determinism harnesses can assert that
//! the *tuner* (not just the world) is bit-identical across runs and
//! worker-thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iosched::SchedulerKind;
use nfssim::{NfsWorld, OpDone};
use readahead_core::NfsHeurConfig;
use simcore::{LogHist, SimDuration, SimRng, SimTime};

/// The tunable surface: one value per knob the controller may move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knobs {
    /// Server file-system read-ahead window ceiling, blocks.
    pub readahead_blocks: u64,
    /// Kernel disk scheduler.
    pub scheduler: SchedulerKind,
    /// `nfsheur` table slots (probes derived; see [`Knobs::heur_config`]).
    pub heur_slots: usize,
}

impl Knobs {
    /// The stock FreeBSD 4.x configuration the paper starts from.
    pub fn stock() -> Self {
        Knobs {
            readahead_blocks: 8,
            scheduler: SchedulerKind::Elevator,
            heur_slots: NfsHeurConfig::freebsd_default().slots,
        }
    }

    /// The `nfsheur` geometry for the current slot count: generous
    /// probing once the table is big enough to afford it.
    pub fn heur_config(&self) -> NfsHeurConfig {
        NfsHeurConfig {
            slots: self.heur_slots,
            probes: if self.heur_slots >= 64 { 8 } else { 2 },
        }
    }

    fn scheduler_code(kind: SchedulerKind) -> u64 {
        match kind {
            SchedulerKind::Fcfs => 0,
            SchedulerKind::Elevator => 1,
            SchedulerKind::NCscan => 2,
            SchedulerKind::Sstf => 3,
            SchedulerKind::Scan => 4,
        }
    }
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Observation window length.
    pub window: SimDuration,
    /// Windows with fewer completed operations than this are held (no
    /// decision): the sample is too thin to trust.
    pub min_ops: u64,
    /// Relative improvement a trial must show to be accepted (hysteresis
    /// against accepting noise).
    pub tolerance: f64,
    /// Read-ahead ceiling bounds, blocks (inclusive).
    pub readahead_bounds: (u64, u64),
    /// `nfsheur` slot bounds (inclusive, powers of two recommended).
    pub heur_bounds: (usize, usize),
    /// Tail-latency discount scale, milliseconds: a window whose p99
    /// equals this scores half its raw throughput.
    pub tail_ms_scale: f64,
    /// Consecutive reverted trials before the climber concludes it is
    /// sitting at a local optimum and cools off.
    pub patience: u64,
    /// Windows to sit still (measure only, no proposals) after patience
    /// runs out — the exploration tax is paid in degraded trial windows,
    /// so a settled controller must stop burning them.
    pub cooldown: u64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            window: SimDuration::from_millis(250),
            min_ops: 16,
            tolerance: 0.02,
            readahead_bounds: (4, 64),
            heur_bounds: (8, 4096),
            tail_ms_scale: 100.0,
            patience: 4,
            cooldown: 12,
        }
    }
}

/// One window's worth of observations, handed to
/// [`Controller::observe`].
#[derive(Debug, Clone, Copy)]
pub struct WindowObs<'a> {
    /// Operations completed in the window.
    pub ops: u64,
    /// Window length.
    pub window: SimDuration,
    /// Per-operation latency histogram (nanoseconds).
    pub hist: &'a LogHist,
}

/// Which knob a proposal mutated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// Read-ahead ceiling.
    Readahead,
    /// Disk scheduler.
    Scheduler,
    /// `nfsheur` slots.
    HeurSlots,
}

/// What the controller did with one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Too few operations; no decision taken.
    Hold,
    /// First usable window: baseline score recorded.
    Measure,
    /// The pending trial beat its baseline and was kept.
    Accept,
    /// The pending trial lost and its knobs were rolled back.
    Revert,
    /// Cooling off after too many consecutive reverts: measure only, no
    /// new proposal this window.
    Settle,
    /// A new mutation was proposed for the next window to judge.
    Propose(KnobKind),
}

/// One entry of the decision log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Window index (1-based; every observed window logs ≥ 1 entry).
    pub window: u64,
    /// What happened.
    pub action: ActionKind,
    /// The window's score (0 for [`ActionKind::Hold`] and the score-free
    /// [`ActionKind::Propose`]).
    pub score: f64,
    /// Knob state *after* the action.
    pub knobs: Knobs,
}

#[derive(Debug, Clone, Copy)]
struct Trial {
    prev_knobs: Knobs,
    prev_score: f64,
}

/// The seeded hill-climbing controller.
///
/// Drive it with one [`Controller::observe`] call per closed window; it
/// returns `Some(new_knobs)` whenever the caller must re-actuate the
/// world (via [`apply_knobs`]).
#[derive(Debug)]
pub struct Controller {
    cfg: TuneConfig,
    rng: SimRng,
    knobs: Knobs,
    baseline: Option<f64>,
    trial: Option<Trial>,
    log: Vec<Decision>,
    window_idx: u64,
    consecutive_reverts: u64,
    cooldown_left: u64,
}

impl Controller {
    /// Creates a controller starting from `initial` knobs (which must
    /// match the world's actual configuration).
    pub fn new(cfg: TuneConfig, initial: Knobs, rng: SimRng) -> Self {
        Controller {
            cfg,
            rng,
            knobs: initial,
            baseline: None,
            trial: None,
            log: Vec::new(),
            window_idx: 0,
            consecutive_reverts: 0,
            cooldown_left: 0,
        }
    }

    /// The knob state the controller currently believes is applied.
    pub fn knobs(&self) -> Knobs {
        self.knobs
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.cfg.window
    }

    /// The full decision log.
    pub fn decisions(&self) -> &[Decision] {
        &self.log
    }

    /// Windows accepted / reverted so far.
    pub fn accept_revert_counts(&self) -> (u64, u64) {
        let a = self
            .log
            .iter()
            .filter(|d| d.action == ActionKind::Accept)
            .count() as u64;
        let r = self
            .log
            .iter()
            .filter(|d| d.action == ActionKind::Revert)
            .count() as u64;
        (a, r)
    }

    /// Scores a window: operation throughput discounted by tail latency.
    /// `ops/s ÷ (1 + p99/tail_scale)` — a knob that doubles throughput by
    /// doubling p99 past the scale gains nothing.
    pub fn score(&self, obs: &WindowObs<'_>) -> f64 {
        let secs = obs.window.as_secs_f64();
        if secs <= 0.0 || obs.ops == 0 {
            return 0.0;
        }
        let rate = obs.ops as f64 / secs;
        let p99_ms = obs.hist.quantile(0.99).unwrap_or(0) as f64 / 1e6;
        rate / (1.0 + p99_ms / self.cfg.tail_ms_scale)
    }

    /// Consumes one closed window. Returns the knobs the caller must now
    /// apply to the world, or `None` if nothing changed.
    pub fn observe(&mut self, obs: WindowObs<'_>) -> Option<Knobs> {
        self.window_idx += 1;
        if obs.ops < self.cfg.min_ops {
            // Thin sample: judge nothing, mutate nothing. A pending
            // trial stays pending — the next full window judges it.
            self.push(ActionKind::Hold, 0.0);
            return None;
        }
        let score = self.score(&obs);
        let before = self.knobs;
        match self.trial.take() {
            None => {
                self.baseline = Some(score);
                self.push(ActionKind::Measure, score);
            }
            Some(t) => {
                if score > t.prev_score * (1.0 + self.cfg.tolerance) {
                    self.baseline = Some(score);
                    self.consecutive_reverts = 0;
                    self.push(ActionKind::Accept, score);
                } else {
                    self.knobs = t.prev_knobs;
                    self.baseline = Some(t.prev_score);
                    self.consecutive_reverts += 1;
                    self.push(ActionKind::Revert, score);
                }
            }
        }
        // Every reverted trial was a window run on bad knobs. After
        // `patience` straight losses, stop proposing for a while — the
        // climber is at a local optimum and exploration is pure tax.
        if self.consecutive_reverts >= self.cfg.patience {
            self.consecutive_reverts = 0;
            self.cooldown_left = self.cfg.cooldown;
        }
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.push(ActionKind::Settle, 0.0);
            return (self.knobs != before).then_some(self.knobs);
        }
        // End a judged window by proposing the next experiment.
        let pre_mutation = self.knobs;
        let kind = self.mutate();
        self.trial = Some(Trial {
            prev_knobs: pre_mutation,
            prev_score: self.baseline.expect("set above"),
        });
        self.push(ActionKind::Propose(kind), 0.0);
        (self.knobs != before).then_some(self.knobs)
    }

    /// Applies one seeded mutation to `self.knobs`, returning which knob
    /// moved.
    fn mutate(&mut self) -> KnobKind {
        match self.rng.gen_range(0u32..3) {
            0 => {
                let (lo, hi) = self.cfg.readahead_bounds;
                let cur = self.knobs.readahead_blocks;
                let up = self.rng.chance(0.5);
                let next = if up { cur * 2 } else { cur / 2 }.clamp(lo, hi);
                // Bounced off a bound: go the other way instead.
                self.knobs.readahead_blocks = if next == cur {
                    (if up { cur / 2 } else { cur * 2 }).clamp(lo, hi)
                } else {
                    next
                };
                KnobKind::Readahead
            }
            1 => {
                const ALL: [SchedulerKind; 5] = [
                    SchedulerKind::Fcfs,
                    SchedulerKind::Elevator,
                    SchedulerKind::NCscan,
                    SchedulerKind::Sstf,
                    SchedulerKind::Scan,
                ];
                let others: Vec<SchedulerKind> = ALL
                    .into_iter()
                    .filter(|k| *k != self.knobs.scheduler)
                    .collect();
                self.knobs.scheduler = *self.rng.choose(&others).expect("4 candidates");
                KnobKind::Scheduler
            }
            _ => {
                let (lo, hi) = self.cfg.heur_bounds;
                let cur = self.knobs.heur_slots;
                let up = self.rng.chance(0.5);
                let next = if up { cur * 2 } else { cur / 2 }.clamp(lo, hi);
                self.knobs.heur_slots = if next == cur {
                    (if up { cur / 2 } else { cur * 2 }).clamp(lo, hi)
                } else {
                    next
                };
                KnobKind::HeurSlots
            }
        }
    }

    fn push(&mut self, action: ActionKind, score: f64) {
        self.log.push(Decision {
            window: self.window_idx,
            action,
            score,
            knobs: self.knobs,
        });
    }

    /// Order-sensitive FNV-1a fingerprint of the decision log. Two runs
    /// of the same seeded world produce the same fingerprint iff the
    /// controller saw identical windows and drew identical mutations.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for d in &self.log {
            fold(d.window);
            fold(match d.action {
                ActionKind::Hold => 0,
                ActionKind::Measure => 1,
                ActionKind::Accept => 2,
                ActionKind::Revert => 3,
                ActionKind::Propose(KnobKind::Readahead) => 4,
                ActionKind::Propose(KnobKind::Scheduler) => 5,
                ActionKind::Propose(KnobKind::HeurSlots) => 6,
                ActionKind::Settle => 7,
            });
            fold(d.score.to_bits());
            fold(d.knobs.readahead_blocks);
            fold(Knobs::scheduler_code(d.knobs.scheduler));
            fold(d.knobs.heur_slots as u64);
        }
        h
    }
}

/// Actuates a knob delta on a live world, touching only what changed (a
/// heur resize is destructive, so it must not run on every window).
pub fn apply_knobs(world: &mut NfsWorld, from: Knobs, to: Knobs) {
    if to.readahead_blocks != from.readahead_blocks {
        world.set_server_readahead_blocks(to.readahead_blocks);
    }
    if to.scheduler != from.scheduler {
        world.set_scheduler(to.scheduler);
    }
    if to.heur_slots != from.heur_slots {
        world.resize_heur(to.heur_config());
    }
}

/// Accumulates completions into per-window observations and drives a
/// [`Controller`], applying accepted/reverted knobs to the world.
///
/// Call [`WindowedTuner::record`] for every [`OpDone`] and
/// [`WindowedTuner::poll`] with the current simulated time from the
/// drive loop; windows close on the simulated clock, so the tuner is as
/// deterministic as the world it watches.
#[derive(Debug)]
pub struct WindowedTuner {
    controller: Controller,
    window_start: SimTime,
    hist: LogHist,
    ops: u64,
}

impl WindowedTuner {
    /// Wraps a controller; windows are measured from `SimTime::ZERO`.
    pub fn new(controller: Controller) -> Self {
        WindowedTuner {
            controller,
            window_start: SimTime::ZERO,
            hist: LogHist::new(),
            ops: 0,
        }
    }

    /// Records one completed operation's latency.
    pub fn record(&mut self, d: &OpDone) {
        self.hist.add(d.done_at.since(d.issued_at).as_nanos());
        self.ops += 1;
    }

    /// Closes every window that ended at or before `now`, feeding each to
    /// the controller and actuating any knob change on `world`. Returns
    /// the number of knob changes applied.
    pub fn poll(&mut self, now: SimTime, world: &mut NfsWorld) -> u64 {
        let mut changes = 0;
        while now.since(self.window_start) >= self.controller.window() {
            let obs = WindowObs {
                ops: self.ops,
                window: self.controller.window(),
                hist: &self.hist,
            };
            let before = self.controller.knobs();
            if let Some(next) = self.controller.observe(obs) {
                apply_knobs(world, before, next);
                changes += 1;
            }
            self.window_start += self.controller.window();
            self.hist = LogHist::new();
            self.ops = 0;
        }
        changes
    }

    /// The wrapped controller (decision log, fingerprint, final knobs).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_from(lat_ns: &[u64]) -> (u64, LogHist) {
        let mut h = LogHist::new();
        for &l in lat_ns {
            h.add(l);
        }
        (lat_ns.len() as u64, h)
    }

    fn feed(c: &mut Controller, lat_ns: u64, ops: u64) -> Option<Knobs> {
        let mut h = LogHist::new();
        h.add_n(lat_ns, ops);
        c.observe(WindowObs {
            ops,
            window: SimDuration::from_millis(250),
            hist: &h,
        })
    }

    #[test]
    fn score_prefers_throughput_and_punishes_tail() {
        let cfg = TuneConfig::default();
        let c = Controller::new(cfg, Knobs::stock(), SimRng::new(1));
        let (n1, h1) = obs_from(&[1_000_000; 100]); // 100 ops, 1 ms p99
        let (n2, h2) = obs_from(&[1_000_000; 200]); // more throughput
        let w = SimDuration::from_millis(250);
        let s1 = c.score(&WindowObs {
            ops: n1,
            window: w,
            hist: &h1,
        });
        let s2 = c.score(&WindowObs {
            ops: n2,
            window: w,
            hist: &h2,
        });
        assert!(s2 > s1, "more ops at equal tail must score higher");
        let (n3, h3) = obs_from(&[200_000_000; 200]); // 200 ms p99
        let s3 = c.score(&WindowObs {
            ops: n3,
            window: w,
            hist: &h3,
        });
        assert!(s3 < s2, "a 200 ms tail must discount the same throughput");
    }

    #[test]
    fn hill_climb_accepts_improvement_and_reverts_regression() {
        let mut c = Controller::new(TuneConfig::default(), Knobs::stock(), SimRng::new(7));
        feed(&mut c, 1_000_000, 100); // Measure + Propose
        let after_first = c.knobs();
        feed(&mut c, 1_000_000, 200); // trial doubled throughput: Accept
        assert!(c.decisions().iter().any(|d| d.action == ActionKind::Accept));
        // Now tank the next trial: it must revert to the accepted state.
        let accepted = c
            .decisions()
            .iter()
            .rfind(|d| d.action == ActionKind::Accept)
            .expect("accepted")
            .knobs;
        feed(&mut c, 1_000_000, 10_000); // huge improvement accepted again? No:
                                         // this judges the *second* proposal.
        feed(&mut c, 1_000_000, 1); // Hold (below min_ops)
        assert!(c.decisions().iter().any(|d| d.action == ActionKind::Hold));
        feed(&mut c, 500_000_000, 20); // terrible window: Revert
        let last_settle = c
            .decisions()
            .iter()
            .rfind(|d| matches!(d.action, ActionKind::Accept | ActionKind::Revert))
            .expect("settled");
        assert_eq!(last_settle.action, ActionKind::Revert);
        // After a revert the knobs equal some previously-held state.
        let _ = (after_first, accepted);
    }

    #[test]
    fn revert_restores_pre_trial_knobs_exactly() {
        let mut c = Controller::new(TuneConfig::default(), Knobs::stock(), SimRng::new(3));
        feed(&mut c, 1_000_000, 100);
        let proposed_from = c
            .decisions()
            .iter()
            .rfind(|d| !matches!(d.action, ActionKind::Propose(_)))
            .expect("measure entry")
            .knobs;
        feed(&mut c, 400_000_000, 50); // trial is worse: revert
        let after = c
            .decisions()
            .iter()
            .rfind(|d| d.action == ActionKind::Revert)
            .expect("reverted")
            .knobs;
        assert_eq!(after, proposed_from);
    }

    #[test]
    fn knob_bounds_are_respected_over_many_windows() {
        let cfg = TuneConfig::default();
        let mut c = Controller::new(cfg, Knobs::stock(), SimRng::new(11));
        for i in 0..500u64 {
            // Alternate good/bad so both accept and revert paths run.
            let (lat, ops) = if i % 3 == 0 {
                (50_000_000, 40)
            } else {
                (1_000_000, 150)
            };
            feed(&mut c, lat, ops);
            let k = c.knobs();
            assert!(
                (cfg.readahead_bounds.0..=cfg.readahead_bounds.1).contains(&k.readahead_blocks),
                "readahead {k:?}"
            );
            assert!(
                (cfg.heur_bounds.0..=cfg.heur_bounds.1).contains(&k.heur_slots),
                "slots {k:?}"
            );
        }
        let (a, r) = c.accept_revert_counts();
        assert!(
            a > 0 && r > 0,
            "both paths exercised: accept={a} revert={r}"
        );
    }

    #[test]
    fn decision_log_fingerprint_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut c = Controller::new(TuneConfig::default(), Knobs::stock(), SimRng::new(seed));
            for i in 0..100u64 {
                let ops = 50 + (i * 37) % 200;
                let lat = 500_000 + (i * 13) % 7 * 3_000_000;
                feed(&mut c, lat, ops);
            }
            c.fingerprint()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "seed moves the mutation draws");
    }

    #[test]
    fn heur_config_scales_probes_with_slots() {
        let small = Knobs {
            heur_slots: 8,
            ..Knobs::stock()
        };
        let big = Knobs {
            heur_slots: 1024,
            ..Knobs::stock()
        };
        assert_eq!(small.heur_config().probes, 2);
        assert_eq!(big.heur_config().probes, 8);
    }
}
