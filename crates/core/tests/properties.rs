//! Property-based tests on the heuristic invariants, driven by seeded
//! `SimRng` loops (offline-friendly; the case index reproduces the input
//! together with the fixed seed).

use readahead_core::{
    HeurRecord, NfsHeur, NfsHeurConfig, ReadaheadPolicy, SharedCursorPool, SEQCOUNT_MAX,
};
use simcore::SimRng;

const BLK: u64 = 8_192;

fn policies() -> Vec<ReadaheadPolicy> {
    vec![
        ReadaheadPolicy::Default,
        ReadaheadPolicy::Always,
        ReadaheadPolicy::slowdown(),
        ReadaheadPolicy::cursor(),
    ]
}

/// seqcount stays within [0, 127] under any access pattern.
#[test]
fn seqcount_is_bounded() {
    let mut rng = SimRng::new(0x0005_E901);
    for case in 0..64 {
        let n = rng.gen_range(1usize..200);
        let offsets: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1 << 40)).collect();
        for policy in policies() {
            let mut rec = HeurRecord::fresh(0, 0);
            for (i, &o) in offsets.iter().enumerate() {
                let c = policy.observe(&mut rec, o, BLK, i as u64);
                assert!(
                    c <= SEQCOUNT_MAX,
                    "case {case}: {} returned {c}",
                    policy.label()
                );
            }
        }
    }
}

/// On perfectly sequential input every policy reaches a high count
/// (i.e. nobody disables read-ahead for the common case).
#[test]
fn sequential_input_earns_readahead() {
    let mut rng = SimRng::new(0x0005_E902);
    for case in 0..64 {
        let start = rng.gen_range(0u64..1 << 30);
        let n = rng.gen_range(40u64..120);
        for policy in policies() {
            let mut rec = HeurRecord::fresh(start, 0);
            let mut last = 0;
            for b in 0..n {
                last = policy.observe(&mut rec, start + b * BLK, BLK, b);
            }
            assert!(last >= 30, "case {case}: {}: {last}", policy.label());
        }
    }
}

/// SlowDown never does worse than Default on any pattern, in the sense of
/// the final count after a sequential tail (resilience property).
#[test]
fn slowdown_recovers_at_least_as_fast() {
    let mut rng = SimRng::new(0x0005_E903);
    for case in 0..64 {
        let noise: Vec<u64> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0u64..1 << 30))
            .collect();
        let tail = rng.gen_range(10u64..40);
        let run = |policy: &ReadaheadPolicy| {
            let mut rec = HeurRecord::fresh(0, 0);
            let mut clock = 0;
            for &o in &noise {
                policy.observe(&mut rec, o, BLK, clock);
                clock += 1;
            }
            let base = 1u64 << 35;
            let mut last = 0;
            for b in 0..tail {
                last = policy.observe(&mut rec, base + b * BLK, BLK, clock);
                clock += 1;
            }
            last
        };
        let d = run(&ReadaheadPolicy::Default);
        let s = run(&ReadaheadPolicy::slowdown());
        // After `tail` sequential reads Default is at tail+1 at most; the
        // AIMD variant can only be >= because it never resets to 1.
        assert!(s + 1 >= d, "case {case}: slowdown {s} vs default {d}");
    }
}

/// A k-swapped sequential stream (adjacent transpositions, the NFS reorder
/// model) keeps SlowDown's count monotone-ish: it never drops below half
/// its running maximum.
#[test]
fn slowdown_resists_adjacent_swaps() {
    let mut rng = SimRng::new(0x0005_E904);
    for case in 0..64 {
        let mut blocks: Vec<u64> = (0..64).collect();
        for _ in 0..rng.gen_range(0usize..12) {
            let i = rng.gen_range(0usize..62);
            blocks.swap(i, i + 1);
        }
        let policy = ReadaheadPolicy::slowdown();
        let mut rec = HeurRecord::fresh(0, 0);
        let mut max_seen: u32 = 0;
        for (i, &b) in blocks.iter().enumerate() {
            let c = policy.observe(&mut rec, b * BLK, BLK, i as u64);
            assert!(
                c + 1 >= max_seen / 2,
                "case {case}: count collapsed: {c} after max {max_seen}"
            );
            max_seen = max_seen.max(c);
        }
    }
}

/// The nfsheur table conserves nothing it shouldn't: observing through the
/// table never yields a count above the policy cap, and the number of live
/// entries never exceeds the slot count.
#[test]
fn table_invariants() {
    let mut rng = SimRng::new(0x0005_E905);
    for case in 0..64 {
        let slots = rng.gen_range(1usize..64);
        let probes = rng.gen_range(1usize..8);
        let n = rng.gen_range(1usize..300);
        let mut t = NfsHeur::new(NfsHeurConfig { slots, probes });
        let policy = ReadaheadPolicy::slowdown();
        for i in 0..n {
            let k = rng.gen_range(0u64..50);
            let c = t.observe(k, (i as u64) * BLK, BLK, &policy);
            assert!(c <= SEQCOUNT_MAX, "case {case}");
            assert!(t.live() <= slots, "case {case}");
        }
        let s = t.stats();
        assert_eq!(s.hits + s.misses, n as u64, "case {case}");
    }
}

/// Pool invariant: live cursors never exceed capacity and counts stay
/// bounded.
#[test]
fn pool_invariants() {
    let mut rng = SimRng::new(0x0005_E906);
    for case in 0..64 {
        let cap = rng.gen_range(1usize..32);
        let n = rng.gen_range(1usize..300);
        let mut p = SharedCursorPool::new(cap, 64 * 1024);
        for _ in 0..n {
            let key = rng.gen_range(0u64..8);
            let offset = rng.gen_range(0u64..1 << 30);
            let c = p.observe(key, offset, BLK);
            assert!(c <= SEQCOUNT_MAX, "case {case}");
            assert!(p.live() <= cap, "case {case}");
        }
    }
}
