//! Property-based tests on the heuristic invariants.

use proptest::prelude::*;
use readahead_core::{
    HeurRecord, NfsHeur, NfsHeurConfig, ReadaheadPolicy, SharedCursorPool, SEQCOUNT_MAX,
};

const BLK: u64 = 8_192;

fn policies() -> Vec<ReadaheadPolicy> {
    vec![
        ReadaheadPolicy::Default,
        ReadaheadPolicy::Always,
        ReadaheadPolicy::slowdown(),
        ReadaheadPolicy::cursor(),
    ]
}

proptest! {
    /// seqcount stays within [0, 127] under any access pattern.
    #[test]
    fn seqcount_is_bounded(offsets in prop::collection::vec(0u64..1u64 << 40, 1..200)) {
        for policy in policies() {
            let mut rec = HeurRecord::fresh(0, 0);
            for (i, &o) in offsets.iter().enumerate() {
                let c = policy.observe(&mut rec, o, BLK, i as u64);
                prop_assert!(c <= SEQCOUNT_MAX, "{} returned {c}", policy.label());
            }
        }
    }

    /// On perfectly sequential input every policy reaches a high count
    /// (i.e. nobody disables read-ahead for the common case).
    #[test]
    fn sequential_input_earns_readahead(start in 0u64..1u64 << 30, n in 40u64..120) {
        for policy in policies() {
            let mut rec = HeurRecord::fresh(start, 0);
            let mut last = 0;
            for b in 0..n {
                last = policy.observe(&mut rec, start + b * BLK, BLK, b);
            }
            prop_assert!(last >= 30, "{}: {last}", policy.label());
        }
    }

    /// SlowDown never does worse than Default on any pattern, in the sense
    /// of the final count after a sequential tail (resilience property).
    #[test]
    fn slowdown_recovers_at_least_as_fast(
        noise in prop::collection::vec(0u64..1u64 << 30, 0..20),
        tail in 10u64..40,
    ) {
        let run = |policy: &ReadaheadPolicy| {
            let mut rec = HeurRecord::fresh(0, 0);
            let mut clock = 0;
            for &o in &noise {
                policy.observe(&mut rec, o, BLK, clock);
                clock += 1;
            }
            let base = 1u64 << 35;
            let mut last = 0;
            for b in 0..tail {
                last = policy.observe(&mut rec, base + b * BLK, BLK, clock);
                clock += 1;
            }
            last
        };
        let d = run(&ReadaheadPolicy::Default);
        let s = run(&ReadaheadPolicy::slowdown());
        // After `tail` sequential reads Default is at tail+1 at most; the
        // AIMD variant can only be >= because it never resets to 1.
        prop_assert!(s + 1 >= d, "slowdown {s} vs default {d}");
    }

    /// A k-swapped sequential stream (adjacent transpositions, the NFS
    /// reorder model) keeps SlowDown's count monotone-ish: it never drops
    /// below half its running maximum.
    #[test]
    fn slowdown_resists_adjacent_swaps(swaps in prop::collection::vec(1u64..60, 0..12)) {
        let mut blocks: Vec<u64> = (0..64).collect();
        for &s in &swaps {
            let i = (s as usize) % 62;
            blocks.swap(i, i + 1);
        }
        let policy = ReadaheadPolicy::slowdown();
        let mut rec = HeurRecord::fresh(0, 0);
        let mut max_seen: u32 = 0;
        for (i, &b) in blocks.iter().enumerate() {
            let c = policy.observe(&mut rec, b * BLK, BLK, i as u64);
            prop_assert!(
                c + 1 >= max_seen / 2,
                "count collapsed: {c} after max {max_seen}"
            );
            max_seen = max_seen.max(c);
        }
    }

    /// The nfsheur table conserves nothing it shouldn't: observing through
    /// the table never yields a count above the policy cap, and the number
    /// of live entries never exceeds the slot count.
    #[test]
    fn table_invariants(
        keys in prop::collection::vec(0u64..50, 1..300),
        slots in 1usize..64,
        probes in 1usize..8,
    ) {
        let mut t = NfsHeur::new(NfsHeurConfig { slots, probes });
        let policy = ReadaheadPolicy::slowdown();
        for (i, &k) in keys.iter().enumerate() {
            let c = t.observe(k, (i as u64) * BLK, BLK, &policy);
            prop_assert!(c <= SEQCOUNT_MAX);
            prop_assert!(t.live() <= slots);
        }
        let s = t.stats();
        prop_assert_eq!(s.hits + s.misses, keys.len() as u64);
    }

    /// Pool invariant: live cursors never exceed capacity and counts stay
    /// bounded.
    #[test]
    fn pool_invariants(
        ops in prop::collection::vec((0u64..8, 0u64..1u64 << 30), 1..300),
        cap in 1usize..32,
    ) {
        let mut p = SharedCursorPool::new(cap, 64 * 1024);
        for &(key, offset) in &ops {
            let c = p.observe(key, offset, BLK);
            prop_assert!(c <= SEQCOUNT_MAX);
            prop_assert!(p.live() <= cap);
        }
    }
}
