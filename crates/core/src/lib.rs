//! The paper's contribution: sequentiality heuristics for NFS read-ahead.
//!
//! *NFS Tricks and Benchmarking Traps* (Ellard & Seltzer, USENIX FREENIX
//! 2003) modifies the FreeBSD 4.6 NFS server in three ways, all implemented
//! here as a standalone, dependency-free library:
//!
//! 1. **SlowDown** ([`ReadaheadPolicy::SlowDown`]): a sequentiality metric
//!    that tolerates the small request reorderings NFS clients introduce
//!    (up to ~10% of requests in production traces) instead of resetting
//!    read-ahead on every out-of-order arrival.
//! 2. **Cursors** ([`ReadaheadPolicy::Cursor`]): multiple independent
//!    read cursors per file handle, so stride access patterns — the
//!    interleaving of several sequential subcomponents — earn read-ahead
//!    for each subcomponent (50–140% throughput gains in the paper).
//! 3. **A bigger `nfsheur` table** ([`NfsHeur`], [`NfsHeurConfig`]): the
//!    per-file-handle heuristic cache whose tiny stock geometry ejected
//!    state so fast that *no* heuristic could help; enlarging it turns out
//!    to matter more than the heuristics themselves.
//!
//! The §8 future-work item — a cursor pool shared across all file handles —
//! is implemented too ([`SharedCursorPool`]).
//!
//! # Examples
//!
//! ```
//! use readahead_core::{NfsHeur, NfsHeurConfig, ReadaheadPolicy};
//!
//! let mut table = NfsHeur::new(NfsHeurConfig::improved());
//! let policy = ReadaheadPolicy::slowdown();
//! // A sequential stream of 8 KB reads on file-handle key 42:
//! let mut seqcount = 0;
//! for block in 0..10u64 {
//!     seqcount = table.observe(42, block * 8192, 8192, &policy);
//! }
//! assert!(seqcount >= 10, "read-ahead fully enabled");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policy;
mod pool;
mod record;
mod table;

pub use policy::{
    CursorConfig, ReadaheadPolicy, SlowDownConfig, DEFAULT_MAX_CURSORS, SLOWDOWN_WINDOW_BYTES,
};
pub use pool::{PoolStats, SharedCursorPool};
pub use record::{Cursor, CursorVec, HeurRecord, INLINE_CURSORS, SEQCOUNT_INIT, SEQCOUNT_MAX};
pub use table::{NfsHeur, NfsHeurConfig, NfsHeurStats, ProbeOutcome};
