//! The sequentiality heuristics: Default, Always, SlowDown, and Cursor.
//!
//! These are the paper's §6–§7 in executable form. Each policy observes a
//! read (`offset`, `len`) against a file's cached [`HeurRecord`] and
//! returns the *effective seqcount* the file system should use to size
//! read-ahead for that read.
//!
//! * **Default** (FreeBSD 4.x): exact sequential match increments the
//!   count; *any* mismatch resets it — which is why a few percent of
//!   reordered NFS requests can disable read-ahead for an overwhelmingly
//!   sequential stream (§6).
//! * **Always**: hard-wired maximum; the paper's upper-bound control
//!   (Figure 6's "Always Read-ahead" line).
//! * **SlowDown** (§6.2): additive-increase/multiplicative-decrease, like
//!   TCP congestion control. A mismatch within 64 KB (eight 8 KB NFS
//!   blocks) is treated as request jitter and leaves the count alone; a
//!   larger jump halves it. Truly random patterns still collapse to zero
//!   after a few halvings.
//! * **Cursor** (§7): several independent `(offset, seqcount)` cursors per
//!   file handle, matched with the SlowDown window, LRU-recycled. A stride
//!   pattern — the interleaving of `s` sequential subcomponents — lands
//!   each subcomponent on its own cursor, and each earns read-ahead.

use crate::record::{Cursor, HeurRecord, SEQCOUNT_INIT, SEQCOUNT_MAX};

/// SlowDown matching window: "within 64k (eight 8k NFS blocks)".
pub const SLOWDOWN_WINDOW_BYTES: u64 = 64 * 1024;

/// Default limit on cursors per file handle ("a small and constant
/// number", §8; eight covers the paper's widest stride experiment).
pub const DEFAULT_MAX_CURSORS: usize = 8;

/// Configuration for [`ReadaheadPolicy::SlowDown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowDownConfig {
    /// Offset slack treated as jitter rather than randomness.
    pub window_bytes: u64,
}

impl Default for SlowDownConfig {
    fn default() -> Self {
        SlowDownConfig {
            window_bytes: SLOWDOWN_WINDOW_BYTES,
        }
    }
}

/// Configuration for [`ReadaheadPolicy::Cursor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorConfig {
    /// Offset slack for matching a read to a cursor.
    pub window_bytes: u64,
    /// Maximum cursors per file handle; LRU recycled beyond this.
    pub max_cursors: usize,
}

impl Default for CursorConfig {
    fn default() -> Self {
        CursorConfig {
            window_bytes: SLOWDOWN_WINDOW_BYTES,
            max_cursors: DEFAULT_MAX_CURSORS,
        }
    }
}

/// Which read-ahead heuristic the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadaheadPolicy {
    /// FreeBSD 4.x stock behaviour: reset on any out-of-order request.
    Default,
    /// Force maximal read-ahead unconditionally (upper-bound control).
    Always,
    /// The SlowDown heuristic of §6.2.
    SlowDown(SlowDownConfig),
    /// The cursor heuristic of §7 (SlowDown matching within each cursor).
    Cursor(CursorConfig),
}

impl ReadaheadPolicy {
    /// Convenience constructor with the paper's parameters.
    pub fn slowdown() -> Self {
        ReadaheadPolicy::SlowDown(SlowDownConfig::default())
    }

    /// Convenience constructor with the paper's parameters.
    pub fn cursor() -> Self {
        ReadaheadPolicy::Cursor(CursorConfig::default())
    }

    /// Short label for benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            ReadaheadPolicy::Default => "default",
            ReadaheadPolicy::Always => "always",
            ReadaheadPolicy::SlowDown(_) => "slowdown",
            ReadaheadPolicy::Cursor(_) => "cursor",
        }
    }

    /// Observes a read and returns the effective seqcount for it.
    ///
    /// `clock` is a monotone stamp used only for cursor LRU.
    pub fn observe(&self, rec: &mut HeurRecord, offset: u64, len: u64, clock: u64) -> u32 {
        match self {
            ReadaheadPolicy::Default => {
                let c = rec.primary();
                if offset == c.next_offset {
                    c.grow();
                } else {
                    // "a single out-of-order request can drop the
                    // sequentiality score to zero" (§1) — the stock
                    // behaviour SlowDown exists to fix.
                    c.seqcount = 0;
                }
                c.next_offset = offset + len;
                c.last_use = clock;
                c.seqcount
            }
            ReadaheadPolicy::Always => {
                let c = rec.primary();
                c.next_offset = offset + len;
                c.seqcount = SEQCOUNT_MAX;
                c.last_use = clock;
                SEQCOUNT_MAX
            }
            ReadaheadPolicy::SlowDown(cfg) => {
                let window = cfg.window_bytes;
                let c = rec.primary();
                Self::slowdown_update(c, offset, len, window, clock)
            }
            ReadaheadPolicy::Cursor(cfg) => {
                // Exact match first, then nearest within the window.
                let exact = rec.cursors.iter().position(|c| c.next_offset == offset);
                let near = exact.or_else(|| {
                    rec.cursors
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.next_offset.abs_diff(offset) <= cfg.window_bytes)
                        .min_by_key(|(_, c)| c.next_offset.abs_diff(offset))
                        .map(|(i, _)| i)
                });
                match near {
                    Some(i) => {
                        let c = &mut rec.cursors[i];
                        Self::slowdown_update(c, offset, len, cfg.window_bytes, clock)
                    }
                    None => {
                        // No cursor matches: allocate one, recycling the
                        // least recently used if at the per-file limit.
                        if rec.cursors.len() >= cfg.max_cursors.max(1) {
                            let lru = rec
                                .cursors
                                .iter()
                                .enumerate()
                                .min_by_key(|(_, c)| c.last_use)
                                .map(|(i, _)| i)
                                .expect("non-empty");
                            rec.cursors[lru] = Cursor::fresh(offset + len, clock);
                            rec.cursors[lru].seqcount
                        } else {
                            rec.cursors.push(Cursor::fresh(offset + len, clock));
                            SEQCOUNT_INIT
                        }
                    }
                }
            }
        }
    }

    /// The SlowDown state transition shared by SlowDown and Cursor.
    fn slowdown_update(c: &mut Cursor, offset: u64, len: u64, window: u64, clock: u64) -> u32 {
        if offset == c.next_offset {
            c.grow();
            c.next_offset = offset + len;
        } else if offset.abs_diff(c.next_offset) <= window {
            // Jitter: "we do not know whether the access pattern is
            // becoming random or whether we are simply seeing jitter in the
            // request order, so we leave seqCount alone." Advance the
            // expected offset only forward so a straggler does not walk the
            // cursor backwards.
            c.next_offset = c.next_offset.max(offset + len);
        } else {
            // A real jump: "we reduce seqCount, but not all the way to
            // zero. If the non-sequential trend continues, repeatedly
            // dividing seqCount in half will quickly chop it down to zero."
            c.seqcount /= 2;
            c.next_offset = offset + len;
        }
        c.last_use = clock;
        c.seqcount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLK: u64 = 8_192;

    fn run(policy: ReadaheadPolicy, offsets: &[u64]) -> Vec<u32> {
        let mut rec = HeurRecord::fresh(0, 0);
        offsets
            .iter()
            .enumerate()
            .map(|(i, &o)| policy.observe(&mut rec, o, BLK, i as u64 + 1))
            .collect()
    }

    fn seq(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * BLK).collect()
    }

    #[test]
    fn default_grows_on_sequential() {
        let counts = run(ReadaheadPolicy::Default, &seq(10));
        assert_eq!(counts, vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn default_resets_on_single_swap() {
        // Blocks 0..6 with 3 and 4 swapped: ... 2, 4, 3, 5 ...
        let offsets: Vec<u64> = [0u64, 1, 2, 4, 3, 5, 6, 7]
            .iter()
            .map(|b| b * BLK)
            .collect();
        let counts = run(ReadaheadPolicy::Default, &offsets);
        // The swap resets the count twice (at "4" and again at "5").
        assert_eq!(counts[3], 0, "out-of-order request resets to zero");
        assert_eq!(counts[4], 0, "straggler also mismatches");
        assert!(counts[7] <= 3, "recovery is slow: {counts:?}");
    }

    #[test]
    fn always_is_always_max() {
        let counts = run(ReadaheadPolicy::Always, &[0, 999_999, 0, 5 * BLK]);
        assert!(counts.iter().all(|&c| c == SEQCOUNT_MAX));
    }

    #[test]
    fn slowdown_tolerates_single_swap() {
        let offsets: Vec<u64> = [0u64, 1, 2, 4, 3, 5, 6, 7]
            .iter()
            .map(|b| b * BLK)
            .collect();
        let counts = run(ReadaheadPolicy::slowdown(), &offsets);
        // Count never collapses; the swap leaves it unchanged.
        assert!(counts[3] >= 4, "{counts:?}");
        assert!(counts[7] >= counts[2], "{counts:?}");
        assert!(counts.windows(2).all(|w| w[1] + 1 >= w[0]), "{counts:?}");
    }

    #[test]
    fn slowdown_halves_on_big_jump() {
        let mut rec = HeurRecord::fresh(0, 0);
        let p = ReadaheadPolicy::slowdown();
        for i in 0..40u64 {
            p.observe(&mut rec, i * BLK, BLK, i);
        }
        let grown = rec.max_seqcount();
        assert!(grown >= 40);
        let after = p.observe(&mut rec, 100_000_000, BLK, 100);
        assert_eq!(after, grown / 2);
    }

    #[test]
    fn slowdown_collapses_under_random_pattern() {
        // "if the access pattern is truly random, it will quickly disable
        // read-ahead."
        let offsets: Vec<u64> = (0..12).map(|i| (i * 7_919 + 1_000) * BLK).collect();
        let counts = run(ReadaheadPolicy::slowdown(), &offsets);
        assert_eq!(*counts.last().unwrap(), 0, "{counts:?}");
    }

    #[test]
    fn slowdown_window_boundary_is_inclusive() {
        let p = ReadaheadPolicy::slowdown();
        let mut rec = HeurRecord::fresh(0, 0);
        for i in 0..10u64 {
            p.observe(&mut rec, i * BLK, BLK, i);
        }
        let sc = rec.max_seqcount();
        // Exactly 64 KB past the expected offset: still jitter.
        let next = rec.primary().next_offset;
        let c = p.observe(&mut rec, next + SLOWDOWN_WINDOW_BYTES, BLK, 99);
        assert_eq!(c, sc, "inclusive window must not halve");
        // One byte beyond: halved.
        let next = rec.primary().next_offset;
        let c2 = p.observe(&mut rec, next + SLOWDOWN_WINDOW_BYTES + 1, BLK, 100);
        assert_eq!(c2, sc / 2);
    }

    #[test]
    fn cursor_detects_two_stride_pattern() {
        // Blocks 0, N/2, 1, N/2+1, ... (§7's 2-stride example).
        let n = 64u64;
        let mut offsets = Vec::new();
        for i in 0..n / 2 {
            offsets.push(i * BLK);
            offsets.push((n / 2 + i) * BLK);
        }
        let counts = run(ReadaheadPolicy::cursor(), &offsets);
        // Late in the run, both interleaved streams earn high counts.
        let tail = &counts[counts.len() - 8..];
        assert!(
            tail.iter().all(|&c| c >= 20),
            "both subcomponents should be sequential: {tail:?}"
        );
    }

    #[test]
    fn cursor_detects_eight_stride_pattern() {
        let s = 8u64;
        let per = 16u64;
        let mut offsets = Vec::new();
        for i in 0..per {
            for k in 0..s {
                offsets.push((k * 1_000 + i) * BLK); // Subcomponents far apart.
            }
        }
        let counts = run(ReadaheadPolicy::cursor(), &offsets);
        let tail = &counts[counts.len() - s as usize..];
        assert!(tail.iter().all(|&c| c >= 12), "{tail:?}");
    }

    #[test]
    fn default_treats_stride_as_random() {
        let mut offsets = Vec::new();
        for i in 0..32u64 {
            offsets.push(i * BLK);
            offsets.push((1_000 + i) * BLK);
        }
        let counts = run(ReadaheadPolicy::Default, &offsets);
        assert!(
            counts.iter().skip(1).all(|&c| c <= 1),
            "stride must look random to the default heuristic: {counts:?}"
        );
    }

    #[test]
    fn cursor_random_pattern_allocates_but_never_grows() {
        let offsets: Vec<u64> = (0..64).map(|i| (i * 7_919 + 13) % 100_000 * BLK).collect();
        let mut rec = HeurRecord::fresh(0, 0);
        let p = ReadaheadPolicy::cursor();
        let mut maxc = 0;
        for (i, &o) in offsets.iter().enumerate() {
            maxc = maxc.max(p.observe(&mut rec, o, BLK, i as u64));
        }
        assert!(maxc <= 2, "random pattern must not earn read-ahead: {maxc}");
        assert!(rec.cursors.len() <= DEFAULT_MAX_CURSORS);
    }

    #[test]
    fn cursor_limit_recycles_lru() {
        let cfg = CursorConfig {
            max_cursors: 2,
            ..CursorConfig::default()
        };
        let p = ReadaheadPolicy::Cursor(cfg);
        let mut rec = HeurRecord::fresh(0, 0);
        // Three widely separated streams with only two cursors.
        p.observe(&mut rec, 0, BLK, 1);
        p.observe(&mut rec, 10_000_000, BLK, 2);
        p.observe(&mut rec, 20_000_000, BLK, 3); // Recycles the LRU (stream 1... cursor 0).
        assert_eq!(rec.cursors.len(), 2);
        // Stream at offset 0's cursor is gone; continuing it allocates anew
        // with a fresh count.
        let c = p.observe(&mut rec, BLK, BLK, 4);
        assert_eq!(c, SEQCOUNT_INIT);
    }

    #[test]
    fn cursor_single_sequential_stream_equals_slowdown() {
        let a = run(ReadaheadPolicy::cursor(), &seq(32));
        let b = run(ReadaheadPolicy::slowdown(), &seq(32));
        assert_eq!(a, b);
    }

    #[test]
    fn labels() {
        assert_eq!(ReadaheadPolicy::Default.label(), "default");
        assert_eq!(ReadaheadPolicy::Always.label(), "always");
        assert_eq!(ReadaheadPolicy::slowdown().label(), "slowdown");
        assert_eq!(ReadaheadPolicy::cursor().label(), "cursor");
    }
}
