//! Per-file-handle heuristic state.

/// The ceiling the OS imposes on sequentiality counts: "seqCount is never
/// allowed to grow higher than 127, due to the implementation of the lower
/// levels of the operating system" (§6.2).
pub const SEQCOUNT_MAX: u32 = 127;

/// The value a fresh (or reset) record starts from: "when a new file is
/// accessed, it is given an initial sequentiality metric seqCount = 1".
pub const SEQCOUNT_INIT: u32 = 1;

/// One read cursor: an expected next offset plus its sequentiality count.
///
/// The conventional implementation keeps exactly one of these per file
/// handle; the cursor heuristic of §7 keeps several so that each sequential
/// subcomponent of a stride pattern is tracked independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Offset we expect the next sequential read to start at
    /// (`prevOffset` in the paper's terminology is the offset after the
    /// last operation).
    pub next_offset: u64,
    /// Current sequentiality count, 0..=127.
    pub seqcount: u32,
    /// LRU stamp for cursor recycling.
    pub last_use: u64,
}

impl Cursor {
    /// A cursor freshly created for a read ending at `next_offset`.
    pub fn fresh(next_offset: u64, now: u64) -> Self {
        Cursor {
            next_offset,
            seqcount: SEQCOUNT_INIT,
            last_use: now,
        }
    }

    /// Increments the count, saturating at [`SEQCOUNT_MAX`].
    pub fn grow(&mut self) {
        self.seqcount = (self.seqcount + 1).min(SEQCOUNT_MAX);
    }
}

/// Cursors kept inline before spilling to the heap.
///
/// Sized to [`crate::DEFAULT_MAX_CURSORS`] so every default-configured
/// heuristic — including the single-cursor FreeBSD ones — never allocates
/// per record. The nfsheur table creates and drops records constantly
/// under handle-eviction churn, so `HeurRecord::fresh` being allocation
/// free is measurable in the `nfsheur/thrash_*` micro benches.
pub const INLINE_CURSORS: usize = 8;

/// A small-vector of [`Cursor`]s: up to [`INLINE_CURSORS`] stored inline,
/// spilling to a heap `Vec` only beyond that (e.g. `max_cursors = 16`
/// ablations). Dereferences to `[Cursor]`, so call sites index, iterate,
/// and `position()` exactly as they did over the old `Vec<Cursor>`.
#[derive(Debug, Clone)]
pub struct CursorVec {
    inline: [Cursor; INLINE_CURSORS],
    len: u8,
    spill: Vec<Cursor>,
}

const EMPTY_CURSOR: Cursor = Cursor {
    next_offset: 0,
    seqcount: 0,
    last_use: 0,
};

impl CursorVec {
    /// An empty cursor vector (no heap allocation).
    pub fn new() -> Self {
        CursorVec {
            inline: [EMPTY_CURSOR; INLINE_CURSORS],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Resets to exactly one cursor **in place**: only `inline[0]` and the
    /// length are written, so reusing a record under table churn touches a
    /// couple of words instead of memcpy'ing the whole inline array (the
    /// difference shows in the `nfsheur/thrash_*` micro benches).
    pub fn reset_to(&mut self, c: Cursor) {
        self.spill.clear();
        self.inline[0] = c;
        self.len = 1;
    }

    /// Appends a cursor, moving all cursors to the heap if the inline
    /// capacity is exceeded (elements stay contiguous either way).
    pub fn push(&mut self, c: Cursor) {
        if self.spilled() {
            self.spill.push(c);
        } else if (self.len as usize) < INLINE_CURSORS {
            self.inline[self.len as usize] = c;
            self.len += 1;
        } else {
            self.spill.reserve(INLINE_CURSORS + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(c);
            self.len = 0;
        }
    }
}

impl Default for CursorVec {
    fn default() -> Self {
        CursorVec::new()
    }
}

impl std::ops::Deref for CursorVec {
    type Target = [Cursor];
    fn deref(&self) -> &[Cursor] {
        if self.spilled() {
            &self.spill
        } else {
            &self.inline[..self.len as usize]
        }
    }
}

impl std::ops::DerefMut for CursorVec {
    fn deref_mut(&mut self) -> &mut [Cursor] {
        if self.spilled() {
            &mut self.spill
        } else {
            &mut self.inline[..self.len as usize]
        }
    }
}

impl PartialEq for CursorVec {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for CursorVec {}

impl FromIterator<Cursor> for CursorVec {
    fn from_iter<I: IntoIterator<Item = Cursor>>(iter: I) -> Self {
        let mut v = CursorVec::new();
        for c in iter {
            v.push(c);
        }
        v
    }
}

/// Heuristic state cached per active file handle in the `nfsheur` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeurRecord {
    /// Active cursors; single-cursor heuristics use only `cursors[0]`.
    pub cursors: CursorVec,
}

impl HeurRecord {
    /// A record for a file first seen with a read ending at `next_offset`.
    pub fn fresh(next_offset: u64, now: u64) -> Self {
        let mut cursors = CursorVec::new();
        cursors.push(Cursor::fresh(next_offset, now));
        HeurRecord { cursors }
    }

    /// Re-initializes an existing record in place, equivalent to (but far
    /// cheaper than) overwriting it with [`HeurRecord::fresh`].
    pub fn reset(&mut self, next_offset: u64, now: u64) {
        self.cursors.reset_to(Cursor::fresh(next_offset, now));
    }

    /// The primary cursor (single-cursor heuristics).
    pub fn primary(&mut self) -> &mut Cursor {
        &mut self.cursors[0]
    }

    /// Largest seqcount across cursors (diagnostics).
    pub fn max_seqcount(&self) -> u32 {
        self.cursors.iter().map(|c| c.seqcount).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_has_one_cursor_at_init() {
        let r = HeurRecord::fresh(8_192, 0);
        assert_eq!(r.cursors.len(), 1);
        assert_eq!(r.cursors[0].seqcount, SEQCOUNT_INIT);
        assert_eq!(r.cursors[0].next_offset, 8_192);
    }

    #[test]
    fn grow_saturates_at_cap() {
        let mut c = Cursor::fresh(0, 0);
        for _ in 0..500 {
            c.grow();
        }
        assert_eq!(c.seqcount, SEQCOUNT_MAX);
    }

    #[test]
    fn max_seqcount_scans_cursors() {
        let mut r = HeurRecord::fresh(0, 0);
        r.cursors.push(Cursor {
            next_offset: 100,
            seqcount: 55,
            last_use: 1,
        });
        assert_eq!(r.max_seqcount(), 55);
    }

    #[test]
    fn cursor_vec_spills_past_inline_capacity_and_stays_ordered() {
        let mut v = CursorVec::new();
        for i in 0..INLINE_CURSORS as u64 + 5 {
            v.push(Cursor::fresh(i * 100, i));
        }
        assert_eq!(v.len(), INLINE_CURSORS + 5);
        for (i, c) in v.iter().enumerate() {
            assert_eq!(c.next_offset, i as u64 * 100);
        }
        // Mutation through DerefMut reaches the spilled storage.
        v[INLINE_CURSORS + 1].seqcount = 9;
        assert_eq!(v[INLINE_CURSORS + 1].seqcount, 9);
    }

    #[test]
    fn cursor_vec_equality_ignores_representation() {
        let a: CursorVec = (0..3).map(|i| Cursor::fresh(i, 0)).collect();
        let b: CursorVec = (0..3).map(|i| Cursor::fresh(i, 0)).collect();
        assert_eq!(a, b);
        let c: CursorVec = (0..4).map(|i| Cursor::fresh(i, 0)).collect();
        assert_ne!(a, c);
    }
}
