//! Per-file-handle heuristic state.

/// The ceiling the OS imposes on sequentiality counts: "seqCount is never
/// allowed to grow higher than 127, due to the implementation of the lower
/// levels of the operating system" (§6.2).
pub const SEQCOUNT_MAX: u32 = 127;

/// The value a fresh (or reset) record starts from: "when a new file is
/// accessed, it is given an initial sequentiality metric seqCount = 1".
pub const SEQCOUNT_INIT: u32 = 1;

/// One read cursor: an expected next offset plus its sequentiality count.
///
/// The conventional implementation keeps exactly one of these per file
/// handle; the cursor heuristic of §7 keeps several so that each sequential
/// subcomponent of a stride pattern is tracked independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Offset we expect the next sequential read to start at
    /// (`prevOffset` in the paper's terminology is the offset after the
    /// last operation).
    pub next_offset: u64,
    /// Current sequentiality count, 0..=127.
    pub seqcount: u32,
    /// LRU stamp for cursor recycling.
    pub last_use: u64,
}

impl Cursor {
    /// A cursor freshly created for a read ending at `next_offset`.
    pub fn fresh(next_offset: u64, now: u64) -> Self {
        Cursor {
            next_offset,
            seqcount: SEQCOUNT_INIT,
            last_use: now,
        }
    }

    /// Increments the count, saturating at [`SEQCOUNT_MAX`].
    pub fn grow(&mut self) {
        self.seqcount = (self.seqcount + 1).min(SEQCOUNT_MAX);
    }
}

/// Heuristic state cached per active file handle in the `nfsheur` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeurRecord {
    /// Active cursors; single-cursor heuristics use only `cursors[0]`.
    pub cursors: Vec<Cursor>,
}

impl HeurRecord {
    /// A record for a file first seen with a read ending at `next_offset`.
    pub fn fresh(next_offset: u64, now: u64) -> Self {
        HeurRecord {
            cursors: vec![Cursor::fresh(next_offset, now)],
        }
    }

    /// The primary cursor (single-cursor heuristics).
    pub fn primary(&mut self) -> &mut Cursor {
        &mut self.cursors[0]
    }

    /// Largest seqcount across cursors (diagnostics).
    pub fn max_seqcount(&self) -> u32 {
        self.cursors.iter().map(|c| c.seqcount).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_record_has_one_cursor_at_init() {
        let r = HeurRecord::fresh(8_192, 0);
        assert_eq!(r.cursors.len(), 1);
        assert_eq!(r.cursors[0].seqcount, SEQCOUNT_INIT);
        assert_eq!(r.cursors[0].next_offset, 8_192);
    }

    #[test]
    fn grow_saturates_at_cap() {
        let mut c = Cursor::fresh(0, 0);
        for _ in 0..500 {
            c.grow();
        }
        assert_eq!(c.seqcount, SEQCOUNT_MAX);
    }

    #[test]
    fn max_seqcount_scans_cursors() {
        let mut r = HeurRecord::fresh(0, 0);
        r.cursors.push(Cursor {
            next_offset: 100,
            seqcount: 55,
            last_use: 1,
        });
        assert_eq!(r.max_seqcount(), 55);
    }
}
