//! Shared cursor pool — the paper's §8 future-work item, implemented.
//!
//! "In our simplistic architecture, it is inefficient to increase the
//! number of cursors, because every file handle will reserve space for this
//! number of cursors (whether they are ever used or not). It would be
//! better to share a common pool of cursors among all file handles."
//!
//! [`SharedCursorPool`] does exactly that: a single, globally LRU-recycled
//! pool of cursors keyed by file handle. A lone sequential reader uses one
//! cursor; an MPI-style job can burn dozens on one file; the total memory
//! is fixed either way.

use crate::policy::CursorConfig;
use crate::record::{Cursor, SEQCOUNT_INIT};

/// Counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Observations that matched an existing cursor.
    pub matches: u64,
    /// Cursors allocated (pool not yet full).
    pub allocations: u64,
    /// Cursors recycled from other (or the same) file handles.
    pub recycles: u64,
}

/// A fixed-size cursor pool shared across every active file handle.
///
/// Stored structure-of-arrays: the scan that dominates [`observe`]
/// (`SharedCursorPool::observe`) walks the packed `keys` array and only
/// touches a cursor when its key matches, instead of striding over
/// key+cursor pairs.
#[derive(Debug)]
pub struct SharedCursorPool {
    capacity: usize,
    window_bytes: u64,
    keys: Vec<u64>,
    cursors: Vec<Cursor>,
    clock: u64,
    stats: PoolStats,
}

impl SharedCursorPool {
    /// Creates a pool of `capacity` cursors with the given matching window.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, window_bytes: u64) -> Self {
        assert!(capacity > 0, "pool needs at least one cursor");
        SharedCursorPool {
            capacity,
            window_bytes,
            keys: Vec::with_capacity(capacity),
            cursors: Vec::with_capacity(capacity),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Builds a pool sized for `handles` typical file handles using the
    /// per-handle cursor configuration as a guide.
    pub fn sized_for(handles: usize, cfg: CursorConfig) -> Self {
        Self::new(
            handles.max(1) * cfg.max_cursors.max(1) / 2 + 1,
            cfg.window_bytes,
        )
    }

    /// Counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Live cursors.
    pub fn live(&self) -> usize {
        self.cursors.len()
    }

    /// Observes a read on file `key`, returning the effective seqcount —
    /// the pooled equivalent of the per-handle cursor heuristic.
    pub fn observe(&mut self, key: u64, offset: u64, len: u64) -> u32 {
        self.clock += 1;
        let clock = self.clock;
        // One fused scan finds both the nearest same-file cursor within the
        // window (first minimum wins; an exact match can stop immediately)
        // and the global LRU victim needed if the lookup misses.
        let mut best: Option<(usize, u64)> = None;
        let mut lru = 0usize;
        let mut lru_use = u64::MAX;
        for (i, &k) in self.keys.iter().enumerate() {
            let c = &self.cursors[i];
            if c.last_use < lru_use {
                lru_use = c.last_use;
                lru = i;
            }
            if k == key {
                let diff = c.next_offset.abs_diff(offset);
                if diff <= self.window_bytes && best.is_none_or(|(_, d)| diff < d) {
                    best = Some((i, diff));
                    if diff == 0 {
                        break;
                    }
                }
            }
        }
        if let Some((i, _)) = best {
            self.stats.matches += 1;
            let c = &mut self.cursors[i];
            if offset == c.next_offset {
                c.grow();
                c.next_offset = offset + len;
            } else {
                c.next_offset = c.next_offset.max(offset + len);
            }
            c.last_use = clock;
            return c.seqcount;
        }
        // Allocate or recycle the globally least recently used cursor.
        let fresh = Cursor::fresh(offset + len, clock);
        if self.keys.len() < self.capacity {
            self.stats.allocations += 1;
            self.keys.push(key);
            self.cursors.push(fresh);
        } else {
            self.stats.recycles += 1;
            self.keys[lru] = key;
            self.cursors[lru] = fresh;
        }
        SEQCOUNT_INIT
    }

    /// Drops every cursor.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.cursors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLK: u64 = 8_192;

    #[test]
    fn single_stream_grows() {
        let mut p = SharedCursorPool::new(8, 64 * 1024);
        let mut last = 0;
        for b in 0..20u64 {
            last = p.observe(1, b * BLK, BLK);
        }
        assert!(last >= 20);
        assert_eq!(p.live(), 1, "one stream, one cursor");
    }

    #[test]
    fn cursors_do_not_cross_file_handles() {
        let mut p = SharedCursorPool::new(8, 64 * 1024);
        p.observe(1, 0, BLK);
        // Same offsets, different file: must not match file 1's cursor.
        let c = p.observe(2, BLK, BLK);
        assert_eq!(c, SEQCOUNT_INIT);
        assert_eq!(p.live(), 2);
    }

    #[test]
    fn wide_stride_on_one_file_uses_many_cursors() {
        // 16 interleaved subcomponents — more than any per-handle limit —
        // all tracked because the pool is shared.
        let mut p = SharedCursorPool::new(64, 64 * 1024);
        let s = 16u64;
        let mut min_final = u32::MAX;
        for i in 0..12u64 {
            for k in 0..s {
                let c = p.observe(7, (k * 100_000 + i) * BLK, BLK);
                if i == 11 {
                    min_final = min_final.min(c);
                }
            }
        }
        assert_eq!(p.live(), s as usize);
        assert!(min_final >= 10, "all 16 subcomponents grew: {min_final}");
    }

    #[test]
    fn recycling_is_global_lru() {
        let mut p = SharedCursorPool::new(2, 64 * 1024);
        p.observe(1, 0, BLK); // Cursor A.
        p.observe(2, 0, BLK); // Cursor B.
        p.observe(1, BLK, BLK); // Touch A.
        p.observe(3, 0, BLK); // Recycles B (file 2's cursor).
        assert!(p.stats().recycles == 1);
        let c = p.observe(2, BLK, BLK);
        assert_eq!(c, SEQCOUNT_INIT, "file 2 lost its cursor to file 3");
    }

    #[test]
    fn idle_handles_consume_nothing() {
        // The §8 motivation: per-handle reservation wastes cursors. Here
        // 100 one-shot files plus one busy file fit a small pool.
        let mut p = SharedCursorPool::new(4, 64 * 1024);
        for f in 0..100u64 {
            p.observe(f, 0, BLK);
        }
        let mut last = 0;
        for b in 1..30u64 {
            last = p.observe(99, b * BLK, BLK);
        }
        assert!(last >= 29, "busy file unaffected by dead cursors: {last}");
    }

    #[test]
    fn clear_and_stats() {
        let mut p = SharedCursorPool::new(2, 64 * 1024);
        p.observe(1, 0, BLK);
        p.observe(1, BLK, BLK);
        assert_eq!(p.stats().matches, 1);
        assert_eq!(p.stats().allocations, 1);
        p.clear();
        assert_eq!(p.live(), 0);
    }

    #[test]
    fn sized_for_scales() {
        let p = SharedCursorPool::sized_for(32, CursorConfig::default());
        assert!(p.capacity >= 32);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = SharedCursorPool::new(0, 1);
    }
}
